// safe_lint — repo-specific determinism / error-discipline / concurrency
// linter.
//
// Usage: safe_lint [--root <dir>] [--rules=<SLnnn,...>] [--json]
//                  [--print-index] [--print-include-graph] [subdir...]
//
// Scans <root>/<subdir> (default: src) for .h/.cc files, builds the
// Status/Result declaration index from every header under <root>/src, and
// reports violations of rules SL001–SL009 (see src/lint/lint.h). Exits 0
// when the tree is clean, 1 on violations, 2 on usage errors.
//
//   --rules=SL006,SL008   report only the listed rule IDs
//   --json                one JSON object per line (machine-readable)
//   --print-include-graph directory-level include graph + cycle report

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "src/lint/lint.h"

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Parses "SL001,SL006" into a set; empty string means "all rules".
std::set<std::string> ParseRuleFilter(const std::string& arg) {
  std::set<std::string> rules;
  size_t begin = 0;
  while (begin <= arg.size()) {
    size_t end = arg.find(',', begin);
    if (end == std::string::npos) end = arg.size();
    if (end > begin) rules.insert(arg.substr(begin, end - begin));
    begin = end + 1;
  }
  return rules;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool print_index = false;
  bool print_include_graph = false;
  bool json = false;
  std::set<std::string> rule_filter;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "safe_lint: --root needs a directory" << std::endl;
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--print-index") == 0) {
      print_index = true;
    } else if (std::strcmp(argv[i], "--print-include-graph") == 0) {
      print_include_graph = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strncmp(argv[i], "--rules=", 8) == 0) {
      rule_filter = ParseRuleFilter(argv[i] + 8);
      if (rule_filter.empty()) {
        std::cerr << "safe_lint: --rules= needs a comma-separated rule list"
                  << std::endl;
        return 2;
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: safe_lint [--root <dir>] [--rules=<SLnnn,...>] "
                   "[--json] [--print-index] [--print-include-graph] "
                   "[subdir...]"
                << std::endl;
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "safe_lint: unknown flag " << argv[i] << std::endl;
      return 2;
    } else {
      subdirs.push_back(argv[i]);
    }
  }
  if (subdirs.empty()) subdirs.push_back("src");

  if (print_index) {
    const safe::lint::DeclIndex index = safe::lint::IndexHeaders(root);
    for (const auto& name : index.names()) std::cout << name << "\n";
    std::cout << "safe_lint: " << index.size()
              << " indexed Status/Result declarations" << std::endl;
    return 0;
  }

  if (print_include_graph) {
    const safe::lint::FileSet files =
        safe::lint::CollectTreeFiles(root, subdirs);
    std::cout << safe::lint::FormatIncludeGraph(files);
    return 0;
  }

  std::vector<safe::lint::Finding> findings =
      safe::lint::LintTree(root, subdirs);
  if (!rule_filter.empty()) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const safe::lint::Finding& f) {
                                    return rule_filter.count(f.rule) == 0;
                                  }),
                   findings.end());
  }
  for (const auto& finding : findings) {
    if (json) {
      std::cout << "{\"rule\":\"" << JsonEscape(finding.rule)
                << "\",\"file\":\"" << JsonEscape(finding.file)
                << "\",\"line\":" << finding.line << ",\"message\":\""
                << JsonEscape(finding.message) << "\"}" << std::endl;
    } else {
      std::cout << finding.ToString() << std::endl;
    }
  }
  if (!findings.empty()) {
    if (!json) {
      std::cout << "safe_lint: " << findings.size() << " violation"
                << (findings.size() == 1 ? "" : "s") << std::endl;
    }
    return 1;
  }
  if (!json) std::cout << "safe_lint: clean" << std::endl;
  return 0;
}
