// safe_lint — repo-specific determinism / error-discipline linter.
//
// Usage: safe_lint [--root <dir>] [--print-index] [subdir...]
//
// Scans <root>/<subdir> (default: src) for .h/.cc files, builds the
// Status/Result declaration index from every header under <root>/src, and
// reports violations of rules SL001–SL005 (see src/lint/lint.h). Exits 0
// when the tree is clean, 1 on violations, 2 on usage errors.

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/lint/lint.h"

int main(int argc, char** argv) {
  std::string root = ".";
  bool print_index = false;
  std::vector<std::string> subdirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "safe_lint: --root needs a directory" << std::endl;
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--print-index") == 0) {
      print_index = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: safe_lint [--root <dir>] [--print-index] "
                   "[subdir...]"
                << std::endl;
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "safe_lint: unknown flag " << argv[i] << std::endl;
      return 2;
    } else {
      subdirs.push_back(argv[i]);
    }
  }
  if (subdirs.empty()) subdirs.push_back("src");

  if (print_index) {
    const safe::lint::DeclIndex index = safe::lint::IndexHeaders(root);
    for (const auto& name : index.names()) std::cout << name << "\n";
    std::cout << "safe_lint: " << index.size()
              << " indexed Status/Result declarations" << std::endl;
    return 0;
  }

  const std::vector<safe::lint::Finding> findings =
      safe::lint::LintTree(root, subdirs);
  for (const auto& finding : findings) {
    std::cout << finding.ToString() << std::endl;
  }
  if (!findings.empty()) {
    std::cout << "safe_lint: " << findings.size() << " violation"
              << (findings.size() == 1 ? "" : "s") << std::endl;
    return 1;
  }
  std::cout << "safe_lint: clean" << std::endl;
  return 0;
}
