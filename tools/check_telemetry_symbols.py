#!/usr/bin/env python3
"""Verifies that a SAFE_TELEMETRY=OFF build contains no telemetry symbols.

The obs headers replace MetricsRegistry/Tracer/TraceSpan/Counter/Gauge/
Histogram — and the flight recorder (FlightRecorder/FlightScope/
SampledFlightScope and its internal EventBuffer) — with inline no-op
stubs when SAFE_TELEMETRY_ENABLED is 0, and metrics.cc/trace.cc/
flight_recorder.cc compile to empty translation units. If that gating
regresses (say a .cc file grows an unguarded definition), the real
implementations sneak back into telemetry-off binaries. This check runs
`nm -C` over the given binaries/archives and fails when any of the gated
class symbols appear.

Usage: check_telemetry_symbols.py <binary-or-archive> [...]

Registered as a ctest test only when SAFE_TELEMETRY=OFF.
"""

import re
import subprocess
import sys

# Classes that must be fully stubbed out when telemetry is off. The
# inline stubs are trivial enough to be inlined away; any out-of-line
# definition of these names means the real implementation leaked in.
GATED_PATTERN = re.compile(
    r"safe::obs::(?:internal::)?"
    r"(MetricsRegistry|Tracer|TraceSpan|Counter|Gauge|Histogram"
    r"|FlightRecorder|FlightScope|SampledFlightScope|EventBuffer)"
    r"::"
)

# The stub Global() functions legitimately survive as inline (weak)
# definitions holding the function-local static; they carry no telemetry
# behaviour, so they are allowed.
ALLOWED_PATTERN = re.compile(r"::Global\(\)|::Global\[")


def check(path: str) -> list[str]:
    try:
        output = subprocess.run(
            ["nm", "-C", path],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError as exc:
        print(f"error: nm failed on {path}: {exc.stderr.strip()}")
        sys.exit(2)

    offenders = []
    for line in output.splitlines():
        # Undefined references (U) would fail the link anyway; only
        # defined symbols matter here. nm prints "addr TYPE name" for
        # defined symbols and "U name" (no address) for undefined ones;
        # demangled names contain spaces, so parse the line head, not
        # whitespace-split fields.
        head = re.match(r"\s*(?:[0-9a-fA-F]+\s+)?([A-Za-z?])\s", line)
        if head is None or head.group(1) in ("U", "w", "v"):
            continue
        if GATED_PATTERN.search(line) and not ALLOWED_PATTERN.search(line):
            offenders.append(line.strip())
    return offenders


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    failed = False
    for path in sys.argv[1:]:
        offenders = check(path)
        if offenders:
            failed = True
            print(f"FAIL: {path} contains telemetry symbols:")
            for line in offenders[:20]:
                print(f"  {line}")
            if len(offenders) > 20:
                print(f"  ... and {len(offenders) - 20} more")
        else:
            print(f"OK: {path} has no telemetry symbols")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
