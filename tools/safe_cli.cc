// safe_cli — command-line driver for the SAFE feature-engineering library.
//
// Subcommands:
//   fit        learn a feature plan from a labelled CSV
//     safe_cli fit --train=train.csv --label=label --plan=plan.txt
//              [--method=SAFE|RAND|IMP|TFC|FCT|AUTOLEARN] [--iterations=1]
//              [--operators=add,sub,mul,div] [--max-output=0]
//              [--gamma=0] [--seed=42]
//   transform  apply a plan to a CSV (label column optional, passed through)
//     safe_cli transform --input=data.csv --plan=plan.txt --output=out.csv
//              [--label=label]
//   evaluate   AUC of a classifier on original vs plan-transformed features
//     safe_cli evaluate --train=train.csv --test=test.csv --label=label
//              --plan=plan.txt [--clf=XGB]
//   inspect    human-readable summary of a serialized plan
//     safe_cli inspect --plan=plan.txt
//   demo       end-to-end run on a synthetic workload (no files needed)
//     safe_cli demo [--rows=2000] [--features=10] [--seed=42]
//   serve-bench  compiled+fused serving path vs the naive two-step path,
//              plus the sharded scoring server under closed- and
//              open-loop load (src/serve/server/)
//     safe_cli serve-bench [--quick] [--train_rows=2000] [--features=24]
//              [--rows=20000] [--repeats=3] [--batch=256] [--seed=42]
//              [--server-shards=2] [--clients=4] [--server-queue=1024]
//              [--batch-rows=64] [--batch-wait-us=100]
//              [--closed-requests=2500] [--open-requests=20000]
//              [--open-qps=20000]
//              [--out=BENCH_serving.json] [--gate=bench/baselines/serving.json]
//   trace      demo workload with the flight recorder armed; writes a
//              Chrome trace-event JSON for chrome://tracing / Perfetto
//     safe_cli trace [--rows=2000] [--features=10] [--seed=42]
//              [--out=trace.json]
//
// Every subcommand accepts --report=<path>: at exit the telemetry run
// report (metrics, trace spans, and — for fit/demo — the per-iteration
// funnel diagnostics) is written there as JSON and a summary table is
// printed (see DESIGN.md "Observability"). --trace=<path> likewise arms
// the flight recorder for the run and drains every thread's event
// timeline to that path (DESIGN.md "Flight recorder").
//
// Exit code 0 on success; errors print the Status message to stderr.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>

#include "bench/harness.h"
#include "src/baselines/autolearn.h"
#include "src/baselines/fctree.h"
#include "src/baselines/feature_engineer.h"
#include "src/baselines/tfc.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/dataframe/csv.h"
#include "src/gbdt/booster.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/trace_export.h"
#include "src/serve/serve_bench.h"
#include "src/stats/auc.h"

namespace safe {
namespace cli {
namespace {

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int Fail(const std::string& message) {
  std::cerr << "error: " << message << "\n";
  return 1;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << content;
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::OK();
}

int RunFit(const bench::Flags& flags) {
  const std::string train_path = flags.GetString("train", "");
  const std::string label = flags.GetString("label", "label");
  const std::string plan_path = flags.GetString("plan", "plan.txt");
  const std::string method_name = flags.GetString("method", "SAFE");
  if (train_path.empty()) return Fail("--train is required");

  auto train = ReadCsvDataset(train_path, label);
  if (!train.ok()) return Fail(train.status());
  std::cout << "loaded " << train->num_rows() << " rows x "
            << train->x.num_columns() << " features from " << train_path
            << "\n";

  std::unique_ptr<baselines::FeatureEngineer> method;
  const size_t m = train->x.num_columns();
  const auto max_output =
      static_cast<size_t>(flags.GetInt("max-output", 0));
  if (method_name == "TFC") {
    baselines::TfcParams params;
    params.operator_names = flags.GetList("operators", "add,sub,mul,div");
    params.num_iterations =
        static_cast<size_t>(flags.GetInt("iterations", 1));
    params.max_output_features = max_output;
    method = std::make_unique<baselines::TfcEngineer>(
        params, OperatorRegistry::Default());
  } else if (method_name == "AUTOLEARN") {
    baselines::AutoLearnParams params;
    params.max_output_features = max_output;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    method = std::make_unique<baselines::AutoLearnEngineer>(params);
  } else if (method_name == "FCT") {
    baselines::FcTreeParams params;
    params.operator_names = flags.GetList("operators", "add,sub,mul,div");
    params.max_output_features = max_output;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    method = std::make_unique<baselines::FcTreeEngineer>(
        params, OperatorRegistry::Default());
  } else {
    SafeParams params;
    params.operator_names = flags.GetList("operators", "add,sub,mul,div");
    params.num_iterations =
        static_cast<size_t>(flags.GetInt("iterations", 1));
    params.gamma = static_cast<size_t>(flags.GetInt("gamma", 0));
    params.max_output_features = max_output;
    params.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    if (method_name == "SAFE") {
      params.strategy = MiningStrategy::kTreePaths;
    } else if (method_name == "RAND") {
      params.strategy = MiningStrategy::kRandomPairs;
    } else if (method_name == "IMP") {
      params.strategy = MiningStrategy::kSplitFeaturePairs;
    } else {
      return Fail("unknown --method '" + method_name + "'");
    }
    method = std::make_unique<baselines::SafeEngineer>(
        params, OperatorRegistry::Default());
  }
  (void)m;

  Stopwatch watch;
  auto plan = method->FitPlan(*train, nullptr);
  if (!plan.ok()) return Fail(plan.status());
  std::cout << method->name() << " fit in " << watch.ElapsedSeconds()
            << "s: " << plan->selected().size() << " features selected ("
            << plan->NumSelectedGenerated() << " generated)\n";

  Status st = WriteWholeFile(plan_path, plan->Serialize());
  if (!st.ok()) return Fail(st);
  std::cout << "plan written to " << plan_path << "\n";

  const std::vector<IterationDiagnostics>* diagnostics = nullptr;
  if (const auto* safe_method =
          dynamic_cast<const baselines::SafeEngineer*>(method.get())) {
    diagnostics = &safe_method->last_diagnostics();
  }
  if (!bench::EmitRunReport(flags, "safe_cli fit", watch.ElapsedSeconds(),
                            diagnostics, /*print_table=*/true)) {
    return 1;
  }
  return 0;
}

int RunDemo(const bench::Flags& flags) {
  // Self-contained workload for telemetry inspection: synthesize a
  // labelled dataset, run the full SAFE pipeline, then train and score a
  // GBDT on the engineered features.
  data::SyntheticSpec spec;
  spec.num_rows = static_cast<size_t>(flags.GetInt("rows", 2000));
  spec.num_features = static_cast<size_t>(flags.GetInt("features", 10));
  spec.num_informative = std::max<size_t>(1, spec.num_features / 2);
  spec.num_interactions = 3;
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  auto data = data::MakeSyntheticDataset(spec);
  if (!data.ok()) return Fail(data.status());
  std::cout << "synthetic workload: " << data->num_rows() << " rows x "
            << data->x.num_columns() << " features\n";

  Stopwatch watch;
  SafeParams params;
  params.seed = spec.seed;
  SafeEngine engine(params);
  auto result = engine.Fit(*data);
  if (!result.ok()) return Fail(result.status());
  std::cout << "SAFE fit in " << watch.ElapsedSeconds() << "s: "
            << result->plan.selected().size() << " features selected ("
            << result->plan.NumSelectedGenerated() << " generated)\n";

  auto transformed = result->plan.Transform(data->x);
  if (!transformed.ok()) return Fail(transformed.status());
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = spec.seed;
  Dataset engineered{std::move(*transformed), data->y};
  auto model = gbdt::Booster::Fit(engineered, nullptr, gbdt_params);
  if (!model.ok()) return Fail(model.status());
  auto scores = model->PredictProba(engineered.x);
  if (!scores.ok()) return Fail(scores.status());
  auto auc = Auc(*scores, data->labels());
  if (!auc.ok()) return Fail(auc.status());
  std::cout << "GBDT train AUC x100: " << FormatDouble(100.0 * *auc, 2)
            << "\n";

  if (!bench::EmitRunReport(flags, "safe_cli demo", watch.ElapsedSeconds(),
                            &result->iterations, /*print_table=*/true)) {
    return 1;
  }
  return 0;
}

int RunServeBench(const bench::Flags& flags) {
  serve::ServeBenchOptions options;
  options.quick = flags.GetBool("quick", false);
  options.train_rows = static_cast<size_t>(
      flags.GetInt("train_rows", static_cast<int64_t>(options.train_rows)));
  options.features = static_cast<size_t>(
      flags.GetInt("features", static_cast<int64_t>(options.features)));
  options.score_rows = static_cast<size_t>(
      flags.GetInt("rows", static_cast<int64_t>(options.score_rows)));
  options.repeats = static_cast<size_t>(
      flags.GetInt("repeats", static_cast<int64_t>(options.repeats)));
  options.batch_size = static_cast<size_t>(
      flags.GetInt("batch", static_cast<int64_t>(options.batch_size)));
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(options.seed)));
  serve::ServerLoadOptions& load = options.server;
  load.num_shards = static_cast<size_t>(flags.GetInt(
      "server-shards", static_cast<int64_t>(load.num_shards)));
  load.client_threads = static_cast<size_t>(
      flags.GetInt("clients", static_cast<int64_t>(load.client_threads)));
  load.queue_capacity = static_cast<size_t>(flags.GetInt(
      "server-queue", static_cast<int64_t>(load.queue_capacity)));
  load.max_batch_rows = static_cast<size_t>(flags.GetInt(
      "batch-rows", static_cast<int64_t>(load.max_batch_rows)));
  load.max_wait_us = static_cast<uint64_t>(flags.GetInt(
      "batch-wait-us", static_cast<int64_t>(load.max_wait_us)));
  load.closed_requests_per_client = static_cast<size_t>(flags.GetInt(
      "closed-requests",
      static_cast<int64_t>(load.closed_requests_per_client)));
  load.open_requests = static_cast<size_t>(flags.GetInt(
      "open-requests", static_cast<int64_t>(load.open_requests)));
  load.open_target_qps = flags.GetDouble("open-qps", load.open_target_qps);

  Stopwatch watch;
  auto report = serve::RunServeBench(options);
  if (!report.ok()) return Fail(report.status());

  std::cout << "serving: " << report->features << " inputs -> "
            << report->generated << " generated -> " << report->outputs
            << " served, " << report->trees << " trees\n";
  std::cout << "  naive:  p50 " << FormatDouble(report->naive.p50_us, 2)
            << "us  p99 " << FormatDouble(report->naive.p99_us, 2) << "us  "
            << FormatDouble(report->naive.rows_per_s, 0) << " rows/s\n";
  std::cout << "  fused:  p50 " << FormatDouble(report->fused.p50_us, 2)
            << "us  p99 " << FormatDouble(report->fused.p99_us, 2) << "us  "
            << FormatDouble(report->fused.rows_per_s, 0) << " rows/s\n";
  std::cout << "  batch:  " << FormatDouble(report->batch_rows_per_s, 0)
            << " rows/s\n";
  std::cout << "  speedup per-row " << FormatDouble(report->speedup, 2)
            << "x, batch " << FormatDouble(report->batch_speedup, 2)
            << "x, bit-identical "
            << (report->outputs_identical ? "yes" : "NO") << "\n";
  std::cout << "  server (" << report->server_shards << " shards, "
            << report->server_clients << " clients): closed p99 "
            << FormatDouble(report->server_closed.p99_us, 2) << "us at "
            << FormatDouble(report->server_closed.sustained_qps, 0)
            << " qps; open p99 "
            << FormatDouble(report->server_open.p99_us, 2) << "us at "
            << FormatDouble(report->server_open.sustained_qps, 0)
            << " qps (target "
            << FormatDouble(report->server_open_target_qps, 0)
            << "), bit-identical "
            << (report->server_outputs_identical ? "yes" : "NO") << "\n";

  const std::string out_path = flags.GetString("out", "");
  if (!out_path.empty()) {
    Status st = WriteWholeFile(out_path, report->ToJson().Serialize());
    if (!st.ok()) return Fail(st);
    std::cout << "wrote " << out_path << "\n";
  }
  if (!bench::EmitRunReport(flags, "safe_cli serve-bench",
                            watch.ElapsedSeconds(), nullptr,
                            /*print_table=*/true)) {
    return 1;
  }
  const std::string gate_path = flags.GetString("gate", "");
  if (!gate_path.empty()) {
    auto gate = serve::ReadServingGate(gate_path);
    if (!gate.ok()) return Fail(gate.status());
    if (report->speedup < gate->min_speedup) {
      return Fail("serving gate failed: speedup " +
                  FormatDouble(report->speedup, 2) + "x < " +
                  FormatDouble(gate->min_speedup, 2) + "x (" + gate_path +
                  ")");
    }
    std::cout << "gate ok: " << FormatDouble(report->speedup, 2)
              << "x >= " << FormatDouble(gate->min_speedup, 2) << "x\n";
    if (gate->min_batch_speedup > 0.0 &&
        report->batch_speedup < gate->min_batch_speedup) {
      return Fail("serving gate failed: batch speedup " +
                  FormatDouble(report->batch_speedup, 2) + "x < " +
                  FormatDouble(gate->min_batch_speedup, 2) + "x (" + gate_path +
                  ")");
    }
    if (gate->min_batch_speedup > 0.0) {
      std::cout << "gate ok: batch " << FormatDouble(report->batch_speedup, 2)
                << "x >= " << FormatDouble(gate->min_batch_speedup, 2)
                << "x\n";
    }
    if (gate->max_recorder_overhead_pct > 0.0 && report->recorder_enabled &&
        report->recorder_overhead_pct > gate->max_recorder_overhead_pct) {
      return Fail("serving gate failed: recorder overhead " +
                  FormatDouble(report->recorder_overhead_pct, 2) + "% > " +
                  FormatDouble(gate->max_recorder_overhead_pct, 2) + "% (" +
                  gate_path + ")");
    }
    if (gate->min_sustained_qps > 0.0 &&
        report->server_open.sustained_qps < gate->min_sustained_qps) {
      return Fail("serving gate failed: sustained " +
                  FormatDouble(report->server_open.sustained_qps, 0) +
                  " qps < " + FormatDouble(gate->min_sustained_qps, 0) +
                  " qps (" + gate_path + ")");
    }
    if (gate->min_sustained_qps > 0.0) {
      std::cout << "gate ok: sustained "
                << FormatDouble(report->server_open.sustained_qps, 0)
                << " qps >= " << FormatDouble(gate->min_sustained_qps, 0)
                << " qps\n";
    }
  }
  return 0;
}

int RunTrace(const bench::Flags& flags) {
  // Demo workload under an armed recorder: the resulting timeline shows
  // engine stages, pool task grains and GBDT histogram builds end to end
  // without requiring any input files.
  obs::FlightRecorder::Global()->SetCurrentThreadLabel("main");
  obs::FlightRecorder::Arm();
  const int rc = RunDemo(flags);
  obs::FlightRecorder::Disarm();
  if (rc != 0) return rc;
  const std::string out_path = flags.GetString("out", "trace.json");
  std::string error;
  if (!obs::WriteChromeTrace(out_path, &error)) return Fail(error);
#if !SAFE_TELEMETRY_ENABLED
  std::cout << "note: SAFE_TELEMETRY=OFF build — the trace is empty\n";
#endif
  std::cout << "trace written to " << out_path
            << " (load in chrome://tracing or ui.perfetto.dev)\n";
  return 0;
}

int RunTransform(const bench::Flags& flags) {
  const std::string input_path = flags.GetString("input", "");
  const std::string plan_path = flags.GetString("plan", "plan.txt");
  const std::string output_path = flags.GetString("output", "");
  const std::string label = flags.GetString("label", "");
  if (input_path.empty() || output_path.empty()) {
    return Fail("--input and --output are required");
  }
  auto plan_text = ReadWholeFile(plan_path);
  if (!plan_text.ok()) return Fail(plan_text.status());
  auto plan = FeaturePlan::Deserialize(*plan_text);
  if (!plan.ok()) return Fail(plan.status());

  auto frame = ReadCsv(input_path);
  if (!frame.ok()) return Fail(frame.status());

  // Pop the label column (if named) so the feature schema matches.
  DataFrame features = *frame;
  Column label_column;
  bool has_label = false;
  if (!label.empty()) {
    auto idx = features.ColumnIndex(label);
    if (idx.ok()) {
      has_label = true;
      label_column = features.column(*idx);
      std::vector<size_t> keep;
      for (size_t c = 0; c < features.num_columns(); ++c) {
        if (c != *idx) keep.push_back(c);
      }
      auto selected = features.Select(keep);
      if (!selected.ok()) return Fail(selected.status());
      features = std::move(*selected);
    }
  }

  auto transformed = plan->Transform(features);
  if (!transformed.ok()) return Fail(transformed.status());
  DataFrame out = std::move(*transformed);
  if (has_label) {
    Status st = out.AddColumn(label_column);
    if (!st.ok()) return Fail(st);
  }
  Status st = WriteCsv(out, output_path);
  if (!st.ok()) return Fail(st);
  std::cout << "wrote " << out.num_rows() << " rows x " << out.num_columns()
            << " columns to " << output_path << "\n";
  return 0;
}

int RunEvaluate(const bench::Flags& flags) {
  const std::string train_path = flags.GetString("train", "");
  const std::string test_path = flags.GetString("test", "");
  const std::string label = flags.GetString("label", "label");
  const std::string plan_path = flags.GetString("plan", "plan.txt");
  const std::string clf_name = flags.GetString("clf", "XGB");
  if (train_path.empty() || test_path.empty()) {
    return Fail("--train and --test are required");
  }

  auto train = ReadCsvDataset(train_path, label);
  if (!train.ok()) return Fail(train.status());
  auto test = ReadCsvDataset(test_path, label);
  if (!test.ok()) return Fail(test.status());
  auto plan_text = ReadWholeFile(plan_path);
  if (!plan_text.ok()) return Fail(plan_text.status());
  auto plan = FeaturePlan::Deserialize(*plan_text);
  if (!plan.ok()) return Fail(plan.status());

  models::ClassifierKind kind = models::ClassifierKind::kXgboost;
  bool found = false;
  for (auto candidate : models::AllClassifierKinds()) {
    if (clf_name == models::ClassifierShortName(candidate)) {
      kind = candidate;
      found = true;
    }
  }
  if (!found) return Fail("unknown --clf '" + clf_name + "'");

  auto eval = [&](const DataFrame& train_x,
                  const DataFrame& test_x) -> Result<double> {
    auto clf = models::MakeClassifier(kind, 17);
    Dataset fit_train{train_x, train->y};
    SAFE_RETURN_NOT_OK(clf->Fit(fit_train));
    SAFE_ASSIGN_OR_RETURN(auto scores, clf->PredictScores(test_x));
    return Auc(scores, test->labels());
  };

  auto auc_orig = eval(train->x, test->x);
  if (!auc_orig.ok()) return Fail(auc_orig.status());
  auto train_z = plan->Transform(train->x);
  if (!train_z.ok()) return Fail(train_z.status());
  auto test_z = plan->Transform(test->x);
  if (!test_z.ok()) return Fail(test_z.status());
  auto auc_plan = eval(*train_z, *test_z);
  if (!auc_plan.ok()) return Fail(auc_plan.status());

  std::cout << clf_name << " AUC x100\n";
  std::cout << "  original: " << FormatDouble(100.0 * *auc_orig, 2) << "\n";
  std::cout << "  plan:     " << FormatDouble(100.0 * *auc_plan, 2) << "\n";
  std::cout << "  delta:    "
            << FormatDouble(100.0 * (*auc_plan - *auc_orig), 2) << "\n";
  if (!bench::EmitRunReport(flags, "safe_cli evaluate", 0.0, nullptr,
                            /*print_table=*/true)) {
    return 1;
  }
  return 0;
}

int RunInspect(const bench::Flags& flags) {
  const std::string plan_path = flags.GetString("plan", "plan.txt");
  auto plan_text = ReadWholeFile(plan_path);
  if (!plan_text.ok()) return Fail(plan_text.status());
  auto plan = FeaturePlan::Deserialize(*plan_text);
  if (!plan.ok()) return Fail(plan.status());

  std::cout << "plan: " << plan_path << "\n";
  std::cout << "  input schema: " << plan->input_columns().size()
            << " columns\n";
  std::cout << "  generated features: " << plan->generated().size() << "\n";
  std::cout << "  selected outputs: " << plan->selected().size() << " ("
            << plan->NumSelectedGenerated() << " generated, "
            << plan->selected().size() - plan->NumSelectedGenerated()
            << " original)\n";
  // Operator usage histogram.
  std::map<std::string, size_t> by_op;
  for (const auto& feature : plan->generated()) {
    by_op[feature.op] += 1;
  }
  if (!by_op.empty()) {
    std::cout << "  operators used:";
    for (const auto& [op, count] : by_op) {
      std::cout << " " << op << "x" << count;
    }
    std::cout << "\n";
  }
  std::cout << "  outputs:\n";
  for (const auto& name : plan->selected()) {
    std::cout << "    " << name << "\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: safe_cli "
                 "<fit|transform|evaluate|inspect|demo|serve-bench|trace> "
                 "[--flags]\n"
                 "(see the header comment of tools/safe_cli.cc)\n";
    return 1;
  }
  const std::string command = argv[1];
  bench::Flags flags(argc, argv);
  // --trace=<path> arms the recorder for any subcommand; EmitRunReport
  // (via --report handling) drains it. The `trace` subcommand arms
  // unconditionally and writes to --out instead.
  bench::ArmTraceFromFlags(flags);
  if (command == "fit") return RunFit(flags);
  if (command == "transform") return RunTransform(flags);
  if (command == "evaluate") return RunEvaluate(flags);
  if (command == "inspect") return RunInspect(flags);
  if (command == "demo") return RunDemo(flags);
  if (command == "serve-bench") return RunServeBench(flags);
  if (command == "trace") return RunTrace(flags);
  return Fail("unknown command '" + command + "'");
}

}  // namespace
}  // namespace cli
}  // namespace safe

int main(int argc, char** argv) { return safe::cli::Main(argc, argv); }
