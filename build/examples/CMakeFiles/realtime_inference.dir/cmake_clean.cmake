file(REMOVE_RECURSE
  "CMakeFiles/realtime_inference.dir/realtime_inference.cpp.o"
  "CMakeFiles/realtime_inference.dir/realtime_inference.cpp.o.d"
  "realtime_inference"
  "realtime_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
