# Empty compiler generated dependencies file for realtime_inference.
# This may be replaced when dependencies are built.
