file(REMOVE_RECURSE
  "CMakeFiles/safe_core.dir/combination.cc.o"
  "CMakeFiles/safe_core.dir/combination.cc.o.d"
  "CMakeFiles/safe_core.dir/engine.cc.o"
  "CMakeFiles/safe_core.dir/engine.cc.o.d"
  "CMakeFiles/safe_core.dir/feature_plan.cc.o"
  "CMakeFiles/safe_core.dir/feature_plan.cc.o.d"
  "CMakeFiles/safe_core.dir/operators.cc.o"
  "CMakeFiles/safe_core.dir/operators.cc.o.d"
  "CMakeFiles/safe_core.dir/selection.cc.o"
  "CMakeFiles/safe_core.dir/selection.cc.o.d"
  "libsafe_core.a"
  "libsafe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
