
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/combination.cc" "src/core/CMakeFiles/safe_core.dir/combination.cc.o" "gcc" "src/core/CMakeFiles/safe_core.dir/combination.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/safe_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/safe_core.dir/engine.cc.o.d"
  "/root/repo/src/core/feature_plan.cc" "src/core/CMakeFiles/safe_core.dir/feature_plan.cc.o" "gcc" "src/core/CMakeFiles/safe_core.dir/feature_plan.cc.o.d"
  "/root/repo/src/core/operators.cc" "src/core/CMakeFiles/safe_core.dir/operators.cc.o" "gcc" "src/core/CMakeFiles/safe_core.dir/operators.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/core/CMakeFiles/safe_core.dir/selection.cc.o" "gcc" "src/core/CMakeFiles/safe_core.dir/selection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/safe_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/safe_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/safe_gbdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
