# Empty dependencies file for safe_core.
# This may be replaced when dependencies are built.
