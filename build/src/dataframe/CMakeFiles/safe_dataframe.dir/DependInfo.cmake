
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataframe/binning.cc" "src/dataframe/CMakeFiles/safe_dataframe.dir/binning.cc.o" "gcc" "src/dataframe/CMakeFiles/safe_dataframe.dir/binning.cc.o.d"
  "/root/repo/src/dataframe/column.cc" "src/dataframe/CMakeFiles/safe_dataframe.dir/column.cc.o" "gcc" "src/dataframe/CMakeFiles/safe_dataframe.dir/column.cc.o.d"
  "/root/repo/src/dataframe/cross_validation.cc" "src/dataframe/CMakeFiles/safe_dataframe.dir/cross_validation.cc.o" "gcc" "src/dataframe/CMakeFiles/safe_dataframe.dir/cross_validation.cc.o.d"
  "/root/repo/src/dataframe/csv.cc" "src/dataframe/CMakeFiles/safe_dataframe.dir/csv.cc.o" "gcc" "src/dataframe/CMakeFiles/safe_dataframe.dir/csv.cc.o.d"
  "/root/repo/src/dataframe/dataframe.cc" "src/dataframe/CMakeFiles/safe_dataframe.dir/dataframe.cc.o" "gcc" "src/dataframe/CMakeFiles/safe_dataframe.dir/dataframe.cc.o.d"
  "/root/repo/src/dataframe/split.cc" "src/dataframe/CMakeFiles/safe_dataframe.dir/split.cc.o" "gcc" "src/dataframe/CMakeFiles/safe_dataframe.dir/split.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
