file(REMOVE_RECURSE
  "CMakeFiles/safe_dataframe.dir/binning.cc.o"
  "CMakeFiles/safe_dataframe.dir/binning.cc.o.d"
  "CMakeFiles/safe_dataframe.dir/column.cc.o"
  "CMakeFiles/safe_dataframe.dir/column.cc.o.d"
  "CMakeFiles/safe_dataframe.dir/cross_validation.cc.o"
  "CMakeFiles/safe_dataframe.dir/cross_validation.cc.o.d"
  "CMakeFiles/safe_dataframe.dir/csv.cc.o"
  "CMakeFiles/safe_dataframe.dir/csv.cc.o.d"
  "CMakeFiles/safe_dataframe.dir/dataframe.cc.o"
  "CMakeFiles/safe_dataframe.dir/dataframe.cc.o.d"
  "CMakeFiles/safe_dataframe.dir/split.cc.o"
  "CMakeFiles/safe_dataframe.dir/split.cc.o.d"
  "libsafe_dataframe.a"
  "libsafe_dataframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_dataframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
