file(REMOVE_RECURSE
  "libsafe_dataframe.a"
)
