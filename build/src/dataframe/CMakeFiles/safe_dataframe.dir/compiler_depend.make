# Empty compiler generated dependencies file for safe_dataframe.
# This may be replaced when dependencies are built.
