
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/auc.cc" "src/stats/CMakeFiles/safe_stats.dir/auc.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/auc.cc.o.d"
  "/root/repo/src/stats/chimerge.cc" "src/stats/CMakeFiles/safe_stats.dir/chimerge.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/chimerge.cc.o.d"
  "/root/repo/src/stats/correlation.cc" "src/stats/CMakeFiles/safe_stats.dir/correlation.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/correlation.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/safe_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/divergence.cc" "src/stats/CMakeFiles/safe_stats.dir/divergence.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/divergence.cc.o.d"
  "/root/repo/src/stats/entropy.cc" "src/stats/CMakeFiles/safe_stats.dir/entropy.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/entropy.cc.o.d"
  "/root/repo/src/stats/iv.cc" "src/stats/CMakeFiles/safe_stats.dir/iv.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/iv.cc.o.d"
  "/root/repo/src/stats/metrics.cc" "src/stats/CMakeFiles/safe_stats.dir/metrics.cc.o" "gcc" "src/stats/CMakeFiles/safe_stats.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/safe_dataframe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
