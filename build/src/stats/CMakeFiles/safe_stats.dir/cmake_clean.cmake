file(REMOVE_RECURSE
  "CMakeFiles/safe_stats.dir/auc.cc.o"
  "CMakeFiles/safe_stats.dir/auc.cc.o.d"
  "CMakeFiles/safe_stats.dir/chimerge.cc.o"
  "CMakeFiles/safe_stats.dir/chimerge.cc.o.d"
  "CMakeFiles/safe_stats.dir/correlation.cc.o"
  "CMakeFiles/safe_stats.dir/correlation.cc.o.d"
  "CMakeFiles/safe_stats.dir/descriptive.cc.o"
  "CMakeFiles/safe_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/safe_stats.dir/divergence.cc.o"
  "CMakeFiles/safe_stats.dir/divergence.cc.o.d"
  "CMakeFiles/safe_stats.dir/entropy.cc.o"
  "CMakeFiles/safe_stats.dir/entropy.cc.o.d"
  "CMakeFiles/safe_stats.dir/iv.cc.o"
  "CMakeFiles/safe_stats.dir/iv.cc.o.d"
  "CMakeFiles/safe_stats.dir/metrics.cc.o"
  "CMakeFiles/safe_stats.dir/metrics.cc.o.d"
  "libsafe_stats.a"
  "libsafe_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
