# Empty dependencies file for safe_stats.
# This may be replaced when dependencies are built.
