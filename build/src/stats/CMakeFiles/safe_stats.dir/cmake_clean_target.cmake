file(REMOVE_RECURSE
  "libsafe_stats.a"
)
