file(REMOVE_RECURSE
  "libsafe_gbdt.a"
)
