
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gbdt/booster.cc" "src/gbdt/CMakeFiles/safe_gbdt.dir/booster.cc.o" "gcc" "src/gbdt/CMakeFiles/safe_gbdt.dir/booster.cc.o.d"
  "/root/repo/src/gbdt/exact_trainer.cc" "src/gbdt/CMakeFiles/safe_gbdt.dir/exact_trainer.cc.o" "gcc" "src/gbdt/CMakeFiles/safe_gbdt.dir/exact_trainer.cc.o.d"
  "/root/repo/src/gbdt/loss.cc" "src/gbdt/CMakeFiles/safe_gbdt.dir/loss.cc.o" "gcc" "src/gbdt/CMakeFiles/safe_gbdt.dir/loss.cc.o.d"
  "/root/repo/src/gbdt/quantizer.cc" "src/gbdt/CMakeFiles/safe_gbdt.dir/quantizer.cc.o" "gcc" "src/gbdt/CMakeFiles/safe_gbdt.dir/quantizer.cc.o.d"
  "/root/repo/src/gbdt/trainer.cc" "src/gbdt/CMakeFiles/safe_gbdt.dir/trainer.cc.o" "gcc" "src/gbdt/CMakeFiles/safe_gbdt.dir/trainer.cc.o.d"
  "/root/repo/src/gbdt/tree.cc" "src/gbdt/CMakeFiles/safe_gbdt.dir/tree.cc.o" "gcc" "src/gbdt/CMakeFiles/safe_gbdt.dir/tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/safe_dataframe.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
