# Empty compiler generated dependencies file for safe_gbdt.
# This may be replaced when dependencies are built.
