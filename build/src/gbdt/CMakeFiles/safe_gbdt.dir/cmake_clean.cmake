file(REMOVE_RECURSE
  "CMakeFiles/safe_gbdt.dir/booster.cc.o"
  "CMakeFiles/safe_gbdt.dir/booster.cc.o.d"
  "CMakeFiles/safe_gbdt.dir/exact_trainer.cc.o"
  "CMakeFiles/safe_gbdt.dir/exact_trainer.cc.o.d"
  "CMakeFiles/safe_gbdt.dir/loss.cc.o"
  "CMakeFiles/safe_gbdt.dir/loss.cc.o.d"
  "CMakeFiles/safe_gbdt.dir/quantizer.cc.o"
  "CMakeFiles/safe_gbdt.dir/quantizer.cc.o.d"
  "CMakeFiles/safe_gbdt.dir/trainer.cc.o"
  "CMakeFiles/safe_gbdt.dir/trainer.cc.o.d"
  "CMakeFiles/safe_gbdt.dir/tree.cc.o"
  "CMakeFiles/safe_gbdt.dir/tree.cc.o.d"
  "libsafe_gbdt.a"
  "libsafe_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
