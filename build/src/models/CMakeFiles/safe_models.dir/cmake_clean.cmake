file(REMOVE_RECURSE
  "CMakeFiles/safe_models.dir/cart.cc.o"
  "CMakeFiles/safe_models.dir/cart.cc.o.d"
  "CMakeFiles/safe_models.dir/dense.cc.o"
  "CMakeFiles/safe_models.dir/dense.cc.o.d"
  "CMakeFiles/safe_models.dir/factory.cc.o"
  "CMakeFiles/safe_models.dir/factory.cc.o.d"
  "CMakeFiles/safe_models.dir/knn.cc.o"
  "CMakeFiles/safe_models.dir/knn.cc.o.d"
  "CMakeFiles/safe_models.dir/linear.cc.o"
  "CMakeFiles/safe_models.dir/linear.cc.o.d"
  "CMakeFiles/safe_models.dir/mlp.cc.o"
  "CMakeFiles/safe_models.dir/mlp.cc.o.d"
  "CMakeFiles/safe_models.dir/tree_models.cc.o"
  "CMakeFiles/safe_models.dir/tree_models.cc.o.d"
  "CMakeFiles/safe_models.dir/xgb.cc.o"
  "CMakeFiles/safe_models.dir/xgb.cc.o.d"
  "libsafe_models.a"
  "libsafe_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
