file(REMOVE_RECURSE
  "libsafe_models.a"
)
