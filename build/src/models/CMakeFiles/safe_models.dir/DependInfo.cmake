
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/cart.cc" "src/models/CMakeFiles/safe_models.dir/cart.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/cart.cc.o.d"
  "/root/repo/src/models/dense.cc" "src/models/CMakeFiles/safe_models.dir/dense.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/dense.cc.o.d"
  "/root/repo/src/models/factory.cc" "src/models/CMakeFiles/safe_models.dir/factory.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/factory.cc.o.d"
  "/root/repo/src/models/knn.cc" "src/models/CMakeFiles/safe_models.dir/knn.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/knn.cc.o.d"
  "/root/repo/src/models/linear.cc" "src/models/CMakeFiles/safe_models.dir/linear.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/linear.cc.o.d"
  "/root/repo/src/models/mlp.cc" "src/models/CMakeFiles/safe_models.dir/mlp.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/mlp.cc.o.d"
  "/root/repo/src/models/tree_models.cc" "src/models/CMakeFiles/safe_models.dir/tree_models.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/tree_models.cc.o.d"
  "/root/repo/src/models/xgb.cc" "src/models/CMakeFiles/safe_models.dir/xgb.cc.o" "gcc" "src/models/CMakeFiles/safe_models.dir/xgb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/safe_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/safe_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/safe_gbdt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
