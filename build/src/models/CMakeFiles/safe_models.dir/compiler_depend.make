# Empty compiler generated dependencies file for safe_models.
# This may be replaced when dependencies are built.
