file(REMOVE_RECURSE
  "CMakeFiles/safe_data.dir/benchmark_suite.cc.o"
  "CMakeFiles/safe_data.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/safe_data.dir/business.cc.o"
  "CMakeFiles/safe_data.dir/business.cc.o.d"
  "CMakeFiles/safe_data.dir/synthetic.cc.o"
  "CMakeFiles/safe_data.dir/synthetic.cc.o.d"
  "libsafe_data.a"
  "libsafe_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
