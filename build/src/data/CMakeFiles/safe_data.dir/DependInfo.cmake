
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/benchmark_suite.cc" "src/data/CMakeFiles/safe_data.dir/benchmark_suite.cc.o" "gcc" "src/data/CMakeFiles/safe_data.dir/benchmark_suite.cc.o.d"
  "/root/repo/src/data/business.cc" "src/data/CMakeFiles/safe_data.dir/business.cc.o" "gcc" "src/data/CMakeFiles/safe_data.dir/business.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/safe_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/safe_data.dir/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/safe_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/safe_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
