# Empty compiler generated dependencies file for safe_data.
# This may be replaced when dependencies are built.
