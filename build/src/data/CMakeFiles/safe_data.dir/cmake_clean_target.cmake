file(REMOVE_RECURSE
  "libsafe_data.a"
)
