# Empty compiler generated dependencies file for safe_common.
# This may be replaced when dependencies are built.
