file(REMOVE_RECURSE
  "libsafe_common.a"
)
