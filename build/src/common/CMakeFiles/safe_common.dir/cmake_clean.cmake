file(REMOVE_RECURSE
  "CMakeFiles/safe_common.dir/linalg.cc.o"
  "CMakeFiles/safe_common.dir/linalg.cc.o.d"
  "CMakeFiles/safe_common.dir/logging.cc.o"
  "CMakeFiles/safe_common.dir/logging.cc.o.d"
  "CMakeFiles/safe_common.dir/random.cc.o"
  "CMakeFiles/safe_common.dir/random.cc.o.d"
  "CMakeFiles/safe_common.dir/status.cc.o"
  "CMakeFiles/safe_common.dir/status.cc.o.d"
  "CMakeFiles/safe_common.dir/string_util.cc.o"
  "CMakeFiles/safe_common.dir/string_util.cc.o.d"
  "CMakeFiles/safe_common.dir/thread_pool.cc.o"
  "CMakeFiles/safe_common.dir/thread_pool.cc.o.d"
  "libsafe_common.a"
  "libsafe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
