# Empty compiler generated dependencies file for safe_baselines.
# This may be replaced when dependencies are built.
