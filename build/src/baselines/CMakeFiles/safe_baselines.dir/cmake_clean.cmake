file(REMOVE_RECURSE
  "CMakeFiles/safe_baselines.dir/autolearn.cc.o"
  "CMakeFiles/safe_baselines.dir/autolearn.cc.o.d"
  "CMakeFiles/safe_baselines.dir/fctree.cc.o"
  "CMakeFiles/safe_baselines.dir/fctree.cc.o.d"
  "CMakeFiles/safe_baselines.dir/feature_engineer.cc.o"
  "CMakeFiles/safe_baselines.dir/feature_engineer.cc.o.d"
  "CMakeFiles/safe_baselines.dir/tfc.cc.o"
  "CMakeFiles/safe_baselines.dir/tfc.cc.o.d"
  "libsafe_baselines.a"
  "libsafe_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
