file(REMOVE_RECURSE
  "libsafe_baselines.a"
)
