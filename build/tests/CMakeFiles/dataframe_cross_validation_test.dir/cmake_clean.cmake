file(REMOVE_RECURSE
  "CMakeFiles/dataframe_cross_validation_test.dir/dataframe_cross_validation_test.cc.o"
  "CMakeFiles/dataframe_cross_validation_test.dir/dataframe_cross_validation_test.cc.o.d"
  "dataframe_cross_validation_test"
  "dataframe_cross_validation_test.pdb"
  "dataframe_cross_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
