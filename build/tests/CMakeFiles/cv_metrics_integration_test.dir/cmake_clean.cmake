file(REMOVE_RECURSE
  "CMakeFiles/cv_metrics_integration_test.dir/cv_metrics_integration_test.cc.o"
  "CMakeFiles/cv_metrics_integration_test.dir/cv_metrics_integration_test.cc.o.d"
  "cv_metrics_integration_test"
  "cv_metrics_integration_test.pdb"
  "cv_metrics_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cv_metrics_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
