file(REMOVE_RECURSE
  "CMakeFiles/core_combination_test.dir/core_combination_test.cc.o"
  "CMakeFiles/core_combination_test.dir/core_combination_test.cc.o.d"
  "core_combination_test"
  "core_combination_test.pdb"
  "core_combination_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_combination_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
