# Empty compiler generated dependencies file for core_combination_test.
# This may be replaced when dependencies are built.
