file(REMOVE_RECURSE
  "CMakeFiles/dataframe_kmeans_binning_test.dir/dataframe_kmeans_binning_test.cc.o"
  "CMakeFiles/dataframe_kmeans_binning_test.dir/dataframe_kmeans_binning_test.cc.o.d"
  "dataframe_kmeans_binning_test"
  "dataframe_kmeans_binning_test.pdb"
  "dataframe_kmeans_binning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_kmeans_binning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
