file(REMOVE_RECURSE
  "CMakeFiles/stats_entropy_test.dir/stats_entropy_test.cc.o"
  "CMakeFiles/stats_entropy_test.dir/stats_entropy_test.cc.o.d"
  "stats_entropy_test"
  "stats_entropy_test.pdb"
  "stats_entropy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_entropy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
