file(REMOVE_RECURSE
  "CMakeFiles/dataframe_split_test.dir/dataframe_split_test.cc.o"
  "CMakeFiles/dataframe_split_test.dir/dataframe_split_test.cc.o.d"
  "dataframe_split_test"
  "dataframe_split_test.pdb"
  "dataframe_split_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
