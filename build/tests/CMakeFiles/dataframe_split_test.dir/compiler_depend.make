# Empty compiler generated dependencies file for dataframe_split_test.
# This may be replaced when dependencies are built.
