file(REMOVE_RECURSE
  "CMakeFiles/dataframe_csv_test.dir/dataframe_csv_test.cc.o"
  "CMakeFiles/dataframe_csv_test.dir/dataframe_csv_test.cc.o.d"
  "dataframe_csv_test"
  "dataframe_csv_test.pdb"
  "dataframe_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
