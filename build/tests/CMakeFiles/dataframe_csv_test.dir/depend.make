# Empty dependencies file for dataframe_csv_test.
# This may be replaced when dependencies are built.
