
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_random_test.cc" "tests/CMakeFiles/common_random_test.dir/common_random_test.cc.o" "gcc" "tests/CMakeFiles/common_random_test.dir/common_random_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/safe_models.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/safe_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/safe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gbdt/CMakeFiles/safe_gbdt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/safe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/safe_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/dataframe/CMakeFiles/safe_dataframe.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/safe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
