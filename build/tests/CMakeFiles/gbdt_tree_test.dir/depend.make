# Empty dependencies file for gbdt_tree_test.
# This may be replaced when dependencies are built.
