file(REMOVE_RECURSE
  "CMakeFiles/gbdt_tree_test.dir/gbdt_tree_test.cc.o"
  "CMakeFiles/gbdt_tree_test.dir/gbdt_tree_test.cc.o.d"
  "gbdt_tree_test"
  "gbdt_tree_test.pdb"
  "gbdt_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
