# Empty compiler generated dependencies file for serialization_robustness_test.
# This may be replaced when dependencies are built.
