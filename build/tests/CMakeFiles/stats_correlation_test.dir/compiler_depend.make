# Empty compiler generated dependencies file for stats_correlation_test.
# This may be replaced when dependencies are built.
