file(REMOVE_RECURSE
  "CMakeFiles/models_cart_test.dir/models_cart_test.cc.o"
  "CMakeFiles/models_cart_test.dir/models_cart_test.cc.o.d"
  "models_cart_test"
  "models_cart_test.pdb"
  "models_cart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_cart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
