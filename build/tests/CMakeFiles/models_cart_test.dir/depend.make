# Empty dependencies file for models_cart_test.
# This may be replaced when dependencies are built.
