file(REMOVE_RECURSE
  "CMakeFiles/gbdt_exact_trainer_test.dir/gbdt_exact_trainer_test.cc.o"
  "CMakeFiles/gbdt_exact_trainer_test.dir/gbdt_exact_trainer_test.cc.o.d"
  "gbdt_exact_trainer_test"
  "gbdt_exact_trainer_test.pdb"
  "gbdt_exact_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_exact_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
