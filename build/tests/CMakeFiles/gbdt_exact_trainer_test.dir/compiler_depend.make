# Empty compiler generated dependencies file for gbdt_exact_trainer_test.
# This may be replaced when dependencies are built.
