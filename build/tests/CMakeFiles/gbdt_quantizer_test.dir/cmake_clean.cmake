file(REMOVE_RECURSE
  "CMakeFiles/gbdt_quantizer_test.dir/gbdt_quantizer_test.cc.o"
  "CMakeFiles/gbdt_quantizer_test.dir/gbdt_quantizer_test.cc.o.d"
  "gbdt_quantizer_test"
  "gbdt_quantizer_test.pdb"
  "gbdt_quantizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_quantizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
