# Empty compiler generated dependencies file for dataframe_binning_test.
# This may be replaced when dependencies are built.
