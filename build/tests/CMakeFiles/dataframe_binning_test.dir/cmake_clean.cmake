file(REMOVE_RECURSE
  "CMakeFiles/dataframe_binning_test.dir/dataframe_binning_test.cc.o"
  "CMakeFiles/dataframe_binning_test.dir/dataframe_binning_test.cc.o.d"
  "dataframe_binning_test"
  "dataframe_binning_test.pdb"
  "dataframe_binning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataframe_binning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
