file(REMOVE_RECURSE
  "CMakeFiles/stats_chimerge_test.dir/stats_chimerge_test.cc.o"
  "CMakeFiles/stats_chimerge_test.dir/stats_chimerge_test.cc.o.d"
  "stats_chimerge_test"
  "stats_chimerge_test.pdb"
  "stats_chimerge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_chimerge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
