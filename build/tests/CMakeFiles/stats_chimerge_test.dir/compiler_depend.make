# Empty compiler generated dependencies file for stats_chimerge_test.
# This may be replaced when dependencies are built.
