file(REMOVE_RECURSE
  "CMakeFiles/baselines_autolearn_test.dir/baselines_autolearn_test.cc.o"
  "CMakeFiles/baselines_autolearn_test.dir/baselines_autolearn_test.cc.o.d"
  "baselines_autolearn_test"
  "baselines_autolearn_test.pdb"
  "baselines_autolearn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_autolearn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
