# Empty dependencies file for baselines_autolearn_test.
# This may be replaced when dependencies are built.
