file(REMOVE_RECURSE
  "CMakeFiles/stats_divergence_test.dir/stats_divergence_test.cc.o"
  "CMakeFiles/stats_divergence_test.dir/stats_divergence_test.cc.o.d"
  "stats_divergence_test"
  "stats_divergence_test.pdb"
  "stats_divergence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_divergence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
