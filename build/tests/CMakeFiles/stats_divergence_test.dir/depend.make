# Empty dependencies file for stats_divergence_test.
# This may be replaced when dependencies are built.
