# Empty dependencies file for stats_auc_test.
# This may be replaced when dependencies are built.
