file(REMOVE_RECURSE
  "CMakeFiles/stats_auc_test.dir/stats_auc_test.cc.o"
  "CMakeFiles/stats_auc_test.dir/stats_auc_test.cc.o.d"
  "stats_auc_test"
  "stats_auc_test.pdb"
  "stats_auc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_auc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
