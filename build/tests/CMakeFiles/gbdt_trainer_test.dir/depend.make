# Empty dependencies file for gbdt_trainer_test.
# This may be replaced when dependencies are built.
