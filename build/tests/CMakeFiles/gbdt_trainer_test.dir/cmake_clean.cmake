file(REMOVE_RECURSE
  "CMakeFiles/gbdt_trainer_test.dir/gbdt_trainer_test.cc.o"
  "CMakeFiles/gbdt_trainer_test.dir/gbdt_trainer_test.cc.o.d"
  "gbdt_trainer_test"
  "gbdt_trainer_test.pdb"
  "gbdt_trainer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_trainer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
