file(REMOVE_RECURSE
  "CMakeFiles/gbdt_booster_test.dir/gbdt_booster_test.cc.o"
  "CMakeFiles/gbdt_booster_test.dir/gbdt_booster_test.cc.o.d"
  "gbdt_booster_test"
  "gbdt_booster_test.pdb"
  "gbdt_booster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_booster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
