# Empty dependencies file for gbdt_booster_test.
# This may be replaced when dependencies are built.
