file(REMOVE_RECURSE
  "CMakeFiles/stats_metrics_test.dir/stats_metrics_test.cc.o"
  "CMakeFiles/stats_metrics_test.dir/stats_metrics_test.cc.o.d"
  "stats_metrics_test"
  "stats_metrics_test.pdb"
  "stats_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
