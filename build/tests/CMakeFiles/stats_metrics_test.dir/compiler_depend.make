# Empty compiler generated dependencies file for stats_metrics_test.
# This may be replaced when dependencies are built.
