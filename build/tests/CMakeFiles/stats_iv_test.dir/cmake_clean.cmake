file(REMOVE_RECURSE
  "CMakeFiles/stats_iv_test.dir/stats_iv_test.cc.o"
  "CMakeFiles/stats_iv_test.dir/stats_iv_test.cc.o.d"
  "stats_iv_test"
  "stats_iv_test.pdb"
  "stats_iv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_iv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
