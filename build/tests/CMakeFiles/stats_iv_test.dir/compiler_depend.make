# Empty compiler generated dependencies file for stats_iv_test.
# This may be replaced when dependencies are built.
