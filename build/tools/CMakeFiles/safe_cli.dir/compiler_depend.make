# Empty compiler generated dependencies file for safe_cli.
# This may be replaced when dependencies are built.
