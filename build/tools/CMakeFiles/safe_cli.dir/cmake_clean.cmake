file(REMOVE_RECURSE
  "CMakeFiles/safe_cli.dir/safe_cli.cc.o"
  "CMakeFiles/safe_cli.dir/safe_cli.cc.o.d"
  "safe_cli"
  "safe_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
