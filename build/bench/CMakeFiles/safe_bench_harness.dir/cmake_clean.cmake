file(REMOVE_RECURSE
  "CMakeFiles/safe_bench_harness.dir/harness.cc.o"
  "CMakeFiles/safe_bench_harness.dir/harness.cc.o.d"
  "libsafe_bench_harness.a"
  "libsafe_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safe_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
