file(REMOVE_RECURSE
  "libsafe_bench_harness.a"
)
