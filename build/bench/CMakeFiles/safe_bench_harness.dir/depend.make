# Empty dependencies file for safe_bench_harness.
# This may be replaced when dependencies are built.
