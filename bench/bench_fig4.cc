// Reproduces paper Fig. 4: test AUC as SAFE's outer iteration count
// grows (rounds 1..5) on the valley / banknote / gina analogues. The
// paper's shape: AUC improves over the first rounds, then plateaus.
//
// Flags: --datasets, --row_scale, --max_iters=5, --quick

#include <iostream>

#include "bench/harness.h"
#include "src/common/string_util.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double row_scale = flags.GetDouble("row_scale", quick ? 0.1 : 0.25);
  const size_t max_iters =
      static_cast<size_t>(flags.GetInt("max_iters", 5));
  auto dataset_names =
      flags.GetList("datasets", quick ? "banknote" : "valley,banknote,gina");

  std::cout << "=== Fig. 4: AUC vs SAFE iteration count ===\n";
  std::cout << "Classifier: XGB (quick profile); row_scale=" << row_scale
            << "\n\n";

  for (const auto& dataset_name : dataset_names) {
    auto info = data::FindBenchmarkDataset(dataset_name);
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }
    auto split = data::MakeBenchmarkSplit(*info, row_scale);
    if (!split.ok()) {
      std::cerr << split.status().ToString() << "\n";
      return 1;
    }
    std::cout << "--- " << dataset_name << " ---\n";
    std::cout << "  iter 0 (ORIG): ";
    {
      auto orig = MakeMethod("ORIG", info->num_features, 1);
      auto plan = (*orig)->FitPlan(split->train, nullptr);
      auto clf = MakeEvalClassifier(models::ClassifierKind::kXgboost, 7,
                                    /*quick=*/true);
      auto auc = EvaluatePlan(*plan, *split, clf.get());
      std::cout << (auc.ok() ? FormatAuc(*auc) : "fail") << "\n";
    }
    for (size_t iters = 1; iters <= max_iters; ++iters) {
      SafeParams params;
      params.seed = 43;
      params.num_iterations = iters;
      params.max_output_features = 2 * info->num_features;
      auto engineer = baselines::MakeSafe(params);
      auto plan = engineer->FitPlan(
          split->train, info->n_valid > 0 ? &split->valid : nullptr);
      if (!plan.ok()) {
        std::cerr << plan.status().ToString() << "\n";
        break;
      }
      auto clf = MakeEvalClassifier(models::ClassifierKind::kXgboost, 7,
                                    /*quick=*/true);
      auto auc = EvaluatePlan(*plan, *split, clf.get());
      std::cout << "  iter " << iters << " (SAFE): "
                << (auc.ok() ? FormatAuc(*auc) : "fail") << "\n";
    }
    std::cout << "\n";
  }
  std::cout << "Paper's shape: performance improves for the first rounds, "
               "then stabilizes once no new useful combinations remain.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
