// Component micro-benchmarks (google-benchmark): the inner loops whose
// costs the paper's Section IV-D complexity analysis is built from.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/core/combination.h"
#include "src/core/engine.h"
#include "src/core/operators.h"
#include "src/core/selection.h"
#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"
#include "src/stats/auc.h"
#include "src/stats/correlation.h"
#include "src/stats/entropy.h"
#include "src/stats/iv.h"

namespace safe {
namespace {

std::vector<double> RandomColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.NextGaussian();
  return out;
}

std::vector<double> RandomLabels(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  return out;
}

void BM_InformationValue(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto feature = RandomColumn(n, 1);
  auto labels = RandomLabels(n, 2);
  for (auto _ : state) {
    auto iv = InformationValue(feature, labels, 10);
    benchmark::DoNotOptimize(iv);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_InformationValue)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PearsonCorrelation(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomColumn(n, 3);
  auto b = RandomColumn(n, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PearsonCorrelation(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_PearsonCorrelation)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Auc(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto scores = RandomColumn(n, 5);
  auto labels = RandomLabels(n, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Auc(scores, labels));
  }
}
BENCHMARK(BM_Auc)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_BinnedInformationGain(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto feature = RandomColumn(n, 7);
  auto labels = RandomLabels(n, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BinnedInformationGain(feature, labels, 10));
  }
}
BENCHMARK(BM_BinnedInformationGain)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_OperatorApply(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto a = RandomColumn(n, 9);
  auto b = RandomColumn(n, 10);
  OperatorRegistry registry = OperatorRegistry::Arithmetic();
  auto op = registry.Find("div");
  for (auto _ : state) {
    auto out = ApplyOperator(**op, {}, {&a, &b});
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_OperatorApply)->Arg(1000)->Arg(100000);

Dataset MicroDataset(size_t rows, size_t features) {
  data::SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = features / 2;
  spec.num_interactions = 3;
  spec.seed = 11;
  auto data = data::MakeSyntheticDataset(spec);
  SAFE_CHECK(data.ok());
  return *data;
}

void BM_GbdtFit(benchmark::State& state) {
  Dataset data = MicroDataset(static_cast<size_t>(state.range(0)), 10);
  gbdt::GbdtParams params;
  params.num_trees = 20;
  params.max_depth = 4;
  for (auto _ : state) {
    auto model = gbdt::Booster::Fit(data, nullptr, params);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_GbdtFit)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_GbdtPredict(benchmark::State& state) {
  Dataset data = MicroDataset(5000, 10);
  gbdt::GbdtParams params;
  params.num_trees = 20;
  auto model = gbdt::Booster::Fit(data, nullptr, params);
  SAFE_CHECK(model.ok());
  for (auto _ : state) {
    auto proba = model->PredictProba(data.x);
    benchmark::DoNotOptimize(proba);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 5000);
}
BENCHMARK(BM_GbdtPredict);

void BM_MineAndRankCombinations(benchmark::State& state) {
  Dataset data = MicroDataset(4000, 12);
  gbdt::GbdtParams params;
  params.num_trees = 20;
  params.max_depth = 4;
  auto model = gbdt::Booster::Fit(data, nullptr, params);
  SAFE_CHECK(model.ok());
  const auto paths = model->ExtractAllPaths();
  for (auto _ : state) {
    CombinationMinerOptions options;
    auto combos = MineCombinations(paths, options);
    auto ranked = RankCombinations(std::move(combos), data.x,
                                   data.labels(), 48);
    benchmark::DoNotOptimize(ranked);
  }
  state.SetLabel(std::to_string(paths.size()) + " paths");
}
BENCHMARK(BM_MineAndRankCombinations)->Unit(benchmark::kMillisecond);

void BM_SelectionPipeline(benchmark::State& state) {
  Dataset data = MicroDataset(4000, static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto ivs = ComputeIvs(data.x, data.labels(), 10);
    auto after_iv = IvFilterIndices(ivs, 0.1);
    if (after_iv.empty()) {
      after_iv.resize(data.x.num_columns());
      for (size_t c = 0; c < after_iv.size(); ++c) after_iv[c] = c;
    }
    auto kept = RedundancyFilterIndices(data.x, ivs, after_iv, 0.8);
    benchmark::DoNotOptimize(kept);
  }
}
BENCHMARK(BM_SelectionPipeline)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_SingleRowTransform(benchmark::State& state) {
  // Real-time inference path: Ψ applied to one event.
  Dataset data = MicroDataset(2000, 10);
  SafeParams params;
  params.seed = 3;
  SafeEngine engine(params);
  auto result = engine.Fit(data);
  SAFE_CHECK(result.ok());
  const auto row = data.x.Row(0);
  for (auto _ : state) {
    auto z = result->plan.TransformRow(row);
    benchmark::DoNotOptimize(z);
  }
  state.SetLabel(std::to_string(result->plan.selected().size()) +
                 " output features");
}
BENCHMARK(BM_SingleRowTransform);

}  // namespace
}  // namespace safe

BENCHMARK_MAIN();
