// Reproduces paper Table VI: feature stability. Each method runs T times,
// each time on a fresh 80% bootstrap-style subsample of the same training
// data (and a fresh method seed); the distribution of generated-feature
// occurrences is compared against the ideal "same 2M features every run"
// distribution with Jensen-Shannon divergence (Eqs. 14-15). Lower is more
// stable. TFC is excluded, as in the paper ("execution time is too long").
//
// Flags: --datasets, --methods, --row_scale, --repeats (paper: 100), --quick

#include <iostream>
#include <map>

#include "bench/harness.h"
#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/dataframe/split.h"
#include "src/stats/divergence.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double row_scale = flags.GetDouble("row_scale", quick ? 0.05 : 0.10);
  const size_t repeats =
      static_cast<size_t>(flags.GetInt("repeats", quick ? 5 : 12));
  auto dataset_names = flags.GetList(
      "datasets",
      quick ? "banknote,phoneme"
            : "valley,banknote,gina,spambase,phoneme,wind,ailerons,eeg-eye,"
              "magic,nomao,bank");
  auto method_names = flags.GetList("methods", "FCT,RAND,IMP,SAFE");

  std::cout << "=== Table VI: feature stability (JSD vs ideal; lower = "
               "more stable) ===\n";
  std::cout << "repeats=" << repeats << " (paper uses T=100)\n\n";

  std::vector<std::string> headers{"Dataset"};
  for (const auto& method : method_names) headers.push_back(method);
  std::vector<int> widths(headers.size(), 8);
  widths[0] = 10;
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const auto& dataset_name : dataset_names) {
    auto info = data::FindBenchmarkDataset(dataset_name);
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }
    auto base_split = data::MakeBenchmarkSplit(*info, row_scale);
    if (!base_split.ok()) {
      std::cerr << base_split.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{dataset_name};
    for (const auto& method_name : method_names) {
      std::map<std::string, size_t> occurrences;
      size_t features_per_run = 2 * info->num_features;
      bool failed = false;
      for (size_t t = 0; t < repeats && !failed; ++t) {
        // Fresh 80% subsample of the same training data per run:
        // stability against sampling noise, the regime the paper's
        // repeated-procedure protocol probes.
        Rng rng(1000 + t * 13);
        const size_t n = base_split->train.num_rows();
        auto rows = rng.SampleWithoutReplacement(n, (n * 4) / 5);
        Dataset train_t = TakeDatasetRows(base_split->train, rows);
        auto method = MakeMethod(method_name, info->num_features, 100 + t);
        if (!method.ok()) {
          failed = true;
          break;
        }
        auto plan = (*method)->FitPlan(
            train_t, info->n_valid > 0 ? &base_split->valid : nullptr);
        if (!plan.ok()) {
          failed = true;
          break;
        }
        for (const auto& name : plan->selected()) {
          occurrences[name] += 1;
        }
        features_per_run = plan->selected().size();
      }
      if (failed || occurrences.empty()) {
        row.push_back("fail");
        continue;
      }
      std::vector<size_t> counts;
      counts.reserve(occurrences.size());
      for (const auto& [name, count] : occurrences) {
        counts.push_back(count);
      }
      auto jsd = FeatureStabilityJsd(counts, repeats, features_per_run);
      row.push_back(jsd.ok() ? FormatDouble(*jsd, 4) : "fail");
    }
    table.PrintRow(row);
  }
  table.PrintSeparator();
  std::cout << "\nPaper's shape: SAFE is the most stable method on nearly "
               "every dataset.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
