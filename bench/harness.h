#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/fctree.h"
#include "src/baselines/feature_engineer.h"
#include "src/baselines/tfc.h"
#include "src/common/result.h"
#include "src/data/benchmark_suite.h"
#include "src/models/classifier.h"
#include "src/obs/json.h"

namespace safe {
namespace bench {

/// \brief Minimal --key=value flag parser for the macro-benchmark
/// binaries (google-benchmark owns the micro ones).
class Flags {
 public:
  Flags(int argc, char** argv);

  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// Comma-separated list flag.
  std::vector<std::string> GetList(const std::string& key,
                                   const std::string& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// \brief Fixed-width text table matching the paper's layout.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths);
  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;
  void PrintSeparator() const;

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

/// Formats 100×AUC with two decimals, the paper's table convention.
std::string FormatAuc(double auc);

/// \brief Builds the feature-engineering method `name` (ORIG, FCT, TFC,
/// RAND, IMP, SAFE, NONSPLIT, AUTOLEARN) with the paper's experimental
/// settings:
/// one iteration, {+,−,×,÷}, output capped at 2·M.
Result<std::unique_ptr<baselines::FeatureEngineer>> MakeMethod(
    const std::string& name, size_t num_original_features, uint64_t seed);

/// The paper's method lineup for the benchmark tables.
std::vector<std::string> DefaultMethods();

/// \brief Builds evaluation classifiers. `quick` shrinks ensemble /
/// epoch counts so the full 12×6×9 sweep stays single-core feasible
/// (DESIGN.md Substitution 4); `!quick` uses the library defaults that
/// mirror scikit-learn's.
std::unique_ptr<models::Classifier> MakeEvalClassifier(
    models::ClassifierKind kind, uint64_t seed, bool quick);

/// \brief AUC of `clf` trained on plan-transformed train and scored on
/// plan-transformed test.
Result<double> EvaluatePlan(const FeaturePlan& plan,
                            const DatasetSplit& split,
                            models::Classifier* clf);

/// \brief Writes a telemetry RunReport (obs/report.h) to the path named
/// by the `--report=<path>` flag; a no-op when the flag is absent.
///
/// The report captures the global metrics registry and span timeline,
/// `wall_seconds`, and (when non-null) the SAFE per-iteration funnel
/// diagnostics under an "iterations" section. Additional caller-built
/// top-level sections (e.g. bench_scaling's "thread_sweep") ride along in
/// `sections`. With `print_table` the human-readable summary also goes to
/// stdout. Returns false only when the flag was set and the write failed
/// (already logged).
bool EmitRunReport(const Flags& flags, const std::string& tool,
                   double wall_seconds = 0.0,
                   const std::vector<IterationDiagnostics>* iterations =
                       nullptr,
                   bool print_table = false,
                   const std::vector<std::pair<std::string, obs::JsonValue>>*
                       sections = nullptr);

/// \brief Arms the global flight recorder when `--trace=<path>` is set,
/// labelling the calling thread "main". Call at the top of a bench main;
/// EmitRunReport later disarms and drains every thread's timeline to the
/// flagged path as Chrome trace-event JSON (chrome://tracing / Perfetto).
/// Returns true when the recorder was armed.
bool ArmTraceFromFlags(const Flags& flags);

}  // namespace bench
}  // namespace safe
