// Serving-path benchmark: compiled FeaturePlan executor + fused GBDT
// scorer (src/serve/) against the naive two-step path
// (FeaturePlan::TransformRow + Booster::PredictRowProba). Emits a
// machine-readable BENCH_serving.json with per-path p50/p99 latency and
// rows/s, and — when --gate points at a committed baseline file — exits
// non-zero if the fused/naive speedup falls below its "min_speedup".
// The run aborts outright if any scored row is not bit-identical across
// the two paths (the equivalence contract of DESIGN.md "Serving path").
//
// Flags: --quick --train_rows=N --features=M --rows=N --repeats=K
//        --batch=B --seed=S --out=BENCH_serving.json
//        --gate=bench/baselines/serving.json --report=path

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/serve/serve_bench.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);

  serve::ServeBenchOptions options;
  options.quick = flags.GetBool("quick", false);
  options.train_rows = static_cast<size_t>(
      flags.GetInt("train_rows", static_cast<int64_t>(options.train_rows)));
  options.features = static_cast<size_t>(
      flags.GetInt("features", static_cast<int64_t>(options.features)));
  options.score_rows = static_cast<size_t>(
      flags.GetInt("rows", static_cast<int64_t>(options.score_rows)));
  options.repeats = static_cast<size_t>(
      flags.GetInt("repeats", static_cast<int64_t>(options.repeats)));
  options.batch_size = static_cast<size_t>(
      flags.GetInt("batch", static_cast<int64_t>(options.batch_size)));
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(options.seed)));

  auto report = serve::RunServeBench(options);
  if (!report.ok()) {
    std::cerr << "bench_serving: " << report.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Serving: fused scorer vs naive TransformRow+Predict ===\n";
  std::cout << "workload: " << report->features << " input features -> "
            << report->generated << " generated -> " << report->outputs
            << " served, " << report->trees << " trees, "
            << report->score_rows << " rows x " << report->repeats
            << " passes\n";
  std::cout << "bit-identical outputs: "
            << (report->outputs_identical ? "yes" : "NO") << "\n\n";
  TablePrinter table({"path", "p50 us", "p99 us", "rows/s"}, {16, 9, 9, 12});
  table.PrintHeader();
  table.PrintRow({"naive", FormatDouble(report->naive.p50_us, 2),
                  FormatDouble(report->naive.p99_us, 2),
                  FormatDouble(report->naive.rows_per_s, 0)});
  table.PrintRow({"fused", FormatDouble(report->fused.p50_us, 2),
                  FormatDouble(report->fused.p99_us, 2),
                  FormatDouble(report->fused.rows_per_s, 0)});
  table.PrintRow({"fused batch", "-", "-",
                  FormatDouble(report->batch_rows_per_s, 0)});
  table.PrintSeparator();
  std::cout << "speedup per-row " << FormatDouble(report->speedup, 2)
            << "x, batch " << FormatDouble(report->batch_speedup, 2)
            << "x\n";

  const std::string out_path = flags.GetString("out", "BENCH_serving.json");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_serving: cannot write '" << out_path << "'\n";
      return 1;
    }
    out << report->ToJson().Serialize();
    std::cout << "wrote " << out_path << "\n";
  }

  std::vector<std::pair<std::string, obs::JsonValue>> sections;
  sections.emplace_back("serving", report->ToJson());
  EmitRunReport(flags, "bench_serving", total_watch.ElapsedSeconds(),
                nullptr, false, &sections);

  const std::string gate_path = flags.GetString("gate", "");
  if (!gate_path.empty()) {
    auto min_speedup = serve::ReadMinSpeedup(gate_path);
    if (!min_speedup.ok()) {
      std::cerr << "bench_serving: " << min_speedup.status().ToString()
                << "\n";
      return 1;
    }
    if (report->speedup < *min_speedup) {
      std::cerr << "bench_serving: GATE FAILED — fused/naive speedup "
                << FormatDouble(report->speedup, 2) << "x is below the "
                << FormatDouble(*min_speedup, 2) << "x floor from '"
                << gate_path << "'\n";
      return 1;
    }
    std::cout << "gate ok: " << FormatDouble(report->speedup, 2)
              << "x >= " << FormatDouble(*min_speedup, 2) << "x ("
              << gate_path << ")\n";
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
