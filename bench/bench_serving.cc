// Serving-path benchmark: compiled FeaturePlan executor + fused GBDT
// scorer (src/serve/) against the naive two-step path
// (FeaturePlan::TransformRow + Booster::PredictRowProba). Emits a
// machine-readable BENCH_serving.json with per-path p50/p99 latency and
// rows/s (including the naive-loop batch pass, the vectorized ScoreBatch
// pass, and a batch-size sweep), and — when --gate points at a committed
// baseline file — exits non-zero if the fused/naive speedup falls below
// its "min_speedup" or the vectorized-batch/naive speedup falls below
// its "min_batch_speedup".
// The run aborts outright if any scored row is not bit-identical across
// the two paths (the equivalence contract of DESIGN.md "Serving path").
//
// The run also re-times the fused path with the flight recorder armed vs
// disarmed; when the gate file carries "max_recorder_overhead_pct" (and
// the build has SAFE_TELEMETRY=ON), overhead above that ceiling fails
// the gate the same way a speedup shortfall does.
//
// The run also drives the sharded scoring server (src/serve/server/)
// with a closed-loop and an open-loop load generator (arrivals on a
// fixed grid at --open-qps; latency measured from the scheduled
// arrival, so backlog shows up in the tail). Server responses are
// verified bit-identical to the fused per-row path before timing, and a
// "min_sustained_qps" key in the gate file puts a floor under the
// open-loop completion rate.
//
// Flags: --quick --train_rows=N --features=M --rows=N --repeats=K
//        --batch=B --seed=S --out=BENCH_serving.json
//        --gate=bench/baselines/serving.json --report=path --trace=path
//        --server-shards=S --clients=C --server-queue=N
//        --batch-rows=B --batch-wait-us=T
//        --closed-requests=N --open-requests=N --open-qps=Q

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/serve/serve_bench.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);

  serve::ServeBenchOptions options;
  options.quick = flags.GetBool("quick", false);
  options.train_rows = static_cast<size_t>(
      flags.GetInt("train_rows", static_cast<int64_t>(options.train_rows)));
  options.features = static_cast<size_t>(
      flags.GetInt("features", static_cast<int64_t>(options.features)));
  options.score_rows = static_cast<size_t>(
      flags.GetInt("rows", static_cast<int64_t>(options.score_rows)));
  options.repeats = static_cast<size_t>(
      flags.GetInt("repeats", static_cast<int64_t>(options.repeats)));
  options.batch_size = static_cast<size_t>(
      flags.GetInt("batch", static_cast<int64_t>(options.batch_size)));
  options.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(options.seed)));
  serve::ServerLoadOptions& load = options.server;
  load.num_shards = static_cast<size_t>(flags.GetInt(
      "server-shards", static_cast<int64_t>(load.num_shards)));
  load.client_threads = static_cast<size_t>(
      flags.GetInt("clients", static_cast<int64_t>(load.client_threads)));
  load.queue_capacity = static_cast<size_t>(flags.GetInt(
      "server-queue", static_cast<int64_t>(load.queue_capacity)));
  load.max_batch_rows = static_cast<size_t>(flags.GetInt(
      "batch-rows", static_cast<int64_t>(load.max_batch_rows)));
  load.max_wait_us = static_cast<uint64_t>(flags.GetInt(
      "batch-wait-us", static_cast<int64_t>(load.max_wait_us)));
  load.closed_requests_per_client = static_cast<size_t>(flags.GetInt(
      "closed-requests",
      static_cast<int64_t>(load.closed_requests_per_client)));
  load.open_requests = static_cast<size_t>(flags.GetInt(
      "open-requests", static_cast<int64_t>(load.open_requests)));
  load.open_target_qps =
      flags.GetDouble("open-qps", load.open_target_qps);

  auto report = serve::RunServeBench(options);
  if (!report.ok()) {
    std::cerr << "bench_serving: " << report.status().ToString() << "\n";
    return 1;
  }

  std::cout << "=== Serving: fused scorer vs naive TransformRow+Predict ===\n";
  std::cout << "workload: " << report->features << " input features -> "
            << report->generated << " generated -> " << report->outputs
            << " served, " << report->trees << " trees, "
            << report->score_rows << " rows x " << report->repeats
            << " passes\n";
  std::cout << "bit-identical outputs: "
            << (report->outputs_identical ? "yes" : "NO") << "\n\n";
  TablePrinter table({"path", "p50 us", "p99 us", "rows/s"}, {16, 9, 9, 12});
  table.PrintHeader();
  table.PrintRow({"naive", FormatDouble(report->naive.p50_us, 2),
                  FormatDouble(report->naive.p99_us, 2),
                  FormatDouble(report->naive.rows_per_s, 0)});
  table.PrintRow({"fused", FormatDouble(report->fused.p50_us, 2),
                  FormatDouble(report->fused.p99_us, 2),
                  FormatDouble(report->fused.rows_per_s, 0)});
  table.PrintRow({"loop batch", "-", "-",
                  FormatDouble(report->loop_batch_rows_per_s, 0)});
  table.PrintRow({"vector batch", "-", "-",
                  FormatDouble(report->batch_rows_per_s, 0)});
  table.PrintSeparator();
  std::cout << "speedup per-row " << FormatDouble(report->speedup, 2)
            << "x, batch " << FormatDouble(report->batch_speedup, 2)
            << "x (vs naive), "
            << FormatDouble(report->loop_batch_rows_per_s > 0.0
                                ? report->batch_rows_per_s /
                                      report->loop_batch_rows_per_s
                                : 0.0,
                            2)
            << "x (vs per-row loop)\n";
  std::cout << "batch sweep (block=" << report->block_rows << "):";
  for (const auto& point : report->sweep) {
    std::cout << " " << point.batch_size << "->"
              << FormatDouble(point.rows_per_s / 1000.0, 0) << "K/s";
  }
  std::cout << "\n";
  if (report->recorder_enabled) {
    std::cout << "recorder overhead (fused, armed vs disarmed): "
              << FormatDouble(report->recorder_overhead_pct, 2) << "% ("
              << FormatDouble(report->fused_armed_rows_per_s, 0)
              << " vs "
              << FormatDouble(report->fused_disarmed_rows_per_s, 0)
              << " rows/s)\n";
  } else {
    std::cout << "recorder overhead: n/a (SAFE_TELEMETRY=OFF build)\n";
  }

  std::cout << "\n=== Scoring server: " << report->server_shards
            << " shards, " << report->server_clients << " clients, B="
            << report->server_batch_rows << " rows, T="
            << report->server_batch_wait_us << "us ===\n";
  std::cout << "bit-identical server responses: "
            << (report->server_outputs_identical ? "yes" : "NO")
            << ", mean batch fill "
            << FormatDouble(report->server_mean_batch_fill, 1) << " rows\n";
  TablePrinter server_table({"load", "p50 us", "p99 us", "qps", "rejected"},
                            {16, 9, 9, 12, 9});
  server_table.PrintHeader();
  server_table.PrintRow(
      {"closed loop", FormatDouble(report->server_closed.p50_us, 2),
       FormatDouble(report->server_closed.p99_us, 2),
       FormatDouble(report->server_closed.sustained_qps, 0),
       std::to_string(report->server_closed.rejected)});
  server_table.PrintRow(
      {"open loop", FormatDouble(report->server_open.p50_us, 2),
       FormatDouble(report->server_open.p99_us, 2),
       FormatDouble(report->server_open.sustained_qps, 0),
       std::to_string(report->server_open.rejected)});
  server_table.PrintSeparator();
  std::cout << "open loop target " << FormatDouble(
                   report->server_open_target_qps, 0)
            << " qps, sustained "
            << FormatDouble(report->server_open.sustained_qps, 0)
            << " qps\n";

  const std::string out_path = flags.GetString("out", "BENCH_serving.json");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::cerr << "bench_serving: cannot write '" << out_path << "'\n";
      return 1;
    }
    out << report->ToJson().Serialize();
    std::cout << "wrote " << out_path << "\n";
  }

  std::vector<std::pair<std::string, obs::JsonValue>> sections;
  sections.emplace_back("serving", report->ToJson());
  EmitRunReport(flags, "bench_serving", total_watch.ElapsedSeconds(),
                nullptr, false, &sections);

  const std::string gate_path = flags.GetString("gate", "");
  if (!gate_path.empty()) {
    auto gate = serve::ReadServingGate(gate_path);
    if (!gate.ok()) {
      std::cerr << "bench_serving: " << gate.status().ToString() << "\n";
      return 1;
    }
    if (report->speedup < gate->min_speedup) {
      std::cerr << "bench_serving: GATE FAILED — fused/naive speedup "
                << FormatDouble(report->speedup, 2) << "x is below the "
                << FormatDouble(gate->min_speedup, 2) << "x floor from '"
                << gate_path << "'\n";
      return 1;
    }
    std::cout << "gate ok: " << FormatDouble(report->speedup, 2)
              << "x >= " << FormatDouble(gate->min_speedup, 2) << "x ("
              << gate_path << ")\n";
    if (gate->min_batch_speedup > 0.0) {
      if (report->batch_speedup < gate->min_batch_speedup) {
        std::cerr << "bench_serving: GATE FAILED — batch/naive speedup "
                  << FormatDouble(report->batch_speedup, 2)
                  << "x is below the "
                  << FormatDouble(gate->min_batch_speedup, 2)
                  << "x floor from '" << gate_path << "'\n";
        return 1;
      }
      std::cout << "gate ok: batch " << FormatDouble(report->batch_speedup, 2)
                << "x >= " << FormatDouble(gate->min_batch_speedup, 2)
                << "x (" << gate_path << ")\n";
    }
    if (gate->max_recorder_overhead_pct > 0.0 && report->recorder_enabled) {
      if (report->recorder_overhead_pct > gate->max_recorder_overhead_pct) {
        std::cerr << "bench_serving: GATE FAILED — recorder-armed overhead "
                  << FormatDouble(report->recorder_overhead_pct, 2)
                  << "% exceeds the "
                  << FormatDouble(gate->max_recorder_overhead_pct, 2)
                  << "% budget from '" << gate_path << "'\n";
        return 1;
      }
      std::cout << "gate ok: recorder overhead "
                << FormatDouble(report->recorder_overhead_pct, 2)
                << "% <= "
                << FormatDouble(gate->max_recorder_overhead_pct, 2)
                << "% (" << gate_path << ")\n";
    }
    if (gate->min_sustained_qps > 0.0) {
      if (report->server_open.sustained_qps < gate->min_sustained_qps) {
        std::cerr << "bench_serving: GATE FAILED — open-loop sustained "
                  << FormatDouble(report->server_open.sustained_qps, 0)
                  << " qps is below the "
                  << FormatDouble(gate->min_sustained_qps, 0)
                  << " qps floor from '" << gate_path << "'\n";
        return 1;
      }
      std::cout << "gate ok: sustained "
                << FormatDouble(report->server_open.sustained_qps, 0)
                << " qps >= "
                << FormatDouble(gate->min_sustained_qps, 0) << " qps ("
                << gate_path << ")\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
