// Reproduces paper Table VIII: classification AUC on the (synthetic
// analogues of the) extra-large Ant Financial fraud datasets, comparing
// ORIG / RAND / IMP / SAFE under LR, RF and XGB. TFC and FCTree are
// excluded, as in the paper (execution time prohibitive at this scale).
//
// Flags: --datasets=Data1,Data2,Data3
//        --target_rows (default 25000): each dataset is scaled so its
//        training split has about this many rows; --row_scale overrides
//        with an explicit fraction of the paper's 2.5M-8M rows; --quick

#include <iostream>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/data/business.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double explicit_scale = flags.GetDouble("row_scale", 0.0);
  const double target_rows =
      flags.GetDouble("target_rows", quick ? 6000 : 25000);
  auto dataset_names =
      flags.GetList("datasets", quick ? "Data1" : "Data1,Data2,Data3");
  auto method_names = flags.GetList("methods", "ORIG,RAND,IMP,SAFE");
  const std::vector<models::ClassifierKind> kinds = {
      models::ClassifierKind::kLogisticRegression,
      models::ClassifierKind::kRandomForest,
      models::ClassifierKind::kXgboost,
  };

  std::cout << "=== Table VIII: business-scale AUC (x100) ===\n";
  std::cout << "scaled to ~" << target_rows
            << " training rows per dataset (see DESIGN.md Substitution 2)"
            << "\n\n";

  for (const auto& dataset_name : dataset_names) {
    const data::BusinessDatasetInfo* info = nullptr;
    for (const auto& candidate : data::BusinessSuite()) {
      if (candidate.name == dataset_name) info = &candidate;
    }
    if (info == nullptr) {
      std::cerr << "unknown business dataset '" << dataset_name << "'\n";
      return 1;
    }
    const double row_scale =
        explicit_scale > 0.0
            ? explicit_scale
            : target_rows / static_cast<double>(info->n_train);
    auto split = data::MakeBusinessSplit(*info, row_scale);
    if (!split.ok()) {
      std::cerr << split.status().ToString() << "\n";
      return 1;
    }
    std::cout << "--- " << dataset_name << " (paper " << info->n_train
              << " train rows; here " << split->train.num_rows() << ") ---\n";

    std::vector<std::string> headers{"CLF"};
    for (const auto& method : method_names) headers.push_back(method);
    std::vector<int> widths(headers.size(), 7);
    TablePrinter table(headers, widths);
    table.PrintHeader();

    // Fit all plans once, then evaluate per classifier.
    std::vector<FeaturePlan> plans;
    std::vector<double> fit_seconds;
    for (const auto& method_name : method_names) {
      auto method = MakeMethod(method_name, info->num_features, 53);
      if (!method.ok()) {
        std::cerr << method.status().ToString() << "\n";
        return 1;
      }
      Stopwatch watch;
      auto plan = (*method)->FitPlan(split->train, &split->valid);
      fit_seconds.push_back(watch.ElapsedSeconds());
      if (!plan.ok()) {
        std::cerr << method_name << ": " << plan.status().ToString() << "\n";
        return 1;
      }
      plans.push_back(std::move(*plan));
    }

    for (auto kind : kinds) {
      std::vector<std::string> row{models::ClassifierShortName(kind)};
      for (const auto& plan : plans) {
        auto clf = MakeEvalClassifier(kind, 71, /*quick=*/true);
        auto auc = EvaluatePlan(plan, *split, clf.get());
        row.push_back(auc.ok() ? FormatAuc(*auc) : "fail");
      }
      table.PrintRow(row);
    }
    table.PrintSeparator();
    std::cout << "feature-engineering seconds:";
    for (size_t m = 0; m < method_names.size(); ++m) {
      std::cout << " " << method_names[m] << "="
                << FormatDouble(fit_seconds[m], 1);
    }
    std::cout << "\n\n";
  }
  std::cout << "Paper's shape: SAFE consistently edges out ORIG/RAND/IMP "
               "for every classifier, at industrially-feasible cost.\n";
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
