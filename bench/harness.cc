#include "bench/harness.h"

#include <cstdio>
#include <iostream>

#include "src/common/string_util.h"
#include "src/baselines/autolearn.h"
#include "src/models/knn.h"
#include "src/models/linear.h"
#include "src/models/mlp.h"
#include "src/models/tree_models.h"
#include "src/models/xgb.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/report.h"
#include "src/obs/trace_export.h"
#include "src/stats/auc.h"

namespace safe {
namespace bench {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) continue;
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto parsed = ParseDouble(it->second);
  return parsed.ok() ? *parsed : fallback;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  auto parsed = ParseInt(it->second);
  return parsed.ok() ? *parsed : fallback;
}

bool Flags::GetBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1";
}

std::vector<std::string> Flags::GetList(const std::string& key,
                                        const std::string& fallback) const {
  const std::string raw = GetString(key, fallback);
  std::vector<std::string> out;
  for (auto& part : SplitString(raw, ',')) {
    if (!part.empty()) out.push_back(part);
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {}

void TablePrinter::PrintHeader() const {
  PrintSeparator();
  PrintRow(headers_);
  PrintSeparator();
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  std::string line = "|";
  for (size_t i = 0; i < widths_.size(); ++i) {
    std::string cell = i < cells.size() ? cells[i] : "";
    const int width = widths_[i];
    if (static_cast<int>(cell.size()) > width) cell.resize(width);
    line += " " + cell + std::string(width - cell.size(), ' ') + " |";
  }
  std::cout << line << "\n";
}

void TablePrinter::PrintSeparator() const {
  std::string line = "+";
  for (int width : widths_) {
    line += std::string(static_cast<size_t>(width) + 2, '-') + "+";
  }
  std::cout << line << "\n";
}

std::string FormatAuc(double auc) { return FormatDouble(100.0 * auc, 2); }

Result<std::unique_ptr<baselines::FeatureEngineer>> MakeMethod(
    const std::string& name, size_t num_original_features, uint64_t seed) {
  // Experimental settings of Section V: one iteration, binary arithmetic
  // operators, every method's output capped at 2·M.
  SafeParams params;
  params.seed = seed;
  params.max_output_features = 2 * num_original_features;
  if (name == "ORIG") {
    return std::unique_ptr<baselines::FeatureEngineer>(
        std::make_unique<baselines::OrigEngineer>());
  }
  if (name == "SAFE") {
    return std::unique_ptr<baselines::FeatureEngineer>(
        baselines::MakeSafe(params));
  }
  if (name == "RAND") {
    return std::unique_ptr<baselines::FeatureEngineer>(
        baselines::MakeRand(params));
  }
  if (name == "IMP") {
    return std::unique_ptr<baselines::FeatureEngineer>(
        baselines::MakeImp(params));
  }
  if (name == "NONSPLIT") {
    params.strategy = MiningStrategy::kNonSplitPairs;
    return std::unique_ptr<baselines::FeatureEngineer>(
        std::make_unique<baselines::SafeEngineer>(params));
  }
  if (name == "TFC") {
    baselines::TfcParams tfc;
    tfc.max_output_features = 2 * num_original_features;
    return std::unique_ptr<baselines::FeatureEngineer>(
        std::make_unique<baselines::TfcEngineer>(tfc));
  }
  if (name == "AUTOLEARN") {
    baselines::AutoLearnParams autolearn;
    autolearn.max_output_features = 2 * num_original_features;
    autolearn.seed = seed;
    return std::unique_ptr<baselines::FeatureEngineer>(
        std::make_unique<baselines::AutoLearnEngineer>(autolearn));
  }
  if (name == "FCT") {
    baselines::FcTreeParams fct;
    fct.max_output_features = 2 * num_original_features;
    fct.seed = seed;
    return std::unique_ptr<baselines::FeatureEngineer>(
        std::make_unique<baselines::FcTreeEngineer>(fct));
  }
  return Status::InvalidArgument("unknown method '" + name + "'");
}

std::vector<std::string> DefaultMethods() {
  return {"ORIG", "FCT", "TFC", "RAND", "IMP", "SAFE"};
}

std::unique_ptr<models::Classifier> MakeEvalClassifier(
    models::ClassifierKind kind, uint64_t seed, bool quick) {
  if (!quick) return models::MakeClassifier(kind, seed);
  switch (kind) {
    case models::ClassifierKind::kAdaBoost:
      return std::make_unique<models::AdaBoostClassifier>(seed, 25);
    case models::ClassifierKind::kRandomForest:
      return std::make_unique<models::RandomForestClassifier>(seed, 40);
    case models::ClassifierKind::kExtraTrees:
      return std::make_unique<models::ExtraTreesClassifier>(seed, 40);
    case models::ClassifierKind::kMlp:
      return std::make_unique<models::MlpClassifier>(seed, 32, 12);
    case models::ClassifierKind::kLogisticRegression:
      return std::make_unique<models::LogisticRegressionClassifier>(seed,
                                                                    120);
    case models::ClassifierKind::kLinearSvm:
      return std::make_unique<models::LinearSvmClassifier>(seed, 8);
    case models::ClassifierKind::kXgboost: {
      gbdt::GbdtParams params;
      params.seed = seed;
      params.num_trees = 50;
      params.max_depth = 4;
      return std::make_unique<models::XgbClassifier>(params);
    }
    default:
      return models::MakeClassifier(kind, seed);
  }
}

Result<double> EvaluatePlan(const FeaturePlan& plan,
                            const DatasetSplit& split,
                            models::Classifier* clf) {
  SAFE_ASSIGN_OR_RETURN(DataFrame train_z, plan.Transform(split.train.x));
  SAFE_ASSIGN_OR_RETURN(DataFrame test_z, plan.Transform(split.test.x));
  Dataset train{std::move(train_z), split.train.y};
  SAFE_RETURN_NOT_OK(clf->Fit(train));
  SAFE_ASSIGN_OR_RETURN(std::vector<double> scores,
                        clf->PredictScores(test_z));
  return Auc(scores, split.test.labels());
}

bool EmitRunReport(const Flags& flags, const std::string& tool,
                   double wall_seconds,
                   const std::vector<IterationDiagnostics>* iterations,
                   bool print_table,
                   const std::vector<std::pair<std::string, obs::JsonValue>>*
                       sections) {
  // Flight-recorder export is independent of --report: drain the trace
  // first so it reflects the run even when no report was requested.
  bool ok = true;
  const std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    obs::FlightRecorder::Disarm();
    std::string trace_error;
    if (!obs::WriteChromeTrace(trace_path, &trace_error)) {
      std::cerr << "trace: " << trace_error << "\n";
      ok = false;
    } else {
      std::cout << "trace written to " << trace_path
                << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
  }
  const std::string path = flags.GetString("report", "");
  if (path.empty()) return ok;
  obs::RunReport report(tool);
  report.CaptureTelemetry();
  report.set_wall_seconds(wall_seconds);
  if (iterations != nullptr) {
    report.AddSection("iterations", IterationDiagnosticsToJson(*iterations));
  }
  if (sections != nullptr) {
    for (const auto& [key, value] : *sections) {
      report.AddSection(key, value);
    }
  }
  if (print_table) {
    std::cout << report.ToTable();
  }
  std::string error;
  if (!report.WriteFile(path, &error)) {
    std::cerr << "report: " << error << "\n";
    return false;
  }
  std::cout << "report written to " << path << "\n";
  return ok;
}

bool ArmTraceFromFlags(const Flags& flags) {
  if (flags.GetString("trace", "").empty()) return false;
  obs::FlightRecorder::Global()->SetCurrentThreadLabel("main");
  obs::FlightRecorder::Arm();
  return true;
}

}  // namespace bench
}  // namespace safe
