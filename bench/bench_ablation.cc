// Ablation for the two assumptions of paper Section IV-B:
//   (1) features generated from split features beat ones from non-split
//       features, and
//   (2) combinations from the same tree path beat random combinations of
//       split features, which beat non-split combinations.
// Maps to: SAFE (same-path) vs IMP (split features, random pairing) vs
// NONSPLIT (non-split features) vs RAND (any features), all sharing the
// identical selection pipeline.
//
// Flags: --datasets, --row_scale, --repeats, --quick

#include <iostream>
#include <map>
#include <numeric>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double row_scale = flags.GetDouble("row_scale", quick ? 0.05 : 0.15);
  const size_t repeats =
      static_cast<size_t>(flags.GetInt("repeats", quick ? 1 : 3));
  // Wide datasets only: with few features every strategy enumerates all
  // pairs and the assumptions cannot separate. gamma is pinned to M (not
  // the 4M default) so *which* combinations a strategy mines matters.
  auto dataset_names = flags.GetList(
      "datasets", quick ? "spambase" : "valley,spambase,ailerons,nomao,"
                                       "bank,vehicle");
  const std::vector<std::string> method_names = {"RAND", "NONSPLIT", "IMP",
                                                 "SAFE"};

  std::cout << "=== Ablation: Section IV-B assumptions ===\n";
  std::cout << "All methods share gamma, operators and the full selection "
               "pipeline; only combination mining differs.\n\n";

  std::vector<std::string> headers{"Dataset"};
  for (const auto& m : method_names) headers.push_back(m);
  std::vector<int> widths(headers.size(), 9);
  widths[0] = 10;
  TablePrinter table(headers, widths);
  table.PrintHeader();

  std::map<std::string, std::vector<double>> all_aucs;
  for (const auto& dataset_name : dataset_names) {
    auto info = data::FindBenchmarkDataset(dataset_name);
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{dataset_name};
    for (const auto& method_name : method_names) {
      double total = 0.0;
      size_t ok_runs = 0;
      for (size_t rep = 0; rep < repeats; ++rep) {
        auto split = data::MakeBenchmarkSplit(*info, row_scale, rep * 77);
        if (!split.ok()) continue;
        SafeParams params;
        params.seed = 7 + rep;
        params.gamma = info->num_features;
        params.max_output_features = 2 * info->num_features;
        if (method_name == "RAND") {
          params.strategy = MiningStrategy::kRandomPairs;
        } else if (method_name == "IMP") {
          params.strategy = MiningStrategy::kSplitFeaturePairs;
        } else if (method_name == "NONSPLIT") {
          params.strategy = MiningStrategy::kNonSplitPairs;
        } else {
          params.strategy = MiningStrategy::kTreePaths;
        }
        auto engineer = std::make_unique<baselines::SafeEngineer>(params);
        auto plan = engineer->FitPlan(
            split->train, info->n_valid > 0 ? &split->valid : nullptr);
        if (!plan.ok()) continue;
        auto clf = MakeEvalClassifier(
            models::ClassifierKind::kLogisticRegression, 3 + rep,
            /*quick=*/true);
        auto auc = EvaluatePlan(*plan, *split, clf.get());
        if (!auc.ok()) continue;
        total += *auc;
        ++ok_runs;
      }
      if (ok_runs == 0) {
        row.push_back("fail");
        continue;
      }
      const double mean = total / static_cast<double>(ok_runs);
      all_aucs[method_name].push_back(mean);
      row.push_back(FormatAuc(mean));
    }
    table.PrintRow(row);
  }
  table.PrintSeparator();

  std::cout << "\nMean AUC (x100) across datasets:\n";
  for (const auto& method_name : method_names) {
    const auto& aucs = all_aucs[method_name];
    if (aucs.empty()) continue;
    const double mean = std::accumulate(aucs.begin(), aucs.end(), 0.0) /
                        static_cast<double>(aucs.size());
    std::cout << "  " << method_name << ": " << FormatAuc(mean) << "\n";
  }
  std::cout << "Expected ordering per the paper's assumptions: SAFE >= IMP "
               ">= NONSPLIT and SAFE >= RAND.\n";
  EmitRunReport(Flags(argc, argv), "bench_ablation",
                total_watch.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
