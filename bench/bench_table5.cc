// Reproduces paper Table V: execution time (seconds) of each
// feature-engineering method per benchmark dataset. The paper's headline:
// SAFE runs at ~0.13x FCTree's and ~0.08x TFC's cost.
//
// Flags: --datasets, --methods, --row_scale, --quick

#include <cmath>
#include <iostream>
#include <map>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double row_scale = flags.GetDouble("row_scale", quick ? 0.05 : 0.10);
  auto dataset_names = flags.GetList(
      "datasets",
      quick ? "banknote,phoneme"
            : "valley,banknote,gina,spambase,phoneme,wind,ailerons,eeg-eye,"
              "magic,nomao,bank,vehicle");
  auto method_names = flags.GetList("methods", "FCT,TFC,RAND,IMP,SAFE");

  std::cout << "=== Table V: execution time (seconds) ===\n";
  std::cout << "row_scale=" << row_scale << "\n\n";

  std::vector<std::string> headers{"Dataset"};
  for (const auto& method : method_names) headers.push_back(method);
  std::vector<int> widths(headers.size(), 9);
  widths[0] = 10;
  TablePrinter table(headers, widths);
  table.PrintHeader();

  std::map<std::string, double> totals;
  for (const auto& dataset_name : dataset_names) {
    auto info = data::FindBenchmarkDataset(dataset_name);
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }
    auto split = data::MakeBenchmarkSplit(*info, row_scale);
    if (!split.ok()) {
      std::cerr << split.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> row{dataset_name};
    for (const auto& method_name : method_names) {
      auto method = MakeMethod(method_name, info->num_features, 23);
      if (!method.ok()) {
        std::cerr << method.status().ToString() << "\n";
        return 1;
      }
      Stopwatch watch;
      auto plan = (*method)->FitPlan(
          split->train, info->n_valid > 0 ? &split->valid : nullptr);
      const double seconds = watch.ElapsedSeconds();
      if (!plan.ok()) {
        row.push_back("fail");
        continue;
      }
      row.push_back(FormatDouble(seconds, 2));
      totals[method_name] += seconds;
    }
    table.PrintRow(row);
  }
  table.PrintSeparator();

  if (totals.count("SAFE")) {
    std::cout << "\nTotal seconds per method (ratio vs SAFE):\n";
    for (const auto& [method, total] : totals) {
      std::cout << "  " << method << ": " << FormatDouble(total, 2);
      if (method != "SAFE" && total > 0.0) {
        std::cout << "  (SAFE/" << method << " = "
                  << FormatDouble(totals["SAFE"] / total, 3)
                  << "; paper reports 0.13 vs FCT, 0.08 vs TFC)";
      }
      std::cout << "\n";
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
