// Prints the dataset inventories (paper Tables IV and VII) for the
// synthetic analogues this reproduction generates, plus the rule-of-thumb
// bands of Tables I and II that drive SAFE's selection thresholds.

#include <iostream>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/data/business.h"
#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/iv.h"

namespace safe {
namespace bench {
namespace {

void PrintTableIV(double row_scale) {
  std::cout << "\n=== Table IV: benchmark data sets (synthetic analogues) "
               "===\n";
  TablePrinter table({"Dataset", "#Train", "#Valid", "#Test", "#Dim",
                      "pos-rate"},
                     {10, 9, 9, 9, 6, 8});
  table.PrintHeader();
  for (const auto& info : data::BenchmarkSuite()) {
    auto split = data::MakeBenchmarkSplit(info, row_scale);
    if (!split.ok()) {
      std::cerr << info.name << ": " << split.status().ToString() << "\n";
      continue;
    }
    const double rate =
        static_cast<double>(CountEqual(split->train.labels(), 1.0)) /
        static_cast<double>(split->train.num_rows());
    table.PrintRow({info.name, std::to_string(split->train.num_rows()),
                    std::to_string(info.n_valid == 0
                                       ? 0
                                       : split->valid.num_rows()),
                    std::to_string(split->test.num_rows()),
                    std::to_string(info.num_features),
                    FormatDouble(rate, 3)});
  }
  table.PrintSeparator();
  std::cout << "(paper-scale rows x row_scale=" << row_scale
            << "; #Dim matches the paper exactly)\n";
}

void PrintTableVII(double row_scale) {
  std::cout << "\n=== Table VII: business data sets (synthetic analogues) "
               "===\n";
  TablePrinter table({"Dataset", "#Train(paper)", "#Train(here)", "#Dim",
                      "pos-rate"},
                     {8, 14, 13, 6, 8});
  table.PrintHeader();
  for (const auto& info : data::BusinessSuite()) {
    auto split = data::MakeBusinessSplit(info, row_scale);
    if (!split.ok()) {
      std::cerr << info.name << ": " << split.status().ToString() << "\n";
      continue;
    }
    const double rate =
        static_cast<double>(CountEqual(split->train.labels(), 1.0)) /
        static_cast<double>(split->train.num_rows());
    table.PrintRow({info.name, std::to_string(info.n_train),
                    std::to_string(split->train.num_rows()),
                    std::to_string(info.num_features),
                    FormatDouble(rate, 3)});
  }
  table.PrintSeparator();
}

void PrintBands() {
  std::cout << "\n=== Table I: Information Value bands ===\n";
  for (double iv : {0.01, 0.05, 0.2, 0.4, 0.9}) {
    std::cout << "  IV=" << FormatDouble(iv, 2) << " -> "
              << IvBandName(ClassifyIv(iv)) << "\n";
  }
  std::cout << "(SAFE keeps features with IV > 0.1, the medium floor)\n";
  std::cout << "\n=== Table II: Pearson correlation bands ===\n";
  for (double r : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::cout << "  |r|=" << FormatDouble(r, 2) << " -> "
              << PearsonBandName(ClassifyPearson(r)) << "\n";
  }
  std::cout << "(SAFE drops the weaker of any pair with |r| > 0.8)\n";
}

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const double row_scale = flags.GetDouble("row_scale", 0.1);
  const double business_scale = flags.GetDouble("business_scale", 0.005);
  PrintBands();
  PrintTableIV(row_scale);
  PrintTableVII(business_scale);
  EmitRunReport(Flags(argc, argv), "bench_datasets",
                total_watch.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
