// Reproduces paper Table III: test AUC (x100) of each feature-engineering
// method (ORIG, FCT, TFC, RAND, IMP, SAFE) under each of the nine
// evaluation classifiers, per benchmark dataset.
//
// Flags:
//   --datasets=valley,banknote,...   subset (default: all 12)
//   --methods=ORIG,SAFE,...          subset (default: all 6)
//   --row_scale=0.1                  fraction of the paper's row counts
//   --repeats=1                      seeds averaged per cell
//   --full_classifiers               use paper-default classifier configs
//   --quick                          tiny preset for smoke runs

#include <cmath>
#include <iostream>
#include <map>
#include <numeric>

#include "bench/harness.h"
#include "src/common/string_util.h"
#include "src/common/stopwatch.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double row_scale =
      flags.GetDouble("row_scale", quick ? 0.05 : 0.10);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 1));
  const bool full_classifiers = flags.GetBool("full_classifiers", false);
  auto dataset_names = flags.GetList(
      "datasets",
      quick ? "banknote,phoneme"
            : "valley,banknote,gina,spambase,phoneme,wind,ailerons,eeg-eye,"
              "magic,nomao,bank,vehicle");
  auto method_names = flags.GetList("methods", "ORIG,FCT,TFC,RAND,IMP,SAFE");

  std::cout << "=== Table III: classification AUC (x100) on benchmark "
               "datasets ===\n";
  std::cout << "row_scale=" << row_scale << " repeats=" << repeats
            << " classifiers=" << (full_classifiers ? "paper" : "quick")
            << "\n\n";

  // Per-method average improvement over ORIG across all cells.
  std::map<std::string, std::vector<double>> improvements;

  for (const auto& dataset_name : dataset_names) {
    auto info = data::FindBenchmarkDataset(dataset_name);
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }

    std::vector<std::string> headers{"CLF"};
    for (const auto& method : method_names) headers.push_back(method);
    std::vector<int> widths(headers.size(), 7);
    widths[0] = 4;
    std::cout << "--- " << dataset_name << " ---\n";
    TablePrinter table(headers, widths);
    table.PrintHeader();

    // AUC[classifier][method] accumulated over repeats.
    const auto& kinds = models::AllClassifierKinds();
    std::vector<std::vector<double>> auc(
        kinds.size(), std::vector<double>(method_names.size(), 0.0));

    for (int rep = 0; rep < repeats; ++rep) {
      auto split = data::MakeBenchmarkSplit(*info, row_scale,
                                            static_cast<uint64_t>(rep) * 1000);
      if (!split.ok()) {
        std::cerr << split.status().ToString() << "\n";
        return 1;
      }
      for (size_t m = 0; m < method_names.size(); ++m) {
        auto method = MakeMethod(method_names[m], info->num_features,
                                 17 + static_cast<uint64_t>(rep));
        if (!method.ok()) {
          std::cerr << method.status().ToString() << "\n";
          return 1;
        }
        auto plan = (*method)->FitPlan(split->train,
                                       info->n_valid > 0 ? &split->valid
                                                         : nullptr);
        if (!plan.ok()) {
          std::cerr << dataset_name << "/" << method_names[m] << ": "
                    << plan.status().ToString() << " (skipping method)\n";
          for (size_t k = 0; k < kinds.size(); ++k) {
            auc[k][m] = std::nan("");
          }
          continue;
        }
        for (size_t k = 0; k < kinds.size(); ++k) {
          auto clf = MakeEvalClassifier(kinds[k],
                                        91 + static_cast<uint64_t>(rep),
                                        !full_classifiers);
          auto result = EvaluatePlan(*plan, *split, clf.get());
          if (!result.ok()) {
            std::cerr << dataset_name << "/" << method_names[m] << "/"
                      << models::ClassifierShortName(kinds[k]) << ": "
                      << result.status().ToString() << "\n";
            auc[k][m] = std::nan("");
            continue;
          }
          auc[k][m] += *result / repeats;
        }
      }
    }

    for (size_t k = 0; k < kinds.size(); ++k) {
      std::vector<std::string> row{models::ClassifierShortName(kinds[k])};
      for (size_t m = 0; m < method_names.size(); ++m) {
        row.push_back(std::isnan(auc[k][m]) ? "-" : FormatAuc(auc[k][m]));
      }
      table.PrintRow(row);
      // Track improvement over ORIG when ORIG is present.
      for (size_t m = 0; m < method_names.size(); ++m) {
        if (method_names[m] == "ORIG" || std::isnan(auc[k][m])) continue;
        for (size_t o = 0; o < method_names.size(); ++o) {
          if (method_names[o] == "ORIG" && !std::isnan(auc[k][o])) {
            improvements[method_names[m]].push_back(auc[k][m] - auc[k][o]);
          }
        }
      }
    }
    table.PrintSeparator();
    std::cout << "\n";
  }

  std::cout << "=== Mean AUC improvement over ORIG (paper: SAFE +6.50pp "
               "avg across its suite) ===\n";
  for (const auto& [method, deltas] : improvements) {
    const double mean =
        std::accumulate(deltas.begin(), deltas.end(), 0.0) /
        static_cast<double>(deltas.size());
    std::cout << "  " << method << ": "
              << FormatDouble(100.0 * mean, 2) << " pp over "
              << deltas.size() << " cells\n";
  }
  EmitRunReport(Flags(argc, argv), "bench_table3",
                total_watch.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
