// Reproduces paper Fig. 3: random-forest feature importance of the
// original features vs the top generated features. The paper's claim:
// generated features (orange bars) dominate original ones (blue bars).
// A terminal cannot draw the bar charts, so the binary prints, per
// dataset, the importance mass captured by each group and an ASCII
// sketch of the top bars.
//
// Flags: --datasets, --row_scale, --quick, --top=10

#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/models/tree_models.h"

namespace safe {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double row_scale = flags.GetDouble("row_scale", quick ? 0.05 : 0.10);
  const size_t top = static_cast<size_t>(flags.GetInt("top", 10));
  auto dataset_names = flags.GetList(
      "datasets",
      quick ? "banknote,phoneme"
            : "valley,banknote,gina,spambase,phoneme,wind,ailerons,eeg-eye,"
              "magic,nomao,bank,vehicle");

  std::cout << "=== Fig. 3: RF feature importance, generated vs original "
               "===\n";
  std::cout << "Protocol (paper V-A3): combine the M original features "
               "with the top-ranked generated features (up to M) and "
               "score importance with a random forest.\n\n";

  for (const auto& dataset_name : dataset_names) {
    auto info = data::FindBenchmarkDataset(dataset_name);
    if (!info.ok()) {
      std::cerr << info.status().ToString() << "\n";
      return 1;
    }
    auto split = data::MakeBenchmarkSplit(*info, row_scale);
    if (!split.ok()) {
      std::cerr << split.status().ToString() << "\n";
      return 1;
    }
    const size_t m = info->num_features;

    auto method = MakeMethod("SAFE", m, 29);
    auto plan = (*method)->FitPlan(
        split->train, info->n_valid > 0 ? &split->valid : nullptr);
    if (!plan.ok()) {
      std::cerr << dataset_name << ": " << plan.status().ToString() << "\n";
      continue;
    }

    // Original features + up to M top generated outputs of the plan.
    std::vector<std::string> generated_names;
    for (const auto& name : plan->selected()) {
      const bool is_original =
          split->train.x.HasColumn(name);
      if (!is_original && generated_names.size() < m) {
        generated_names.push_back(name);
      }
    }
    SAFE_CHECK(plan.ok());
    auto transformed = plan->Transform(split->train.x);
    if (!transformed.ok()) {
      std::cerr << transformed.status().ToString() << "\n";
      continue;
    }
    DataFrame combined = split->train.x;
    for (const auto& name : generated_names) {
      auto idx = transformed->ColumnIndex(name);
      if (!idx.ok()) continue;
      SAFE_CHECK(combined.AddColumn(transformed->column(*idx)).ok());
    }
    auto train = MakeDataset(combined, split->train.labels());
    SAFE_CHECK(train.ok());

    models::RandomForestClassifier rf(37, quick ? 25 : 60);
    if (!rf.Fit(*train).ok()) {
      std::cerr << dataset_name << ": RF fit failed\n";
      continue;
    }
    const auto importances = rf.FeatureImportances();

    double original_mass = 0.0;
    double generated_mass = 0.0;
    for (size_t c = 0; c < combined.num_columns(); ++c) {
      (c < m ? original_mass : generated_mass) += importances[c];
    }
    std::cout << "--- " << dataset_name << " ---\n";
    std::cout << "  original features: " << m << " columns, importance mass "
              << FormatDouble(original_mass, 3) << "\n";
    std::cout << "  generated features: " << generated_names.size()
              << " columns, importance mass "
              << FormatDouble(generated_mass, 3) << "\n";
    std::cout << "  mean importance ratio (generated/original): "
              << FormatDouble(
                     (generated_mass /
                      std::max<double>(1.0, generated_names.size())) /
                         std::max(1e-12, original_mass /
                                             static_cast<double>(m)),
                     2)
              << "x\n";

    // ASCII bars of the top features, tagged [G]enerated / [O]riginal.
    std::vector<size_t> order(combined.num_columns());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return importances[a] > importances[b];
    });
    const double top_importance = importances[order[0]];
    for (size_t i = 0; i < std::min(top, order.size()); ++i) {
      const size_t c = order[i];
      const int bar_len = top_importance > 0
                              ? static_cast<int>(40.0 * importances[c] /
                                                 top_importance)
                              : 0;
      std::cout << "  " << (c < m ? "[O] " : "[G] ")
                << std::string(static_cast<size_t>(bar_len), '#') << " "
                << FormatDouble(importances[c], 4) << "  "
                << combined.column(c).name() << "\n";
    }
    std::cout << "\n";
  }
  EmitRunReport(Flags(argc, argv), "bench_fig3",
                total_watch.ElapsedSeconds());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
