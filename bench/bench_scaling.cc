// Empirically checks the complexity claims of paper Section IV-D:
//   - SAFE's cost grows ~linearly in the number of records N (Eq. 13:
//     O(N * K1 * (K1 + K2)) for fixed tree budgets), and
//   - the cost is controlled by the number of miner trees K1.
// Also contrasts the growth in M (feature count) against TFC's O(N*M^2),
// and sweeps thread counts over (a) histogram GBDT training and (b) the
// full SAFE pipeline (mining, generation, IV filter, redundancy filter,
// importance ranking), checking the serialized model / FeaturePlan stays
// byte-identical at every count.
//
// Flags: --quick --threads=1,2,4,8 --sweep_rows=N --engine_sweep_rows=N
//        --report=path

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"

namespace safe {
namespace bench {
namespace {

double TimeSafeFit(const Dataset& train, size_t miner_trees, uint64_t seed) {
  SafeParams params;
  params.seed = seed;
  params.miner.num_trees = miner_trees;
  baselines::SafeEngineer engineer(params);
  Stopwatch watch;
  auto plan = engineer.FitPlan(train, nullptr);
  SAFE_CHECK(plan.ok()) << plan.status().ToString();
  return watch.ElapsedSeconds();
}

Dataset MakeData(size_t rows, size_t features, uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = std::max<size_t>(3, features / 4);
  spec.num_interactions = 3;
  spec.seed = seed;
  auto data = data::MakeSyntheticDataset(spec);
  SAFE_CHECK(data.ok());
  return *data;
}

/// Thread sweep over histogram GBDT training: fits the same large
/// synthetic workload at each thread count, reports wall time and
/// speedup vs 1 thread, and asserts the serialized models are
/// byte-identical — the determinism contract of DESIGN.md. Returns the
/// sweep as a JSON section for the telemetry RunReport.
obs::JsonValue ThreadSweep(const Flags& flags, bool quick) {
  const size_t rows = static_cast<size_t>(
      flags.GetInt("sweep_rows", quick ? 4000 : 20000));
  Dataset data = MakeData(rows, 20, 11);
  gbdt::GbdtParams params;
  params.num_trees = quick ? 10 : 30;
  params.max_depth = 6;
  params.max_bins = 256;

  std::cout << "=== Thread sweep: histogram GBDT training (" << rows
            << " rows x 20 features, " << params.num_trees
            << " trees) ===\n";
  TablePrinter table({"threads", "seconds", "speedup", "identical"},
                     {8, 9, 8, 10});
  table.PrintHeader();

  obs::JsonValue sweep = obs::JsonValue::Array();
  std::string reference_model;
  double base_seconds = 0.0;
  for (const std::string& t : flags.GetList("threads", "1,2,4,8")) {
    params.n_threads = static_cast<size_t>(std::stoul(t));
    Stopwatch watch;
    auto model = gbdt::Booster::Fit(data, nullptr, params);
    const double seconds = watch.ElapsedSeconds();
    SAFE_CHECK(model.ok()) << model.status().ToString();
    const std::string serialized = model->Serialize();
    if (reference_model.empty()) {
      reference_model = serialized;
      base_seconds = seconds;
    }
    const bool identical = serialized == reference_model;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    table.PrintRow({t, FormatDouble(seconds, 3), FormatDouble(speedup, 2),
                    identical ? "yes" : "NO"});
    SAFE_CHECK(identical)
        << "thread sweep: model at n_threads=" << t
        << " diverged from the 1-thread reference (determinism violation)";
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("threads", static_cast<double>(params.n_threads));
    entry.Set("seconds", seconds);
    entry.Set("speedup", speedup);
    entry.Set("identical", identical);
    sweep.Append(std::move(entry));
  }
  table.PrintSeparator();
  std::cout << "(models must be byte-identical at every thread count; "
               "speedup needs physical cores)\n\n";
  return sweep;
}

/// Thread sweep over the full SAFE pipeline: one SafeParams::n_threads
/// knob drives the miner/ranker boosters and every engine stage. Reports
/// total fit time plus the generation+selection wall-clock (the stages
/// the engine parallelizes outside GBDT training), asserts the
/// serialized FeaturePlan is byte-identical at every thread count, and
/// returns the sweep as a JSON section for the telemetry RunReport.
obs::JsonValue EngineThreadSweep(const Flags& flags, bool quick) {
  const size_t rows = static_cast<size_t>(
      flags.GetInt("engine_sweep_rows", quick ? 2000 : 8000));
  Dataset data = MakeData(rows, 16, 13);
  SafeParams params;
  params.seed = 7;
  params.miner.num_trees = quick ? 10 : 20;
  params.ranker.num_trees = quick ? 10 : 20;

  std::cout << "=== Thread sweep: full SAFE pipeline (" << rows
            << " rows x 16 features) ===\n";
  TablePrinter table(
      {"threads", "seconds", "speedup", "gensel_s", "gensel_x", "identical"},
      {8, 9, 8, 9, 9, 10});
  table.PrintHeader();

  obs::JsonValue sweep = obs::JsonValue::Array();
  std::string reference_plan;
  double base_seconds = 0.0;
  double base_gensel = 0.0;
  for (const std::string& t : flags.GetList("threads", "1,2,4,8")) {
    params.n_threads = static_cast<size_t>(std::stoul(t));
    SafeEngine engine(params);
    Stopwatch watch;
    auto fit = engine.Fit(data);
    const double seconds = watch.ElapsedSeconds();
    SAFE_CHECK(fit.ok()) << fit.status().ToString();
    const std::string serialized = fit->plan.Serialize();
    // Generation + selection wall-clock: every parallelized stage except
    // the two GBDT fits (mining trees, importance ranking), summed over
    // iterations from the engine's own stage timeline.
    double gensel = 0.0;
    obs::JsonValue stage_seconds = obs::JsonValue::Object();
    for (const auto& iter : fit->iterations) {
      for (const auto& stage : iter.stages) {
        if (stage.stage == "generate_features" ||
            stage.stage == "candidate_pool" || stage.stage == "iv_filter" ||
            stage.stage == "redundancy_filter") {
          gensel += stage.seconds;
        }
        stage_seconds.Set(stage.stage, stage.seconds);
      }
    }
    if (reference_plan.empty()) {
      reference_plan = serialized;
      base_seconds = seconds;
      base_gensel = gensel;
    }
    const bool identical = serialized == reference_plan;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    const double gensel_speedup = gensel > 0.0 ? base_gensel / gensel : 0.0;
    table.PrintRow({t, FormatDouble(seconds, 3), FormatDouble(speedup, 2),
                    FormatDouble(gensel, 3), FormatDouble(gensel_speedup, 2),
                    identical ? "yes" : "NO"});
    SAFE_CHECK(identical)
        << "engine thread sweep: FeaturePlan at n_threads=" << t
        << " diverged from the 1-thread reference (determinism violation)";
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("threads", static_cast<double>(params.n_threads));
    entry.Set("seconds", seconds);
    entry.Set("speedup", speedup);
    entry.Set("generation_selection_seconds", gensel);
    entry.Set("generation_selection_speedup", gensel_speedup);
    entry.Set("stage_seconds", std::move(stage_seconds));
    entry.Set("identical", identical);
    sweep.Append(std::move(entry));
  }
  table.PrintSeparator();
  std::cout << "(FeaturePlans must be byte-identical at every thread count; "
               "speedup needs physical cores)\n\n";
  return sweep;
}

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  const double scale = quick ? 0.2 : 1.0;

  std::cout << "=== Scaling: SAFE fit time vs N (rows), Eq. 13 predicts "
               "~linear ===\n";
  TablePrinter rows_table({"N", "seconds", "sec/N x1e6"}, {8, 9, 11});
  rows_table.PrintHeader();
  for (size_t n : {2000, 4000, 8000, 16000, 32000}) {
    const size_t rows = static_cast<size_t>(n * scale);
    Dataset data = MakeData(rows, 12, 5);
    const double seconds = TimeSafeFit(data, 20, 3);
    rows_table.PrintRow({std::to_string(rows), FormatDouble(seconds, 3),
                         FormatDouble(1e6 * seconds / rows, 2)});
  }
  rows_table.PrintSeparator();
  std::cout << "(sec/N should stay roughly flat)\n\n";

  std::cout << "=== Scaling: SAFE fit time vs miner trees K1 ===\n";
  TablePrinter trees_table({"K1", "seconds"}, {6, 9});
  trees_table.PrintHeader();
  Dataset fixed = MakeData(static_cast<size_t>(8000 * scale), 12, 5);
  for (size_t k1 : {5, 10, 20, 40, 80}) {
    trees_table.PrintRow(
        {std::to_string(k1), FormatDouble(TimeSafeFit(fixed, k1, 3), 3)});
  }
  trees_table.PrintSeparator();
  std::cout << "(the paper: 'we can easily control ... the time complexity "
               "of the algorithm by controlling the total number of trees')\n\n";

  std::cout << "=== Scaling: SAFE vs TFC in M (features) ===\n";
  TablePrinter m_table({"M", "SAFE s", "TFC s"}, {6, 9, 9});
  m_table.PrintHeader();
  for (size_t m : {8, 16, 32, 64}) {
    Dataset data = MakeData(static_cast<size_t>(4000 * scale), m, 9);
    const double safe_seconds = TimeSafeFit(data, 20, 3);
    baselines::TfcParams tfc_params;
    baselines::TfcEngineer tfc(tfc_params);
    Stopwatch watch;
    auto plan = tfc.FitPlan(data, nullptr);
    const double tfc_seconds =
        plan.ok() ? watch.ElapsedSeconds() : -1.0;
    m_table.PrintRow({std::to_string(m), FormatDouble(safe_seconds, 3),
                      tfc_seconds < 0 ? "fail"
                                      : FormatDouble(tfc_seconds, 3)});
  }
  m_table.PrintSeparator();
  std::cout << "(TFC grows ~quadratically in M; SAFE stays governed by its "
               "tree budget)\n\n";

  obs::JsonValue sweep = ThreadSweep(flags, quick);
  obs::JsonValue engine_sweep = EngineThreadSweep(flags, quick);
  std::vector<std::pair<std::string, obs::JsonValue>> sections;
  sections.emplace_back("thread_sweep", std::move(sweep));
  sections.emplace_back("engine_thread_sweep", std::move(engine_sweep));
  EmitRunReport(flags, "bench_scaling", total_watch.ElapsedSeconds(),
                nullptr, false, &sections);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
