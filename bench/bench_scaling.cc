// Empirically checks the complexity claims of paper Section IV-D:
//   - SAFE's cost grows ~linearly in the number of records N (Eq. 13:
//     O(N * K1 * (K1 + K2)) for fixed tree budgets), and
//   - the cost is controlled by the number of miner trees K1.
// Also contrasts the growth in M (feature count) against TFC's O(N*M^2),
// and sweeps thread counts over (a) histogram GBDT training and (b) the
// full SAFE pipeline (mining, generation, IV filter, redundancy filter,
// importance ranking), checking the serialized model / FeaturePlan stays
// byte-identical at every count.
//
// A second personality, --external_memory, exercises the out-of-core
// chunked dataframe: it streams a dataset several times larger than the
// spill pool's resident budget through generation → quantize/train →
// IV → Pearson → feature generation, reports rows/s, spill traffic and
// peak RSS into the RunReport, and (with --gate=) enforces the committed
// bench/baselines/scaling.json ceilings.
//
// Flags: --quick --threads=1,2,4,8 --sweep_rows=N --engine_sweep_rows=N
//        --report=path
//        --external_memory [--budget_mb=N --rows=N --features=N
//                           --gate=bench/baselines/scaling.json]

#include <sys/resource.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/harness.h"
#include "src/common/stopwatch.h"
#include "src/common/string_util.h"
#include "src/data/synthetic.h"
#include "src/dataframe/spill.h"
#include "src/gbdt/booster.h"
#include "src/stats/correlation.h"
#include "src/stats/iv.h"

namespace safe {
namespace bench {
namespace {

double TimeSafeFit(const Dataset& train, size_t miner_trees, uint64_t seed) {
  SafeParams params;
  params.seed = seed;
  params.miner.num_trees = miner_trees;
  baselines::SafeEngineer engineer(params);
  Stopwatch watch;
  auto plan = engineer.FitPlan(train, nullptr);
  SAFE_CHECK(plan.ok()) << plan.status().ToString();
  return watch.ElapsedSeconds();
}

Dataset MakeData(size_t rows, size_t features, uint64_t seed) {
  data::SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = std::max<size_t>(3, features / 4);
  spec.num_interactions = 3;
  spec.seed = seed;
  auto data = data::MakeSyntheticDataset(spec);
  SAFE_CHECK(data.ok());
  return *data;
}

/// Thread sweep over histogram GBDT training: fits the same large
/// synthetic workload at each thread count, reports wall time and
/// speedup vs 1 thread, and asserts the serialized models are
/// byte-identical — the determinism contract of DESIGN.md. Returns the
/// sweep as a JSON section for the telemetry RunReport.
obs::JsonValue ThreadSweep(const Flags& flags, bool quick) {
  const size_t rows = static_cast<size_t>(
      flags.GetInt("sweep_rows", quick ? 4000 : 20000));
  Dataset data = MakeData(rows, 20, 11);
  gbdt::GbdtParams params;
  params.num_trees = quick ? 10 : 30;
  params.max_depth = 6;
  params.max_bins = 256;

  std::cout << "=== Thread sweep: histogram GBDT training (" << rows
            << " rows x 20 features, " << params.num_trees
            << " trees) ===\n";
  TablePrinter table({"threads", "seconds", "speedup", "identical"},
                     {8, 9, 8, 10});
  table.PrintHeader();

  obs::JsonValue sweep = obs::JsonValue::Array();
  std::string reference_model;
  double base_seconds = 0.0;
  for (const std::string& t : flags.GetList("threads", "1,2,4,8")) {
    params.n_threads = static_cast<size_t>(std::stoul(t));
    Stopwatch watch;
    auto model = gbdt::Booster::Fit(data, nullptr, params);
    const double seconds = watch.ElapsedSeconds();
    SAFE_CHECK(model.ok()) << model.status().ToString();
    const std::string serialized = model->Serialize();
    if (reference_model.empty()) {
      reference_model = serialized;
      base_seconds = seconds;
    }
    const bool identical = serialized == reference_model;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    table.PrintRow({t, FormatDouble(seconds, 3), FormatDouble(speedup, 2),
                    identical ? "yes" : "NO"});
    SAFE_CHECK(identical)
        << "thread sweep: model at n_threads=" << t
        << " diverged from the 1-thread reference (determinism violation)";
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("threads", static_cast<double>(params.n_threads));
    entry.Set("seconds", seconds);
    entry.Set("speedup", speedup);
    entry.Set("identical", identical);
    sweep.Append(std::move(entry));
  }
  table.PrintSeparator();
  std::cout << "(models must be byte-identical at every thread count; "
               "speedup needs physical cores)\n\n";
  return sweep;
}

/// Thread sweep over the full SAFE pipeline: one SafeParams::n_threads
/// knob drives the miner/ranker boosters and every engine stage. Reports
/// total fit time plus the generation+selection wall-clock (the stages
/// the engine parallelizes outside GBDT training), asserts the
/// serialized FeaturePlan is byte-identical at every thread count, and
/// returns the sweep as a JSON section for the telemetry RunReport.
obs::JsonValue EngineThreadSweep(const Flags& flags, bool quick) {
  const size_t rows = static_cast<size_t>(
      flags.GetInt("engine_sweep_rows", quick ? 2000 : 8000));
  Dataset data = MakeData(rows, 16, 13);
  SafeParams params;
  params.seed = 7;
  params.miner.num_trees = quick ? 10 : 20;
  params.ranker.num_trees = quick ? 10 : 20;

  std::cout << "=== Thread sweep: full SAFE pipeline (" << rows
            << " rows x 16 features) ===\n";
  TablePrinter table(
      {"threads", "seconds", "speedup", "gensel_s", "gensel_x", "identical"},
      {8, 9, 8, 9, 9, 10});
  table.PrintHeader();

  obs::JsonValue sweep = obs::JsonValue::Array();
  std::string reference_plan;
  double base_seconds = 0.0;
  double base_gensel = 0.0;
  for (const std::string& t : flags.GetList("threads", "1,2,4,8")) {
    params.n_threads = static_cast<size_t>(std::stoul(t));
    SafeEngine engine(params);
    Stopwatch watch;
    auto fit = engine.Fit(data);
    const double seconds = watch.ElapsedSeconds();
    SAFE_CHECK(fit.ok()) << fit.status().ToString();
    const std::string serialized = fit->plan.Serialize();
    // Generation + selection wall-clock: every parallelized stage except
    // the two GBDT fits (mining trees, importance ranking), summed over
    // iterations from the engine's own stage timeline.
    double gensel = 0.0;
    obs::JsonValue stage_seconds = obs::JsonValue::Object();
    for (const auto& iter : fit->iterations) {
      for (const auto& stage : iter.stages) {
        if (stage.stage == "generate_features" ||
            stage.stage == "candidate_pool" || stage.stage == "iv_filter" ||
            stage.stage == "redundancy_filter") {
          gensel += stage.seconds;
        }
        stage_seconds.Set(stage.stage, stage.seconds);
      }
    }
    if (reference_plan.empty()) {
      reference_plan = serialized;
      base_seconds = seconds;
      base_gensel = gensel;
    }
    const bool identical = serialized == reference_plan;
    const double speedup = seconds > 0.0 ? base_seconds / seconds : 0.0;
    const double gensel_speedup = gensel > 0.0 ? base_gensel / gensel : 0.0;
    table.PrintRow({t, FormatDouble(seconds, 3), FormatDouble(speedup, 2),
                    FormatDouble(gensel, 3), FormatDouble(gensel_speedup, 2),
                    identical ? "yes" : "NO"});
    SAFE_CHECK(identical)
        << "engine thread sweep: FeaturePlan at n_threads=" << t
        << " diverged from the 1-thread reference (determinism violation)";
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("threads", static_cast<double>(params.n_threads));
    entry.Set("seconds", seconds);
    entry.Set("speedup", speedup);
    entry.Set("generation_selection_seconds", gensel);
    entry.Set("generation_selection_speedup", gensel_speedup);
    entry.Set("stage_seconds", std::move(stage_seconds));
    entry.Set("identical", identical);
    sweep.Append(std::move(entry));
  }
  table.PrintSeparator();
  std::cout << "(FeaturePlans must be byte-identical at every thread count; "
               "speedup needs physical cores)\n\n";
  return sweep;
}

// ---------------------------------------------------------------------------
// --external_memory mode
// ---------------------------------------------------------------------------

size_t PeakRssBytes() {
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  getrusage(RUSAGE_SELF, &usage);
  // ru_maxrss is KiB on Linux.
  return static_cast<size_t>(usage.ru_maxrss) * 1024;
}

/// Ceilings for the external-memory run, committed in
/// bench/baselines/scaling.json and enforced by the bench-scaling CI job.
struct ScalingGate {
  double max_peak_rss_bytes = 0.0;       // 0 = disabled
  double min_external_rows_per_s = 0.0;  // 0 = disabled
  bool require_identical = false;
};

Result<ScalingGate> ReadScalingGate(const std::string& baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    return Status::IoError("cannot open gate baseline '" + baseline_path +
                           "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue doc;
  std::string error;
  if (!obs::JsonValue::Parse(buffer.str(), &doc, &error)) {
    return Status::InvalidArgument("gate baseline '" + baseline_path +
                                   "': " + error);
  }
  ScalingGate gate;
  const obs::JsonValue* rss = doc.Find("max_peak_rss_bytes");
  if (rss == nullptr || rss->type() != obs::JsonValue::Type::kNumber) {
    return Status::InvalidArgument("gate baseline '" + baseline_path +
                                   "' lacks a numeric max_peak_rss_bytes");
  }
  gate.max_peak_rss_bytes = rss->number_value();
  const obs::JsonValue* rate = doc.Find("min_external_rows_per_s");
  if (rate != nullptr) {
    if (rate->type() != obs::JsonValue::Type::kNumber) {
      return Status::InvalidArgument(
          "gate baseline '" + baseline_path +
          "': min_external_rows_per_s must be a number");
    }
    gate.min_external_rows_per_s = rate->number_value();
  }
  const obs::JsonValue* identical = doc.Find("require_identical");
  if (identical != nullptr) {
    if (identical->type() != obs::JsonValue::Type::kBool) {
      return Status::InvalidArgument("gate baseline '" + baseline_path +
                                     "': require_identical must be a bool");
    }
    gate.require_identical = identical->bool_value();
  }
  return gate;
}

bool DoubleBitsEqual(const std::vector<double>& a,
                     const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Byte-identity stage: the chunked/spilling path must reproduce the
/// monolithic path bit for bit on a small dataset — GBDT model bytes,
/// IV scores, Pearson correlations and the fitted FeaturePlan.
bool CheckOutputsIdentical() {
  Dataset dense = MakeData(3 * 4096, 8, 23);
  SpillPool::Options options;
  options.resident_budget_bytes = 4096 * sizeof(double);  // one row group
  auto pool = SpillPool::Create(options);
  SAFE_CHECK(pool.ok());
  Dataset chunked = ToChunkedDataset(dense, *pool, 4096);

  gbdt::GbdtParams gbdt_params;
  gbdt_params.num_trees = 8;
  gbdt_params.max_depth = 3;
  auto dense_model = gbdt::Booster::Fit(dense, nullptr, gbdt_params);
  auto chunked_model = gbdt::Booster::Fit(chunked, nullptr, gbdt_params);
  SAFE_CHECK(dense_model.ok()) << dense_model.status().ToString();
  SAFE_CHECK(chunked_model.ok()) << chunked_model.status().ToString();
  bool identical =
      dense_model->Serialize() == chunked_model->Serialize();

  identical = identical &&
              DoubleBitsEqual(InformationValueBatch(dense.x, *dense.y, 10),
                              InformationValueBatch(chunked.x, *chunked.y, 10));

  std::vector<size_t> others;
  for (size_t c = 1; c < dense.x.num_columns(); ++c) others.push_back(c);
  identical = identical &&
              DoubleBitsEqual(PearsonAgainst(dense.x, 0, others),
                              PearsonAgainst(chunked.x, 0, others));

  SafeParams safe_params;
  safe_params.seed = 23;
  safe_params.miner.num_trees = 8;
  safe_params.ranker.num_trees = 8;
  SafeEngine engine(safe_params);
  auto dense_fit = engine.Fit(dense);
  auto chunked_fit = engine.Fit(chunked);
  SAFE_CHECK(dense_fit.ok()) << dense_fit.status().ToString();
  SAFE_CHECK(chunked_fit.ok()) << chunked_fit.status().ToString();
  identical = identical &&
              dense_fit->plan.Serialize() == chunked_fit->plan.Serialize();
  return identical;
}

/// A small hand-built plan (pairwise {×,+,−,÷} over adjacent columns) to
/// exercise the streaming feature-generation path at scale.
FeaturePlan MakeGenerationPlan(size_t num_features, size_t num_generated) {
  std::vector<std::string> inputs;
  for (size_t c = 0; c < num_features; ++c) {
    inputs.push_back("f" + std::to_string(c));
  }
  const char* kOps[] = {"mul", "add", "sub", "div"};
  std::vector<GeneratedFeature> generated;
  std::vector<std::string> selected;
  for (size_t g = 0; g < num_generated; ++g) {
    GeneratedFeature feature;
    feature.op = kOps[g % 4];
    const size_t a = (2 * g) % num_features;
    const size_t b = (2 * g + 1) % num_features;
    feature.name = "g" + std::to_string(g);
    feature.parents = {inputs[a], inputs[b]};
    generated.push_back(feature);
    selected.push_back(feature.name);
  }
  auto plan = FeaturePlan::Create(std::move(inputs), std::move(generated),
                                  std::move(selected));
  SAFE_CHECK(plan.ok()) << plan.status().ToString();
  return *plan;
}

int ExternalMemoryMain(const Flags& flags, bool quick) {
  Stopwatch total_watch;
  const size_t budget_mb = static_cast<size_t>(
      flags.GetInt("budget_mb", quick ? 64 : 256));
  const size_t rows = static_cast<size_t>(
      flags.GetInt("rows", quick ? (1 << 20) : (1 << 23)));
  const size_t features =
      static_cast<size_t>(flags.GetInt("features", 32));
  const size_t group_rows = kDefaultRowGroupRows;
  const size_t budget_bytes = budget_mb << 20;
  const size_t dataset_bytes = rows * features * sizeof(double);

  std::cout << "=== External memory: " << rows << " rows x " << features
            << " features (" << (dataset_bytes >> 20)
            << " MiB) through a " << budget_mb
            << " MiB resident budget ===\n";

  std::cout << "byte-identity (chunked vs monolithic) ... " << std::flush;
  const bool outputs_identical = CheckOutputsIdentical();
  std::cout << (outputs_identical ? "identical\n" : "DIVERGED\n");

  SpillPool::Options options;
  options.resident_budget_bytes = budget_bytes;
  auto pool = SpillPool::Create(options);
  SAFE_CHECK(pool.ok()) << pool.status().ToString();

  data::SyntheticSpec spec;
  spec.num_rows = rows;
  spec.num_features = features;
  spec.num_informative = std::max<size_t>(3, features / 4);
  spec.num_interactions = 3;
  spec.missing_rate = 0.05;
  spec.seed = 29;

  TablePrinter table({"stage", "seconds", "rows/s"}, {18, 9, 12});
  table.PrintHeader();
  obs::JsonValue stages = obs::JsonValue::Array();
  double pipeline_seconds = 0.0;
  auto record_stage = [&](const std::string& name, double seconds) {
    pipeline_seconds += seconds;
    const double rate = seconds > 0.0 ? rows / seconds : 0.0;
    table.PrintRow({name, FormatDouble(seconds, 3),
                    FormatDouble(rate, 0)});
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("stage", name);
    entry.Set("seconds", seconds);
    entry.Set("rows_per_s", rate);
    stages.Append(std::move(entry));
  };

  Stopwatch watch;
  auto dataset = data::MakeSyntheticDatasetChunked(spec, *pool, group_rows);
  SAFE_CHECK(dataset.ok()) << dataset.status().ToString();
  record_stage("generate", watch.ElapsedSeconds());

  gbdt::GbdtParams gbdt_params;
  gbdt_params.num_trees = quick ? 4 : 8;
  gbdt_params.max_depth = 4;
  gbdt_params.max_bins = 64;
  watch.Restart();
  auto model = gbdt::Booster::Fit(*dataset, nullptr, gbdt_params);
  SAFE_CHECK(model.ok()) << model.status().ToString();
  record_stage("quantize+train", watch.ElapsedSeconds());

  watch.Restart();
  const std::vector<double> iv =
      InformationValueBatch(dataset->x, *dataset->y, 10);
  SAFE_CHECK(iv.size() == features);
  record_stage("iv_filter", watch.ElapsedSeconds());

  watch.Restart();
  std::vector<size_t> others;
  for (size_t c = 1; c < features; ++c) others.push_back(c);
  const std::vector<double> pearson =
      PearsonAgainst(dataset->x, 0, others);
  SAFE_CHECK(pearson.size() == others.size());
  record_stage("pearson", watch.ElapsedSeconds());

  watch.Restart();
  const FeaturePlan plan = MakeGenerationPlan(features, 8);
  auto generated = plan.Transform(dataset->x);
  SAFE_CHECK(generated.ok()) << generated.status().ToString();
  SAFE_CHECK(generated->HasChunkedColumns());
  record_stage("generate_features", watch.ElapsedSeconds());
  table.PrintSeparator();

  const double external_rows_per_s =
      pipeline_seconds > 0.0 ? rows / pipeline_seconds : 0.0;
  const size_t peak_rss = PeakRssBytes();
  const SpillPoolStats spill = (*pool)->stats();
  std::cout << "pipeline: " << FormatDouble(pipeline_seconds, 2) << " s ("
            << FormatDouble(external_rows_per_s, 0) << " rows/s), peak RSS "
            << (peak_rss >> 20) << " MiB, spill wrote "
            << (spill.spill_write_bytes >> 20) << " MiB / read "
            << (spill.spill_read_bytes >> 20) << " MiB, " << spill.evictions
            << " evictions, " << spill.faults << " faults\n";
  std::cout << "dataset/budget ratio: "
            << FormatDouble(static_cast<double>(dataset_bytes) /
                                static_cast<double>(budget_bytes),
                            2)
            << "x\n\n";

  obs::JsonValue section = obs::JsonValue::Object();
  section.Set("rows", static_cast<double>(rows));
  section.Set("features", static_cast<double>(features));
  section.Set("group_rows", static_cast<double>(group_rows));
  section.Set("dataset_bytes", static_cast<double>(dataset_bytes));
  section.Set("budget_bytes", static_cast<double>(budget_bytes));
  section.Set("outputs_identical", outputs_identical);
  section.Set("stages", std::move(stages));
  section.Set("pipeline_seconds", pipeline_seconds);
  section.Set("external_rows_per_s", external_rows_per_s);
  section.Set("peak_rss_bytes", static_cast<double>(peak_rss));
  obs::JsonValue spill_json = obs::JsonValue::Object();
  spill_json.Set("evictions", static_cast<double>(spill.evictions));
  spill_json.Set("faults", static_cast<double>(spill.faults));
  spill_json.Set("write_bytes", static_cast<double>(spill.spill_write_bytes));
  spill_json.Set("read_bytes", static_cast<double>(spill.spill_read_bytes));
  spill_json.Set("file_bytes", static_cast<double>(spill.file_bytes));
  spill_json.Set("resident_bytes", static_cast<double>(spill.resident_bytes));
  spill_json.Set("num_groups", static_cast<double>(spill.num_groups));
  section.Set("spill", std::move(spill_json));

  std::vector<std::pair<std::string, obs::JsonValue>> sections;
  sections.emplace_back("external_memory", std::move(section));
  EmitRunReport(flags, "bench_scaling", total_watch.ElapsedSeconds(),
                nullptr, false, &sections);

  const std::string gate_path = flags.GetString("gate", "");
  if (!gate_path.empty()) {
    auto gate = ReadScalingGate(gate_path);
    if (!gate.ok()) {
      std::cerr << "bench_scaling: " << gate.status().ToString() << "\n";
      return 1;
    }
    bool failed = false;
    if (gate->require_identical && !outputs_identical) {
      std::cerr << "scaling gate failed: chunked outputs diverged from the "
                   "monolithic path\n";
      failed = true;
    }
    if (gate->max_peak_rss_bytes > 0 &&
        static_cast<double>(peak_rss) > gate->max_peak_rss_bytes) {
      std::cerr << "scaling gate failed: peak RSS " << peak_rss
                << " bytes exceeds ceiling "
                << FormatDouble(gate->max_peak_rss_bytes, 0) << "\n";
      failed = true;
    }
    if (gate->min_external_rows_per_s > 0 &&
        external_rows_per_s < gate->min_external_rows_per_s) {
      std::cerr << "scaling gate failed: " << FormatDouble(external_rows_per_s, 0)
                << " rows/s below floor "
                << FormatDouble(gate->min_external_rows_per_s, 0) << "\n";
      failed = true;
    }
    if (failed) return 1;
    std::cout << "scaling gate passed (" << gate_path << ")\n";
  }
  return 0;
}

int Main(int argc, char** argv) {
  Stopwatch total_watch;
  Flags flags(argc, argv);
  ArmTraceFromFlags(flags);
  const bool quick = flags.GetBool("quick", false);
  if (flags.GetBool("external_memory", false)) {
    return ExternalMemoryMain(flags, quick);
  }
  const double scale = quick ? 0.2 : 1.0;

  std::cout << "=== Scaling: SAFE fit time vs N (rows), Eq. 13 predicts "
               "~linear ===\n";
  TablePrinter rows_table({"N", "seconds", "sec/N x1e6"}, {8, 9, 11});
  rows_table.PrintHeader();
  for (size_t n : {2000, 4000, 8000, 16000, 32000}) {
    const size_t rows = static_cast<size_t>(n * scale);
    Dataset data = MakeData(rows, 12, 5);
    const double seconds = TimeSafeFit(data, 20, 3);
    rows_table.PrintRow({std::to_string(rows), FormatDouble(seconds, 3),
                         FormatDouble(1e6 * seconds / rows, 2)});
  }
  rows_table.PrintSeparator();
  std::cout << "(sec/N should stay roughly flat)\n\n";

  std::cout << "=== Scaling: SAFE fit time vs miner trees K1 ===\n";
  TablePrinter trees_table({"K1", "seconds"}, {6, 9});
  trees_table.PrintHeader();
  Dataset fixed = MakeData(static_cast<size_t>(8000 * scale), 12, 5);
  for (size_t k1 : {5, 10, 20, 40, 80}) {
    trees_table.PrintRow(
        {std::to_string(k1), FormatDouble(TimeSafeFit(fixed, k1, 3), 3)});
  }
  trees_table.PrintSeparator();
  std::cout << "(the paper: 'we can easily control ... the time complexity "
               "of the algorithm by controlling the total number of trees')\n\n";

  std::cout << "=== Scaling: SAFE vs TFC in M (features) ===\n";
  TablePrinter m_table({"M", "SAFE s", "TFC s"}, {6, 9, 9});
  m_table.PrintHeader();
  for (size_t m : {8, 16, 32, 64}) {
    Dataset data = MakeData(static_cast<size_t>(4000 * scale), m, 9);
    const double safe_seconds = TimeSafeFit(data, 20, 3);
    baselines::TfcParams tfc_params;
    baselines::TfcEngineer tfc(tfc_params);
    Stopwatch watch;
    auto plan = tfc.FitPlan(data, nullptr);
    const double tfc_seconds =
        plan.ok() ? watch.ElapsedSeconds() : -1.0;
    m_table.PrintRow({std::to_string(m), FormatDouble(safe_seconds, 3),
                      tfc_seconds < 0 ? "fail"
                                      : FormatDouble(tfc_seconds, 3)});
  }
  m_table.PrintSeparator();
  std::cout << "(TFC grows ~quadratically in M; SAFE stays governed by its "
               "tree budget)\n\n";

  obs::JsonValue sweep = ThreadSweep(flags, quick);
  obs::JsonValue engine_sweep = EngineThreadSweep(flags, quick);
  std::vector<std::pair<std::string, obs::JsonValue>> sections;
  sections.emplace_back("thread_sweep", std::move(sweep));
  sections.emplace_back("engine_thread_sweep", std::move(engine_sweep));
  EmitRunReport(flags, "bench_scaling", total_watch.ElapsedSeconds(),
                nullptr, false, &sections);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace safe

int main(int argc, char** argv) { return safe::bench::Main(argc, argv); }
