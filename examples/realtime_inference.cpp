// Real-time inference — the paper's third industrial requirement
// (Section I): once Ψ is learned it must transform ONE incoming event
// instantly so a fraud decision can follow.
//
//   ./examples/realtime_inference
//
// Demonstrates: fit SAFE offline -> serialize Ψ and the scoring model to
// disk -> reload in a fresh "serving" context -> score single events via
// FeaturePlan::TransformRow + Booster::PredictRowProba, reporting
// per-event latency.

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/common/stopwatch.h"
#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"
#include "src/stats/auc.h"

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  return static_cast<bool>(out);
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main() {
  using namespace safe;

  // ------------------------------------------------ offline training
  data::SyntheticSpec spec;
  spec.num_rows = 6000;
  spec.num_features = 15;
  spec.num_informative = 6;
  spec.num_interactions = 5;
  spec.positive_rate = 0.1;
  spec.seed = 99;
  auto split = data::MakeSyntheticSplit(spec, 4000, 0, 2000);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }

  SafeParams params;
  params.seed = 13;
  SafeEngine engine(params);
  auto fit = engine.Fit(split->train);
  if (!fit.ok()) {
    std::cerr << fit.status().ToString() << "\n";
    return 1;
  }

  auto train_z = fit->plan.Transform(split->train.x);
  if (!train_z.ok()) {
    std::cerr << train_z.status().ToString() << "\n";
    return 1;
  }
  gbdt::GbdtParams model_params;
  model_params.num_trees = 60;
  Dataset train{*train_z, split->train.y};
  auto model = gbdt::Booster::Fit(train, nullptr, model_params);
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }

  const std::string plan_path = "/tmp/safe_plan.txt";
  const std::string model_path = "/tmp/safe_model.txt";
  if (!WriteFile(plan_path, fit->plan.Serialize()) ||
      !WriteFile(model_path, model->Serialize())) {
    std::cerr << "failed to persist artifacts\n";
    return 1;
  }
  std::cout << "Offline: plan (" << fit->plan.selected().size()
            << " features) and model (" << model->trees().size()
            << " trees) written to /tmp\n";

  // ------------------------------------------------ serving process
  auto plan = FeaturePlan::Deserialize(ReadFile(plan_path));
  auto scorer = gbdt::Booster::Deserialize(ReadFile(model_path));
  if (!plan.ok() || !scorer.ok()) {
    std::cerr << "failed to reload artifacts\n";
    return 1;
  }

  // Score the test stream one event at a time, as a serving system would.
  std::vector<double> scores;
  scores.reserve(split->test.num_rows());
  Stopwatch watch;
  for (size_t r = 0; r < split->test.num_rows(); ++r) {
    auto features = plan->TransformRow(split->test.x.Row(r));
    if (!features.ok()) {
      std::cerr << features.status().ToString() << "\n";
      return 1;
    }
    scores.push_back(scorer->PredictRowProba(*features));
  }
  const double total_ms = watch.ElapsedMillis();
  const double per_event_us =
      1000.0 * total_ms / static_cast<double>(split->test.num_rows());

  auto auc = Auc(scores, split->test.labels());
  std::cout << "Serving: scored " << split->test.num_rows()
            << " events one-by-one in " << total_ms << " ms  ("
            << per_event_us << " us/event)\n";
  std::cout << "Stream AUC: " << (auc.ok() ? 100.0 * *auc : 0.0) << "\n";
  std::cout << "(every generated feature uses only per-event arithmetic + "
               "parameters learned offline, so Ψ is real-time by "
               "construction)\n";
  return auc.ok() && *auc > 0.6 ? 0 : 1;
}
