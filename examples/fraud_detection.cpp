// Fraud detection at business scale — the deployment scenario of the
// paper's Section V-B: a heavily imbalanced dataset in the shape of Ant
// Financial's Data1, SAFE feature engineering, and the three production
// classifiers of Table VIII (LR, RF, XGB).
//
//   ./examples/fraud_detection [row_scale]
//
// row_scale (default 0.01) scales the paper's 2.5M-row training set.

#include <cstdlib>
#include <iostream>

#include "src/common/stopwatch.h"
#include "src/core/engine.h"
#include "src/data/business.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"
#include "src/stats/descriptive.h"

int main(int argc, char** argv) {
  using namespace safe;

  double row_scale = 0.01;
  if (argc > 1) row_scale = std::atof(argv[1]);

  const auto& info = data::BusinessSuite()[0];  // Data1: 81 features
  std::cout << "Generating the Data1 analogue (paper: " << info.n_train
            << " train rows; here row_scale=" << row_scale << ") ...\n";
  auto split = data::MakeBusinessSplit(info, row_scale);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }
  const double fraud_rate =
      static_cast<double>(CountEqual(split->train.labels(), 1.0)) /
      static_cast<double>(split->train.num_rows());
  std::cout << "  " << split->train.num_rows() << " train / "
            << split->valid.num_rows() << " valid / "
            << split->test.num_rows() << " test rows, "
            << split->train.x.num_columns() << " features, fraud rate "
            << 100.0 * fraud_rate << "%\n\n";

  // SAFE with the paper's production settings: one iteration, arithmetic
  // operators, output capped at 2M features.
  SafeParams params;
  params.seed = 11;
  params.max_output_features = 2 * split->train.x.num_columns();
  SafeEngine engine(params);
  Stopwatch watch;
  auto result = engine.Fit(split->train, &split->valid);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "SAFE fit in " << watch.ElapsedSeconds() << "s; "
            << result->plan.NumSelectedGenerated()
            << " generated features among " << result->plan.selected().size()
            << " selected\n\n";

  auto train_z = result->plan.Transform(split->train.x);
  auto test_z = result->plan.Transform(split->test.x);
  if (!train_z.ok() || !test_z.ok()) {
    std::cerr << "transform failed\n";
    return 1;
  }

  std::cout << "AUC (x100), original vs SAFE features:\n";
  bool all_improved = true;
  for (auto kind : {models::ClassifierKind::kLogisticRegression,
                    models::ClassifierKind::kRandomForest,
                    models::ClassifierKind::kXgboost}) {
    auto eval = [&](const DataFrame& train_x,
                    const DataFrame& test_x) -> double {
      auto clf = models::MakeClassifier(kind, 5);
      Dataset train{train_x, split->train.y};
      if (!clf->Fit(train).ok()) return 0.0;
      auto scores = clf->PredictScores(test_x);
      if (!scores.ok()) return 0.0;
      auto auc = Auc(*scores, split->test.labels());
      return auc.ok() ? *auc : 0.0;
    };
    const double auc_orig = eval(split->train.x, split->test.x);
    const double auc_safe = eval(*train_z, *test_z);
    std::cout << "  " << models::ClassifierShortName(kind) << ": "
              << 100.0 * auc_orig << " -> " << 100.0 * auc_safe << "  ("
              << (auc_safe >= auc_orig ? "+" : "")
              << 100.0 * (auc_safe - auc_orig) << ")\n";
    if (auc_safe < auc_orig - 0.01) all_improved = false;
  }
  std::cout << "\n(paper Table VIII: SAFE improves every classifier on "
               "every business dataset)\n";
  return all_improved ? 0 : 1;
}
