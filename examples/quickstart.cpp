// Quickstart: learn a SAFE feature plan on a small synthetic dataset and
// show the AUC uplift it gives a downstream classifier.
//
//   ./examples/quickstart
//
// Walks the full public API: generate data -> SafeEngine::Fit -> inspect
// the plan -> Transform train/test -> compare a classifier on original vs
// engineered features.

#include <iostream>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"

int main() {
  using namespace safe;

  // 1. A dataset whose signal hides in pairwise feature interactions —
  //    the regime SAFE is built for.
  data::SyntheticSpec spec;
  spec.num_rows = 4000;
  spec.num_features = 12;
  spec.num_informative = 5;
  spec.num_interactions = 4;
  spec.linear_weight = 0.2;
  spec.seed = 2024;
  auto split = data::MakeSyntheticSplit(spec, 2500, 500, 1000);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }

  // 2. Fit SAFE (paper Algorithm 1). Defaults: one iteration, {+,-,*,/},
  //    output capped at 2x the original feature count.
  SafeParams params;
  params.seed = 7;
  SafeEngine engine(params);
  auto result = engine.Fit(split->train, &split->valid);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  const FeaturePlan& plan = result->plan;

  std::cout << "SAFE selected " << plan.selected().size() << " features ("
            << plan.NumSelectedGenerated() << " generated):\n";
  for (const auto& name : plan.selected()) {
    std::cout << "  " << name << "\n";
  }
  const auto& diag = result->iterations[0];
  std::cout << "\nIteration funnel: " << diag.num_paths << " tree paths -> "
            << diag.num_combinations << " combinations -> "
            << diag.num_generated << " generated -> " << diag.num_after_iv
            << " after IV filter -> " << diag.num_after_redundancy
            << " after redundancy filter -> " << diag.num_selected
            << " selected (" << diag.seconds << "s)\n";

  // 3. Evaluate: same classifier, original vs engineered features.
  auto evaluate = [&](const DataFrame& train_x,
                      const DataFrame& test_x) -> double {
    auto clf = models::MakeClassifier(
        models::ClassifierKind::kLogisticRegression, 3);
    Dataset train{train_x, split->train.y};
    if (!clf->Fit(train).ok()) return 0.0;
    auto scores = clf->PredictScores(test_x);
    if (!scores.ok()) return 0.0;
    auto auc = Auc(*scores, split->test.labels());
    return auc.ok() ? *auc : 0.0;
  };

  auto train_z = plan.Transform(split->train.x);
  auto test_z = plan.Transform(split->test.x);
  if (!train_z.ok() || !test_z.ok()) {
    std::cerr << "transform failed\n";
    return 1;
  }
  const double auc_orig = evaluate(split->train.x, split->test.x);
  const double auc_safe = evaluate(*train_z, *test_z);
  std::cout << "\nLogistic regression AUC\n";
  std::cout << "  original features:   " << 100.0 * auc_orig << "\n";
  std::cout << "  SAFE features:       " << 100.0 * auc_safe << "\n";
  std::cout << "  uplift:              " << 100.0 * (auc_safe - auc_orig)
            << " points\n";
  return auc_safe > auc_orig ? 0 : 1;
}
