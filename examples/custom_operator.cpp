// Extending SAFE with a domain-specific operator — the paper's
// requirement that "new operators should be easily added" (Section III
// mentions lag operators in time series, genetic operators in biology).
//
//   ./examples/custom_operator
//
// Registers a log-ratio operator log(|a| / |b|) — a classic risk-feature
// shape for monetary amounts — runs SAFE with it alongside the built-in
// arithmetic, and shows generated features using it end to end,
// including plan serialization.

#include <cmath>
#include <iostream>
#include <limits>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"

namespace {

/// log(|a| / |b|): scale-free comparison of two magnitudes.
class LogRatioOp : public safe::Operator {
 public:
  std::string name() const override { return "logratio"; }
  size_t arity() const override { return 2; }
  bool commutative() const override { return false; }
  double Apply(const double* in,
               const std::vector<double>&) const override {
    const double a = std::fabs(in[0]);
    const double b = std::fabs(in[1]);
    if (a <= 0.0 || b <= 0.0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return std::log(a / b);
  }
};

}  // namespace

int main() {
  using namespace safe;

  data::SyntheticSpec spec;
  spec.num_rows = 4000;
  spec.num_features = 10;
  spec.num_informative = 4;
  spec.num_interactions = 4;
  spec.seed = 31;
  auto split = data::MakeSyntheticSplit(spec, 2500, 0, 1500);
  if (!split.ok()) {
    std::cerr << split.status().ToString() << "\n";
    return 1;
  }

  // Build a registry = arithmetic + the custom operator, and tell SAFE to
  // draw from all five.
  OperatorRegistry registry = OperatorRegistry::Arithmetic();
  if (!registry.Register(std::make_shared<LogRatioOp>()).ok()) {
    std::cerr << "registration failed\n";
    return 1;
  }
  SafeParams params;
  params.seed = 5;
  params.operator_names = {"add", "sub", "mul", "div", "logratio"};
  SafeEngine engine(params, registry);

  auto result = engine.Fit(split->train);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  size_t custom_count = 0;
  for (const auto& feature : result->plan.generated()) {
    if (feature.op == "logratio") ++custom_count;
  }
  std::cout << "Plan generated " << result->plan.generated().size()
            << " features, " << custom_count << " via the custom operator:\n";
  for (const auto& feature : result->plan.generated()) {
    if (feature.op == "logratio") {
      std::cout << "  " << feature.name << "\n";
    }
  }

  // The custom registry must also be supplied when replaying the plan.
  auto train_z = result->plan.Transform(split->train.x, registry);
  auto test_z = result->plan.Transform(split->test.x, registry);
  if (!train_z.ok() || !test_z.ok()) {
    std::cerr << "transform failed\n";
    return 1;
  }
  auto clf =
      models::MakeClassifier(models::ClassifierKind::kLogisticRegression, 3);
  Dataset train{*train_z, split->train.y};
  if (!clf->Fit(train).ok()) {
    std::cerr << "fit failed\n";
    return 1;
  }
  auto scores = clf->PredictScores(*test_z);
  auto auc = Auc(*scores, split->test.labels());
  std::cout << "\nAUC with the extended operator set: "
            << (auc.ok() ? 100.0 * *auc : 0.0) << "\n";

  // Serialization round-trips the custom op by name; deserialization
  // succeeds anywhere the operator is registered.
  auto back = FeaturePlan::Deserialize(result->plan.Serialize());
  if (!back.ok() || !back->Transform(split->test.x, registry).ok()) {
    std::cerr << "custom-operator plan failed to round-trip\n";
    return 1;
  }
  std::cout << "Plan with the custom operator serialized and replayed "
               "successfully.\n";
  return 0;
}
