#include "src/gbdt/booster.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>

#include "src/common/random.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/gbdt/exact_trainer.h"
#include "src/gbdt/loss.h"
#include "src/gbdt/quantizer.h"
#include "src/gbdt/trainer.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {
namespace gbdt {

namespace {

obs::Counter* TreesTrainedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->counter("gbdt.trees_trained");
  return counter;
}

obs::Counter* FitsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->counter("gbdt.fits");
  return counter;
}

obs::Histogram* TreeFitHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global()->histogram(
          "gbdt.tree_fit_us", obs::DefaultLatencyBucketsUs());
  return histogram;
}

/// Fixed row grain for margin/prediction updates; like the trainer's row
/// chunks, it depends only on the data so results are thread-count
/// invariant (each row is written independently anyway).
constexpr size_t kPredictRowGrain = 2048;

/// Tree traversal over a pinned row window for one row index. All
/// prediction loops chunk rows at kPredictRowGrain (which divides every
/// legal row-group size), so each chunk's window pins one row group per
/// chunked column and traversal stays allocation-free.
double PredictTreeOnWindow(const RegressionTree& tree,
                           const FrameWindow& window, size_t row) {
  const auto& nodes = tree.nodes();
  if (nodes.empty()) return 0.0;
  int idx = 0;
  while (!nodes[static_cast<size_t>(idx)].is_leaf()) {
    const TreeNode& node = nodes[static_cast<size_t>(idx)];
    const double v = window.at(row, static_cast<size_t>(node.feature));
    if (std::isnan(v)) {
      idx = node.default_left ? node.left : node.right;
    } else {
      idx = (v <= node.threshold) ? node.left : node.right;
    }
  }
  return nodes[static_cast<size_t>(idx)].value;
}

}  // namespace

Result<Booster> Booster::Fit(const Dataset& train, const Dataset* valid,
                             const GbdtParams& params) {
  const size_t n = train.num_rows();
  const size_t m = train.x.num_columns();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("gbdt: empty training data");
  }
  if (train.y == nullptr || train.y->size() != n) {
    return Status::InvalidArgument("gbdt: label size mismatch");
  }
  if (params.num_trees == 0) {
    return Status::InvalidArgument("gbdt: num_trees must be > 0");
  }
  if (params.learning_rate <= 0.0) {
    return Status::InvalidArgument("gbdt: learning_rate must be > 0");
  }
  if (params.early_stopping_rounds > 0 && valid == nullptr) {
    return Status::InvalidArgument(
        "gbdt: early stopping requires a validation set");
  }
  if (valid != nullptr && valid->x.num_columns() != m) {
    return Status::InvalidArgument("gbdt: valid column count mismatch");
  }
  if (params.tree_method == TreeMethod::kExact &&
      train.x.HasChunkedColumns()) {
    // The exact trainer pre-sorts whole columns in place; only the
    // histogram path streams over row groups.
    return Status::InvalidArgument(
        "gbdt: tree_method=exact requires resident (non-chunked) columns");
  }

  SAFE_TRACE_SPAN("gbdt.fit");
  SAFE_FR_SCOPE("gbdt.fit");
  FitsCounter()->Increment();

  // Worker pool for this fit: 0 = the shared process-wide pool, 1 =
  // serial (pool stays null), k > 1 = a dedicated pool. The trained model
  // is bit-identical across all three (see DESIGN.md).
  PoolSelection pool_selection = ResolvePool(params.n_threads);
  ThreadPool* pool = pool_selection.pool;
  obs::MetricsRegistry::Global()->gauge("gbdt.n_threads")->Set(
      static_cast<double>(pool_selection.num_threads()));

  // Histogram path quantizes up front; the exact path pre-sorts columns.
  BinnedMatrix matrix;
  if (params.tree_method == TreeMethod::kHist) {
    SAFE_TRACE_SPAN("gbdt.quantize");
    SAFE_FR_SCOPE("gbdt.quantize");
    SAFE_ASSIGN_OR_RETURN(
        FeatureQuantizer quantizer,
        FeatureQuantizer::Fit(train.x, params.max_bins, pool));
    SAFE_ASSIGN_OR_RETURN(matrix, quantizer.Transform(train.x, pool));
  }

  Booster model;
  model.num_features_ = m;
  model.objective_ = params.objective;
  model.base_score_ = BaseScore(params.objective, *train.y);

  std::vector<double> margins(n, model.base_score_);
  std::vector<double> valid_margins;
  if (valid != nullptr) {
    valid_margins.assign(valid->num_rows(), model.base_score_);
  }

  std::vector<double> grad;
  std::vector<double> hess;
  Rng rng(params.seed);
  TreeTrainer hist_trainer(&matrix, &params, pool);
  ExactTreeTrainer exact_trainer(
      params.tree_method == TreeMethod::kExact ? &train.x : nullptr,
      &params);

  double best_valid_loss = std::numeric_limits<double>::infinity();
  size_t best_iter = 0;

  std::vector<int> all_features(m);
  for (size_t f = 0; f < m; ++f) all_features[f] = static_cast<int>(f);

  for (size_t round = 0; round < params.num_trees; ++round) {
    SAFE_TRACE_SPAN("gbdt.train_tree");
    SAFE_FR_SCOPE("gbdt.train_tree");
    const uint64_t tree_start_ns = obs::NowNanos();
    ComputeGradients(params.objective, margins, *train.y, &grad, &hess,
                     pool);

    // Row subsampling.
    std::vector<size_t> rows;
    if (params.subsample >= 1.0) {
      rows.resize(n);
      for (size_t i = 0; i < n; ++i) rows[i] = i;
    } else {
      rows.reserve(static_cast<size_t>(params.subsample * n) + 1);
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextBernoulli(params.subsample)) rows.push_back(i);
      }
      if (rows.empty()) rows.push_back(rng.NextUint64Below(n));
    }

    // Column subsampling.
    std::vector<int> features;
    if (params.colsample_bytree >= 1.0) {
      features = all_features;
    } else {
      size_t k = std::max<size_t>(
          1, static_cast<size_t>(params.colsample_bytree * m));
      for (size_t idx : rng.SampleWithoutReplacement(m, k)) {
        features.push_back(static_cast<int>(idx));
      }
      std::sort(features.begin(), features.end());
    }

    RegressionTree tree =
        params.tree_method == TreeMethod::kExact
            ? exact_trainer.Train(grad, hess, rows, features)
            : hist_trainer.Train(grad, hess, rows, features);
    // Update margins over the full training set (each row independent).
    ParallelForChunks(pool, 0, n, kPredictRowGrain,
                      [&](size_t, size_t lo, size_t hi) {
                        FrameWindow window(train.x, lo, hi);
                        for (size_t i = lo; i < hi; ++i) {
                          margins[i] += PredictTreeOnWindow(tree, window, i);
                        }
                      });
    model.trees_.push_back(std::move(tree));
    model.best_iteration_ = model.trees_.size() - 1;
    TreesTrainedCounter()->Increment();
    TreeFitHistogram()->Observe(
        static_cast<double>(obs::NowNanos() - tree_start_ns) / 1e3);

    if (valid != nullptr) {
      const auto& t = model.trees_.back();
      ParallelForChunks(pool, 0, valid_margins.size(), kPredictRowGrain,
                        [&](size_t, size_t lo, size_t hi) {
                          FrameWindow window(valid->x, lo, hi);
                          for (size_t i = lo; i < hi; ++i) {
                            valid_margins[i] +=
                                PredictTreeOnWindow(t, window, i);
                          }
                        });
      if (params.early_stopping_rounds > 0) {
        const double loss =
            ComputeLoss(params.objective, valid_margins, *valid->y);
        if (loss + 1e-12 < best_valid_loss) {
          best_valid_loss = loss;
          best_iter = round;
        } else if (round - best_iter >= params.early_stopping_rounds) {
          model.trees_.resize(best_iter + 1);
          model.best_iteration_ = best_iter;
          break;
        }
      }
    }
  }
  return model;
}

Result<std::vector<double>> Booster::PredictMargin(const DataFrame& x) const {
  if (x.num_columns() != num_features_) {
    return Status::InvalidArgument(
        "gbdt predict: expected " + std::to_string(num_features_) +
        " features, got " + std::to_string(x.num_columns()));
  }
  // Batch inference fans rows out over the shared pool; margins[r] is
  // only ever touched by the task owning row r, so the result is exact
  // at any thread count.
  std::vector<double> margins(x.num_rows(), base_score_);
  ParallelForChunks(ThreadPool::Global(), 0, x.num_rows(), kPredictRowGrain,
                    [&](size_t, size_t lo, size_t hi) {
                      FrameWindow window(x, lo, hi);
                      for (size_t r = lo; r < hi; ++r) {
                        for (const auto& tree : trees_) {
                          margins[r] += PredictTreeOnWindow(tree, window, r);
                        }
                      }
                    });
  return margins;
}

Result<std::vector<double>> Booster::PredictProba(const DataFrame& x) const {
  SAFE_ASSIGN_OR_RETURN(std::vector<double> margins, PredictMargin(x));
  for (double& v : margins) v = TransformMargin(objective_, v);
  return margins;
}

double Booster::PredictRowMargin(const std::vector<double>& row) const {
  SAFE_CHECK(row.size() == num_features_);
  double margin = base_score_;
  for (const auto& tree : trees_) margin += tree.PredictRow(row);
  return margin;
}

double Booster::PredictRowProba(const std::vector<double>& row) const {
  return TransformMargin(objective_, PredictRowMargin(row));
}

std::vector<TreePath> Booster::ExtractAllPaths() const {
  std::vector<TreePath> paths;
  for (const auto& tree : trees_) {
    auto tree_paths = tree.ExtractPaths();
    paths.insert(paths.end(), std::make_move_iterator(tree_paths.begin()),
                 std::make_move_iterator(tree_paths.end()));
  }
  return paths;
}

std::vector<int> Booster::SplitFeatures() const {
  std::set<int> features;
  for (const auto& tree : trees_) {
    for (const auto& node : tree.nodes()) {
      if (!node.is_leaf()) features.insert(node.feature);
    }
  }
  return std::vector<int>(features.begin(), features.end());
}

std::vector<FeatureImportance> Booster::FeatureImportances() const {
  std::map<int, FeatureImportance> by_feature;
  for (const auto& tree : trees_) {
    for (const auto& node : tree.nodes()) {
      if (node.is_leaf()) continue;
      FeatureImportance& fi = by_feature[node.feature];
      fi.feature = node.feature;
      fi.total_gain += node.gain;
      fi.num_splits += 1;
    }
  }
  std::vector<FeatureImportance> out;
  out.reserve(by_feature.size());
  for (auto& [feature, fi] : by_feature) {
    fi.avg_gain = fi.total_gain / static_cast<double>(fi.num_splits);
    out.push_back(fi);
  }
  std::sort(out.begin(), out.end(),
            [](const FeatureImportance& a, const FeatureImportance& b) {
              if (a.avg_gain != b.avg_gain) return a.avg_gain > b.avg_gain;
              return a.feature < b.feature;
            });
  return out;
}

std::string Booster::Serialize() const {
  std::ostringstream out;
  out << "booster v1\n";
  out << "objective "
      << (objective_ == Objective::kLogistic ? "logistic" : "squared")
      << "\n";
  out << "num_features " << num_features_ << "\n";
  out << "base_score " << FormatDoubleExact(base_score_) << "\n";
  out << "num_trees " << trees_.size() << "\n";
  for (const auto& tree : trees_) out << tree.Serialize();
  return out.str();
}

Result<Booster> Booster::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  std::string version;
  in >> tag >> version;
  if (!in || tag != "booster" || version != "v1") {
    return Status::InvalidArgument("booster deserialize: bad header");
  }
  Booster model;
  std::string key;
  std::string objective;
  size_t num_trees = 0;
  in >> key >> objective;
  if (!in || key != "objective") {
    return Status::InvalidArgument("booster deserialize: missing objective");
  }
  model.objective_ =
      objective == "logistic" ? Objective::kLogistic : Objective::kSquared;
  in >> key >> model.num_features_;
  if (!in || key != "num_features") {
    return Status::InvalidArgument(
        "booster deserialize: missing num_features");
  }
  in >> key >> model.base_score_;
  if (!in || key != "base_score") {
    return Status::InvalidArgument("booster deserialize: missing base_score");
  }
  in >> key >> num_trees;
  if (!in || key != "num_trees") {
    return Status::InvalidArgument("booster deserialize: missing num_trees");
  }
  // Each tree block: "tree <n>" then n node lines (7 fields per line).
  for (size_t t = 0; t < num_trees; ++t) {
    std::string tree_tag;
    size_t node_count = 0;
    in >> tree_tag >> node_count;
    if (!in || tree_tag != "tree") {
      return Status::InvalidArgument("booster deserialize: bad tree block " +
                                     std::to_string(t));
    }
    std::ostringstream block;
    block << "tree " << node_count << "\n";
    for (size_t i = 0; i < node_count; ++i) {
      std::string fields[7];
      for (auto& f : fields) {
        in >> f;
        if (!in) {
          return Status::InvalidArgument(
              "booster deserialize: truncated tree " + std::to_string(t));
        }
        block << f << " ";
      }
      block << "\n";
    }
    SAFE_ASSIGN_OR_RETURN(RegressionTree tree,
                          RegressionTree::Deserialize(block.str()));
    model.trees_.push_back(std::move(tree));
  }
  model.best_iteration_ = model.trees_.empty() ? 0 : model.trees_.size() - 1;
  return model;
}

}  // namespace gbdt
}  // namespace safe
