#include "src/gbdt/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {
namespace gbdt {

namespace {

/// Fixed row-chunk grain for partitioning and gradient-sum reductions.
/// Depends only on the data, never on the pool size, so per-chunk partial
/// sums reduce in the same order at every thread count.
constexpr size_t kRowChunkGrain = 4096;

/// Split-search metrics, resolved once (FindBestSplit runs per node).
struct SplitMetrics {
  obs::Counter* nodes;
  obs::Counter* bins_scanned;
  obs::Counter* hist_subtractions;
  obs::Histogram* hist_build_us;

  static const SplitMetrics& Get() {
    static const SplitMetrics metrics = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
      return SplitMetrics{
          registry->counter("gbdt.split_nodes"),
          registry->counter("gbdt.split_bins_scanned"),
          registry->counter("gbdt.hist_subtractions"),
          registry->histogram("gbdt.hist_build_us",
                              obs::DefaultLatencyBucketsUs())};
    }();
    return metrics;
  }
};

double LeafObjective(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}

}  // namespace

NodeHistograms TreeTrainer::BuildHistograms(
    const std::vector<double>& grad, const std::vector<double>& hess,
    const std::vector<size_t>& rows,
    const std::vector<int>& features) const {
  const SplitMetrics& metrics = SplitMetrics::Get();
  NodeHistograms hist(features.size());
  ParallelFor(pool_, 0, features.size(), [&](size_t i) {
    const uint64_t start_ns = obs::NowNanos();
    const size_t f = static_cast<size_t>(features[i]);
    auto& cells = hist[i];
    cells.assign(matrix_->num_cells(f), GradHistBin{});
    // Node row lists are ascending within each fixed chunk, so a cursor
    // re-pins each spilled row group at most once per pass.
    ChunkedCursor<uint16_t> bins = matrix_->bins[f].cursor();
    for (size_t r : rows) {
      GradHistBin& hb = cells[bins.At(r)];
      hb.grad += grad[r];
      hb.hess += hess[r];
    }
    const double elapsed_us =
        static_cast<double>(obs::NowNanos() - start_ns) / 1e3;
    metrics.hist_build_us->Observe(elapsed_us);
    // Per-thread build timings: each worker reports into its own series.
    obs::PerThreadHistogram("gbdt.hist_build_us",
                            obs::DefaultLatencyBucketsUs())
        ->Observe(elapsed_us);
  });
  return hist;
}

void TreeTrainer::SubtractHistograms(NodeHistograms* parent,
                                     const NodeHistograms& child) const {
  SplitMetrics::Get().hist_subtractions->Increment();
  ParallelFor(pool_, 0, parent->size(), [&](size_t i) {
    auto& p = (*parent)[i];
    const auto& c = child[i];
    for (size_t b = 0; b < p.size(); ++b) {
      p[b].grad -= c[b].grad;
      p[b].hess -= c[b].hess;
    }
  });
}

TreeTrainer::SplitCandidate TreeTrainer::FindBestSplit(
    const NodeHistograms& hist, const std::vector<int>& features,
    double sum_grad, double sum_hess) const {
  const double lambda = params_->reg_lambda;
  const double parent_obj = LeafObjective(sum_grad, sum_hess, lambda);

  const SplitMetrics& metrics = SplitMetrics::Get();
  metrics.nodes->Increment();

  // Each candidate feature is scanned independently; the per-feature
  // winners are then reduced in candidate-list order below.
  std::vector<SplitCandidate> candidates(features.size());
  ParallelFor(pool_, 0, features.size(), [&](size_t i) {
    const int f = features[i];
    const auto& edges = matrix_->edges[static_cast<size_t>(f)].edges;
    const auto& cells = hist[i];
    SplitCandidate best;
    const size_t missing_bin =
        matrix_->edges[static_cast<size_t>(f)].missing_bin();
    const double miss_g = cells[missing_bin].grad;
    const double miss_h = cells[missing_bin].hess;

    if (edges.empty()) {
      // Feature is constant over its non-missing values, but the
      // missing-vs-present partition itself may carry signal: split with
      // threshold +inf (all values left) and missing routed right.
      const double lg = sum_grad - miss_g;
      const double lh = sum_hess - miss_h;
      if (lh >= params_->min_child_weight &&
          miss_h >= params_->min_child_weight) {
        const double gain = 0.5 * (LeafObjective(lg, lh, lambda) +
                                   LeafObjective(miss_g, miss_h, lambda) -
                                   parent_obj) -
                            params_->min_split_gain;
        if (gain > best.gain + 1e-12) {
          best.gain = gain;
          best.feature = f;
          best.bin = 0;
          best.missing_left = false;
        }
      }
      candidates[i] = best;
      return;
    }

    // Scan split points: bins <= b left. Try missing on each side.
    double left_g = 0.0;
    double left_h = 0.0;
    for (size_t b = 0; b < edges.size(); ++b) {
      left_g += cells[b].grad;
      left_h += cells[b].hess;
      for (int miss_left = 0; miss_left < 2; ++miss_left) {
        const double lg = left_g + (miss_left ? miss_g : 0.0);
        const double lh = left_h + (miss_left ? miss_h : 0.0);
        const double rg = sum_grad - lg;
        const double rh = sum_hess - lh;
        if (lh < params_->min_child_weight ||
            rh < params_->min_child_weight) {
          continue;
        }
        const double gain = 0.5 * (LeafObjective(lg, lh, lambda) +
                                   LeafObjective(rg, rh, lambda) -
                                   parent_obj) -
                            params_->min_split_gain;
        if (gain > best.gain + 1e-12) {
          best.gain = gain;
          best.feature = f;
          best.bin = b;
          best.missing_left = miss_left != 0;
        }
      }
    }
    candidates[i] = best;
  });

  // Ordered reduction: always compare winners in candidate-list order so
  // the chosen split is independent of which scan finished first.
  SplitCandidate best;
  uint64_t bins_scanned = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    bins_scanned += matrix_->edges[static_cast<size_t>(features[i])]
                        .edges.size();
    const SplitCandidate& cand = candidates[i];
    if (cand.valid() && cand.gain > best.gain + 1e-12) {
      best = cand;
    }
  }
  metrics.bins_scanned->Increment(bins_scanned);
  return best;
}

RegressionTree TreeTrainer::Train(const std::vector<double>& grad,
                                  const std::vector<double>& hess,
                                  const std::vector<size_t>& rows,
                                  const std::vector<int>& features) const {
  struct NodeTask {
    int node_index;
    size_t depth;
    std::vector<size_t> rows;
    double sum_grad;
    double sum_hess;
    /// Histograms inherited from the split that created this node
    /// (built for the smaller child, derived by subtraction for the
    /// larger); empty when the node was known to become a leaf.
    NodeHistograms hist;
  };

  std::vector<TreeNode> nodes;
  nodes.emplace_back();

  // Root gradient sums, reduced over fixed row chunks in chunk order.
  double root_g = 0.0;
  double root_h = 0.0;
  {
    const size_t num_chunks = NumFixedChunks(rows.size(), kRowChunkGrain);
    std::vector<double> part_g(num_chunks, 0.0);
    std::vector<double> part_h(num_chunks, 0.0);
    ParallelForChunks(pool_, 0, rows.size(), kRowChunkGrain,
                      [&](size_t c, size_t lo, size_t hi) {
                        double g = 0.0;
                        double h = 0.0;
                        for (size_t i = lo; i < hi; ++i) {
                          g += grad[rows[i]];
                          h += hess[rows[i]];
                        }
                        part_g[c] = g;
                        part_h[c] = h;
                      });
    for (size_t c = 0; c < num_chunks; ++c) {
      root_g += part_g[c];
      root_h += part_h[c];
    }
  }

  std::vector<NodeTask> stack;
  stack.push_back(NodeTask{0, 0, rows, root_g, root_h, {}});

  const double lambda = params_->reg_lambda;
  const double lr = params_->learning_rate;

  // Flight-recorder view of every histogram build, tagged with the tree
  // depth it serves so traces show the per-depth cost decay as sibling
  // subtraction kicks in.
  auto build_hist_at_depth = [&](const std::vector<size_t>& node_rows,
                                 size_t depth) {
    SAFE_FR_SCOPE("gbdt.build_histograms");
    SAFE_FR_COUNTER("gbdt.hist_depth", static_cast<double>(depth));
    return BuildHistograms(grad, hess, node_rows, features);
  };

  while (!stack.empty()) {
    NodeTask task = std::move(stack.back());
    stack.pop_back();

    auto make_leaf = [&]() {
      nodes[static_cast<size_t>(task.node_index)].value =
          -lr * task.sum_grad / (task.sum_hess + lambda);
    };

    if (task.depth >= params_->max_depth || task.rows.size() < 2) {
      make_leaf();
      continue;
    }
    if (task.hist.empty()) {
      task.hist = build_hist_at_depth(task.rows, task.depth);
    }
    SplitCandidate split =
        FindBestSplit(task.hist, features, task.sum_grad, task.sum_hess);
    if (!split.valid() || split.gain <= 0.0) {
      make_leaf();
      continue;
    }

    const size_t f = static_cast<size_t>(split.feature);
    const BinnedColumn& split_bins = matrix_->bins[f];
    const size_t missing_bin = matrix_->edges[f].missing_bin();

    // Partition rows over fixed chunks; concatenating the per-chunk
    // pieces in chunk order preserves row order, and the left-side
    // gradient sums reduce in the same order at every thread count.
    const size_t num_chunks =
        NumFixedChunks(task.rows.size(), kRowChunkGrain);
    std::vector<std::vector<size_t>> left_parts(num_chunks);
    std::vector<std::vector<size_t>> right_parts(num_chunks);
    std::vector<double> part_g(num_chunks, 0.0);
    std::vector<double> part_h(num_chunks, 0.0);
    ParallelForChunks(
        pool_, 0, task.rows.size(), kRowChunkGrain,
        [&](size_t c, size_t lo, size_t hi) {
          auto& left = left_parts[c];
          auto& right = right_parts[c];
          // Per-chunk cursor: each worker pins its own window.
          ChunkedCursor<uint16_t> bins = split_bins.cursor();
          double g = 0.0;
          double h = 0.0;
          for (size_t i = lo; i < hi; ++i) {
            const size_t r = task.rows[i];
            const size_t b = bins.At(r);
            const bool go_left =
                (b == missing_bin) ? split.missing_left : (b <= split.bin);
            if (go_left) {
              left.push_back(r);
              g += grad[r];
              h += hess[r];
            } else {
              right.push_back(r);
            }
          }
          part_g[c] = g;
          part_h[c] = h;
        });
    std::vector<size_t> left_rows;
    std::vector<size_t> right_rows;
    double left_g = 0.0;
    double left_h = 0.0;
    for (size_t c = 0; c < num_chunks; ++c) {
      left_rows.insert(left_rows.end(), left_parts[c].begin(),
                       left_parts[c].end());
      right_rows.insert(right_rows.end(), right_parts[c].begin(),
                        right_parts[c].end());
      left_g += part_g[c];
      left_h += part_h[c];
    }
    if (left_rows.empty() || right_rows.empty()) {
      // Degenerate split (can happen when all mass is in the missing bin).
      make_leaf();
      continue;
    }

    const int left_index = static_cast<int>(nodes.size());
    nodes.emplace_back();
    const int right_index = static_cast<int>(nodes.size());
    nodes.emplace_back();

    TreeNode& node = nodes[static_cast<size_t>(task.node_index)];
    node.left = left_index;
    node.right = right_index;
    node.feature = split.feature;
    // An empty edge list marks the missing-vs-present split: +inf sends
    // every non-missing value left, the default direction routes NaN.
    node.threshold = matrix_->edges[f].edges.empty()
                         ? std::numeric_limits<double>::infinity()
                         : matrix_->edges[f].edges[split.bin];
    node.gain = split.gain;
    node.default_left = split.missing_left;

    // Children that can still split inherit histograms: build the
    // smaller sibling directly, derive the larger as parent − smaller.
    // Which child counts as "smaller" depends only on row counts, so the
    // choice — and therefore the arithmetic — is thread-count invariant.
    const size_t child_depth = task.depth + 1;
    const bool left_needs = child_depth < params_->max_depth &&
                            left_rows.size() >= 2;
    const bool right_needs = child_depth < params_->max_depth &&
                             right_rows.size() >= 2;
    NodeHistograms left_hist;
    NodeHistograms right_hist;
    if (left_needs && right_needs) {
      const bool left_smaller = left_rows.size() <= right_rows.size();
      NodeHistograms small_hist = build_hist_at_depth(
          left_smaller ? left_rows : right_rows, child_depth);
      SubtractHistograms(&task.hist, small_hist);
      if (left_smaller) {
        left_hist = std::move(small_hist);
        right_hist = std::move(task.hist);
      } else {
        right_hist = std::move(small_hist);
        left_hist = std::move(task.hist);
      }
    } else if (left_needs) {
      left_hist = build_hist_at_depth(left_rows, child_depth);
    } else if (right_needs) {
      right_hist = build_hist_at_depth(right_rows, child_depth);
    }

    stack.push_back(NodeTask{right_index, child_depth,
                             std::move(right_rows), task.sum_grad - left_g,
                             task.sum_hess - left_h, std::move(right_hist)});
    stack.push_back(NodeTask{left_index, child_depth, std::move(left_rows),
                             left_g, left_h, std::move(left_hist)});
  }
  return RegressionTree(std::move(nodes));
}

}  // namespace gbdt
}  // namespace safe
