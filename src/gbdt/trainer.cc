#include "src/gbdt/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {
namespace gbdt {

namespace {

struct HistBin {
  double grad = 0.0;
  double hess = 0.0;
};

/// Split-search metrics, resolved once (FindBestSplit runs per node).
struct SplitMetrics {
  obs::Counter* nodes;
  obs::Counter* bins_scanned;
  obs::Histogram* hist_build_us;

  static const SplitMetrics& Get() {
    static const SplitMetrics metrics = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
      return SplitMetrics{
          registry->counter("gbdt.split_nodes"),
          registry->counter("gbdt.split_bins_scanned"),
          registry->histogram("gbdt.hist_build_us",
                              obs::DefaultLatencyBucketsUs())};
    }();
    return metrics;
  }
};

double LeafObjective(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}

}  // namespace

TreeTrainer::SplitCandidate TreeTrainer::FindBestSplit(
    const std::vector<double>& grad, const std::vector<double>& hess,
    const std::vector<size_t>& rows, const std::vector<int>& features,
    double sum_grad, double sum_hess) const {
  SplitCandidate best;
  const double lambda = params_->reg_lambda;
  const double parent_obj = LeafObjective(sum_grad, sum_hess, lambda);

  const SplitMetrics& metrics = SplitMetrics::Get();
  metrics.nodes->Increment();
  uint64_t bins_scanned = 0;
  uint64_t hist_build_ns = 0;

  std::vector<HistBin> hist;
  for (int f : features) {
    const auto& edges = matrix_->edges[static_cast<size_t>(f)].edges;
    const size_t cells = matrix_->num_cells(static_cast<size_t>(f));
    hist.assign(cells, HistBin{});
    const auto& bins = matrix_->bins[static_cast<size_t>(f)];
    const uint64_t hist_start_ns = obs::NowNanos();
    for (size_t r : rows) {
      HistBin& hb = hist[bins[r]];
      hb.grad += grad[r];
      hb.hess += hess[r];
    }
    hist_build_ns += obs::NowNanos() - hist_start_ns;
    bins_scanned += edges.size();
    const size_t missing_bin = matrix_->edges[static_cast<size_t>(f)].missing_bin();
    const double miss_g = hist[missing_bin].grad;
    const double miss_h = hist[missing_bin].hess;

    if (edges.empty()) {
      // Feature is constant over its non-missing values, but the
      // missing-vs-present partition itself may carry signal: split with
      // threshold +inf (all values left) and missing routed right.
      const double lg = sum_grad - miss_g;
      const double lh = sum_hess - miss_h;
      if (lh >= params_->min_child_weight &&
          miss_h >= params_->min_child_weight) {
        const double gain = 0.5 * (LeafObjective(lg, lh, lambda) +
                                   LeafObjective(miss_g, miss_h, lambda) -
                                   parent_obj) -
                            params_->min_split_gain;
        if (gain > best.gain + 1e-12) {
          best.gain = gain;
          best.feature = f;
          best.bin = 0;
          best.missing_left = false;
        }
      }
      continue;
    }

    // Scan split points: bins <= b left. Try missing on each side.
    double left_g = 0.0;
    double left_h = 0.0;
    for (size_t b = 0; b < edges.size(); ++b) {
      left_g += hist[b].grad;
      left_h += hist[b].hess;
      for (int miss_left = 0; miss_left < 2; ++miss_left) {
        const double lg = left_g + (miss_left ? miss_g : 0.0);
        const double lh = left_h + (miss_left ? miss_h : 0.0);
        const double rg = sum_grad - lg;
        const double rh = sum_hess - lh;
        if (lh < params_->min_child_weight ||
            rh < params_->min_child_weight) {
          continue;
        }
        const double gain = 0.5 * (LeafObjective(lg, lh, lambda) +
                                   LeafObjective(rg, rh, lambda) -
                                   parent_obj) -
                            params_->min_split_gain;
        if (gain > best.gain + 1e-12) {
          best.gain = gain;
          best.feature = f;
          best.bin = b;
          best.missing_left = miss_left != 0;
        }
      }
    }
  }
  metrics.bins_scanned->Increment(bins_scanned);
  metrics.hist_build_us->Observe(static_cast<double>(hist_build_ns) / 1e3);
  return best;
}

RegressionTree TreeTrainer::Train(const std::vector<double>& grad,
                                  const std::vector<double>& hess,
                                  const std::vector<size_t>& rows,
                                  const std::vector<int>& features) const {
  struct NodeTask {
    int node_index;
    size_t depth;
    std::vector<size_t> rows;
    double sum_grad;
    double sum_hess;
  };

  std::vector<TreeNode> nodes;
  nodes.emplace_back();

  double root_g = 0.0;
  double root_h = 0.0;
  for (size_t r : rows) {
    root_g += grad[r];
    root_h += hess[r];
  }

  std::vector<NodeTask> stack;
  stack.push_back(NodeTask{0, 0, rows, root_g, root_h});

  const double lambda = params_->reg_lambda;
  const double lr = params_->learning_rate;

  while (!stack.empty()) {
    NodeTask task = std::move(stack.back());
    stack.pop_back();

    auto make_leaf = [&]() {
      nodes[static_cast<size_t>(task.node_index)].value =
          -lr * task.sum_grad / (task.sum_hess + lambda);
    };

    if (task.depth >= params_->max_depth || task.rows.size() < 2) {
      make_leaf();
      continue;
    }
    SplitCandidate split = FindBestSplit(grad, hess, task.rows, features,
                                         task.sum_grad, task.sum_hess);
    if (!split.valid() || split.gain <= 0.0) {
      make_leaf();
      continue;
    }

    const size_t f = static_cast<size_t>(split.feature);
    const auto& bins = matrix_->bins[f];
    const size_t missing_bin = matrix_->edges[f].missing_bin();

    std::vector<size_t> left_rows;
    std::vector<size_t> right_rows;
    double left_g = 0.0;
    double left_h = 0.0;
    for (size_t r : task.rows) {
      const size_t b = bins[r];
      const bool go_left =
          (b == missing_bin) ? split.missing_left : (b <= split.bin);
      if (go_left) {
        left_rows.push_back(r);
        left_g += grad[r];
        left_h += hess[r];
      } else {
        right_rows.push_back(r);
      }
    }
    if (left_rows.empty() || right_rows.empty()) {
      // Degenerate split (can happen when all mass is in the missing bin).
      make_leaf();
      continue;
    }

    const int left_index = static_cast<int>(nodes.size());
    nodes.emplace_back();
    const int right_index = static_cast<int>(nodes.size());
    nodes.emplace_back();

    TreeNode& node = nodes[static_cast<size_t>(task.node_index)];
    node.left = left_index;
    node.right = right_index;
    node.feature = split.feature;
    // An empty edge list marks the missing-vs-present split: +inf sends
    // every non-missing value left, the default direction routes NaN.
    node.threshold = matrix_->edges[f].edges.empty()
                         ? std::numeric_limits<double>::infinity()
                         : matrix_->edges[f].edges[split.bin];
    node.gain = split.gain;
    node.default_left = split.missing_left;

    stack.push_back(NodeTask{right_index, task.depth + 1,
                             std::move(right_rows), task.sum_grad - left_g,
                             task.sum_hess - left_h});
    stack.push_back(NodeTask{left_index, task.depth + 1,
                             std::move(left_rows), left_g, left_h});
  }
  return RegressionTree(std::move(nodes));
}

}  // namespace gbdt
}  // namespace safe
