#pragma once

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/gbdt/tree.h"

namespace safe {
namespace gbdt {

/// \brief QuickScorer-style interleaved forest layout for batch scoring.
///
/// Per-row tree traversal (FlatNode pointer-chasing) costs one dependent
/// load + an unpredictable branch per level per tree. PackedForest
/// restructures each tree once, at build time, into the bitvector form of
/// Lucchese et al.'s QuickScorer: leaves are numbered left-to-right
/// (in-order), every internal node carries a 64-bit mask whose bits clear
/// exactly the leaves of its LEFT subtree, and scoring evaluates *all*
/// internal-node conditions of a tree branch-free — every node whose
/// condition routes RIGHT ANDs its mask into a per-row bitvector, and the
/// exit leaf is the lowest bit left set. The node array of one tree is
/// small and contiguous, so scoring a block of rows tree-major keeps it
/// resident in L1 while the rows stream through.
///
/// The traversal semantics are exactly RegressionTree::PredictRow's:
/// `value <= threshold` routes left, NaN routes `default_left`, an empty
/// tree contributes 0.0 (a single zero leaf). Trees with more than
/// kMaxBitvectorLeaves leaves (depth > 6 when full) keep a conventional
/// packed node array and are walked per row; gbdt_forest_layout_test
/// proves exact margin equality against PredictRow for both forms.
///
/// Whole-block scoring (AccumulateMargins) runs bitvector trees
/// node-outer / lane-inner: one condition is evaluated for a whole chunk
/// of lanes (a contiguous panel span) before moving to the next node, so
/// the hot loop has no data-dependent branches and no dependent loads
/// and auto-vectorizes. The NaN default folds into the comparison
/// direction per node, eliminating the isnan test entirely. This is
/// ~4x faster than the per-row FlatNode walk on the serving workload;
/// the lane-outer form of the same bitvector scan is *slower* than the
/// scalar walk (it re-evaluates every node per lane with strided loads
/// and a mispredicted mask branch), which is why the block path exists
/// as a separate loop structure and not just a loop over TreeMargin.
///
/// For deep (fallback) trees the forest additionally keeps a
/// level-synchronous "stepped" copy: leaves are rewritten as self-loops
/// (child[0] == child[1] == self), so a tree of depth d is traversed by
/// exactly d branch-free select steps per lane with no is-leaf test,
/// and a block of lanes advances through the tree together.
///
/// Feature indirection: Build optionally remaps split-feature indices
/// through `feature_map` (the serving path maps booster features to
/// column-panel slots). Scoring reads feature f of lane `lane` at
/// `features[f * stride + lane]`, so the same code serves a plain row
/// (stride 1, lane 0) and a slot-major block panel.
class PackedForest {
 public:
  static constexpr size_t kMaxBitvectorLeaves = 64;

  PackedForest() = default;

  /// Packs `trees`. Fails when any split references a feature outside
  /// [0, num_features) or, with a remap, outside feature_map's domain.
  [[nodiscard]] static Result<PackedForest> Build(
      const std::vector<RegressionTree>& trees, size_t num_features);
  [[nodiscard]] static Result<PackedForest> Build(
      const std::vector<RegressionTree>& trees, size_t num_features,
      const std::vector<uint32_t>* feature_map);

  size_t num_trees() const { return trees_.size(); }
  bool tree_uses_bitvector(size_t t) const { return trees_[t].bitvector; }

  /// Margin contribution of tree `t` for lane `lane` of a slot-major
  /// panel (see class comment for the addressing scheme). Exactly equal
  /// to RegressionTree::PredictRow on the corresponding row.
  double TreeMargin(size_t t, const double* features, size_t stride,
                    size_t lane) const;

  /// margins[i] += tree_0(i) + tree_1(i) + ... for lanes [0, n), via the
  /// level-synchronous stepped layout. The loop runs tree-major (each
  /// tree's step nodes stay hot across the block), but each lane still
  /// receives its tree contributions in tree order, so the per-row
  /// accumulation sequence — and therefore every intermediate rounding —
  /// is identical to the scalar base + Σ tree_i loop. Requires n <=
  /// stride.
  void AccumulateMargins(const double* features, size_t stride, size_t n,
                         double* margins) const;

 private:
  /// One internal-node condition of a bitvector tree.
  struct Node {
    double threshold = 0.0;
    uint64_t mask = ~0ULL;  // bits of the left subtree's leaves cleared
    uint32_t feature = 0;
    uint8_t right_on_missing = 0;  // !default_left
  };
  /// One node of a fallback (deep) tree; mirrors TreeNode.
  struct FallbackNode {
    int32_t left = -1;
    int32_t right = -1;
    int32_t feature = -1;
    double threshold = 0.0;
    double value = 0.0;
    bool default_left = true;
    bool is_leaf() const { return left < 0; }
  };
  struct TreeRef {
    uint32_t node_begin = 0;  // into nodes_ (bitvector) or fallback_
    uint32_t node_end = 0;
    uint32_t leaf_begin = 0;  // into leaf_values_ (bitvector trees only)
    bool bitvector = true;
  };
  /// One node of the level-synchronous stepped layout: leaves self-loop
  /// (child[0] == child[1] == own index), so a step never needs an
  /// is-leaf test. Children are an indexable pair — `child[right]` — so
  /// the select is an address computation the compiler cannot turn back
  /// into a data-dependent branch (a ternary select here measurably
  /// regresses: real feature data defeats the branch predictor).
  struct StepNode {
    double threshold = 0.0;
    int32_t child[2] = {0, 0};  // [0] = left, [1] = right
    uint32_t feature = 0;
    uint8_t right_on_missing = 0;
  };
  struct SteppedTree {
    uint32_t node_begin = 0;  // into step_nodes_ / step_values_
    uint32_t depth = 0;       // longest root->leaf hop count
  };

  std::vector<Node> nodes_;          // all bitvector trees, concatenated
  std::vector<double> leaf_values_;  // in-order leaf values per tree
  std::vector<FallbackNode> fallback_;
  std::vector<TreeRef> trees_;
  std::vector<StepNode> step_nodes_;  // all trees, self-looped leaves
  std::vector<double> step_values_;   // node value (leaves carry weights)
  std::vector<SteppedTree> stepped_;
};

}  // namespace gbdt
}  // namespace safe
