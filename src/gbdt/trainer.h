#pragma once

#include <vector>

#include "src/common/random.h"
#include "src/common/thread_pool.h"
#include "src/gbdt/params.h"
#include "src/gbdt/quantizer.h"
#include "src/gbdt/tree.h"

namespace safe {
namespace gbdt {

/// One histogram cell: summed first/second-order gradients of the rows
/// whose feature value quantizes into the cell.
struct GradHistBin {
  double grad = 0.0;
  double hess = 0.0;
};

/// Gradient histograms of one tree node — one cell vector per candidate
/// feature, indexed by position in the node's candidate-feature list.
using NodeHistograms = std::vector<std::vector<GradHistBin>>;

/// \brief Grows one regression tree on second-order gradients over a
/// binned matrix (the `hist` algorithm: per-node gradient histograms, best
/// split by scanning bins, missing values routed to the better side).
///
/// Training parallelizes across the given pool: per-feature histogram
/// construction, the best-split scan, and row partitioning all fan out,
/// and the smaller child of every split gets its histograms by
/// subtracting the built sibling from the parent instead of a rebuild.
/// The produced tree is bit-identical at every pool size (including no
/// pool at all): work is partitioned by fixed rules that never look at
/// the thread count, and every floating-point reduction is performed in
/// a fixed (chunk- or feature-) order.
class TreeTrainer {
 public:
  /// \param pool  worker pool for intra-node parallelism; nullptr trains
  ///              serially (same math, same tree).
  TreeTrainer(const BinnedMatrix* matrix, const GbdtParams* params,
              ThreadPool* pool = nullptr)
      : matrix_(matrix), params_(params), pool_(pool) {}

  /// \param grad,hess  per-row gradient statistics (full length).
  /// \param rows       training rows for this tree (after subsampling).
  /// \param features   candidate feature indices (after column sampling).
  /// Leaf values already include the learning rate.
  RegressionTree Train(const std::vector<double>& grad,
                       const std::vector<double>& hess,
                       const std::vector<size_t>& rows,
                       const std::vector<int>& features) const;

 private:
  struct SplitCandidate {
    double gain = 0.0;
    int feature = -1;
    size_t bin = 0;           // split sends bins <= bin to the left
    bool missing_left = true;
    bool valid() const { return feature >= 0; }
  };

  /// Builds the per-feature gradient histograms of one node (parallel
  /// across features; each feature is accumulated serially in row order).
  NodeHistograms BuildHistograms(const std::vector<double>& grad,
                                 const std::vector<double>& hess,
                                 const std::vector<size_t>& rows,
                                 const std::vector<int>& features) const;

  /// parent -= child, leaving the larger sibling's histograms in
  /// `parent` (parallel across features).
  void SubtractHistograms(NodeHistograms* parent,
                          const NodeHistograms& child) const;

  /// Best split over prebuilt histograms: per-feature scans run in
  /// parallel, then the per-feature winners are reduced in candidate-list
  /// order so the result never depends on task completion order.
  SplitCandidate FindBestSplit(const NodeHistograms& hist,
                               const std::vector<int>& features,
                               double sum_grad, double sum_hess) const;

  const BinnedMatrix* matrix_;
  const GbdtParams* params_;
  ThreadPool* pool_;
};

}  // namespace gbdt
}  // namespace safe
