#pragma once

#include <vector>

#include "src/common/random.h"
#include "src/gbdt/params.h"
#include "src/gbdt/quantizer.h"
#include "src/gbdt/tree.h"

namespace safe {
namespace gbdt {

/// \brief Grows one regression tree on second-order gradients over a
/// binned matrix (the `hist` algorithm: per-node gradient histograms, best
/// split by scanning bins, missing values routed to the better side).
class TreeTrainer {
 public:
  TreeTrainer(const BinnedMatrix* matrix, const GbdtParams* params)
      : matrix_(matrix), params_(params) {}

  /// \param grad,hess  per-row gradient statistics (full length).
  /// \param rows       training rows for this tree (after subsampling).
  /// \param features   candidate feature indices (after column sampling).
  /// Leaf values already include the learning rate.
  RegressionTree Train(const std::vector<double>& grad,
                       const std::vector<double>& hess,
                       const std::vector<size_t>& rows,
                       const std::vector<int>& features) const;

 private:
  struct SplitCandidate {
    double gain = 0.0;
    int feature = -1;
    size_t bin = 0;           // split sends bins <= bin to the left
    bool missing_left = true;
    bool valid() const { return feature >= 0; }
  };

  SplitCandidate FindBestSplit(const std::vector<double>& grad,
                               const std::vector<double>& hess,
                               const std::vector<size_t>& rows,
                               const std::vector<int>& features,
                               double sum_grad, double sum_hess) const;

  const BinnedMatrix* matrix_;
  const GbdtParams* params_;
};

}  // namespace gbdt
}  // namespace safe
