#pragma once

#include <vector>

#include "src/common/thread_pool.h"
#include "src/gbdt/params.h"

namespace safe {
namespace gbdt {

/// Numerically-stable sigmoid.
double Sigmoid(double x);

/// \brief First/second-order gradient statistics of a loss at the current
/// margins. grad/hess are resized to match. Rows fan out over `pool`
/// (nullptr = serial); each row is independent, so the result is
/// identical at any thread count.
void ComputeGradients(Objective objective,
                      const std::vector<double>& margins,
                      const std::vector<double>& labels,
                      std::vector<double>* grad, std::vector<double>* hess,
                      ThreadPool* pool = nullptr);

/// Mean loss at the given margins (log-loss for kLogistic, MSE for
/// kSquared); used for early stopping.
double ComputeLoss(Objective objective, const std::vector<double>& margins,
                   const std::vector<double>& labels);

/// Model-space base score: log-odds of the positive rate for kLogistic,
/// label mean for kSquared.
double BaseScore(Objective objective, const std::vector<double>& labels);

/// Maps a margin to an output (sigmoid for kLogistic, identity otherwise).
double TransformMargin(Objective objective, double margin);

}  // namespace gbdt
}  // namespace safe
