#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/dataframe/binning.h"
#include "src/dataframe/chunked.h"
#include "src/dataframe/dataframe.h"

namespace safe {
namespace gbdt {

/// \brief One feature's quantized bin indices, dense or row-group backed.
///
/// Mirrors Column's dual storage at uint16 width: dense is one contiguous
/// vector, chunked is a ChunkedVector sealed into the same SpillPool as
/// the source feature column (so quantized bins spill under the same
/// resident budget as raw features). operator[] on a chunked column
/// pins/unpins per element — hot loops use cursor().
class BinnedColumn {
 public:
  BinnedColumn() = default;
  explicit BinnedColumn(std::vector<uint16_t> dense)
      : dense_(std::move(dense)) {}
  explicit BinnedColumn(std::shared_ptr<const ChunkedVector<uint16_t>> chunks)
      : chunks_(std::move(chunks)) {}

  size_t size() const { return chunks_ ? chunks_->size() : dense_.size(); }
  bool chunked() const { return chunks_ != nullptr; }

  uint16_t operator[](size_t r) const {
    return chunks_ ? chunks_->At(r) : dense_[r];
  }

  /// Sequential-friendly reader over either storage (see ChunkedCursor).
  ChunkedCursor<uint16_t> cursor() const {
    return chunks_ ? ChunkedCursor<uint16_t>(chunks_.get())
                   : ChunkedCursor<uint16_t>(dense_.data(), dense_.size());
  }

 private:
  std::vector<uint16_t> dense_;
  std::shared_ptr<const ChunkedVector<uint16_t>> chunks_;
};

/// \brief A feature matrix quantized into per-feature histogram bins.
///
/// bins[f][r] is the bin index of row r under feature f's edges; the last
/// index (missing_bin) holds NaNs. Bin indices fit in uint16 because
/// max_bins <= 65534.
struct BinnedMatrix {
  std::vector<BinnedColumn> bins;            // [feature][row]
  std::vector<BinEdges> edges;               // per feature
  size_t num_rows = 0;

  size_t num_features() const { return bins.size(); }
  /// Total cells for feature f including the missing bin.
  size_t num_cells(size_t f) const { return edges[f].missing_bin() + 1; }
};

/// \brief Learns per-feature quantile cut points and quantizes frames.
///
/// This is the "weighted quantile sketch" stand-in: exact quantiles over
/// the training frame, which is what XGBoost's `tree_method=hist` does for
/// in-memory data.
class FeatureQuantizer {
 public:
  /// Learns edges (<= max_bins bins per feature) from the training frame.
  /// Features fan out over `pool` (nullptr = the process-wide pool);
  /// each feature's edges are computed independently, so the result is
  /// identical at any thread count.
  [[nodiscard]] static Result<FeatureQuantizer> Fit(const DataFrame& frame,
                                      size_t max_bins,
                                      ThreadPool* pool = nullptr);

  /// Quantizes a frame with the learned edges (column count must match).
  [[nodiscard]] Result<BinnedMatrix> Transform(const DataFrame& frame,
                                 ThreadPool* pool = nullptr) const;

  const std::vector<BinEdges>& edges() const { return edges_; }

 private:
  std::vector<BinEdges> edges_;
};

}  // namespace gbdt
}  // namespace safe
