#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dataframe/dataframe.h"
#include "src/gbdt/params.h"
#include "src/gbdt/tree.h"

namespace safe {
namespace gbdt {

/// \brief Gain-based importance of one feature, aggregated over every
/// split in the ensemble. SAFE ranks candidate features by `avg_gain`
/// ("the average gain across all splits in which the feature is used",
/// paper Section IV-C3).
struct FeatureImportance {
  int feature = -1;
  double total_gain = 0.0;
  size_t num_splits = 0;
  double avg_gain = 0.0;
};

/// \brief A gradient-boosted tree ensemble (XGBoost-style, histogram
/// split finding, second-order updates).
///
/// Doubles as (a) the combination miner of SAFE's generation stage (via
/// ExtractAllPaths), (b) the importance ranker of its selection stage, and
/// (c) the strongest evaluation classifier of the paper's Table III.
class Booster {
 public:
  Booster() = default;

  /// Trains an ensemble. `valid` may be null; early stopping requires it.
  [[nodiscard]] static Result<Booster> Fit(const Dataset& train, const Dataset* valid,
                             const GbdtParams& params);

  /// Raw additive margins for a frame (column count must match training).
  [[nodiscard]] Result<std::vector<double>> PredictMargin(const DataFrame& x) const;

  /// Margins passed through the objective's link (sigmoid for logistic).
  [[nodiscard]] Result<std::vector<double>> PredictProba(const DataFrame& x) const;

  /// Single dense row (real-time inference path).
  double PredictRowMargin(const std::vector<double>& row) const;
  double PredictRowProba(const std::vector<double>& row) const;

  /// Every root→leaf path of every tree (paper's P = {p_1..p_k}).
  std::vector<TreePath> ExtractAllPaths() const;

  /// Distinct feature indices used as split features anywhere.
  std::vector<int> SplitFeatures() const;

  /// Per-feature gain importance, sorted by avg_gain descending.
  /// Features never used to split are omitted.
  std::vector<FeatureImportance> FeatureImportances() const;

  const std::vector<RegressionTree>& trees() const { return trees_; }
  size_t num_features() const { return num_features_; }
  double base_score() const { return base_score_; }
  Objective objective() const { return objective_; }
  /// Index of the best iteration when early stopping fired, else the last.
  size_t best_iteration() const { return best_iteration_; }

  std::string Serialize() const;
  [[nodiscard]] static Result<Booster> Deserialize(const std::string& text);

 private:
  std::vector<RegressionTree> trees_;
  size_t num_features_ = 0;
  double base_score_ = 0.0;
  Objective objective_ = Objective::kLogistic;
  size_t best_iteration_ = 0;
};

}  // namespace gbdt
}  // namespace safe
