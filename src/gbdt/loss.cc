#include "src/gbdt/loss.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace safe {
namespace gbdt {

double Sigmoid(double x) {
  if (x >= 0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

void ComputeGradients(Objective objective,
                      const std::vector<double>& margins,
                      const std::vector<double>& labels,
                      std::vector<double>* grad, std::vector<double>* hess,
                      ThreadPool* pool) {
  SAFE_CHECK(margins.size() == labels.size());
  grad->resize(margins.size());
  hess->resize(margins.size());
  constexpr size_t kGrain = 8192;
  switch (objective) {
    case Objective::kLogistic:
      ParallelForChunks(pool, 0, margins.size(), kGrain,
                        [&](size_t, size_t lo, size_t hi) {
                          for (size_t i = lo; i < hi; ++i) {
                            const double p = Sigmoid(margins[i]);
                            (*grad)[i] = p - labels[i];
                            (*hess)[i] = std::max(p * (1.0 - p), 1e-16);
                          }
                        });
      break;
    case Objective::kSquared:
      ParallelForChunks(pool, 0, margins.size(), kGrain,
                        [&](size_t, size_t lo, size_t hi) {
                          for (size_t i = lo; i < hi; ++i) {
                            (*grad)[i] = margins[i] - labels[i];
                            (*hess)[i] = 1.0;
                          }
                        });
      break;
  }
}

double ComputeLoss(Objective objective, const std::vector<double>& margins,
                   const std::vector<double>& labels) {
  SAFE_CHECK(margins.size() == labels.size());
  if (margins.empty()) return 0.0;
  double total = 0.0;
  switch (objective) {
    case Objective::kLogistic:
      for (size_t i = 0; i < margins.size(); ++i) {
        const double p =
            std::clamp(Sigmoid(margins[i]), 1e-15, 1.0 - 1e-15);
        total -= labels[i] * std::log(p) +
                 (1.0 - labels[i]) * std::log(1.0 - p);
      }
      break;
    case Objective::kSquared:
      for (size_t i = 0; i < margins.size(); ++i) {
        const double d = margins[i] - labels[i];
        total += d * d;
      }
      break;
  }
  return total / static_cast<double>(margins.size());
}

double BaseScore(Objective objective, const std::vector<double>& labels) {
  if (labels.empty()) return 0.0;
  double mean = 0.0;
  for (double y : labels) mean += y;
  mean /= static_cast<double>(labels.size());
  if (objective == Objective::kLogistic) {
    const double p = std::clamp(mean, 1e-6, 1.0 - 1e-6);
    return std::log(p / (1.0 - p));
  }
  return mean;
}

double TransformMargin(Objective objective, double margin) {
  return objective == Objective::kLogistic ? Sigmoid(margin) : margin;
}

}  // namespace gbdt
}  // namespace safe
