#include "src/gbdt/forest_layout.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <string>

namespace safe {
namespace gbdt {

namespace {

/// Counts leaves of the subtree rooted at `idx`.
size_t CountLeaves(const std::vector<TreeNode>& nodes, int idx) {
  const TreeNode& node = nodes[static_cast<size_t>(idx)];
  if (node.is_leaf()) return 1;
  return CountLeaves(nodes, node.left) + CountLeaves(nodes, node.right);
}

/// Longest root->leaf hop count of the subtree rooted at `idx`.
uint32_t MaxDepth(const std::vector<TreeNode>& nodes, int idx) {
  const TreeNode& node = nodes[static_cast<size_t>(idx)];
  if (node.is_leaf()) return 0;
  return 1 + std::max(MaxDepth(nodes, node.left), MaxDepth(nodes, node.right));
}

}  // namespace

Result<PackedForest> PackedForest::Build(
    const std::vector<RegressionTree>& trees, size_t num_features) {
  return Build(trees, num_features, nullptr);
}

Result<PackedForest> PackedForest::Build(
    const std::vector<RegressionTree>& trees, size_t num_features,
    const std::vector<uint32_t>* feature_map) {
  if (feature_map != nullptr && feature_map->size() < num_features) {
    return Status::InvalidArgument(
        "forest layout: feature map covers " +
        std::to_string(feature_map->size()) + " of " +
        std::to_string(num_features) + " features");
  }
  PackedForest forest;
  forest.trees_.reserve(trees.size());

  for (size_t t = 0; t < trees.size(); ++t) {
    const std::vector<TreeNode>& src = trees[t].nodes();
    // Validate split features once, for both layouts.
    for (const TreeNode& node : src) {
      if (!node.is_leaf() &&
          (node.feature < 0 ||
           static_cast<size_t>(node.feature) >= num_features)) {
        return Status::InvalidArgument(
            "forest layout: tree " + std::to_string(t) +
            " splits on feature " + std::to_string(node.feature) +
            " outside [0, " + std::to_string(num_features) + ")");
      }
    }
    auto remap = [&](int feature) {
      return feature_map == nullptr
                 ? static_cast<uint32_t>(feature)
                 : (*feature_map)[static_cast<size_t>(feature)];
    };

    // Stepped (level-synchronous) copy, built for every tree regardless
    // of size: leaves self-loop so a traversal is exactly `depth`
    // branch-free steps.
    SteppedTree stepped;
    stepped.node_begin = static_cast<uint32_t>(forest.step_nodes_.size());
    if (src.empty()) {
      stepped.depth = 0;
      forest.step_nodes_.push_back(StepNode{});  // self-loop at index 0
      forest.step_values_.push_back(0.0);
    } else {
      stepped.depth = MaxDepth(src, 0);
      for (size_t i = 0; i < src.size(); ++i) {
        const TreeNode& node = src[i];
        StepNode step;
        if (node.is_leaf()) {
          step.child[0] = step.child[1] = static_cast<int32_t>(i);  // self-loop
        } else {
          step.threshold = node.threshold;
          step.child[0] = node.left;
          step.child[1] = node.right;
          step.feature = remap(node.feature);
          step.right_on_missing = node.default_left ? 0 : 1;
        }
        forest.step_nodes_.push_back(step);
        forest.step_values_.push_back(node.value);
      }
    }
    forest.stepped_.push_back(stepped);

    TreeRef ref;
    if (src.empty()) {
      // PredictRow returns 0.0 for an empty tree; a single zero leaf and
      // no conditions reproduce that contribution exactly.
      ref.bitvector = true;
      ref.node_begin = ref.node_end = static_cast<uint32_t>(forest.nodes_.size());
      ref.leaf_begin = static_cast<uint32_t>(forest.leaf_values_.size());
      forest.leaf_values_.push_back(0.0);
      forest.trees_.push_back(ref);
      continue;
    }

    const size_t leaves = CountLeaves(src, 0);
    if (leaves <= kMaxBitvectorLeaves) {
      ref.bitvector = true;
      ref.node_begin = static_cast<uint32_t>(forest.nodes_.size());
      ref.leaf_begin = static_cast<uint32_t>(forest.leaf_values_.size());
      // In-order DFS: assign leaf ids left-to-right, emit one condition
      // per internal node whose mask clears its left subtree's leaf bits.
      // (Any node order works — masks commute under AND — DFS keeps the
      // layout deterministic.) The exit-leaf theorem: ANDing the masks of
      // every node whose condition routes RIGHT leaves the true exit leaf
      // as the lowest set bit, because each right turn removes exactly
      // the left-subtree leaves that turn makes unreachable, and any
      // surviving bit below the exit leaf would have been cleared by the
      // right turn that skipped it.
      size_t next_leaf = 0;
      auto dfs = [&](auto&& self, int idx) -> void {
        const TreeNode& node = src[static_cast<size_t>(idx)];
        if (node.is_leaf()) {
          forest.leaf_values_.push_back(node.value);
          ++next_leaf;
          return;
        }
        const size_t left_first = next_leaf;
        Node packed;  // placeholder; mask patched after the left subtree
        packed.threshold = node.threshold;
        packed.feature = remap(node.feature);
        packed.right_on_missing = node.default_left ? 0 : 1;
        const size_t slot = forest.nodes_.size();
        forest.nodes_.push_back(packed);
        self(self, node.left);
        const size_t width = next_leaf - left_first;
        // width < 64 always: the right sibling subtree holds >= 1 of the
        // <= 64 leaves, so the shift below never reaches 64.
        forest.nodes_[slot].mask =
            ~(((uint64_t{1} << width) - 1) << left_first);
        self(self, node.right);
      };
      dfs(dfs, 0);
      ref.node_end = static_cast<uint32_t>(forest.nodes_.size());
    } else {
      // Deep tree: keep a conventional packed copy and walk it per row.
      ref.bitvector = false;
      ref.node_begin = static_cast<uint32_t>(forest.fallback_.size());
      for (const TreeNode& node : src) {
        FallbackNode fallback;
        fallback.left = node.left;
        fallback.right = node.right;
        fallback.feature =
            node.is_leaf() ? -1 : static_cast<int32_t>(remap(node.feature));
        fallback.threshold = node.threshold;
        fallback.value = node.value;
        fallback.default_left = node.default_left;
        forest.fallback_.push_back(fallback);
      }
      ref.node_end = static_cast<uint32_t>(forest.fallback_.size());
    }
    forest.trees_.push_back(ref);
  }
  return forest;
}

double PackedForest::TreeMargin(size_t t, const double* features,
                                size_t stride, size_t lane) const {
  const TreeRef& ref = trees_[t];
  if (ref.bitvector) {
    uint64_t bv = ~0ULL;
    for (uint32_t i = ref.node_begin; i < ref.node_end; ++i) {
      const Node& node = nodes_[i];
      const double v = features[node.feature * stride + lane];
      const bool right =
          std::isnan(v) ? node.right_on_missing != 0 : v > node.threshold;
      if (right) bv &= node.mask;
    }
    return leaf_values_[ref.leaf_begin +
                        static_cast<uint32_t>(std::countr_zero(bv))];
  }
  const FallbackNode* tree = fallback_.data() + ref.node_begin;
  int32_t idx = 0;
  while (!tree[idx].is_leaf()) {
    const FallbackNode& node = tree[idx];
    const double v = features[static_cast<uint32_t>(node.feature) * stride +
                              lane];
    if (std::isnan(v)) {
      idx = node.default_left ? node.left : node.right;
    } else {
      idx = (v <= node.threshold) ? node.left : node.right;
    }
  }
  return tree[idx].value;
}

// lint: hot-path
void PackedForest::AccumulateMargins(const double* features, size_t stride,
                                     size_t n, double* margins) const {
  // Bitvector trees run node-outer / lane-inner: one condition is
  // evaluated for a whole chunk of lanes before moving to the next node.
  // Each node reads one contiguous span of the panel (features +
  // feature * stride), and the mask update is a branch-free select, so
  // the inner loops carry no data-dependent branches or dependent loads
  // and auto-vectorize. The NaN default folds into the comparison
  // direction per node — `v > t` is false for NaN (routes left, the
  // default when right_on_missing == 0), `!(v <= t)` is true for NaN
  // (routes right) — so no explicit isnan test is needed, and the
  // vectorized compare agrees with the scalar one because IEEE ordered
  // comparisons treat NaN identically in both.
  constexpr size_t kChunk = 128;
  uint64_t bv[kChunk];
  for (size_t t = 0; t < trees_.size(); ++t) {
    const TreeRef& ref = trees_[t];
    if (ref.bitvector) {
      const Node* begin = nodes_.data() + ref.node_begin;
      const Node* end = nodes_.data() + ref.node_end;
      const double* leaves = leaf_values_.data() + ref.leaf_begin;
      for (size_t base = 0; base < n; base += kChunk) {
        const size_t m = std::min(kChunk, n - base);
        for (size_t k = 0; k < m; ++k) bv[k] = ~0ULL;
        for (const Node* node = begin; node != end; ++node) {
          const double* f = features + node->feature * stride + base;
          const double threshold = node->threshold;
          const uint64_t mask = node->mask;
          // Masks commute under AND, so applying this node's mask to all
          // lanes before the next node's yields the same bitvector as
          // the per-lane node loop in TreeMargin.
          if (node->right_on_missing != 0) {
            for (size_t k = 0; k < m; ++k) {
              bv[k] &= !(f[k] <= threshold) ? mask : ~0ULL;
            }
          } else {
            for (size_t k = 0; k < m; ++k) {
              bv[k] &= f[k] > threshold ? mask : ~0ULL;
            }
          }
        }
        for (size_t k = 0; k < m; ++k) {
          margins[base + k] += leaves[std::countr_zero(bv[k])];
        }
      }
    } else {
      // Deep tree: level-synchronous stepped walk (see the class
      // comment) — exactly `depth` branch-free select steps per lane,
      // leaves self-loop so no is-leaf test is needed.
      const SteppedTree& tree = stepped_[t];
      const StepNode* nodes = step_nodes_.data() + tree.node_begin;
      const double* values = step_values_.data() + tree.node_begin;
      int32_t idx[kChunk];
      for (size_t base = 0; base < n; base += kChunk) {
        const size_t m = std::min(kChunk, n - base);
        for (size_t k = 0; k < m; ++k) idx[k] = 0;
        for (uint32_t d = 0; d < tree.depth; ++d) {
          for (size_t k = 0; k < m; ++k) {
            const StepNode& node = nodes[idx[k]];
            const double v = features[node.feature * stride + (base + k)];
            const int right =
                static_cast<int>(v > node.threshold) |
                (static_cast<int>(std::isnan(v)) &
                 static_cast<int>(node.right_on_missing != 0));
            idx[k] = node.child[right];
          }
        }
        for (size_t k = 0; k < m; ++k) margins[base + k] += values[idx[k]];
      }
    }
  }
}

}  // namespace gbdt
}  // namespace safe
