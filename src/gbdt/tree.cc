#include "src/gbdt/tree.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace safe {
namespace gbdt {

double RegressionTree::PredictRow(const std::vector<double>& row) const {
  return PredictRow(row.data());
}

double RegressionTree::PredictRow(const double* row) const {
  if (nodes_.empty()) return 0.0;
  int idx = 0;
  while (!nodes_[idx].is_leaf()) {
    const TreeNode& node = nodes_[idx];
    const double v = row[static_cast<size_t>(node.feature)];
    if (std::isnan(v)) {
      idx = node.default_left ? node.left : node.right;
    } else {
      idx = (v <= node.threshold) ? node.left : node.right;
    }
  }
  return nodes_[idx].value;
}

std::vector<TreePath> RegressionTree::ExtractPaths() const {
  std::vector<TreePath> paths;
  if (nodes_.empty() || nodes_[0].is_leaf()) return paths;
  // Iterative DFS carrying the current path of split steps.
  std::vector<std::pair<int, TreePath>> stack;
  stack.emplace_back(0, TreePath{});
  while (!stack.empty()) {
    auto [idx, path] = std::move(stack.back());
    stack.pop_back();
    const TreeNode& node = nodes_[static_cast<size_t>(idx)];
    if (node.is_leaf()) {
      if (!path.empty()) paths.push_back(std::move(path));
      continue;
    }
    TreePath extended = path;
    extended.push_back(PathStep{node.feature, node.threshold});
    stack.emplace_back(node.right, extended);
    stack.emplace_back(node.left, std::move(extended));
  }
  return paths;
}

std::string RegressionTree::Serialize() const {
  std::ostringstream out;
  out << "tree " << nodes_.size() << "\n";
  for (const TreeNode& n : nodes_) {
    out << n.left << " " << n.right << " " << n.feature << " "
        << FormatDoubleExact(n.threshold) << " " << FormatDoubleExact(n.value)
        << " " << FormatDoubleExact(n.gain) << " " << (n.default_left ? 1 : 0)
        << "\n";
  }
  return out.str();
}

Result<RegressionTree> RegressionTree::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string tag;
  size_t count = 0;
  in >> tag >> count;
  if (!in || tag != "tree") {
    return Status::InvalidArgument("tree deserialize: bad header");
  }
  std::vector<TreeNode> nodes(count);
  for (size_t i = 0; i < count; ++i) {
    TreeNode& n = nodes[i];
    int default_left = 1;
    // Doubles parse token-wise through ParseDouble: thresholds can be
    // "inf" (the missing-vs-present split), which istream >> rejects.
    std::string threshold_token;
    std::string value_token;
    std::string gain_token;
    in >> n.left >> n.right >> n.feature >> threshold_token >>
        value_token >> gain_token >> default_left;
    if (!in) {
      return Status::InvalidArgument("tree deserialize: truncated at node " +
                                     std::to_string(i));
    }
    auto threshold = ParseDouble(threshold_token);
    auto value = ParseDouble(value_token);
    auto gain = ParseDouble(gain_token);
    if (!threshold.ok() || !value.ok() || !gain.ok()) {
      return Status::InvalidArgument("tree deserialize: bad number at node " +
                                     std::to_string(i));
    }
    n.threshold = *threshold;
    n.value = *value;
    n.gain = *gain;
    n.default_left = default_left != 0;
  }
  return RegressionTree(std::move(nodes));
}

}  // namespace gbdt
}  // namespace safe
