#pragma once

#include <vector>

#include "src/dataframe/dataframe.h"
#include "src/gbdt/params.h"
#include "src/gbdt/tree.h"

namespace safe {
namespace gbdt {

/// \brief Exact greedy tree construction (XGBoost `tree_method=exact`):
/// per-feature pre-sorted value order, every distinct cut point evaluated.
///
/// Slower than the histogram trainer (O(N·M) per depth level over sorted
/// runs vs O(bins·M)) but free of quantization error; the micro-benchmarks
/// and gbdt tests compare the two. Missing values are routed to the side
/// that maximizes gain, as in the histogram trainer.
class ExactTreeTrainer {
 public:
  /// \param frame  feature columns (raw doubles; NaN = missing).
  ExactTreeTrainer(const DataFrame* frame, const GbdtParams* params);

  /// Grows one tree on second-order gradients.
  /// \param grad,hess  per-row statistics (full length).
  /// \param rows       training rows for this tree.
  /// \param features   candidate feature indices.
  RegressionTree Train(const std::vector<double>& grad,
                       const std::vector<double>& hess,
                       const std::vector<size_t>& rows,
                       const std::vector<int>& features) const;

 private:
  struct SplitCandidate {
    double gain = 0.0;
    int feature = -1;
    double threshold = 0.0;
    bool missing_left = true;
    bool valid() const { return feature >= 0; }
  };

  SplitCandidate FindBestSplit(const std::vector<double>& grad,
                               const std::vector<double>& hess,
                               const std::vector<size_t>& rows,
                               const std::vector<int>& features,
                               double sum_grad, double sum_hess) const;

  const DataFrame* frame_;
  const GbdtParams* params_;
  /// Per feature: row indices sorted by value, missing rows excluded.
  std::vector<std::vector<uint32_t>> sorted_rows_;
};

}  // namespace gbdt
}  // namespace safe
