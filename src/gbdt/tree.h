#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace safe {
namespace gbdt {

/// \brief One node of a regression tree. Children index into the tree's
/// node array; leaves have left == -1.
struct TreeNode {
  int left = -1;
  int right = -1;
  /// Split feature (column index); -1 on leaves.
  int feature = -1;
  /// Rows with x[feature] <= threshold go left.
  double threshold = 0.0;
  /// Leaf weight (learning rate already applied); 0 on internal nodes.
  double value = 0.0;
  /// Loss reduction achieved by this split; 0 on leaves.
  double gain = 0.0;
  /// Direction for missing values.
  bool default_left = true;

  bool is_leaf() const { return left < 0; }
};

/// \brief One split step along a root→leaf path: the feature tested and
/// the threshold used. SAFE's combination miner consumes these.
struct PathStep {
  int feature = -1;
  double threshold = 0.0;
};

/// A root→leaf path as the ordered list of its split steps (the paper's
/// p_j, before de-duplicating repeated features).
using TreePath = std::vector<PathStep>;

/// \brief A single CART-style regression tree produced by boosting.
class RegressionTree {
 public:
  RegressionTree() = default;
  explicit RegressionTree(std::vector<TreeNode> nodes)
      : nodes_(std::move(nodes)) {}

  const std::vector<TreeNode>& nodes() const { return nodes_; }
  bool empty() const { return nodes_.empty(); }

  /// Prediction for one dense feature row (NaN follows default_left).
  double PredictRow(const std::vector<double>& row) const;

  /// Pointer form of PredictRow for allocation-free callers (the serving
  /// path traverses compiled scratch buffers directly). `row` must hold
  /// at least max-split-feature + 1 values.
  double PredictRow(const double* row) const;

  /// All root→leaf paths. Paths to pure leaves of a stump (root == leaf)
  /// yield an empty path and are skipped.
  std::vector<TreePath> ExtractPaths() const;

  /// Serializes to a line-oriented text block (one node per line).
  std::string Serialize() const;

  /// Parses a block produced by Serialize.
  [[nodiscard]] static Result<RegressionTree> Deserialize(const std::string& text);

 private:
  std::vector<TreeNode> nodes_;
};

}  // namespace gbdt
}  // namespace safe
