#pragma once

#include <cstddef>
#include <cstdint>

namespace safe {
namespace gbdt {

/// \brief Split-finding algorithm.
enum class TreeMethod {
  kHist,   ///< quantized histograms (XGBoost `hist`; the default)
  kExact,  ///< pre-sorted exact greedy (XGBoost `exact`)
};

/// \brief Training objective.
enum class Objective {
  kLogistic,  ///< binary:logistic — margins pass through a sigmoid
  kSquared,   ///< reg:squarederror
};

/// \brief Hyper-parameters of the boosted-tree learner.
///
/// Defaults mirror XGBoost's: 100 rounds are rarely needed here, so the
/// library defaults to a lighter configuration suited to SAFE's role as a
/// combination miner (paper Section IV-D: complexity is controlled by the
/// number of trees K and depth D).
struct GbdtParams {
  size_t num_trees = 50;
  size_t max_depth = 4;
  double learning_rate = 0.3;
  /// L2 regularization on leaf weights (XGBoost lambda).
  double reg_lambda = 1.0;
  /// Minimum loss reduction required to make a split (XGBoost gamma).
  double min_split_gain = 0.0;
  /// Minimum sum of instance hessians in each child.
  double min_child_weight = 1.0;
  /// Row subsample ratio per tree.
  double subsample = 1.0;
  /// Column subsample ratio per tree.
  double colsample_bytree = 1.0;
  /// Maximum histogram bins per feature.
  size_t max_bins = 256;
  /// Training threads for the histogram method: 0 = the process-wide pool
  /// (sized to hardware concurrency), 1 = fully serial, k > 1 = a
  /// dedicated pool of k workers for this fit. The trained model is
  /// bit-identical at every setting (fixed work partitioning + ordered
  /// reductions; see DESIGN.md "Parallel training & determinism").
  size_t n_threads = 0;
  Objective objective = Objective::kLogistic;
  TreeMethod tree_method = TreeMethod::kHist;
  uint64_t seed = 42;
  /// Stop when validation loss has not improved for this many rounds
  /// (0 disables early stopping; requires a validation set).
  size_t early_stopping_rounds = 0;
};

}  // namespace gbdt
}  // namespace safe
