#include "src/gbdt/exact_trainer.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/thread_pool.h"

namespace safe {
namespace gbdt {

namespace {
double LeafObjective(double g, double h, double lambda) {
  return (g * g) / (h + lambda);
}
}  // namespace

ExactTreeTrainer::ExactTreeTrainer(const DataFrame* frame,
                                   const GbdtParams* params)
    : frame_(frame), params_(params) {
  if (frame_ == nullptr) return;  // idle instance (hist method selected)
  sorted_rows_.resize(frame_->num_columns());
  ParallelFor(0, frame_->num_columns(), [&](size_t f) {
    const auto& values = frame_->column(f).values();
    auto& order = sorted_rows_[f];
    order.reserve(values.size());
    for (uint32_t r = 0; r < values.size(); ++r) {
      if (!std::isnan(values[r])) order.push_back(r);
    }
    // Explicit total order: value, then row index. order[] starts in
    // ascending row order, so this matches the old stable_sort exactly.
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
      if (values[a] != values[b]) return values[a] < values[b];
      return a < b;
    });
  });
}

ExactTreeTrainer::SplitCandidate ExactTreeTrainer::FindBestSplit(
    const std::vector<double>& grad, const std::vector<double>& hess,
    const std::vector<size_t>& rows, const std::vector<int>& features,
    double sum_grad, double sum_hess) const {
  SplitCandidate best;
  const double lambda = params_->reg_lambda;
  const double parent_obj = LeafObjective(sum_grad, sum_hess, lambda);

  // Node membership mask over the full dataset.
  std::vector<char> in_node(frame_->num_rows(), 0);
  for (size_t r : rows) in_node[r] = 1;

  for (int f : features) {
    const auto& values = frame_->column(static_cast<size_t>(f)).values();
    const auto& order = sorted_rows_[static_cast<size_t>(f)];

    // First pass: non-missing node mass under this feature.
    double nonmiss_g = 0.0;
    double nonmiss_h = 0.0;
    size_t nonmiss_n = 0;
    for (uint32_t r : order) {
      if (!in_node[r]) continue;
      nonmiss_g += grad[r];
      nonmiss_h += hess[r];
      ++nonmiss_n;
    }
    if (nonmiss_n < 2) continue;
    const double miss_g = sum_grad - nonmiss_g;
    const double miss_h = sum_hess - nonmiss_h;

    // Second pass: scan cut points in sorted order.
    double left_g = 0.0;
    double left_h = 0.0;
    size_t seen = 0;
    double prev_value = 0.0;
    bool have_prev = false;
    for (uint32_t r : order) {
      if (!in_node[r]) continue;
      const double value = values[r];
      if (have_prev && value > prev_value && seen < nonmiss_n) {
        const double threshold = 0.5 * (prev_value + value);
        for (int miss_left = 0; miss_left < 2; ++miss_left) {
          const double lg = left_g + (miss_left ? miss_g : 0.0);
          const double lh = left_h + (miss_left ? miss_h : 0.0);
          const double rg = sum_grad - lg;
          const double rh = sum_hess - lh;
          if (lh < params_->min_child_weight ||
              rh < params_->min_child_weight) {
            continue;
          }
          const double gain = 0.5 * (LeafObjective(lg, lh, lambda) +
                                     LeafObjective(rg, rh, lambda) -
                                     parent_obj) -
                              params_->min_split_gain;
          if (gain > best.gain + 1e-12) {
            best.gain = gain;
            best.feature = f;
            best.threshold = threshold;
            best.missing_left = miss_left != 0;
          }
        }
      }
      left_g += grad[r];
      left_h += hess[r];
      ++seen;
      prev_value = value;
      have_prev = true;
    }
  }
  return best;
}

RegressionTree ExactTreeTrainer::Train(
    const std::vector<double>& grad, const std::vector<double>& hess,
    const std::vector<size_t>& rows,
    const std::vector<int>& features) const {
  struct NodeTask {
    int node_index;
    size_t depth;
    std::vector<size_t> rows;
    double sum_grad;
    double sum_hess;
  };

  std::vector<TreeNode> nodes;
  nodes.emplace_back();

  double root_g = 0.0;
  double root_h = 0.0;
  for (size_t r : rows) {
    root_g += grad[r];
    root_h += hess[r];
  }

  std::vector<NodeTask> stack;
  stack.push_back(NodeTask{0, 0, rows, root_g, root_h});
  const double lambda = params_->reg_lambda;
  const double lr = params_->learning_rate;

  while (!stack.empty()) {
    NodeTask task = std::move(stack.back());
    stack.pop_back();

    auto make_leaf = [&]() {
      nodes[static_cast<size_t>(task.node_index)].value =
          -lr * task.sum_grad / (task.sum_hess + lambda);
    };
    if (task.depth >= params_->max_depth || task.rows.size() < 2) {
      make_leaf();
      continue;
    }
    SplitCandidate split = FindBestSplit(grad, hess, task.rows, features,
                                         task.sum_grad, task.sum_hess);
    if (!split.valid() || split.gain <= 0.0) {
      make_leaf();
      continue;
    }

    const auto& values =
        frame_->column(static_cast<size_t>(split.feature)).values();
    std::vector<size_t> left_rows;
    std::vector<size_t> right_rows;
    double left_g = 0.0;
    double left_h = 0.0;
    for (size_t r : task.rows) {
      const double v = values[r];
      const bool go_left =
          std::isnan(v) ? split.missing_left : (v <= split.threshold);
      if (go_left) {
        left_rows.push_back(r);
        left_g += grad[r];
        left_h += hess[r];
      } else {
        right_rows.push_back(r);
      }
    }
    if (left_rows.empty() || right_rows.empty()) {
      make_leaf();
      continue;
    }
    const int left_index = static_cast<int>(nodes.size());
    nodes.emplace_back();
    const int right_index = static_cast<int>(nodes.size());
    nodes.emplace_back();
    TreeNode& node = nodes[static_cast<size_t>(task.node_index)];
    node.left = left_index;
    node.right = right_index;
    node.feature = split.feature;
    node.threshold = split.threshold;
    node.gain = split.gain;
    node.default_left = split.missing_left;

    stack.push_back(NodeTask{right_index, task.depth + 1,
                             std::move(right_rows), task.sum_grad - left_g,
                             task.sum_hess - left_h});
    stack.push_back(NodeTask{left_index, task.depth + 1,
                             std::move(left_rows), left_g, left_h});
  }
  return RegressionTree(std::move(nodes));
}

}  // namespace gbdt
}  // namespace safe
