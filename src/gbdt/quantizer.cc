#include "src/gbdt/quantizer.h"

#include "src/common/thread_pool.h"
#include "src/obs/trace.h"

namespace safe {
namespace gbdt {

Result<FeatureQuantizer> FeatureQuantizer::Fit(const DataFrame& frame,
                                               size_t max_bins,
                                               ThreadPool* pool) {
  SAFE_TRACE_SPAN("gbdt.quantizer_fit");
  if (frame.num_columns() == 0 || frame.num_rows() == 0) {
    return Status::InvalidArgument("quantizer: empty frame");
  }
  if (max_bins < 2 || max_bins > 65534) {
    return Status::InvalidArgument("quantizer: max_bins must be in [2,65534]");
  }
  if (pool == nullptr) pool = ThreadPool::Global();
  FeatureQuantizer q;
  q.edges_.resize(frame.num_columns());
  std::vector<Status> statuses(frame.num_columns());
  ParallelFor(pool, 0, frame.num_columns(), [&](size_t f) {
    const Column& column = frame.column(f);
    auto result = EqualFrequencyEdges(column, max_bins);
    if (result.ok()) {
      q.edges_[f] = std::move(*result);
    } else if (column.CountMissing() == column.size()) {
      // All-missing column: a single (missing) bin, never splittable.
      q.edges_[f] = BinEdges{};
    } else {
      statuses[f] = result.status();
    }
  });
  for (const auto& st : statuses) SAFE_RETURN_NOT_OK(st);
  return q;
}

Result<BinnedMatrix> FeatureQuantizer::Transform(const DataFrame& frame,
                                                 ThreadPool* pool) const {
  SAFE_TRACE_SPAN("gbdt.quantizer_transform");
  if (frame.num_columns() != edges_.size()) {
    return Status::InvalidArgument(
        "quantizer: frame has " + std::to_string(frame.num_columns()) +
        " columns, expected " + std::to_string(edges_.size()));
  }
  if (pool == nullptr) pool = ThreadPool::Global();
  BinnedMatrix out;
  out.num_rows = frame.num_rows();
  out.edges = edges_;
  out.bins.resize(edges_.size());
  ParallelFor(pool, 0, edges_.size(), [&](size_t f) {
    const Column& column = frame.column(f);
    if (column.chunked()) {
      // Stream: quantize one row group at a time into a chunked bin
      // column sealed into the same pool (and budget) as the features.
      const auto& chunks = *column.chunks();
      ChunkedVectorBuilder<uint16_t> builder(chunks.pool(),
                                             chunks.group_rows());
      std::vector<uint16_t> scratch;
      column.ForEachSpan(
          0, column.size(),
          [&](size_t, const double* values, size_t len) {
            scratch.resize(len);
            for (size_t i = 0; i < len; ++i) {
              scratch[i] =
                  static_cast<uint16_t>(edges_[f].BinIndex(values[i]));
            }
            builder.Append(scratch.data(), len);
          });
      out.bins[f] = BinnedColumn(builder.Finish());
    } else {
      const auto& values = column.values();
      std::vector<uint16_t> bins(values.size());
      for (size_t r = 0; r < values.size(); ++r) {
        bins[r] = static_cast<uint16_t>(edges_[f].BinIndex(values[r]));
      }
      out.bins[f] = BinnedColumn(std::move(bins));
    }
  });
  return out;
}

}  // namespace gbdt
}  // namespace safe
