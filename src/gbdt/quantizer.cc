#include "src/gbdt/quantizer.h"

#include "src/common/thread_pool.h"
#include "src/obs/trace.h"

namespace safe {
namespace gbdt {

Result<FeatureQuantizer> FeatureQuantizer::Fit(const DataFrame& frame,
                                               size_t max_bins,
                                               ThreadPool* pool) {
  SAFE_TRACE_SPAN("gbdt.quantizer_fit");
  if (frame.num_columns() == 0 || frame.num_rows() == 0) {
    return Status::InvalidArgument("quantizer: empty frame");
  }
  if (max_bins < 2 || max_bins > 65534) {
    return Status::InvalidArgument("quantizer: max_bins must be in [2,65534]");
  }
  if (pool == nullptr) pool = ThreadPool::Global();
  FeatureQuantizer q;
  q.edges_.resize(frame.num_columns());
  std::vector<Status> statuses(frame.num_columns());
  ParallelFor(pool, 0, frame.num_columns(), [&](size_t f) {
    const auto& values = frame.column(f).values();
    auto result = EqualFrequencyEdges(values, max_bins);
    if (result.ok()) {
      q.edges_[f] = std::move(*result);
    } else if (frame.column(f).CountMissing() == values.size()) {
      // All-missing column: a single (missing) bin, never splittable.
      q.edges_[f] = BinEdges{};
    } else {
      statuses[f] = result.status();
    }
  });
  for (const auto& st : statuses) SAFE_RETURN_NOT_OK(st);
  return q;
}

Result<BinnedMatrix> FeatureQuantizer::Transform(const DataFrame& frame,
                                                 ThreadPool* pool) const {
  SAFE_TRACE_SPAN("gbdt.quantizer_transform");
  if (frame.num_columns() != edges_.size()) {
    return Status::InvalidArgument(
        "quantizer: frame has " + std::to_string(frame.num_columns()) +
        " columns, expected " + std::to_string(edges_.size()));
  }
  if (pool == nullptr) pool = ThreadPool::Global();
  BinnedMatrix out;
  out.num_rows = frame.num_rows();
  out.edges = edges_;
  out.bins.resize(edges_.size());
  ParallelFor(pool, 0, edges_.size(), [&](size_t f) {
    const auto& values = frame.column(f).values();
    auto& bins = out.bins[f];
    bins.resize(values.size());
    for (size_t r = 0; r < values.size(); ++r) {
      bins[r] = static_cast<uint16_t>(edges_[f].BinIndex(values[r]));
    }
  });
  return out;
}

}  // namespace gbdt
}  // namespace safe
