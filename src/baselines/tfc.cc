#include "src/baselines/tfc.h"

#include <algorithm>
#include <unordered_set>

#include "src/stats/entropy.h"

namespace safe {
namespace baselines {

namespace {

/// A scored candidate held in the streaming top-k pool.
struct ScoredCandidate {
  double info_gain = 0.0;
  Column column;
  GeneratedFeature feature;  // empty op for pool columns carried over
  bool is_generated = false;

  bool operator<(const ScoredCandidate& other) const {
    return info_gain > other.info_gain;  // min-heap via greater-than
  }
};

}  // namespace

Result<FeaturePlan> TfcEngineer::FitPlan(const Dataset& train,
                                         const Dataset* /*valid*/) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("tfc: empty training data");
  }
  if (params_.num_iterations == 0) {
    return Status::InvalidArgument("tfc: num_iterations must be > 0");
  }
  std::vector<std::shared_ptr<const Operator>> operators;
  for (const auto& name : params_.operator_names) {
    SAFE_ASSIGN_OR_RETURN(auto op, registry_.Find(name));
    if (op->arity() != 2) {
      return Status::InvalidArgument(
          "tfc: only binary operators are supported, got '" + name + "'");
    }
    operators.push_back(std::move(op));
  }
  if (operators.empty()) {
    return Status::InvalidArgument("tfc: no operators");
  }

  const size_t orig_m = train.x.num_columns();
  const size_t max_output = params_.max_output_features > 0
                                ? params_.max_output_features
                                : 2 * orig_m;
  const auto& labels = train.labels();

  std::vector<Column> pool(train.x.columns());
  std::vector<GeneratedFeature> all_generated;
  std::unordered_set<std::string> known_names;  // lint: unordered-ok(membership-only dedup; never iterated)
  for (const auto& col : pool) known_names.insert(col.name());

  for (size_t iter = 0; iter < params_.num_iterations; ++iter) {
    const size_t m = pool.size();
    // Exhaustive pair enumeration — the cost the paper's Eq. 8 describes.
    size_t planned = m * (m - 1) / 2 * operators.size() * 2;
    if (planned > params_.max_candidates) {
      return Status::InvalidArgument(
          "tfc: candidate space " + std::to_string(planned) +
          " exceeds max_candidates (" +
          std::to_string(params_.max_candidates) +
          ") — this is TFC's documented scalability wall");
    }

    // Streaming top-k by information gain; pool columns compete too.
    std::vector<ScoredCandidate> heap;
    heap.reserve(max_output + 1);
    auto push = [&](ScoredCandidate candidate) {
      heap.push_back(std::move(candidate));
      std::push_heap(heap.begin(), heap.end());
      if (heap.size() > max_output) {
        std::pop_heap(heap.begin(), heap.end());
        heap.pop_back();
      }
    };

    for (const auto& col : pool) {
      ScoredCandidate candidate;
      candidate.info_gain =
          BinnedInformationGain(col.values(), labels, params_.info_gain_bins);
      candidate.column = col;
      push(std::move(candidate));
    }

    for (size_t i = 0; i < m; ++i) {
      for (size_t j = i + 1; j < m; ++j) {
        for (const auto& op : operators) {
          const size_t orderings = op->commutative() ? 1 : 2;
          for (size_t ordering = 0; ordering < orderings; ++ordering) {
            const Column& a = pool[ordering == 0 ? i : j];
            const Column& b = pool[ordering == 0 ? j : i];
            std::string name = "(" + a.name() + op->symbol() + b.name() + ")";
            if (known_names.count(name)) continue;
            auto op_params = op->FitParams({&a.values(), &b.values()});
            if (!op_params.ok()) continue;
            auto values =
                ApplyOperator(*op, *op_params, {&a.values(), &b.values()});
            if (!values.ok()) continue;
            Column column(name, std::move(*values));
            if (column.IsConstant()) continue;
            ScoredCandidate candidate;
            candidate.info_gain = BinnedInformationGain(
                column.values(), labels, params_.info_gain_bins);
            candidate.column = std::move(column);
            candidate.is_generated = true;
            candidate.feature.name = name;
            candidate.feature.op = op->name();
            candidate.feature.parents = {a.name(), b.name()};
            candidate.feature.params = std::move(*op_params);
            push(std::move(candidate));
          }
        }
      }
    }

    std::sort_heap(heap.begin(), heap.end());  // ascending by operator<
    // operator< inverts, so sort_heap leaves descending info gain order.
    std::vector<Column> next_pool;
    for (auto& candidate : heap) {
      if (candidate.is_generated) {
        known_names.insert(candidate.feature.name);
        all_generated.push_back(std::move(candidate.feature));
      }
      next_pool.push_back(std::move(candidate.column));
    }
    pool = std::move(next_pool);
  }

  std::vector<std::string> selected;
  selected.reserve(pool.size());
  for (const auto& col : pool) selected.push_back(col.name());

  // Prune generated features not needed by the final pool.
  std::unordered_set<std::string> needed(selected.begin(), selected.end());  // lint: unordered-ok(membership-only keep-mark; iteration is over all_generated)
  std::vector<GeneratedFeature> pruned;
  std::vector<char> keep(all_generated.size(), 0);
  for (size_t g = all_generated.size(); g-- > 0;) {
    if (needed.count(all_generated[g].name)) {
      keep[g] = 1;
      for (const auto& parent : all_generated[g].parents) {
        needed.insert(parent);
      }
    }
  }
  for (size_t g = 0; g < all_generated.size(); ++g) {
    if (keep[g]) pruned.push_back(std::move(all_generated[g]));
  }
  return FeaturePlan::Create(train.x.ColumnNames(), std::move(pruned),
                             std::move(selected));
}

}  // namespace baselines
}  // namespace safe
