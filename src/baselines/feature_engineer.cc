#include "src/baselines/feature_engineer.h"

namespace safe {
namespace baselines {

Result<FeaturePlan> OrigEngineer::FitPlan(const Dataset& train,
                                          const Dataset* /*valid*/) {
  if (train.x.num_columns() == 0) {
    return Status::InvalidArgument("orig: empty training data");
  }
  const auto names = train.x.ColumnNames();
  return FeaturePlan::Create(names, {}, names);
}

Result<FeaturePlan> SafeEngineer::FitPlan(const Dataset& train,
                                          const Dataset* valid) {
  SAFE_ASSIGN_OR_RETURN(SafeFitResult result, engine_.Fit(train, valid));
  last_diagnostics_ = std::move(result.iterations);
  return std::move(result.plan);
}

std::string SafeEngineer::name() const {
  switch (engine_.params().strategy) {
    case MiningStrategy::kTreePaths:
      return "SAFE";
    case MiningStrategy::kRandomPairs:
      return "RAND";
    case MiningStrategy::kSplitFeaturePairs:
      return "IMP";
    case MiningStrategy::kNonSplitPairs:
      return "NONSPLIT";
  }
  return "?";
}

std::unique_ptr<FeatureEngineer> MakeSafe(SafeParams params) {
  params.strategy = MiningStrategy::kTreePaths;
  return std::make_unique<SafeEngineer>(std::move(params));
}

std::unique_ptr<FeatureEngineer> MakeRand(SafeParams params) {
  params.strategy = MiningStrategy::kRandomPairs;
  return std::make_unique<SafeEngineer>(std::move(params));
}

std::unique_ptr<FeatureEngineer> MakeImp(SafeParams params) {
  params.strategy = MiningStrategy::kSplitFeaturePairs;
  return std::make_unique<SafeEngineer>(std::move(params));
}

}  // namespace baselines
}  // namespace safe
