#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/baselines/feature_engineer.h"
#include "src/core/operators.h"

namespace safe {
namespace baselines {

/// \brief Parameters of the TFC baseline [Piramuthu & Sikora 2009].
struct TfcParams {
  /// Outer iterations; each squares the effective combination space.
  size_t num_iterations = 1;
  std::vector<std::string> operator_names = {"add", "sub", "mul", "div"};
  /// Pool size kept per iteration; 0 = 2·M (matching the paper's cap on
  /// every method's output).
  size_t max_output_features = 0;
  /// Equal-frequency bins used to score candidates by information gain.
  size_t info_gain_bins = 10;
  /// Hard cap on candidate columns evaluated per iteration: TFC is the
  /// paper's exhaustive-search strawman and blows up as O(M²·|O|); the
  /// cap converts an OOM into a Status error.
  size_t max_candidates = 2000000;
};

/// \brief TFC: exhaustive generation-selection (paper Section II).
///
/// Each iteration applies *every* operator to *every* feature pair of the
/// current pool, scores all candidates by information gain against the
/// label, and keeps the best `max_output_features` as the next pool.
/// Candidates are scored streaming (generate → score → top-k heap), so
/// memory stays O(pool), but time is still Θ(N·M²·|O|) — the complexity
/// the paper contrasts SAFE against (Eq. 8).
class TfcEngineer : public FeatureEngineer {
 public:
  explicit TfcEngineer(TfcParams params,
                       OperatorRegistry registry = OperatorRegistry::Arithmetic())
      : params_(std::move(params)), registry_(std::move(registry)) {}

  [[nodiscard]] Result<FeaturePlan> FitPlan(const Dataset& train,
                              const Dataset* valid) override;
  std::string name() const override { return "TFC"; }

 private:
  TfcParams params_;
  OperatorRegistry registry_;
};

}  // namespace baselines
}  // namespace safe
