#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/baselines/feature_engineer.h"
#include "src/core/operators.h"

namespace safe {
namespace baselines {

/// \brief Parameters of the AutoLearn baseline [Kaul et al., ICDM 2017].
struct AutoLearnParams {
  /// Original features with binned information gain below this are not
  /// used as regression parents (AutoLearn's preprocessing step).
  double min_parent_info_gain = 0.01;
  /// |Pearson| at or above this: the pair is linearly related -> ridge;
  /// between `min_correlation` and this: curvilinear -> kernel ridge;
  /// below `min_correlation`: unrelated -> skipped. (The original uses
  /// distance correlation for the screen; Pearson is the stand-in, see
  /// DESIGN.md Substitution 3.)
  double linear_correlation = 0.7;
  double min_correlation = 0.1;
  /// Stability selection: a constructed feature is kept only when its
  /// information gain clears this on BOTH random halves of the data.
  double stability_info_gain = 0.01;
  size_t info_gain_bins = 10;
  /// Cap on ordered parent pairs examined (the method is O(N*M^2), the
  /// cost Eq. 10 of the paper assigns it).
  size_t max_pairs = 20000;
  /// Final output cap; 0 = 2*M.
  size_t max_output_features = 0;
  uint64_t seed = 42;
};

/// \brief AutoLearn: regression-based pairwise feature construction.
///
/// For every related ordered feature pair (a, b), regresses b on a (ridge
/// when the relation is linear, RBF kernel ridge otherwise) and keeps the
/// residual b - f(a) as a constructed feature when it is *stable*:
/// informative on two disjoint halves of the training data. Selection
/// then ranks by information gain and caps the output, as Section V
/// applies to every method.
class AutoLearnEngineer : public FeatureEngineer {
 public:
  explicit AutoLearnEngineer(AutoLearnParams params)
      : params_(std::move(params)),
        registry_(OperatorRegistry::Default()) {}

  [[nodiscard]] Result<FeaturePlan> FitPlan(const Dataset& train,
                              const Dataset* valid) override;
  std::string name() const override { return "AUTOLEARN"; }

 private:
  AutoLearnParams params_;
  OperatorRegistry registry_;
};

}  // namespace baselines
}  // namespace safe
