#pragma once

#include <memory>
#include <string>

#include "src/common/result.h"
#include "src/core/engine.h"
#include "src/core/feature_plan.h"
#include "src/dataframe/dataframe.h"

namespace safe {
namespace baselines {

/// \brief Uniform interface over every automatic-feature-engineering
/// method the paper compares (Section V-A1): ORIG, FCTree, TFC, RAND,
/// IMP and SAFE. Each learns a FeaturePlan so the evaluation harness
/// treats them identically.
class FeatureEngineer {
 public:
  virtual ~FeatureEngineer() = default;

  /// Learns Ψ from training data (valid optional).
  [[nodiscard]] virtual Result<FeaturePlan> FitPlan(const Dataset& train,
                                      const Dataset* valid) = 0;

  /// Method abbreviation as in the paper's tables ("SAFE", "FCT", ...).
  virtual std::string name() const = 0;
};

/// \brief ORIG: the identity plan — original features, untouched.
class OrigEngineer : public FeatureEngineer {
 public:
  [[nodiscard]] Result<FeaturePlan> FitPlan(const Dataset& train,
                              const Dataset* valid) override;
  std::string name() const override { return "ORIG"; }
};

/// \brief Adapter running SafeEngine under a given mining strategy:
/// kTreePaths = SAFE, kRandomPairs = RAND, kSplitFeaturePairs = IMP.
class SafeEngineer : public FeatureEngineer {
 public:
  explicit SafeEngineer(SafeParams params)
      : engine_(std::move(params)) {}
  SafeEngineer(SafeParams params, OperatorRegistry registry)
      : engine_(std::move(params), std::move(registry)) {}

  [[nodiscard]] Result<FeaturePlan> FitPlan(const Dataset& train,
                              const Dataset* valid) override;
  std::string name() const override;

  /// Diagnostics of the last FitPlan call.
  const std::vector<IterationDiagnostics>& last_diagnostics() const {
    return last_diagnostics_;
  }

 private:
  SafeEngine engine_;
  std::vector<IterationDiagnostics> last_diagnostics_;
};

/// Convenience factories matching the paper's method names.
std::unique_ptr<FeatureEngineer> MakeSafe(SafeParams params);
std::unique_ptr<FeatureEngineer> MakeRand(SafeParams params);
std::unique_ptr<FeatureEngineer> MakeImp(SafeParams params);

}  // namespace baselines
}  // namespace safe
