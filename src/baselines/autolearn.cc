#include "src/baselines/autolearn.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/stats/correlation.h"
#include "src/stats/entropy.h"

namespace safe {
namespace baselines {

namespace {

/// Information gain of `values` restricted to the given rows.
double SubsetInfoGain(const std::vector<double>& values,
                      const std::vector<double>& labels,
                      const std::vector<size_t>& rows, size_t bins) {
  std::vector<double> v;
  std::vector<double> y;
  v.reserve(rows.size());
  y.reserve(rows.size());
  for (size_t r : rows) {
    v.push_back(values[r]);
    y.push_back(labels[r]);
  }
  return BinnedInformationGain(v, y, bins);
}

}  // namespace

Result<FeaturePlan> AutoLearnEngineer::FitPlan(const Dataset& train,
                                               const Dataset* /*valid*/) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("autolearn: empty training data");
  }
  const size_t m = train.x.num_columns();
  const size_t max_output = params_.max_output_features > 0
                                ? params_.max_output_features
                                : 2 * m;
  const auto& labels = train.labels();

  SAFE_ASSIGN_OR_RETURN(auto ridge_op, registry_.Find("ridge"));
  SAFE_ASSIGN_OR_RETURN(auto krr_op, registry_.Find("krr"));

  // ---------------------------------------------- step 1: parent screen
  std::vector<size_t> parents;
  for (size_t c = 0; c < m; ++c) {
    if (BinnedInformationGain(train.x.column(c).values(), labels,
                              params_.info_gain_bins) >
        params_.min_parent_info_gain) {
      parents.push_back(c);
    }
  }
  if (parents.size() < 2) {
    // Nothing to pair: fall back to the identity plan.
    const auto names = train.x.ColumnNames();
    return FeaturePlan::Create(names, {}, names);
  }

  // Stability halves (disjoint, random).
  Rng rng(params_.seed);
  std::vector<size_t> perm(train.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.Shuffle(&perm);
  const std::vector<size_t> half_a(perm.begin(),
                                   perm.begin() + perm.size() / 2);
  const std::vector<size_t> half_b(perm.begin() + perm.size() / 2,
                                   perm.end());

  // ---------------------------------------------- step 2: pairwise fits
  struct Scored {
    double info_gain;
    Column column;
    GeneratedFeature feature;
  };
  std::vector<Scored> kept;
  size_t pairs_examined = 0;
  for (size_t i : parents) {
    for (size_t j : parents) {
      if (i == j) continue;
      if (++pairs_examined > params_.max_pairs) break;
      const auto& a = train.x.column(i);
      const auto& b = train.x.column(j);
      const double r = PearsonCorrelation(a.values(), b.values());
      const double abs_r = std::fabs(r);
      if (abs_r < params_.min_correlation) continue;  // unrelated
      const auto& op =
          abs_r >= params_.linear_correlation ? *ridge_op : *krr_op;
      const std::string name =
          op.name() + "(" + b.name() + "|" + a.name() + ")";
      auto op_params = op.FitParams({&a.values(), &b.values()});
      if (!op_params.ok()) continue;
      auto values = ApplyOperator(op, *op_params, {&a.values(), &b.values()});
      if (!values.ok()) continue;
      Column column(name, std::move(*values));
      if (column.IsConstant()) continue;

      // Stability: informative on both halves independently.
      const double gain_a = SubsetInfoGain(column.values(), labels, half_a,
                                           params_.info_gain_bins);
      const double gain_b = SubsetInfoGain(column.values(), labels, half_b,
                                           params_.info_gain_bins);
      if (gain_a <= params_.stability_info_gain ||
          gain_b <= params_.stability_info_gain) {
        continue;
      }
      Scored scored;
      scored.info_gain = 0.5 * (gain_a + gain_b);
      scored.column = std::move(column);
      scored.feature.name = name;
      scored.feature.op = op.name();
      scored.feature.parents = {a.name(), b.name()};
      scored.feature.params = std::move(*op_params);
      kept.push_back(std::move(scored));
    }
  }

  // ---------------------------------------------- step 3: rank and cap
  // Original features compete with constructed ones by information gain,
  // as in every Section V method (output <= 2M).
  struct Ranked {
    double info_gain;
    std::string name;
    const GeneratedFeature* feature;  // nullptr = original
    size_t position;                  // originals first, then kept order
  };
  std::vector<Ranked> ranked;
  for (size_t c = 0; c < m; ++c) {
    ranked.push_back({BinnedInformationGain(train.x.column(c).values(),
                                            labels, params_.info_gain_bins),
                      train.x.column(c).name(), nullptr, ranked.size()});
  }
  for (const auto& scored : kept) {
    ranked.push_back({scored.info_gain, scored.feature.name,
                      &scored.feature, ranked.size()});
  }
  // Explicit total order: gain desc, then insertion position.
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.info_gain != b.info_gain) return a.info_gain > b.info_gain;
              return a.position < b.position;
            });
  if (ranked.size() > max_output) ranked.resize(max_output);

  std::vector<std::string> selected;
  std::vector<GeneratedFeature> generated;
  for (const auto& entry : ranked) {
    selected.push_back(entry.name);
    if (entry.feature != nullptr) generated.push_back(*entry.feature);
  }
  return FeaturePlan::Create(train.x.ColumnNames(), std::move(generated),
                             std::move(selected));
}

}  // namespace baselines
}  // namespace safe
