#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/baselines/feature_engineer.h"
#include "src/core/operators.h"

namespace safe {
namespace baselines {

/// \brief Parameters of the FCTree baseline [Fan et al., SDM 2010].
struct FcTreeParams {
  /// Constructed-feature candidates injected at each tree level (the
  /// paper's n_e).
  size_t ne = 20;
  size_t max_depth = 10;
  size_t min_node_size = 10;
  /// Candidate thresholds evaluated per feature per node (the original
  /// FCTree scans every cut point; 32 quantiles approximates that).
  size_t thresholds_per_split = 32;
  std::vector<std::string> operator_names = {"add", "sub", "mul", "div"};
  /// Final output cap; 0 = 2·M (paper Section V-A1: FCTree's features are
  /// "reduced to 2M according to information gain").
  size_t max_output_features = 0;
  /// Equal-frequency bins for the final information-gain ranking.
  size_t info_gain_bins = 10;
  uint64_t seed = 42;
};

/// \brief FCTree: decision-tree-guided feature construction.
///
/// Builds an information-gain decision tree; at each level it injects
/// `ne` randomly constructed candidate features (random operator applied
/// to a random original pair). Constructed features actually chosen as
/// split features are the method's output, combined with the original
/// features and reduced to the output cap by information gain.
class FcTreeEngineer : public FeatureEngineer {
 public:
  explicit FcTreeEngineer(
      FcTreeParams params,
      OperatorRegistry registry = OperatorRegistry::Arithmetic())
      : params_(std::move(params)), registry_(std::move(registry)) {}

  [[nodiscard]] Result<FeaturePlan> FitPlan(const Dataset& train,
                              const Dataset* valid) override;
  std::string name() const override { return "FCT"; }

 private:
  FcTreeParams params_;
  OperatorRegistry registry_;
};

}  // namespace baselines
}  // namespace safe
