#include "src/baselines/fctree.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/common/random.h"
#include "src/stats/descriptive.h"
#include "src/stats/entropy.h"

namespace safe {
namespace baselines {

namespace {

/// One materialized candidate feature (original or constructed).
struct CandidateColumn {
  Column column;
  bool is_generated = false;
  GeneratedFeature feature;
};

/// Information gain of splitting `rows` of `values` at `threshold`.
double SplitInfoGain(const std::vector<double>& values,
                     const std::vector<double>& labels,
                     const std::vector<size_t>& rows, double threshold) {
  PartitionCell left;
  PartitionCell right;
  PartitionCell missing;
  for (size_t r : rows) {
    const double v = values[r];
    PartitionCell& cell =
        std::isnan(v) ? missing : (v <= threshold ? left : right);
    cell.total += 1;
    if (labels[r] > 0.5) cell.positives += 1;
  }
  return InformationGain({left, right, missing});
}

}  // namespace

Result<FeaturePlan> FcTreeEngineer::FitPlan(const Dataset& train,
                                            const Dataset* /*valid*/) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("fctree: empty training data");
  }
  std::vector<std::shared_ptr<const Operator>> operators;
  for (const auto& name : params_.operator_names) {
    SAFE_ASSIGN_OR_RETURN(auto op, registry_.Find(name));
    if (op->arity() != 2) {
      return Status::InvalidArgument(
          "fctree: only binary operators are supported, got '" + name + "'");
    }
    operators.push_back(std::move(op));
  }
  if (operators.empty()) {
    return Status::InvalidArgument("fctree: no operators");
  }

  const size_t orig_m = train.x.num_columns();
  const size_t max_output = params_.max_output_features > 0
                                ? params_.max_output_features
                                : 2 * orig_m;
  const auto& labels = train.labels();
  Rng rng(params_.seed);

  // Candidate store: originals first, constructed appended per level.
  std::vector<CandidateColumn> candidates;
  candidates.reserve(orig_m + params_.ne * params_.max_depth);
  std::unordered_set<std::string> known_names;  // lint: unordered-ok(membership-only dedup; never iterated)
  for (const auto& col : train.x.columns()) {
    CandidateColumn candidate;
    candidate.column = col;
    candidates.push_back(std::move(candidate));
    known_names.insert(col.name());
  }

  auto inject_level_candidates = [&]() {
    for (size_t attempt = 0, added = 0;
         added < params_.ne && attempt < params_.ne * 20; ++attempt) {
      const size_t a = rng.NextUint64Below(orig_m);
      size_t b = rng.NextUint64Below(orig_m);
      if (orig_m > 1) {
        while (b == a) b = rng.NextUint64Below(orig_m);
      }
      const auto& op = operators[rng.NextUint64Below(operators.size())];
      const Column& ca = train.x.column(a);
      const Column& cb = train.x.column(b);
      const std::string name =
          "(" + ca.name() + op->symbol() + cb.name() + ")";
      if (known_names.count(name)) continue;
      auto op_params = op->FitParams({&ca.values(), &cb.values()});
      if (!op_params.ok()) continue;
      auto values = ApplyOperator(*op, *op_params, {&ca.values(), &cb.values()});
      if (!values.ok()) continue;
      Column column(name, std::move(*values));
      if (column.IsConstant()) continue;
      CandidateColumn candidate;
      candidate.column = std::move(column);
      candidate.is_generated = true;
      candidate.feature.name = name;
      candidate.feature.op = op->name();
      candidate.feature.parents = {ca.name(), cb.name()};
      candidate.feature.params = std::move(*op_params);
      candidates.push_back(std::move(candidate));
      known_names.insert(name);
      ++added;
    }
  };

  // Level-order tree construction; we only need the split decisions.
  std::unordered_set<size_t> chosen_constructed;  // candidate indices; lint: unordered-ok(membership checks only; candidates scanned by index)
  {
    std::vector<size_t> all_rows(train.num_rows());
    for (size_t r = 0; r < all_rows.size(); ++r) all_rows[r] = r;
    std::vector<std::vector<size_t>> current_level;
    current_level.push_back(std::move(all_rows));

    for (size_t depth = 0;
         depth < params_.max_depth && !current_level.empty(); ++depth) {
      inject_level_candidates();
      std::vector<std::vector<size_t>> next_level;
      for (auto& rows : current_level) {
        if (rows.size() < params_.min_node_size) continue;
        // Pure node?
        size_t positives = 0;
        for (size_t r : rows) {
          if (labels[r] > 0.5) ++positives;
        }
        if (positives == 0 || positives == rows.size()) continue;

        double best_gain = 1e-12;
        size_t best_candidate = 0;
        double best_threshold = 0.0;
        bool found = false;
        for (size_t c = 0; c < candidates.size(); ++c) {
          const auto& values = candidates[c].column.values();
          // Candidate thresholds: node-local quantiles.
          std::vector<double> node_values;
          node_values.reserve(rows.size());
          for (size_t r : rows) {
            if (!std::isnan(values[r])) node_values.push_back(values[r]);
          }
          if (node_values.size() < 2) continue;
          for (size_t t = 1; t <= params_.thresholds_per_split; ++t) {
            const double q = static_cast<double>(t) /
                             (static_cast<double>(params_.thresholds_per_split) +
                              1.0);
            const double threshold = Quantile(node_values, q);
            const double gain =
                SplitInfoGain(values, labels, rows, threshold);
            if (gain > best_gain) {
              best_gain = gain;
              best_candidate = c;
              best_threshold = threshold;
              found = true;
            }
          }
        }
        if (!found) continue;
        if (candidates[best_candidate].is_generated) {
          chosen_constructed.insert(best_candidate);
        }
        // Partition into children for the next level.
        const auto& values = candidates[best_candidate].column.values();
        std::vector<size_t> left;
        std::vector<size_t> right;
        for (size_t r : rows) {
          const double v = values[r];
          (!std::isnan(v) && v <= best_threshold ? left : right)
              .push_back(r);
        }
        if (!left.empty() && !right.empty()) {
          next_level.push_back(std::move(left));
          next_level.push_back(std::move(right));
        }
      }
      current_level = std::move(next_level);
    }
  }

  // Output pool: originals + chosen constructed, ranked by info gain and
  // capped (paper Section V-A1).
  struct Ranked {
    double info_gain;
    const CandidateColumn* candidate;
  };
  std::vector<Ranked> ranked;
  for (size_t c = 0; c < candidates.size(); ++c) {
    if (candidates[c].is_generated && !chosen_constructed.count(c)) continue;
    ranked.push_back(
        {BinnedInformationGain(candidates[c].column.values(), labels,
                               params_.info_gain_bins),
         &candidates[c]});
  }
  // Explicit total order: gain desc, then candidates-vector position
  // (entries point into one array, so pointer order is insertion order).
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) {
              if (a.info_gain != b.info_gain) return a.info_gain > b.info_gain;
              return a.candidate < b.candidate;
            });
  if (ranked.size() > max_output) ranked.resize(max_output);

  std::vector<std::string> selected;
  std::vector<GeneratedFeature> generated;
  for (const auto& entry : ranked) {
    selected.push_back(entry.candidate->column.name());
    if (entry.candidate->is_generated) {
      generated.push_back(entry.candidate->feature);
    }
  }
  return FeaturePlan::Create(train.x.ColumnNames(), std::move(generated),
                             std::move(selected));
}

}  // namespace baselines
}  // namespace safe
