#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/synthetic.h"
#include "src/dataframe/split.h"

namespace safe {
namespace data {

/// \brief Shape of one benchmark dataset (paper Table IV) plus the
/// synthetic-generation knobs chosen for its analogue.
struct BenchmarkDatasetInfo {
  std::string name;
  size_t n_train = 0;
  size_t n_valid = 0;  // 0 = no validation split (paper: datasets < 10k)
  size_t n_test = 0;
  size_t num_features = 0;
  /// Synthetic-analogue knobs (see DESIGN.md Substitution 1).
  size_t num_informative = 0;
  size_t num_interactions = 0;
  size_t num_redundant = 0;
  double noise = 0.25;
  uint64_t seed = 0;
};

/// The 12 benchmark shapes of Table IV (valley .. vehicle), with
/// per-dataset generation knobs. Order matches the paper's table.
const std::vector<BenchmarkDatasetInfo>& BenchmarkSuite();

/// Looks a suite entry up by name.
[[nodiscard]] Result<BenchmarkDatasetInfo> FindBenchmarkDataset(const std::string& name);

/// Generates the synthetic analogue of a suite entry and splits it into
/// the paper's train/valid/test sizes. `row_scale` in (0,1] shrinks every
/// split proportionally (for quick runs); the shape knobs are untouched.
[[nodiscard]] Result<DatasetSplit> MakeBenchmarkSplit(const BenchmarkDatasetInfo& info,
                                        double row_scale = 1.0,
                                        uint64_t seed_offset = 0);

}  // namespace data
}  // namespace safe
