#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dataframe/dataframe.h"
#include "src/dataframe/split.h"

namespace safe {
namespace data {

/// \brief How a planted interaction combines its two parent columns.
/// The generator plants label signal in *pairwise* combinations because
/// that is exactly the structure SAFE's {+,−,×,÷} generation stage is
/// designed to recover (see DESIGN.md, Substitution 1).
enum class InteractionKind {
  kProduct,
  kRatio,
  kSum,
  kDifference,
};

/// \brief Recipe for one synthetic supervised dataset.
struct SyntheticSpec {
  std::string name = "synthetic";
  size_t num_rows = 1000;
  /// Total feature count M (informative + nuisance + redundant).
  size_t num_features = 10;
  /// Columns that carry label signal (directly or through interactions).
  size_t num_informative = 4;
  /// Planted pairwise interactions among informative columns.
  size_t num_interactions = 3;
  /// Redundant columns: near-affine copies of informative ones, planted to
  /// exercise the Pearson redundancy filter.
  size_t num_redundant = 1;
  /// Weight of the direct linear part of the score (vs interactions).
  double linear_weight = 0.3;
  /// Gaussian noise added to the latent score before thresholding.
  double noise = 0.25;
  /// Fraction of labels flipped after thresholding.
  double label_flip = 0.01;
  /// Positive-class rate (threshold is the matching score quantile).
  double positive_rate = 0.5;
  /// Fraction of feature cells set to NaN.
  double missing_rate = 0.0;
  uint64_t seed = 7;
};

/// Generates a dataset per the spec. Columns are named f0..f{M-1}; the
/// mapping from columns to roles is internal (and seed-deterministic).
[[nodiscard]] Result<Dataset> MakeSyntheticDataset(const SyntheticSpec& spec);

/// \brief Streaming out-of-core generator: writes row groups of
/// `group_rows` rows directly into `pool`-backed chunked columns, never
/// materializing a full column (peak scratch is one row group × M
/// doubles, independent of num_rows — the entry point for multi-GB
/// datasets).
///
/// Deterministic for a fixed (spec, group_rows): every column × row-group
/// cell is drawn from its own counter-seeded RNG stream, so the values do
/// not depend on generation order, thread count, or resident budget.
/// The planted structure (informative/interaction/redundant/nuisance
/// roles, missing cells, label mechanics) matches MakeSyntheticDataset,
/// but the realized values are a *different* deterministic draw than the
/// monolithic generator's single sequential stream, and the latent score
/// skips full-column standardization (terms use their raw scale) with the
/// label threshold estimated from the first row group's score quantile
/// rather than the global one. Labels stay resident (one double per row).
[[nodiscard]] Result<Dataset> MakeSyntheticDatasetChunked(
    const SyntheticSpec& spec, const std::shared_ptr<SpillPool>& pool,
    size_t group_rows);

/// \brief Generates and splits in one call: `n_train`+`n_valid`+`n_test`
/// rows, split deterministically from `spec.seed`. A zero `n_valid`
/// mirrors the paper's small datasets (train doubles as validation).
[[nodiscard]] Result<DatasetSplit> MakeSyntheticSplit(SyntheticSpec spec, size_t n_train,
                                        size_t n_valid, size_t n_test);

}  // namespace data
}  // namespace safe
