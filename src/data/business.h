#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/synthetic.h"
#include "src/dataframe/split.h"

namespace safe {
namespace data {

/// \brief Shape of one Ant Financial fraud-detection dataset
/// (paper Table VII). The real data is proprietary; the analogue is a
/// heavily imbalanced synthetic dataset with the same dimensionality
/// (see DESIGN.md Substitution 2).
struct BusinessDatasetInfo {
  std::string name;
  size_t n_train = 0;
  size_t n_valid = 0;
  size_t n_test = 0;
  size_t num_features = 0;
  double positive_rate = 0.03;  // fraud-like imbalance
  uint64_t seed = 0;
};

/// The three business shapes of Table VII (Data1..Data3).
const std::vector<BusinessDatasetInfo>& BusinessSuite();

/// Generates the analogue with every split scaled by `row_scale`
/// (default 1/20: the paper's 8M-row sets are infeasible on a single
/// core; the bench prints both row counts).
[[nodiscard]] Result<DatasetSplit> MakeBusinessSplit(const BusinessDatasetInfo& info,
                                       double row_scale = 0.05);

}  // namespace data
}  // namespace safe
