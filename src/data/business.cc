#include "src/data/business.h"

#include <algorithm>
#include <cmath>

namespace safe {
namespace data {

const std::vector<BusinessDatasetInfo>& BusinessSuite() {
  // Shapes from paper Table VII.
  static const std::vector<BusinessDatasetInfo> kSuite = {
      {"Data1", 2502617, 625655, 625655, 81, 0.030, 201},
      {"Data2", 7282428, 1820607, 1820607, 44, 0.025, 202},
      {"Data3", 8000000, 2000000, 2000000, 73, 0.020, 203},
  };
  return kSuite;
}

Result<DatasetSplit> MakeBusinessSplit(const BusinessDatasetInfo& info,
                                       double row_scale) {
  if (row_scale <= 0.0 || row_scale > 1.0) {
    return Status::InvalidArgument("row_scale must be in (0, 1]");
  }
  auto scale = [&](size_t n) -> size_t {
    return std::max<size_t>(
        1000,
        static_cast<size_t>(std::llround(row_scale * static_cast<double>(n))));
  };
  SyntheticSpec spec;
  spec.name = info.name;
  spec.num_features = info.num_features;
  spec.num_informative = std::max<size_t>(6, info.num_features / 8);
  spec.num_interactions = std::max<size_t>(6, info.num_features / 8);
  spec.num_redundant = std::max<size_t>(2, info.num_features / 16);
  spec.positive_rate = info.positive_rate;
  // Fraud-style data: most of the signal sits in feature interactions
  // (amount/limit ratios, velocity products), little in raw features.
  spec.linear_weight = 0.2;
  spec.noise = 0.25;
  spec.seed = info.seed;
  return MakeSyntheticSplit(spec, scale(info.n_train), scale(info.n_valid),
                            scale(info.n_test));
}

}  // namespace data
}  // namespace safe
