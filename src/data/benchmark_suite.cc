#include "src/data/benchmark_suite.h"

#include <algorithm>
#include <cmath>

namespace safe {
namespace data {

const std::vector<BenchmarkDatasetInfo>& BenchmarkSuite() {
  // Shapes from paper Table IV. The informative/interaction knobs scale
  // sub-linearly with dimensionality: wide datasets (gina) bury their
  // signal under many nuisance columns exactly as the real ones do.
  static const std::vector<BenchmarkDatasetInfo> kSuite = {
      {"valley", 900, 0, 312, 100, 8, 5, 4, 0.25, 101},
      {"banknote", 1000, 0, 372, 4, 3, 2, 0, 0.15, 102},
      {"gina", 2800, 0, 668, 970, 16, 8, 20, 0.30, 103},
      {"spambase", 3800, 0, 801, 57, 10, 6, 4, 0.25, 104},
      {"phoneme", 4500, 0, 904, 5, 4, 3, 0, 0.25, 105},
      {"wind", 5000, 0, 1574, 14, 6, 4, 1, 0.25, 106},
      {"ailerons", 9000, 2000, 2750, 40, 8, 5, 3, 0.25, 107},
      {"eeg-eye", 10000, 2000, 2980, 14, 6, 4, 1, 0.30, 108},
      {"magic", 13000, 3000, 3020, 10, 5, 4, 1, 0.25, 109},
      {"nomao", 22000, 6000, 6000, 118, 12, 7, 8, 0.25, 110},
      {"bank", 35211, 4000, 6000, 51, 10, 6, 4, 0.35, 111},
      {"vehicle", 60000, 18528, 20000, 100, 12, 7, 8, 0.30, 112},
  };
  return kSuite;
}

Result<BenchmarkDatasetInfo> FindBenchmarkDataset(const std::string& name) {
  for (const auto& info : BenchmarkSuite()) {
    if (info.name == name) return info;
  }
  return Status::NotFound("no benchmark dataset named '" + name + "'");
}

Result<DatasetSplit> MakeBenchmarkSplit(const BenchmarkDatasetInfo& info,
                                        double row_scale,
                                        uint64_t seed_offset) {
  if (row_scale <= 0.0 || row_scale > 1.0) {
    return Status::InvalidArgument("row_scale must be in (0, 1]");
  }
  auto scale = [&](size_t n) -> size_t {
    if (n == 0) return 0;
    return std::max<size_t>(
        20, static_cast<size_t>(std::llround(row_scale * static_cast<double>(n))));
  };
  SyntheticSpec spec;
  spec.name = info.name;
  spec.num_features = info.num_features;
  spec.num_informative = info.num_informative;
  spec.num_interactions = info.num_interactions;
  spec.num_redundant = info.num_redundant;
  spec.noise = info.noise;
  spec.seed = info.seed + seed_offset;
  return MakeSyntheticSplit(spec, scale(info.n_train), scale(info.n_valid),
                            scale(info.n_test));
}

}  // namespace data
}  // namespace safe
