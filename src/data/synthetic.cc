#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/stats/descriptive.h"

namespace safe {
namespace data {

namespace {

/// Distribution family of one raw column.
struct ColumnGen {
  enum class Family { kGaussian, kLogNormal, kUniform } family;
  double a = 0.0;  // mean / log-mean / low
  double b = 1.0;  // std / log-std / high

  double Draw(Rng* rng) const {
    switch (family) {
      case Family::kGaussian:
        return a + b * rng->NextGaussian();
      case Family::kLogNormal:
        return std::exp(a + b * rng->NextGaussian());
      case Family::kUniform:
        return rng->NextUniform(a, b);
    }
    return 0.0;
  }
};

ColumnGen RandomColumnGen(Rng* rng) {
  ColumnGen gen;
  const uint64_t family = rng->NextUint64Below(3);
  if (family == 0) {
    gen.family = ColumnGen::Family::kGaussian;
    gen.a = rng->NextUniform(-2.0, 2.0);
    gen.b = rng->NextUniform(0.5, 2.0);
  } else if (family == 1) {
    gen.family = ColumnGen::Family::kLogNormal;
    gen.a = rng->NextUniform(-0.5, 0.5);
    gen.b = rng->NextUniform(0.3, 0.8);
  } else {
    gen.family = ColumnGen::Family::kUniform;
    gen.a = rng->NextUniform(-3.0, 0.0);
    gen.b = gen.a + rng->NextUniform(1.0, 5.0);
  }
  return gen;
}

/// In-place standardization to zero mean / unit variance (no-op when the
/// values are constant).
void Standardize(std::vector<double>* values) {
  const double mu = Mean(*values);
  const double sd = StdDev(*values);
  if (sd <= 0.0) return;
  for (double& v : *values) v = (v - mu) / sd;
}

double ApplyInteraction(InteractionKind kind, double x, double y) {
  switch (kind) {
    case InteractionKind::kProduct:
      return x * y;
    case InteractionKind::kRatio:
      // Bounded-denominator ratio keeps the latent score finite while
      // remaining a genuinely non-additive function of the pair.
      return x / (std::fabs(y) + 0.1);
    case InteractionKind::kSum:
      return x + y;
    case InteractionKind::kDifference:
      return x - y;
  }
  return 0.0;
}

Status ValidateSpec(const SyntheticSpec& spec) {
  if (spec.num_rows < 10) {
    return Status::InvalidArgument("synthetic: need at least 10 rows");
  }
  if (spec.num_features == 0) {
    return Status::InvalidArgument("synthetic: need at least 1 feature");
  }
  if (spec.num_informative == 0 ||
      spec.num_informative + spec.num_redundant > spec.num_features) {
    return Status::InvalidArgument(
        "synthetic: informative + redundant must be in [1, num_features]");
  }
  if (spec.num_interactions > 0 && spec.num_informative < 2) {
    return Status::InvalidArgument(
        "synthetic: interactions need >= 2 informative columns");
  }
  if (spec.positive_rate <= 0.0 || spec.positive_rate >= 1.0) {
    return Status::InvalidArgument(
        "synthetic: positive_rate must be in (0,1)");
  }
  if (spec.missing_rate < 0.0 || spec.missing_rate >= 1.0 ||
      spec.label_flip < 0.0 || spec.label_flip >= 0.5) {
    return Status::InvalidArgument("synthetic: bad noise rates");
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> MakeSyntheticDataset(const SyntheticSpec& spec) {
  SAFE_RETURN_NOT_OK(ValidateSpec(spec));
  Rng rng(spec.seed);
  const size_t n = spec.num_rows;
  const size_t m = spec.num_features;
  const size_t n_info = spec.num_informative;
  const size_t n_red = spec.num_redundant;

  // Raw informative columns.
  std::vector<std::vector<double>> informative(n_info);
  for (size_t c = 0; c < n_info; ++c) {
    ColumnGen gen = RandomColumnGen(&rng);
    informative[c].resize(n);
    for (size_t r = 0; r < n; ++r) informative[c][r] = gen.Draw(&rng);
  }

  // Latent score: standardized interactions + a weaker linear part.
  std::vector<double> score(n, 0.0);
  for (size_t k = 0; k < spec.num_interactions; ++k) {
    const size_t a = rng.NextUint64Below(n_info);
    size_t b = rng.NextUint64Below(n_info);
    if (n_info > 1) {
      while (b == a) b = rng.NextUint64Below(n_info);
    }
    const auto kind = static_cast<InteractionKind>(rng.NextUint64Below(4));
    const double sign = rng.NextBernoulli(0.5) ? 1.0 : -1.0;
    const double weight = sign * rng.NextUniform(1.0, 2.0);
    std::vector<double> term(n);
    for (size_t r = 0; r < n; ++r) {
      term[r] = ApplyInteraction(kind, informative[a][r], informative[b][r]);
    }
    Standardize(&term);
    for (size_t r = 0; r < n; ++r) score[r] += weight * term[r];
  }
  Standardize(&score);
  for (double& s : score) s *= (1.0 - spec.linear_weight);

  std::vector<double> linear(n, 0.0);
  for (size_t c = 0; c < n_info; ++c) {
    const double w = rng.NextUniform(-1.0, 1.0);
    std::vector<double> term = informative[c];
    Standardize(&term);
    for (size_t r = 0; r < n; ++r) linear[r] += w * term[r];
  }
  Standardize(&linear);
  for (size_t r = 0; r < n; ++r) {
    score[r] += spec.linear_weight * linear[r] +
                spec.noise * rng.NextGaussian();
  }

  // Threshold at the (1 - positive_rate) quantile, then flip noise.
  const double threshold = Quantile(score, 1.0 - spec.positive_rate);
  std::vector<double> labels(n);
  for (size_t r = 0; r < n; ++r) {
    bool positive = score[r] > threshold;
    if (spec.label_flip > 0.0 && rng.NextBernoulli(spec.label_flip)) {
      positive = !positive;
    }
    labels[r] = positive ? 1.0 : 0.0;
  }
  // Guarantee both classes exist (tiny datasets + quantile ties).
  if (CountEqual(labels, 1.0) == 0) labels[0] = 1.0;
  if (CountEqual(labels, 0.0) == 0) labels[0] = 0.0;

  // Assemble all columns: informative, redundant, nuisance — then shuffle
  // the column order so role is not recoverable from position.
  std::vector<std::vector<double>> columns;
  columns.reserve(m);
  for (auto& col : informative) columns.push_back(std::move(col));
  for (size_t k = 0; k < n_red; ++k) {
    const size_t src = rng.NextUint64Below(n_info);
    const double scale = rng.NextUniform(0.5, 2.0);
    const double shift = rng.NextUniform(-1.0, 1.0);
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) {
      col[r] = scale * columns[src][r] + shift +
               0.01 * rng.NextGaussian();
    }
    columns.push_back(std::move(col));
  }
  while (columns.size() < m) {
    ColumnGen gen = RandomColumnGen(&rng);
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) col[r] = gen.Draw(&rng);
    columns.push_back(std::move(col));
  }
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  rng.Shuffle(&order);

  // Missing-value injection (after label generation).
  if (spec.missing_rate > 0.0) {
    for (auto& col : columns) {
      for (double& v : col) {
        if (rng.NextBernoulli(spec.missing_rate)) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }

  DataFrame x;
  for (size_t i = 0; i < m; ++i) {
    SAFE_RETURN_NOT_OK(x.AddColumn(
        Column("f" + std::to_string(i), std::move(columns[order[i]]))));
  }
  return MakeDataset(std::move(x), std::move(labels));
}

namespace {

/// Stream purposes for the counter-seeded per-(column, row-group) RNGs of
/// the chunked generator. Each (purpose, column, group) triple names an
/// independent deterministic stream.
enum class StreamPurpose : uint64_t {
  kInformative = 1,
  kRedundantNoise = 2,
  kNuisance = 3,
  kScoreNoise = 4,
  kLabelFlip = 5,
  kMissing = 6,
};

/// SplitMix64-style mix of (seed, purpose, column, group) into one
/// stream seed. Sequential counters would correlate xoshiro states; the
/// finalizer scatters them.
uint64_t MixStreamSeed(uint64_t seed, StreamPurpose purpose, uint64_t column,
                       uint64_t group) {
  uint64_t z = seed;
  for (uint64_t word : {static_cast<uint64_t>(purpose), column, group}) {
    z += 0x9E3779B97F4A7C15ULL + word;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z = z ^ (z >> 31);
  }
  return z;
}

/// The fitted (config-stream) recipe of a chunked synthetic dataset:
/// everything drawn once up front, so per-group generation is pure.
struct ChunkedRecipe {
  struct Interaction {
    size_t a = 0;
    size_t b = 0;
    InteractionKind kind = InteractionKind::kProduct;
    double weight = 0.0;
  };
  struct Redundant {
    size_t src = 0;
    double scale = 1.0;
    double shift = 0.0;
  };

  std::vector<ColumnGen> informative;
  std::vector<Interaction> interactions;
  std::vector<double> linear_weights;  ///< per informative column
  std::vector<Redundant> redundant;
  std::vector<ColumnGen> nuisance;
  std::vector<size_t> order;  ///< position -> role-order column index

  static ChunkedRecipe Draw(const SyntheticSpec& spec, Rng* rng) {
    ChunkedRecipe recipe;
    const size_t n_info = spec.num_informative;
    recipe.informative.reserve(n_info);
    for (size_t c = 0; c < n_info; ++c) {
      recipe.informative.push_back(RandomColumnGen(rng));
    }
    for (size_t k = 0; k < spec.num_interactions; ++k) {
      Interaction inter;
      inter.a = rng->NextUint64Below(n_info);
      inter.b = rng->NextUint64Below(n_info);
      if (n_info > 1) {
        while (inter.b == inter.a) inter.b = rng->NextUint64Below(n_info);
      }
      inter.kind = static_cast<InteractionKind>(rng->NextUint64Below(4));
      const double sign = rng->NextBernoulli(0.5) ? 1.0 : -1.0;
      inter.weight = sign * rng->NextUniform(1.0, 2.0);
      recipe.interactions.push_back(inter);
    }
    for (size_t c = 0; c < n_info; ++c) {
      recipe.linear_weights.push_back(rng->NextUniform(-1.0, 1.0));
    }
    for (size_t k = 0; k < spec.num_redundant; ++k) {
      Redundant red;
      red.src = rng->NextUint64Below(n_info);
      red.scale = rng->NextUniform(0.5, 2.0);
      red.shift = rng->NextUniform(-1.0, 1.0);
      recipe.redundant.push_back(red);
    }
    const size_t n_nuis =
        spec.num_features - n_info - spec.num_redundant;
    for (size_t k = 0; k < n_nuis; ++k) {
      recipe.nuisance.push_back(RandomColumnGen(rng));
    }
    recipe.order.resize(spec.num_features);
    for (size_t i = 0; i < spec.num_features; ++i) recipe.order[i] = i;
    rng->Shuffle(&recipe.order);
    return recipe;
  }
};

/// One row group's worth of every column (role order) plus the latent
/// score, generated purely from (spec, recipe, group index). NaN
/// injection happens after the score so missingness never perturbs
/// labels, mirroring the monolithic generator.
struct GroupScratch {
  std::vector<std::vector<double>> columns;  ///< [role-order column][row]
  std::vector<double> score;
};

void GenerateGroup(const SyntheticSpec& spec, const ChunkedRecipe& recipe,
                   size_t group, size_t lo, size_t hi, GroupScratch* out) {
  const size_t len = hi - lo;
  const size_t n_info = spec.num_informative;
  out->columns.assign(spec.num_features, {});
  out->score.assign(len, 0.0);

  // Informative columns, one independent stream per (column, group).
  for (size_t c = 0; c < n_info; ++c) {
    Rng rng(MixStreamSeed(spec.seed, StreamPurpose::kInformative, c, group));
    auto& col = out->columns[c];
    col.resize(len);
    for (size_t i = 0; i < len; ++i) {
      col[i] = recipe.informative[c].Draw(&rng);
    }
  }

  // Latent score: interactions + linear part at raw scale (the chunked
  // generator skips full-column standardization by design), plus noise.
  {
    Rng noise_rng(
        MixStreamSeed(spec.seed, StreamPurpose::kScoreNoise, 0, group));
    for (size_t i = 0; i < len; ++i) {
      double s = 0.0;
      for (const auto& inter : recipe.interactions) {
        s += inter.weight * ApplyInteraction(inter.kind,
                                             out->columns[inter.a][i],
                                             out->columns[inter.b][i]);
      }
      s *= (1.0 - spec.linear_weight);
      double linear = 0.0;
      for (size_t c = 0; c < n_info; ++c) {
        linear += recipe.linear_weights[c] * out->columns[c][i];
      }
      out->score[i] = s + spec.linear_weight * linear +
                      spec.noise * noise_rng.NextGaussian();
    }
  }

  // Redundant (near-affine copies) and nuisance columns.
  for (size_t k = 0; k < recipe.redundant.size(); ++k) {
    Rng rng(
        MixStreamSeed(spec.seed, StreamPurpose::kRedundantNoise, k, group));
    const auto& red = recipe.redundant[k];
    auto& col = out->columns[n_info + k];
    col.resize(len);
    for (size_t i = 0; i < len; ++i) {
      col[i] = red.scale * out->columns[red.src][i] + red.shift +
               0.01 * rng.NextGaussian();
    }
  }
  for (size_t k = 0; k < recipe.nuisance.size(); ++k) {
    Rng rng(MixStreamSeed(spec.seed, StreamPurpose::kNuisance, k, group));
    auto& col = out->columns[n_info + recipe.redundant.size() + k];
    col.resize(len);
    for (size_t i = 0; i < len; ++i) {
      col[i] = recipe.nuisance[k].Draw(&rng);
    }
  }

  // Missing-value injection (after the score is computed).
  if (spec.missing_rate > 0.0) {
    for (size_t c = 0; c < spec.num_features; ++c) {
      Rng rng(MixStreamSeed(spec.seed, StreamPurpose::kMissing, c, group));
      for (double& v : out->columns[c]) {
        if (rng.NextBernoulli(spec.missing_rate)) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }
}

}  // namespace

Result<Dataset> MakeSyntheticDatasetChunked(
    const SyntheticSpec& spec, const std::shared_ptr<SpillPool>& pool,
    size_t group_rows) {
  SAFE_RETURN_NOT_OK(ValidateSpec(spec));
  if (pool == nullptr) {
    return Status::InvalidArgument("synthetic chunked: null spill pool");
  }
  if (!ValidRowGroupRows(group_rows)) {
    return Status::InvalidArgument(
        "synthetic chunked: group_rows must be a power of two >= " +
        std::to_string(kMinRowGroupRows));
  }
  const size_t n = spec.num_rows;
  const size_t m = spec.num_features;
  Rng config_rng(spec.seed);
  const ChunkedRecipe recipe = ChunkedRecipe::Draw(spec, &config_rng);

  // Label threshold from the first row group's score sample: streaming
  // cannot see the global quantile without a second full pass, and the
  // first group is an unbiased (row-order-independent) draw.
  GroupScratch scratch;
  GenerateGroup(spec, recipe, 0, 0, std::min(n, group_rows), &scratch);
  const double threshold = Quantile(scratch.score, 1.0 - spec.positive_rate);

  std::vector<ChunkedVectorBuilder<double>> builders;
  builders.reserve(m);
  for (size_t c = 0; c < m; ++c) builders.emplace_back(pool, group_rows);
  std::vector<double> labels;
  labels.reserve(n);

  const size_t num_groups = (n + group_rows - 1) / group_rows;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t lo = g * group_rows;
    const size_t hi = std::min(n, lo + group_rows);
    if (g != 0) GenerateGroup(spec, recipe, g, lo, hi, &scratch);
    Rng flip_rng(
        MixStreamSeed(spec.seed, StreamPurpose::kLabelFlip, 0, g));
    for (double s : scratch.score) {
      bool positive = s > threshold;
      if (spec.label_flip > 0.0 && flip_rng.NextBernoulli(spec.label_flip)) {
        positive = !positive;
      }
      labels.push_back(positive ? 1.0 : 0.0);
    }
    for (size_t c = 0; c < m; ++c) {
      builders[c].Append(scratch.columns[c].data(), hi - lo);
    }
  }
  // Guarantee both classes exist (tiny datasets + quantile ties).
  if (CountEqual(labels, 1.0) == 0) labels[0] = 1.0;
  if (CountEqual(labels, 0.0) == 0) labels[0] = 0.0;

  DataFrame x;
  for (size_t i = 0; i < m; ++i) {
    SAFE_RETURN_NOT_OK(x.AddColumn(Column(
        "f" + std::to_string(i), builders[recipe.order[i]].Finish())));
  }
  return MakeDataset(std::move(x), std::move(labels));
}

Result<DatasetSplit> MakeSyntheticSplit(SyntheticSpec spec, size_t n_train,
                                        size_t n_valid, size_t n_test) {
  spec.num_rows = n_train + n_valid + n_test;
  SAFE_ASSIGN_OR_RETURN(Dataset data, MakeSyntheticDataset(spec));
  return SplitDataset(data, n_train, n_valid, n_test, spec.seed ^ 0xD5);
}

}  // namespace data
}  // namespace safe
