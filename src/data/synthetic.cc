#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/random.h"
#include "src/stats/descriptive.h"

namespace safe {
namespace data {

namespace {

/// Distribution family of one raw column.
struct ColumnGen {
  enum class Family { kGaussian, kLogNormal, kUniform } family;
  double a = 0.0;  // mean / log-mean / low
  double b = 1.0;  // std / log-std / high

  double Draw(Rng* rng) const {
    switch (family) {
      case Family::kGaussian:
        return a + b * rng->NextGaussian();
      case Family::kLogNormal:
        return std::exp(a + b * rng->NextGaussian());
      case Family::kUniform:
        return rng->NextUniform(a, b);
    }
    return 0.0;
  }
};

ColumnGen RandomColumnGen(Rng* rng) {
  ColumnGen gen;
  const uint64_t family = rng->NextUint64Below(3);
  if (family == 0) {
    gen.family = ColumnGen::Family::kGaussian;
    gen.a = rng->NextUniform(-2.0, 2.0);
    gen.b = rng->NextUniform(0.5, 2.0);
  } else if (family == 1) {
    gen.family = ColumnGen::Family::kLogNormal;
    gen.a = rng->NextUniform(-0.5, 0.5);
    gen.b = rng->NextUniform(0.3, 0.8);
  } else {
    gen.family = ColumnGen::Family::kUniform;
    gen.a = rng->NextUniform(-3.0, 0.0);
    gen.b = gen.a + rng->NextUniform(1.0, 5.0);
  }
  return gen;
}

/// In-place standardization to zero mean / unit variance (no-op when the
/// values are constant).
void Standardize(std::vector<double>* values) {
  const double mu = Mean(*values);
  const double sd = StdDev(*values);
  if (sd <= 0.0) return;
  for (double& v : *values) v = (v - mu) / sd;
}

double ApplyInteraction(InteractionKind kind, double x, double y) {
  switch (kind) {
    case InteractionKind::kProduct:
      return x * y;
    case InteractionKind::kRatio:
      // Bounded-denominator ratio keeps the latent score finite while
      // remaining a genuinely non-additive function of the pair.
      return x / (std::fabs(y) + 0.1);
    case InteractionKind::kSum:
      return x + y;
    case InteractionKind::kDifference:
      return x - y;
  }
  return 0.0;
}

Status ValidateSpec(const SyntheticSpec& spec) {
  if (spec.num_rows < 10) {
    return Status::InvalidArgument("synthetic: need at least 10 rows");
  }
  if (spec.num_features == 0) {
    return Status::InvalidArgument("synthetic: need at least 1 feature");
  }
  if (spec.num_informative == 0 ||
      spec.num_informative + spec.num_redundant > spec.num_features) {
    return Status::InvalidArgument(
        "synthetic: informative + redundant must be in [1, num_features]");
  }
  if (spec.num_interactions > 0 && spec.num_informative < 2) {
    return Status::InvalidArgument(
        "synthetic: interactions need >= 2 informative columns");
  }
  if (spec.positive_rate <= 0.0 || spec.positive_rate >= 1.0) {
    return Status::InvalidArgument(
        "synthetic: positive_rate must be in (0,1)");
  }
  if (spec.missing_rate < 0.0 || spec.missing_rate >= 1.0 ||
      spec.label_flip < 0.0 || spec.label_flip >= 0.5) {
    return Status::InvalidArgument("synthetic: bad noise rates");
  }
  return Status::OK();
}

}  // namespace

Result<Dataset> MakeSyntheticDataset(const SyntheticSpec& spec) {
  SAFE_RETURN_NOT_OK(ValidateSpec(spec));
  Rng rng(spec.seed);
  const size_t n = spec.num_rows;
  const size_t m = spec.num_features;
  const size_t n_info = spec.num_informative;
  const size_t n_red = spec.num_redundant;

  // Raw informative columns.
  std::vector<std::vector<double>> informative(n_info);
  for (size_t c = 0; c < n_info; ++c) {
    ColumnGen gen = RandomColumnGen(&rng);
    informative[c].resize(n);
    for (size_t r = 0; r < n; ++r) informative[c][r] = gen.Draw(&rng);
  }

  // Latent score: standardized interactions + a weaker linear part.
  std::vector<double> score(n, 0.0);
  for (size_t k = 0; k < spec.num_interactions; ++k) {
    const size_t a = rng.NextUint64Below(n_info);
    size_t b = rng.NextUint64Below(n_info);
    if (n_info > 1) {
      while (b == a) b = rng.NextUint64Below(n_info);
    }
    const auto kind = static_cast<InteractionKind>(rng.NextUint64Below(4));
    const double sign = rng.NextBernoulli(0.5) ? 1.0 : -1.0;
    const double weight = sign * rng.NextUniform(1.0, 2.0);
    std::vector<double> term(n);
    for (size_t r = 0; r < n; ++r) {
      term[r] = ApplyInteraction(kind, informative[a][r], informative[b][r]);
    }
    Standardize(&term);
    for (size_t r = 0; r < n; ++r) score[r] += weight * term[r];
  }
  Standardize(&score);
  for (double& s : score) s *= (1.0 - spec.linear_weight);

  std::vector<double> linear(n, 0.0);
  for (size_t c = 0; c < n_info; ++c) {
    const double w = rng.NextUniform(-1.0, 1.0);
    std::vector<double> term = informative[c];
    Standardize(&term);
    for (size_t r = 0; r < n; ++r) linear[r] += w * term[r];
  }
  Standardize(&linear);
  for (size_t r = 0; r < n; ++r) {
    score[r] += spec.linear_weight * linear[r] +
                spec.noise * rng.NextGaussian();
  }

  // Threshold at the (1 - positive_rate) quantile, then flip noise.
  const double threshold = Quantile(score, 1.0 - spec.positive_rate);
  std::vector<double> labels(n);
  for (size_t r = 0; r < n; ++r) {
    bool positive = score[r] > threshold;
    if (spec.label_flip > 0.0 && rng.NextBernoulli(spec.label_flip)) {
      positive = !positive;
    }
    labels[r] = positive ? 1.0 : 0.0;
  }
  // Guarantee both classes exist (tiny datasets + quantile ties).
  if (CountEqual(labels, 1.0) == 0) labels[0] = 1.0;
  if (CountEqual(labels, 0.0) == 0) labels[0] = 0.0;

  // Assemble all columns: informative, redundant, nuisance — then shuffle
  // the column order so role is not recoverable from position.
  std::vector<std::vector<double>> columns;
  columns.reserve(m);
  for (auto& col : informative) columns.push_back(std::move(col));
  for (size_t k = 0; k < n_red; ++k) {
    const size_t src = rng.NextUint64Below(n_info);
    const double scale = rng.NextUniform(0.5, 2.0);
    const double shift = rng.NextUniform(-1.0, 1.0);
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) {
      col[r] = scale * columns[src][r] + shift +
               0.01 * rng.NextGaussian();
    }
    columns.push_back(std::move(col));
  }
  while (columns.size() < m) {
    ColumnGen gen = RandomColumnGen(&rng);
    std::vector<double> col(n);
    for (size_t r = 0; r < n; ++r) col[r] = gen.Draw(&rng);
    columns.push_back(std::move(col));
  }
  std::vector<size_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = i;
  rng.Shuffle(&order);

  // Missing-value injection (after label generation).
  if (spec.missing_rate > 0.0) {
    for (auto& col : columns) {
      for (double& v : col) {
        if (rng.NextBernoulli(spec.missing_rate)) {
          v = std::numeric_limits<double>::quiet_NaN();
        }
      }
    }
  }

  DataFrame x;
  for (size_t i = 0; i < m; ++i) {
    SAFE_RETURN_NOT_OK(x.AddColumn(
        Column("f" + std::to_string(i), std::move(columns[order[i]]))));
  }
  return MakeDataset(std::move(x), std::move(labels));
}

Result<DatasetSplit> MakeSyntheticSplit(SyntheticSpec spec, size_t n_train,
                                        size_t n_valid, size_t n_test) {
  spec.num_rows = n_train + n_valid + n_test;
  SAFE_ASSIGN_OR_RETURN(Dataset data, MakeSyntheticDataset(spec));
  return SplitDataset(data, n_train, n_valid, n_test, spec.seed ^ 0xD5);
}

}  // namespace data
}  // namespace safe
