#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <tuple>

#include "src/lint/lint.h"

namespace safe {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Offset of the last non-space character strictly before `i`, or npos.
size_t PrevNonSpace(const std::string& s, size_t i) {
  while (i > 0) {
    --i;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
  }
  return std::string::npos;
}

/// Consumes a balanced `<...>` starting at the '<' at `i` (see decl_index).
size_t SkipTemplateArgs(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') {
      ++depth;
    } else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

/// Offset one past the ')' matching the '(' at `i`, or npos.
size_t MatchParen(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Offset one past the '}' matching the '{' at `i`, or npos.
size_t MatchBrace(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '{') {
      ++depth;
    } else if (s[i] == '}') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Offset of the '(' matching the ')' at `close`, or npos.
size_t MatchParenBack(const std::string& s, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i > 0;) {
    --i;
    if (s[i] == ')') {
      ++depth;
    } else if (s[i] == '(') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Start offset of the identifier whose last character is at `end`.
size_t IdentBegin(const std::string& s, size_t end) {
  size_t begin = end;
  while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
  return begin;
}

/// True when the first non-space character of `offset`'s line is '#'
/// (preprocessor line — #include <unordered_set> is not a declaration).
bool OnPreprocessorLine(const std::string& s, size_t offset) {
  size_t begin = offset;
  while (begin > 0 && s[begin - 1] != '\n') --begin;
  begin = SkipSpace(s, begin);
  return begin < s.size() && s[begin] == '#';
}

/// Calls fn(token, begin_offset) for every identifier token.
template <typename Fn>
void ForEachToken(const std::string& s, Fn fn) {
  size_t i = 0;
  while (i < s.size()) {
    if (IsIdentStart(s[i]) && (i == 0 || !IsIdentChar(s[i - 1]))) {
      size_t end = i;
      while (end < s.size() && IsIdentChar(s[end])) ++end;
      fn(s.substr(i, end - i), i);
      i = end;
    } else {
      ++i;
    }
  }
}

/// Directory component right under src/ ("core" for src/core/engine.cc),
/// empty when the path is not under src/.
std::string SrcSubdir(const std::string& path) {
  const std::string prefix = "src/";
  if (path.compare(0, prefix.size(), prefix) != 0) return "";
  const size_t slash = path.find('/', prefix.size());
  if (slash == std::string::npos) return "";
  return path.substr(prefix.size(), slash - prefix.size());
}

/// Full directory path under src/ ("serve/server" for
/// src/serve/server/x.cc), empty when the path is not under src/.
std::string SrcDirPath(const std::string& path) {
  const std::string prefix = "src/";
  if (path.compare(0, prefix.size(), prefix) != 0) return "";
  const size_t last_slash = path.find_last_of('/');
  if (last_slash == std::string::npos || last_slash < prefix.size()) return "";
  return path.substr(prefix.size(), last_slash - prefix.size());
}

struct RuleContext {
  const SourceFile& file;
  const DeclIndex& index;
  std::vector<Finding>* findings;

  void Report(const char* rule, const std::string& key, size_t offset,
              std::string message) {
    const size_t line = file.LineOf(offset);
    if (file.Allows(key, line)) return;
    findings->push_back(Finding{rule, file.path(), line, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// SL001 — nondeterminism sources outside src/common/. The engine's only
// entropy source is common::Rng; raw rand()/time()/random_device anywhere
// else breaks the bit-identical-at-any-thread-count guarantee.
void RuleNondeterminism(RuleContext& ctx) {
  if (ctx.file.path().compare(0, 11, "src/common/") == 0) return;
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    const bool banned_always =
        token == "rand" || token == "srand" || token == "random_device";
    // `time` only as a call — time_point etc. are distinct tokens already.
    const bool banned_call =
        token == "time" && SkipSpace(s, begin + token.size()) < s.size() &&
        s[SkipSpace(s, begin + token.size())] == '(';
    if (!banned_always && !banned_call) return;
    if (OnPreprocessorLine(s, begin)) return;
    ctx.Report("SL001", "nondeterminism", begin,
               "nondeterminism source '" + token +
                   "' outside src/common/ — use common::Rng (seeded) instead");
  });
}

// ---------------------------------------------------------------------------
// SL002 — unordered containers in deterministic directories. Declarations
// must carry `// lint: unordered-ok(<reason>)` stating why bucket order
// cannot reach serialized output; range-for iteration over one is flagged
// unconditionally (annotatable, but should be a sorted copy instead).
void RuleUnordered(RuleContext& ctx) {
  const std::string dir = SrcSubdir(ctx.file.path());
  if (dir != "core" && dir != "stats" && dir != "gbdt" &&
      dir != "baselines" && dir != "serve" && dir != "dataframe") {
    return;
  }
  const std::string& s = ctx.file.scrubbed();
  std::vector<std::string> declared;

  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "unordered_map" && token != "unordered_set" &&
        token != "unordered_multimap" && token != "unordered_multiset") {
      return;
    }
    if (OnPreprocessorLine(s, begin)) return;
    size_t j = SkipSpace(s, begin + token.size());
    if (j < s.size() && s[j] == '<') {
      j = SkipTemplateArgs(s, j);
      if (j == std::string::npos) return;
      j = SkipSpace(s, j);
    }
    while (j < s.size() && (s[j] == '&' || s[j] == '*')) {
      j = SkipSpace(s, j + 1);
    }
    if (j >= s.size() || !IsIdentStart(s[j])) return;  // temporary / alias
    size_t name_end = j;
    while (name_end < s.size() && IsIdentChar(s[name_end])) ++name_end;
    declared.push_back(s.substr(j, name_end - j));
    ctx.Report("SL002", "unordered", begin,
               "unordered container '" + declared.back() + "' in src/" + dir +
                   " — declare order-freedom with // lint: "
                   "unordered-ok(<reason>) or use a sorted container");
  });

  // Range-for whose range expression names an unordered variable (or any
  // unordered_* temporary) iterates in bucket order.
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "for") return;
    const size_t open = SkipSpace(s, begin + 3);
    if (open >= s.size() || s[open] != '(') return;
    const size_t close = MatchParen(s, open);
    if (close == std::string::npos) return;
    // Top-level ':' that is not part of '::'.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t k = open + 1; k < close - 1; ++k) {
      if (s[k] == '(' || s[k] == '[' || s[k] == '{') ++depth;
      if (s[k] == ')' || s[k] == ']' || s[k] == '}') --depth;
      if (depth == 0 && s[k] == ':' && s[k - 1] != ':' &&
          (k + 1 >= close || s[k + 1] != ':')) {
        colon = k;
        break;
      }
    }
    if (colon == std::string::npos) return;
    const std::string range = s.substr(colon + 1, close - 1 - (colon + 1));
    bool hits = range.find("unordered_") != std::string::npos;
    for (const std::string& name : declared) {
      if (hits) break;
      size_t pos = range.find(name);
      while (pos != std::string::npos) {
        const bool left_ok = pos == 0 || !IsIdentChar(range[pos - 1]);
        const bool right_ok = pos + name.size() >= range.size() ||
                              !IsIdentChar(range[pos + name.size()]);
        if (left_ok && right_ok) {
          hits = true;
          break;
        }
        pos = range.find(name, pos + 1);
      }
    }
    if (hits) {
      ctx.Report("SL002", "unordered", begin,
                 "range-for over an unordered container iterates in bucket "
                 "order — copy keys out and sort them first");
    }
  });
}

// ---------------------------------------------------------------------------
// SL003 — std::stable_sort. PR 3 replaced every stable_sort on a
// deterministic path with an explicit total order (value, then index);
// stability as a tie-break hides the ordering contract.
void RuleStableSort(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "stable_sort") return;
    ctx.Report("SL003", "stable-sort", begin,
               "std::stable_sort — spell out the full total order "
               "(value, then index) with std::sort instead");
  });
}

// ---------------------------------------------------------------------------
// SL004 — std::atomic over floating point. PR 2's parallel trainer forbids
// FP atomics: atomic FP accumulation is ordering-dependent, so results
// would vary with thread interleaving. Reduce per-thread, combine in a
// fixed order.
void RuleFpAtomic(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "atomic") return;
    const size_t open = SkipSpace(s, begin + token.size());
    if (open >= s.size() || s[open] != '<') return;
    const size_t close = SkipTemplateArgs(s, open);
    if (close == std::string::npos) return;
    const std::string args = s.substr(open, close - open);
    bool fp = false;
    ForEachToken(args, [&](const std::string& t, size_t) {
      if (t == "float" || t == "double") fp = true;
    });
    if (fp) {
      ctx.Report("SL004", "fp-atomic", begin,
                 "std::atomic over floating point — accumulation order "
                 "depends on interleaving; reduce per-thread and combine "
                 "in fixed order");
    }
  });
}

// ---------------------------------------------------------------------------
// SL005 — discarded Status/Result. A statement-level call to an indexed
// Status/Result-returning function whose value is dropped (bare or behind
// a (void) cast) silently ignores an error path.
void RuleDiscardedStatus(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t name_begin) {
    if (!ctx.index.Contains(token)) return;
    const size_t name_end = name_begin + token.size();
    const size_t open = SkipSpace(s, name_end);
    if (open >= s.size() || s[open] != '(') return;
    const size_t after_call = MatchParen(s, open);
    if (after_call == std::string::npos) return;
    // The value is consumed unless the statement ends right after the call.
    const size_t next = SkipSpace(s, after_call);
    if (next >= s.size() || s[next] != ';') return;

    // Walk back over the callee chain: a.b->c::Name( ... chain elements are
    // identifiers only; anything else (e.g. Foo(x).Name) is left alone.
    size_t chain_begin = name_begin;
    while (true) {
      const size_t p = PrevNonSpace(s, chain_begin);
      if (p == std::string::npos) break;
      size_t sep_begin;
      if (s[p] == '.') {
        sep_begin = p;
      } else if (s[p] == '>' && p > 0 && s[p - 1] == '-') {
        sep_begin = p - 1;
      } else if (s[p] == ':' && p > 0 && s[p - 1] == ':') {
        sep_begin = p - 1;
      } else {
        break;
      }
      const size_t q = PrevNonSpace(s, sep_begin);
      if (q == std::string::npos || !IsIdentChar(s[q])) return;  // unknown
      chain_begin = IdentBegin(s, q);
    }

    const size_t before = PrevNonSpace(s, chain_begin);
    bool discarded = false;
    bool void_cast = false;
    if (before == std::string::npos || s[before] == ';' || s[before] == '{' ||
        s[before] == '}') {
      discarded = true;
    } else if (s[before] == ')') {
      const size_t cast_open = MatchParenBack(s, before);
      if (cast_open != std::string::npos) {
        const std::string inner =
            s.substr(cast_open + 1, before - cast_open - 1);
        size_t a = SkipSpace(inner, 0);
        if (inner.compare(a, 4, "void") == 0 &&
            SkipSpace(inner, a + 4) >= inner.size()) {
          // (void)Name(...): a discard, unless the cast itself opens a
          // consumed expression (checked below via its own context).
          const size_t before_cast = PrevNonSpace(s, cast_open);
          if (before_cast == std::string::npos || s[before_cast] == ';' ||
              s[before_cast] == '{' || s[before_cast] == '}') {
            discarded = true;
            void_cast = true;
          }
        } else {
          // `if (...) Name();` / `while (...) Name();` — statement body.
          const size_t kw_end = PrevNonSpace(s, cast_open);
          if (kw_end != std::string::npos && IsIdentChar(s[kw_end])) {
            const size_t kw_begin = IdentBegin(s, kw_end);
            const std::string kw = s.substr(kw_begin, kw_end + 1 - kw_begin);
            if (kw == "if" || kw == "while" || kw == "for" || kw == "switch") {
              discarded = true;
            }
          }
        }
      }
    } else if (IsIdentChar(s[before])) {
      const size_t kw_begin = IdentBegin(s, before);
      const std::string kw = s.substr(kw_begin, before + 1 - kw_begin);
      if (kw == "else" || kw == "do") discarded = true;
    }
    if (!discarded) return;
    ctx.Report("SL005", "discard", name_begin,
               std::string(void_cast ? "(void)-discarded" : "discarded") +
                   " Status/Result from '" + token +
                   "' — handle the error or annotate // lint: "
                   "discard-ok(<reason>)");
  });
}

// ---------------------------------------------------------------------------
// SL006 — non-seq_cst memory order. Every relaxed/acquire/release/acq_rel/
// consume use must name the store/load it pairs with, so each weakening is
// an audited decision instead of a habit (the PR 8 review found a real
// race next to one).
void RuleMemoryOrder(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "memory_order_relaxed" && token != "memory_order_acquire" &&
        token != "memory_order_release" && token != "memory_order_acq_rel" &&
        token != "memory_order_consume") {
      return;
    }
    ctx.Report("SL006", "mo", begin,
               "non-seq_cst " + token +
                   " — name the store/load it pairs with: // lint: "
                   "mo-ok(<pairing>)");
  });
}

// ---------------------------------------------------------------------------
// SL007 — predicate-less condition-variable wait. A single-argument
// wait(lock) call returns on spurious wakeups and races its notifier
// unless the caller re-checks a predicate; the only accepted shapes are
// the direct body of a while/for/do loop (predicate re-checked around
// every wait) or an explicit `// lint: bare-wait-ok(<reason>)`.
void RuleBareWait(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "wait" && token != "Wait") return;
    // Member call only (`cv.wait(` / `cv->wait(`): free functions named
    // wait and the zero-argument std::future::wait() are out of scope.
    const size_t prev = PrevNonSpace(s, begin);
    const bool member =
        prev != std::string::npos &&
        (s[prev] == '.' || (s[prev] == '>' && prev > 0 && s[prev - 1] == '-'));
    if (!member) return;
    const size_t open = SkipSpace(s, begin + token.size());
    if (open >= s.size() || s[open] != '(') return;
    const size_t after = MatchParen(s, open);
    if (after == std::string::npos) return;
    // Exactly one non-empty top-level argument: wait(lock). Zero args is
    // a future, two is the predicate overload (which SL007 exists to
    // make people stop needing — but it is correct as written).
    int depth = 0;
    bool has_arg = false;
    bool multi_arg = false;
    for (size_t k = open + 1; k + 1 < after; ++k) {
      const char c = s[k];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (depth == 0 && c == ',') multi_arg = true;
      if (!std::isspace(static_cast<unsigned char>(c))) has_arg = true;
    }
    if (!has_arg || multi_arg) return;

    // Walk back over the callee chain (shard->cv.wait => `shard`), then
    // accept when the call is the direct body of a while/for/do loop.
    size_t chain_begin = begin;
    while (true) {
      const size_t p = PrevNonSpace(s, chain_begin);
      if (p == std::string::npos) break;
      size_t sep_begin;
      if (s[p] == '.') {
        sep_begin = p;
      } else if (s[p] == '>' && p > 0 && s[p - 1] == '-') {
        sep_begin = p - 1;
      } else if (s[p] == ':' && p > 0 && s[p - 1] == ':') {
        sep_begin = p - 1;
      } else {
        break;
      }
      const size_t q = PrevNonSpace(s, sep_begin);
      if (q == std::string::npos || !IsIdentChar(s[q])) break;
      chain_begin = IdentBegin(s, q);
    }
    size_t p = PrevNonSpace(s, chain_begin);
    if (p != std::string::npos && s[p] == '{') {
      const size_t q = PrevNonSpace(s, p);
      if (q != std::string::npos) p = q;
    }
    if (p != std::string::npos) {
      if (s[p] == ')') {
        const size_t kw_open = MatchParenBack(s, p);
        if (kw_open != std::string::npos) {
          const size_t kw_end = PrevNonSpace(s, kw_open);
          if (kw_end != std::string::npos && IsIdentChar(s[kw_end])) {
            const size_t kw_begin = IdentBegin(s, kw_end);
            const std::string kw = s.substr(kw_begin, kw_end + 1 - kw_begin);
            if (kw == "while" || kw == "for") return;  // predicate loop
          }
        }
      } else if (IsIdentChar(s[p])) {
        const size_t kw_begin = IdentBegin(s, p);
        if (s.substr(kw_begin, p + 1 - kw_begin) == "do") return;
      }
    }
    ctx.Report("SL007", "bare-wait", begin,
               "predicate-less condition-variable wait — loop on the "
               "predicate around the wait (lost/spurious wakeup hazard) "
               "or annotate // lint: bare-wait-ok(<reason>)");
  });
}

// ---------------------------------------------------------------------------
// SL008 (per-file half) — include layering. A quoted include may only
// point at the same or a lower layer of the DAG; see LayerRank for the
// ranks. Cross-file cycle detection lives in CheckIncludeCycles.
void RuleIncludeLayering(RuleContext& ctx) {
  const std::string src_dir = SrcDirPath(ctx.file.path());
  const int src_rank = LayerRank(src_dir);
  if (src_rank < 0) return;  // lint/, tools/, unranked dirs
  for (const IncludeDirective& inc : ctx.file.includes()) {
    if (inc.target.compare(0, 4, "src/") != 0) continue;
    const int tgt_rank = LayerRank(SrcDirPath(inc.target));
    if (tgt_rank < 0 || tgt_rank <= src_rank) continue;
    ctx.Report("SL008", "layering", inc.offset,
               "layer violation: src/" + src_dir + " (layer " +
                   std::to_string(src_rank) + ") includes \"" + inc.target +
                   "\" (layer " + std::to_string(tgt_rank) +
                   ") — the DAG is common < obs < dataframe/stats < data "
                   "< core/gbdt/models/baselines < serve < serve/server");
  }
}

// ---------------------------------------------------------------------------
// SL009 — hot-path hygiene. A function marked with a bare `hot-path`
// marker comment (the per-row scoring kernels, the flight-recorder record
// path, the MPSC queue ops) must not allocate, take a mutex, or perform
// IO in its body; every exception carries `// lint: hot-path-ok(...)`.
void RuleHotPath(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  for (const Marker& marker : ctx.file.markers()) {
    if (marker.key != "hot-path") continue;
    const size_t start = ctx.file.OffsetOfLine(marker.line);
    if (start == std::string::npos) continue;
    // Find the marked function's body: the first top-level '{' after the
    // marker (parameter lists are skipped by paren depth); a ';' first
    // means the marker sits on a declaration and there is nothing to scan.
    size_t body = std::string::npos;
    int paren_depth = 0;
    for (size_t i = start; i < s.size(); ++i) {
      if (s[i] == '(') ++paren_depth;
      if (s[i] == ')') --paren_depth;
      if (paren_depth != 0) continue;
      if (s[i] == '{') {
        body = i;
        break;
      }
      if (s[i] == ';') break;
    }
    if (body == std::string::npos) continue;
    size_t body_end = MatchBrace(s, body);
    if (body_end == std::string::npos) body_end = s.size();
    const std::string body_text = s.substr(body, body_end - body);
    ForEachToken(body_text, [&](const std::string& t, size_t off) {
      const char* what = nullptr;
      if (t == "new" || t == "make_unique" || t == "make_shared" ||
          t == "malloc" || t == "calloc" || t == "resize" || t == "reserve" ||
          t == "push_back" || t == "emplace_back") {
        what = "allocates";
      } else if (t == "lock_guard" || t == "unique_lock" ||
                 t == "scoped_lock" || t == "shared_lock" ||
                 t == "MutexLock") {
        what = "takes a mutex";
      } else if (t == "lock") {
        // `.lock(` / `->lock(` member call.
        const size_t prev = PrevNonSpace(body_text, off);
        const bool member =
            prev != std::string::npos &&
            (body_text[prev] == '.' ||
             (body_text[prev] == '>' && prev > 0 &&
              body_text[prev - 1] == '-'));
        const size_t open = SkipSpace(body_text, off + t.size());
        if (member && open < body_text.size() && body_text[open] == '(') {
          what = "takes a mutex";
        }
      } else if (t == "cout" || t == "cerr" || t == "clog" || t == "printf" ||
                 t == "fprintf" || t == "sprintf" || t == "snprintf" ||
                 t == "puts" || t == "fputs" || t == "fopen" ||
                 t == "fwrite" || t == "fread" || t == "ofstream" ||
                 t == "ifstream" || t == "fstream" || t == "getline" ||
                 t == "endl") {
        what = "performs IO";
      }
      if (what == nullptr) return;
      ctx.Report("SL009", "hot-path", body + off,
                 std::string("hot-path function ") + what + " ('" + t +
                     "') — move it off the per-row path or annotate "
                     "// lint: hot-path-ok(<reason>)");
    });
  }
}

}  // namespace

int LayerRank(const std::string& dir) {
  if (dir == "common") return 0;
  if (dir == "obs") return 1;
  if (dir == "dataframe" || dir == "stats") return 2;
  if (dir == "data") return 3;
  if (dir == "core" || dir == "gbdt" || dir == "models" ||
      dir == "baselines") {
    return 4;
  }
  if (dir == "serve") return 5;
  if (dir == "serve/server") return 6;
  // A nested directory not listed explicitly ranks as its first
  // component ("gbdt/kernels" would rank like "gbdt").
  const size_t slash = dir.find('/');
  if (slash != std::string::npos) return LayerRank(dir.substr(0, slash));
  return -1;  // lint/, unknown: outside the layer DAG
}

std::string Finding::ToString() const {
  std::ostringstream out;
  out << file << ":" << line << ": [" << rule << "] " << message;
  return out.str();
}

std::vector<Finding> AnalyzeSource(const std::string& repo_relative_path,
                                   const std::string& content,
                                   const DeclIndex& index) {
  const SourceFile file = SourceFile::Parse(repo_relative_path, content);
  std::vector<Finding> findings;
  RuleContext ctx{file, index, &findings};
  RuleNondeterminism(ctx);
  RuleUnordered(ctx);
  RuleStableSort(ctx);
  RuleFpAtomic(ctx);
  RuleDiscardedStatus(ctx);
  RuleMemoryOrder(ctx);
  RuleBareWait(ctx);
  RuleIncludeLayering(ctx);
  RuleHotPath(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

namespace {

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

FileSet CollectTreeFiles(const std::string& root,
                         const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  const fs::path root_path(root);
  std::vector<fs::path> paths;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root_path / subdir;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  FileSet files;
  files.reserve(paths.size());
  for (const auto& path : paths) {
    files.emplace_back(fs::relative(path, root_path).generic_string(),
                       ReadFileOrEmpty(path));
  }
  return files;
}

namespace {

/// Per-file include edges restricted to targets inside the file set,
/// as indices into `files`. Includes resolve the way the build does:
/// quoted paths are repo-root-relative.
std::vector<std::vector<size_t>> IncludeEdges(
    const FileSet& files, std::vector<SourceFile>* parsed) {
  std::map<std::string, size_t> by_path;
  for (size_t i = 0; i < files.size(); ++i) by_path[files[i].first] = i;
  std::vector<std::vector<size_t>> edges(files.size());
  parsed->reserve(files.size());
  for (size_t i = 0; i < files.size(); ++i) {
    parsed->push_back(SourceFile::Parse(files[i].first, files[i].second));
    for (const IncludeDirective& inc : parsed->back().includes()) {
      const auto it = by_path.find(inc.target);
      if (it != by_path.end()) edges[i].push_back(it->second);
    }
  }
  return edges;
}

}  // namespace

std::vector<Finding> CheckIncludeCycles(const FileSet& files) {
  std::vector<SourceFile> parsed;
  const std::vector<std::vector<size_t>> edges = IncludeEdges(files, &parsed);

  // Iterative DFS, white/gray/black. A gray->gray edge is a back edge;
  // the gray stack from the target onward is the cycle.
  enum class Color { kWhite, kGray, kBlack };
  std::vector<Color> color(files.size(), Color::kWhite);
  std::vector<size_t> stack;  // current gray chain, in DFS order
  std::vector<Finding> findings;

  struct Frame {
    size_t node;
    size_t next_edge;
  };
  for (size_t start = 0; start < files.size(); ++start) {
    if (color[start] != Color::kWhite) continue;
    std::vector<Frame> frames{{start, 0}};
    color[start] = Color::kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_edge < edges[frame.node].size()) {
        const size_t target = edges[frame.node][frame.next_edge++];
        if (color[target] == Color::kWhite) {
          color[target] = Color::kGray;
          stack.push_back(target);
          frames.push_back({target, 0});
        } else if (color[target] == Color::kGray) {
          // Reconstruct the cycle: target ... frame.node -> target.
          std::string path;
          auto it = std::find(stack.begin(), stack.end(), target);
          for (; it != stack.end(); ++it) {
            path += files[*it].first;
            path += " -> ";
          }
          path += files[target].first;
          // Report at the offending #include in the current file.
          size_t line = 1;
          for (const IncludeDirective& inc :
               parsed[frame.node].includes()) {
            if (inc.target == files[target].first) {
              line = inc.line;
              break;
            }
          }
          Finding finding;
          finding.rule = "SL008";
          finding.file = files[frame.node].first;
          finding.line = line;
          finding.message = "include cycle: " + path +
                            " — break the cycle (no annotation can excuse "
                            "one; it has no single responsible line)";
          findings.push_back(std::move(finding));
        }
      } else {
        color[frame.node] = Color::kBlack;
        stack.pop_back();
        frames.pop_back();
      }
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

std::string FormatIncludeGraph(const FileSet& files) {
  // Directory-level rollup of the file-level graph: one edge per
  // (source dir, target dir) pair with a file-edge count and layer ranks.
  std::map<std::pair<std::string, std::string>, size_t> dir_edges;
  for (const auto& [path, content] : files) {
    const SourceFile file = SourceFile::Parse(path, content);
    const std::string src_dir = SrcDirPath(path);
    for (const IncludeDirective& inc : file.includes()) {
      if (inc.target.compare(0, 4, "src/") != 0) continue;
      const std::string tgt_dir = SrcDirPath(inc.target);
      if (src_dir == tgt_dir) continue;
      ++dir_edges[{src_dir.empty() ? path : "src/" + src_dir,
                   "src/" + tgt_dir}];
    }
  }
  std::ostringstream out;
  out << "# Directory include graph (edges: includer -> included "
         "[file-edge count])\n";
  out << "# Layer DAG: common(0) < obs(1) < dataframe/stats(2) < data(3) "
         "< core/gbdt/models/baselines(4) < serve(5) < serve/server(6)\n";
  for (const auto& [edge, count] : dir_edges) {
    const auto rank = [](const std::string& dir) {
      const std::string prefix = "src/";
      if (dir.compare(0, prefix.size(), prefix) != 0) return -1;
      return LayerRank(dir.substr(prefix.size()));
    };
    const int src_rank = rank(edge.first);
    const int tgt_rank = rank(edge.second);
    out << edge.first;
    if (src_rank >= 0) out << "(" << src_rank << ")";
    out << " -> " << edge.second;
    if (tgt_rank >= 0) out << "(" << tgt_rank << ")";
    out << " [" << count << "]";
    if (src_rank >= 0 && tgt_rank > src_rank) {
      // Structural view only: the edge is layer-inverted whether or not
      // its individual includes carry layering-ok annotations.
      out << "  <-- layer-inverted (SL008 unless annotated)";
    }
    out << "\n";
  }
  const std::vector<Finding> cycles = CheckIncludeCycles(files);
  if (cycles.empty()) {
    out << "# No file-level include cycles.\n";
  } else {
    for (const Finding& finding : cycles) {
      out << "# CYCLE " << finding.ToString() << "\n";
    }
  }
  return out.str();
}

DeclIndex IndexHeaders(const std::string& root) {
  namespace fs = std::filesystem;
  DeclIndex index;
  std::vector<fs::path> headers;
  const fs::path src = fs::path(root) / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (entry.is_regular_file() && entry.path().extension() == ".h") {
        headers.push_back(entry.path());
      }
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const auto& header : headers) {
    index.AddHeader(ReadFileOrEmpty(header));
  }
  return index;
}

std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs) {
  const DeclIndex index = IndexHeaders(root);
  const FileSet files = CollectTreeFiles(root, subdirs);

  std::vector<Finding> findings;
  for (const auto& [rel, content] : files) {
    auto file_findings = AnalyzeSource(rel, content, index);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  auto cycle_findings = CheckIncludeCycles(files);
  findings.insert(findings.end(),
                  std::make_move_iterator(cycle_findings.begin()),
                  std::make_move_iterator(cycle_findings.end()));
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace lint
}  // namespace safe
