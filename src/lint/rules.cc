#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "src/lint/lint.h"

namespace safe {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Offset of the last non-space character strictly before `i`, or npos.
size_t PrevNonSpace(const std::string& s, size_t i) {
  while (i > 0) {
    --i;
    if (!std::isspace(static_cast<unsigned char>(s[i]))) return i;
  }
  return std::string::npos;
}

/// Consumes a balanced `<...>` starting at the '<' at `i` (see decl_index).
size_t SkipTemplateArgs(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') {
      ++depth;
    } else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

/// Offset one past the ')' matching the '(' at `i`, or npos.
size_t MatchParen(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '(') {
      ++depth;
    } else if (s[i] == ')') {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

/// Offset of the '(' matching the ')' at `close`, or npos.
size_t MatchParenBack(const std::string& s, size_t close) {
  int depth = 0;
  for (size_t i = close + 1; i > 0;) {
    --i;
    if (s[i] == ')') {
      ++depth;
    } else if (s[i] == '(') {
      if (--depth == 0) return i;
    }
  }
  return std::string::npos;
}

/// Start offset of the identifier whose last character is at `end`.
size_t IdentBegin(const std::string& s, size_t end) {
  size_t begin = end;
  while (begin > 0 && IsIdentChar(s[begin - 1])) --begin;
  return begin;
}

/// True when the first non-space character of `offset`'s line is '#'
/// (preprocessor line — #include <unordered_set> is not a declaration).
bool OnPreprocessorLine(const std::string& s, size_t offset) {
  size_t begin = offset;
  while (begin > 0 && s[begin - 1] != '\n') --begin;
  begin = SkipSpace(s, begin);
  return begin < s.size() && s[begin] == '#';
}

/// Calls fn(token, begin_offset) for every identifier token.
template <typename Fn>
void ForEachToken(const std::string& s, Fn fn) {
  size_t i = 0;
  while (i < s.size()) {
    if (IsIdentStart(s[i]) && (i == 0 || !IsIdentChar(s[i - 1]))) {
      size_t end = i;
      while (end < s.size() && IsIdentChar(s[end])) ++end;
      fn(s.substr(i, end - i), i);
      i = end;
    } else {
      ++i;
    }
  }
}

/// Directory component right under src/ ("core" for src/core/engine.cc),
/// empty when the path is not under src/.
std::string SrcSubdir(const std::string& path) {
  const std::string prefix = "src/";
  if (path.compare(0, prefix.size(), prefix) != 0) return "";
  const size_t slash = path.find('/', prefix.size());
  if (slash == std::string::npos) return "";
  return path.substr(prefix.size(), slash - prefix.size());
}

struct RuleContext {
  const SourceFile& file;
  const DeclIndex& index;
  std::vector<Finding>* findings;

  void Report(const char* rule, const std::string& key, size_t offset,
              std::string message) {
    const size_t line = file.LineOf(offset);
    if (file.Allows(key, line)) return;
    findings->push_back(Finding{rule, file.path(), line, std::move(message)});
  }
};

// ---------------------------------------------------------------------------
// SL001 — nondeterminism sources outside src/common/. The engine's only
// entropy source is common::Rng; raw rand()/time()/random_device anywhere
// else breaks the bit-identical-at-any-thread-count guarantee.
void RuleNondeterminism(RuleContext& ctx) {
  if (ctx.file.path().compare(0, 11, "src/common/") == 0) return;
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    const bool banned_always =
        token == "rand" || token == "srand" || token == "random_device";
    // `time` only as a call — time_point etc. are distinct tokens already.
    const bool banned_call =
        token == "time" && SkipSpace(s, begin + token.size()) < s.size() &&
        s[SkipSpace(s, begin + token.size())] == '(';
    if (!banned_always && !banned_call) return;
    if (OnPreprocessorLine(s, begin)) return;
    ctx.Report("SL001", "nondeterminism", begin,
               "nondeterminism source '" + token +
                   "' outside src/common/ — use common::Rng (seeded) instead");
  });
}

// ---------------------------------------------------------------------------
// SL002 — unordered containers in deterministic directories. Declarations
// must carry `// lint: unordered-ok(<reason>)` stating why bucket order
// cannot reach serialized output; range-for iteration over one is flagged
// unconditionally (annotatable, but should be a sorted copy instead).
void RuleUnordered(RuleContext& ctx) {
  const std::string dir = SrcSubdir(ctx.file.path());
  if (dir != "core" && dir != "stats" && dir != "gbdt" &&
      dir != "baselines" && dir != "serve") {
    return;
  }
  const std::string& s = ctx.file.scrubbed();
  std::vector<std::string> declared;

  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "unordered_map" && token != "unordered_set" &&
        token != "unordered_multimap" && token != "unordered_multiset") {
      return;
    }
    if (OnPreprocessorLine(s, begin)) return;
    size_t j = SkipSpace(s, begin + token.size());
    if (j < s.size() && s[j] == '<') {
      j = SkipTemplateArgs(s, j);
      if (j == std::string::npos) return;
      j = SkipSpace(s, j);
    }
    while (j < s.size() && (s[j] == '&' || s[j] == '*')) {
      j = SkipSpace(s, j + 1);
    }
    if (j >= s.size() || !IsIdentStart(s[j])) return;  // temporary / alias
    size_t name_end = j;
    while (name_end < s.size() && IsIdentChar(s[name_end])) ++name_end;
    declared.push_back(s.substr(j, name_end - j));
    ctx.Report("SL002", "unordered", begin,
               "unordered container '" + declared.back() + "' in src/" + dir +
                   " — declare order-freedom with // lint: "
                   "unordered-ok(<reason>) or use a sorted container");
  });

  // Range-for whose range expression names an unordered variable (or any
  // unordered_* temporary) iterates in bucket order.
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "for") return;
    const size_t open = SkipSpace(s, begin + 3);
    if (open >= s.size() || s[open] != '(') return;
    const size_t close = MatchParen(s, open);
    if (close == std::string::npos) return;
    // Top-level ':' that is not part of '::'.
    size_t colon = std::string::npos;
    int depth = 0;
    for (size_t k = open + 1; k < close - 1; ++k) {
      if (s[k] == '(' || s[k] == '[' || s[k] == '{') ++depth;
      if (s[k] == ')' || s[k] == ']' || s[k] == '}') --depth;
      if (depth == 0 && s[k] == ':' && s[k - 1] != ':' &&
          (k + 1 >= close || s[k + 1] != ':')) {
        colon = k;
        break;
      }
    }
    if (colon == std::string::npos) return;
    const std::string range = s.substr(colon + 1, close - 1 - (colon + 1));
    bool hits = range.find("unordered_") != std::string::npos;
    for (const std::string& name : declared) {
      if (hits) break;
      size_t pos = range.find(name);
      while (pos != std::string::npos) {
        const bool left_ok = pos == 0 || !IsIdentChar(range[pos - 1]);
        const bool right_ok = pos + name.size() >= range.size() ||
                              !IsIdentChar(range[pos + name.size()]);
        if (left_ok && right_ok) {
          hits = true;
          break;
        }
        pos = range.find(name, pos + 1);
      }
    }
    if (hits) {
      ctx.Report("SL002", "unordered", begin,
                 "range-for over an unordered container iterates in bucket "
                 "order — copy keys out and sort them first");
    }
  });
}

// ---------------------------------------------------------------------------
// SL003 — std::stable_sort. PR 3 replaced every stable_sort on a
// deterministic path with an explicit total order (value, then index);
// stability as a tie-break hides the ordering contract.
void RuleStableSort(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "stable_sort") return;
    ctx.Report("SL003", "stable-sort", begin,
               "std::stable_sort — spell out the full total order "
               "(value, then index) with std::sort instead");
  });
}

// ---------------------------------------------------------------------------
// SL004 — std::atomic over floating point. PR 2's parallel trainer forbids
// FP atomics: atomic FP accumulation is ordering-dependent, so results
// would vary with thread interleaving. Reduce per-thread, combine in a
// fixed order.
void RuleFpAtomic(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t begin) {
    if (token != "atomic") return;
    const size_t open = SkipSpace(s, begin + token.size());
    if (open >= s.size() || s[open] != '<') return;
    const size_t close = SkipTemplateArgs(s, open);
    if (close == std::string::npos) return;
    const std::string args = s.substr(open, close - open);
    bool fp = false;
    ForEachToken(args, [&](const std::string& t, size_t) {
      if (t == "float" || t == "double") fp = true;
    });
    if (fp) {
      ctx.Report("SL004", "fp-atomic", begin,
                 "std::atomic over floating point — accumulation order "
                 "depends on interleaving; reduce per-thread and combine "
                 "in fixed order");
    }
  });
}

// ---------------------------------------------------------------------------
// SL005 — discarded Status/Result. A statement-level call to an indexed
// Status/Result-returning function whose value is dropped (bare or behind
// a (void) cast) silently ignores an error path.
void RuleDiscardedStatus(RuleContext& ctx) {
  const std::string& s = ctx.file.scrubbed();
  ForEachToken(s, [&](const std::string& token, size_t name_begin) {
    if (!ctx.index.Contains(token)) return;
    const size_t name_end = name_begin + token.size();
    const size_t open = SkipSpace(s, name_end);
    if (open >= s.size() || s[open] != '(') return;
    const size_t after_call = MatchParen(s, open);
    if (after_call == std::string::npos) return;
    // The value is consumed unless the statement ends right after the call.
    const size_t next = SkipSpace(s, after_call);
    if (next >= s.size() || s[next] != ';') return;

    // Walk back over the callee chain: a.b->c::Name( ... chain elements are
    // identifiers only; anything else (e.g. Foo(x).Name) is left alone.
    size_t chain_begin = name_begin;
    while (true) {
      const size_t p = PrevNonSpace(s, chain_begin);
      if (p == std::string::npos) break;
      size_t sep_begin;
      if (s[p] == '.') {
        sep_begin = p;
      } else if (s[p] == '>' && p > 0 && s[p - 1] == '-') {
        sep_begin = p - 1;
      } else if (s[p] == ':' && p > 0 && s[p - 1] == ':') {
        sep_begin = p - 1;
      } else {
        break;
      }
      const size_t q = PrevNonSpace(s, sep_begin);
      if (q == std::string::npos || !IsIdentChar(s[q])) return;  // unknown
      chain_begin = IdentBegin(s, q);
    }

    const size_t before = PrevNonSpace(s, chain_begin);
    bool discarded = false;
    bool void_cast = false;
    if (before == std::string::npos || s[before] == ';' || s[before] == '{' ||
        s[before] == '}') {
      discarded = true;
    } else if (s[before] == ')') {
      const size_t cast_open = MatchParenBack(s, before);
      if (cast_open != std::string::npos) {
        const std::string inner =
            s.substr(cast_open + 1, before - cast_open - 1);
        size_t a = SkipSpace(inner, 0);
        if (inner.compare(a, 4, "void") == 0 &&
            SkipSpace(inner, a + 4) >= inner.size()) {
          // (void)Name(...): a discard, unless the cast itself opens a
          // consumed expression (checked below via its own context).
          const size_t before_cast = PrevNonSpace(s, cast_open);
          if (before_cast == std::string::npos || s[before_cast] == ';' ||
              s[before_cast] == '{' || s[before_cast] == '}') {
            discarded = true;
            void_cast = true;
          }
        } else {
          // `if (...) Name();` / `while (...) Name();` — statement body.
          const size_t kw_end = PrevNonSpace(s, cast_open);
          if (kw_end != std::string::npos && IsIdentChar(s[kw_end])) {
            const size_t kw_begin = IdentBegin(s, kw_end);
            const std::string kw = s.substr(kw_begin, kw_end + 1 - kw_begin);
            if (kw == "if" || kw == "while" || kw == "for" || kw == "switch") {
              discarded = true;
            }
          }
        }
      }
    } else if (IsIdentChar(s[before])) {
      const size_t kw_begin = IdentBegin(s, before);
      const std::string kw = s.substr(kw_begin, before + 1 - kw_begin);
      if (kw == "else" || kw == "do") discarded = true;
    }
    if (!discarded) return;
    ctx.Report("SL005", "discard", name_begin,
               std::string(void_cast ? "(void)-discarded" : "discarded") +
                   " Status/Result from '" + token +
                   "' — handle the error or annotate // lint: "
                   "discard-ok(<reason>)");
  });
}

}  // namespace

std::string Finding::ToString() const {
  std::ostringstream out;
  out << file << ":" << line << ": [" << rule << "] " << message;
  return out.str();
}

std::vector<Finding> AnalyzeSource(const std::string& repo_relative_path,
                                   const std::string& content,
                                   const DeclIndex& index) {
  const SourceFile file = SourceFile::Parse(repo_relative_path, content);
  std::vector<Finding> findings;
  RuleContext ctx{file, index, &findings};
  RuleNondeterminism(ctx);
  RuleUnordered(ctx);
  RuleStableSort(ctx);
  RuleFpAtomic(ctx);
  RuleDiscardedStatus(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

namespace {

std::string ReadFileOrEmpty(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

DeclIndex IndexHeaders(const std::string& root) {
  namespace fs = std::filesystem;
  DeclIndex index;
  std::vector<fs::path> headers;
  const fs::path src = fs::path(root) / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (entry.is_regular_file() && entry.path().extension() == ".h") {
        headers.push_back(entry.path());
      }
    }
  }
  std::sort(headers.begin(), headers.end());
  for (const auto& header : headers) {
    index.AddHeader(ReadFileOrEmpty(header));
  }
  return index;
}

std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  const fs::path root_path(root);
  const DeclIndex index = IndexHeaders(root);

  std::vector<fs::path> files;
  for (const std::string& subdir : subdirs) {
    const fs::path dir = root_path / subdir;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const auto ext = entry.path().extension();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const auto& file : files) {
    const std::string rel =
        fs::relative(file, root_path).generic_string();
    auto file_findings = AnalyzeSource(rel, ReadFileOrEmpty(file), index);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings;
}

}  // namespace lint
}  // namespace safe
