#include <algorithm>
#include <cctype>

#include "src/lint/lint.h"

namespace safe {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parses `lint: <key>-ok(<reason>)` out of one comment's text. Returns
/// true and fills key/reason on success; an empty reason does not parse
/// (the escape hatch requires a stated justification).
bool ParseAnnotation(const std::string& comment, std::string* key,
                     std::string* reason) {
  const size_t tag = comment.find("lint:");
  if (tag == std::string::npos) return false;
  size_t i = tag + 5;
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i]))) {
    ++i;
  }
  const size_t key_begin = i;
  while (i < comment.size() && (IsIdentChar(comment[i]) || comment[i] == '-')) {
    ++i;
  }
  std::string raw_key = comment.substr(key_begin, i - key_begin);
  const std::string suffix = "-ok";
  if (raw_key.size() <= suffix.size() ||
      raw_key.compare(raw_key.size() - suffix.size(), suffix.size(), suffix) !=
          0) {
    return false;
  }
  raw_key.resize(raw_key.size() - suffix.size());
  if (i >= comment.size() || comment[i] != '(') return false;
  const size_t close = comment.find(')', i + 1);
  if (close == std::string::npos) return false;
  std::string raw_reason = comment.substr(i + 1, close - i - 1);
  // Trim; a blank reason leaves the violation in force.
  const auto not_space = [](char c) {
    return !std::isspace(static_cast<unsigned char>(c));
  };
  raw_reason.erase(raw_reason.begin(),
                   std::find_if(raw_reason.begin(), raw_reason.end(),
                                not_space));
  raw_reason.erase(
      std::find_if(raw_reason.rbegin(), raw_reason.rend(), not_space).base(),
      raw_reason.end());
  if (raw_reason.empty()) return false;
  *key = std::move(raw_key);
  *reason = std::move(raw_reason);
  return true;
}

/// Parses a bare `lint: <key>` marker (no `-ok`, no parenthesized
/// reason, nothing else in the comment after the key — so prose that
/// merely *mentions* a marker does not register one).
bool ParseMarker(const std::string& comment, std::string* key) {
  const size_t tag = comment.find("lint:");
  if (tag == std::string::npos) return false;
  size_t i = tag + 5;
  while (i < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[i]))) {
    ++i;
  }
  const size_t key_begin = i;
  while (i < comment.size() && (IsIdentChar(comment[i]) || comment[i] == '-')) {
    ++i;
  }
  std::string raw_key = comment.substr(key_begin, i - key_begin);
  if (raw_key.empty()) return false;
  const std::string suffix = "-ok";
  if (raw_key.size() > suffix.size() &&
      raw_key.compare(raw_key.size() - suffix.size(), suffix.size(), suffix) ==
          0) {
    return false;  // `<key>-ok(...)` is an annotation, not a marker
  }
  // Only whitespace (and a block-comment closer) may follow the key.
  while (i < comment.size()) {
    if (std::isspace(static_cast<unsigned char>(comment[i]))) {
      ++i;
    } else if (comment.compare(i, 2, "*/") == 0) {
      i += 2;
    } else {
      return false;
    }
  }
  *key = std::move(raw_key);
  return true;
}

}  // namespace

SourceFile SourceFile::Parse(std::string path, const std::string& content) {
  SourceFile out;
  out.path_ = std::move(path);
  out.scrubbed_ = content;
  out.line_starts_.push_back(0);
  for (size_t i = 0; i < content.size(); ++i) {
    if (content[i] == '\n') out.line_starts_.push_back(i + 1);
  }

  // Quoted #include directives are harvested from the RAW text up front:
  // the blanking pass below turns string literals — include paths among
  // them — into spaces. Only lines whose first non-space byte is '#'
  // count, so a commented-out include inside `// ...` never registers.
  for (size_t ls = 0; ls < out.line_starts_.size(); ++ls) {
    const size_t line_begin = out.line_starts_[ls];
    size_t j = line_begin;
    while (j < content.size() && (content[j] == ' ' || content[j] == '\t')) {
      ++j;
    }
    if (j >= content.size() || content[j] != '#') continue;
    const size_t hash = j;
    ++j;
    while (j < content.size() && (content[j] == ' ' || content[j] == '\t')) {
      ++j;
    }
    if (content.compare(j, 7, "include") != 0) continue;
    j += 7;
    while (j < content.size() && (content[j] == ' ' || content[j] == '\t')) {
      ++j;
    }
    if (j >= content.size() || content[j] != '"') continue;
    const size_t close = content.find('"', j + 1);
    if (close == std::string::npos || content.find('\n', j) < close) continue;
    IncludeDirective inc;
    inc.target = content.substr(j + 1, close - j - 1);
    inc.line = ls + 1;
    inc.offset = hash;
    out.includes_.push_back(std::move(inc));
  }

  // Records a comment spanning [begin, end) in the original text: parse an
  // annotation (or bare marker) out of it, then decide which line it
  // covers (a comment-only line covers the next line; trailing comments
  // cover their own line).
  auto harvest = [&](size_t begin, size_t end) {
    Annotation ann;
    Marker marker;
    const std::string comment = content.substr(begin, end - begin);
    const bool is_annotation =
        ParseAnnotation(comment, &ann.key, &ann.reason);
    const bool is_marker =
        !is_annotation && ParseMarker(comment, &marker.key);
    if (!is_annotation && !is_marker) return;
    size_t line = out.LineOf(begin);
    const size_t line_begin = out.line_starts_[line - 1];
    bool code_before = false;
    for (size_t j = line_begin; j < begin; ++j) {
      if (!std::isspace(static_cast<unsigned char>(out.scrubbed_[j]))) {
        code_before = true;
        break;
      }
    }
    const size_t covered = code_before ? line : line + 1;
    if (is_annotation) {
      ann.line = covered;
      out.annotations_.push_back(std::move(ann));
    } else {
      marker.line = covered;
      out.markers_.push_back(std::move(marker));
    }
  };

  auto blank = [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end && j < out.scrubbed_.size(); ++j) {
      if (out.scrubbed_[j] != '\n') out.scrubbed_[j] = ' ';
    }
  };

  size_t i = 0;
  const size_t n = content.size();
  while (i < n) {
    const char c = content[i];
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      harvest(i, end);
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      size_t end = content.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      harvest(i, end);
      blank(i, end);
      i = end;
    } else if (c == '"' && i >= 1 && content[i - 1] == 'R') {
      // Raw string: R"delim( ... )delim"
      const size_t paren = content.find('(', i + 1);
      if (paren == std::string::npos) {
        ++i;
        continue;
      }
      const std::string delim = content.substr(i + 1, paren - i - 1);
      const std::string closer = ")" + delim + "\"";
      size_t end = content.find(closer, paren + 1);
      end = (end == std::string::npos) ? n : end + closer.size();
      blank(i, end);
      i = end;
    } else if (c == '"') {
      size_t j = i + 1;
      while (j < n && content[j] != '"' && content[j] != '\n') {
        if (content[j] == '\\') ++j;
        ++j;
      }
      blank(i, std::min(j + 1, n));
      i = j + 1;
    } else if (c == '\'' && !(i >= 1 && IsIdentChar(content[i - 1]))) {
      // Not a digit separator (1'000) — those follow an alnum character.
      size_t j = i + 1;
      while (j < n && content[j] != '\'' && content[j] != '\n') {
        if (content[j] == '\\') ++j;
        ++j;
      }
      blank(i, std::min(j + 1, n));
      i = j + 1;
    } else {
      ++i;
    }
  }
  return out;
}

size_t SourceFile::LineOf(size_t offset) const {
  auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
  return static_cast<size_t>(it - line_starts_.begin());
}

size_t SourceFile::OffsetOfLine(size_t line) const {
  if (line == 0 || line > line_starts_.size()) return std::string::npos;
  return line_starts_[line - 1];
}

bool SourceFile::Allows(const std::string& key, size_t line) const {
  for (const Annotation& ann : annotations_) {
    if (ann.key == key && ann.line == line) return true;
  }
  return false;
}

bool SourceFile::HasMarker(const std::string& key, size_t line) const {
  for (const Marker& marker : markers_) {
    if (marker.key == key && marker.line == line) return true;
  }
  return false;
}

}  // namespace lint
}  // namespace safe
