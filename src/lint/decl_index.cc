#include <cctype>

#include "src/lint/lint.h"

namespace safe {
namespace lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

size_t SkipSpace(const std::string& s, size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return i;
}

/// Consumes a balanced `<...>` starting at the '<' at `i`. `>>` closes two
/// levels (nested template argument lists). Returns the offset one past the
/// closing '>', or npos when unbalanced.
size_t SkipTemplateArgs(const std::string& s, size_t i) {
  int depth = 0;
  for (; i < s.size(); ++i) {
    if (s[i] == '<') {
      ++depth;
    } else if (s[i] == '>') {
      if (--depth == 0) return i + 1;
    } else if (s[i] == ';' || s[i] == '{') {
      return std::string::npos;  // ran off the declaration — not a template
    }
  }
  return std::string::npos;
}

}  // namespace

void DeclIndex::AddHeader(const std::string& content) {
  const SourceFile file = SourceFile::Parse("<header>", content);
  const std::string& s = file.scrubbed();
  size_t i = 0;
  while (i < s.size()) {
    if (!IsIdentStart(s[i]) || (i > 0 && IsIdentChar(s[i - 1]))) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < s.size() && IsIdentChar(s[end])) ++end;
    const std::string token = s.substr(i, end - i);
    i = end;
    if (token != "Status" && token != "Result") continue;

    size_t j = SkipSpace(s, i);
    if (token == "Result") {
      if (j >= s.size() || s[j] != '<') continue;
      j = SkipTemplateArgs(s, j);
      if (j == std::string::npos) continue;
      j = SkipSpace(s, j);
    }
    // Reference/pointer returns don't produce a discardable temporary the
    // way by-value returns do; skip them.
    if (j < s.size() && (s[j] == '&' || s[j] == '*')) continue;
    if (j >= s.size() || !IsIdentStart(s[j])) continue;
    size_t name_end = j;
    while (name_end < s.size() && IsIdentChar(s[name_end])) ++name_end;
    const std::string name = s.substr(j, name_end - j);
    const size_t paren = SkipSpace(s, name_end);
    if (paren < s.size() && s[paren] == '(') names_.insert(name);
  }
}

}  // namespace lint
}  // namespace safe
