#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace safe {
namespace lint {

/// safe_lint — repo-specific determinism / error-discipline static analysis.
///
/// The rules encode invariants earlier PRs bought with tests:
///   SL001 nondeterminism  — raw entropy/time sources outside src/common/
///   SL002 unordered       — unordered_map/set declarations and range-for
///                           iteration in deterministic dirs
///   SL003 stable-sort     — std::stable_sort (use an explicit total order)
///   SL004 fp-atomic       — std::atomic over floating-point
///   SL005 discard         — discarded call to a Status/Result-returning
///                           function (declaration index from headers)
///
/// Escape hatch grammar (one per line; a comment-only line covers the next
/// line): `// lint: <key>-ok(<reason>)` with key in {nondeterminism,
/// unordered, stable-sort, fp-atomic, discard}. The reason is mandatory;
/// an empty reason leaves the violation in force.

/// One rule violation at a file location.
struct Finding {
  std::string rule;     // "SL001".."SL005"
  std::string file;     // repo-relative path, e.g. "src/core/engine.cc"
  size_t line = 0;      // 1-based
  std::string message;  // human-readable description

  /// "file:line: [rule] message" — the CLI output format the self test
  /// asserts against.
  std::string ToString() const;
};

/// A parsed `lint: <key>-ok(<reason>)` escape annotation.
struct Annotation {
  std::string key;     // "unordered", "discard", ...
  std::string reason;  // non-empty; empty reasons are dropped at parse time
  size_t line = 0;     // line the annotation suppresses (already resolved:
                       // comment-only lines point at the next line)
};

/// A source file with comments and string/char literals blanked out
/// (newlines preserved, so offsets and line numbers survive), plus the
/// escape annotations harvested from the comments before blanking.
class SourceFile {
 public:
  static SourceFile Parse(std::string path, const std::string& content);

  const std::string& path() const { return path_; }

  /// Same length as the original content; comment/string bytes are spaces.
  const std::string& scrubbed() const { return scrubbed_; }

  /// 1-based line of a byte offset into scrubbed().
  size_t LineOf(size_t offset) const;

  /// True when an annotation with `key` covers `line`.
  bool Allows(const std::string& key, size_t line) const;

  const std::vector<Annotation>& annotations() const { return annotations_; }

 private:
  std::string path_;
  std::string scrubbed_;
  std::vector<size_t> line_starts_;  // byte offset of each line start
  std::vector<Annotation> annotations_;
};

/// Names of functions declared in headers with a Status or Result<...>
/// return type. Drives SL005 (discarded-status).
class DeclIndex {
 public:
  /// Scans header text for `Status name(` / `Result<...> name(`
  /// declarations (multi-line tolerant) and records the names.
  void AddHeader(const std::string& content);

  bool Contains(const std::string& name) const {
    return names_.count(name) > 0;
  }
  size_t size() const { return names_.size(); }
  const std::set<std::string>& names() const { return names_; }

 private:
  std::set<std::string> names_;
};

/// Runs every rule over one file. `repo_relative_path` selects rule scopes
/// (e.g. "src/common/" is exempt from SL001).
std::vector<Finding> AnalyzeSource(const std::string& repo_relative_path,
                                   const std::string& content,
                                   const DeclIndex& index);

/// Builds the Status/Result declaration index from every .h under
/// `root`/src (sorted walk, so the index is reproducible).
DeclIndex IndexHeaders(const std::string& root);

/// Walks `root`/`subdir` for each subdir, indexes every header under
/// `root`/src, then analyzes all .h/.cc files found. Paths in findings are
/// relative to `root`. Returns findings sorted by (file, line, rule).
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs);

}  // namespace lint
}  // namespace safe
