#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace safe {
namespace lint {

/// safe_lint — repo-specific determinism / error-discipline / concurrency
/// static analysis.
///
/// The rules encode invariants earlier PRs bought with tests:
///   SL001 nondeterminism  — raw entropy/time sources outside src/common/
///   SL002 unordered       — unordered_map/set declarations and range-for
///                           iteration in deterministic dirs
///   SL003 stable-sort     — std::stable_sort (use an explicit total order)
///   SL004 fp-atomic       — std::atomic over floating-point
///   SL005 discard         — discarded call to a Status/Result-returning
///                           function (declaration index from headers)
///   SL006 mo              — non-seq_cst std::memory_order_* use; the
///                           annotation must name the store/load it pairs
///                           with
///   SL007 bare-wait       — predicate-less condition-variable wait
///                           (single-argument wait/Wait call) outside a
///                           while/for/do loop body (lost/spurious-wakeup
///                           hazard)
///   SL008 layering        — repo include graph: an #include "src/..."
///                           may only point at the same or a lower layer
///                           of the DAG common < obs < dataframe/stats <
///                           data < core/gbdt/models/baselines < serve <
///                           serve/server; LintTree additionally rejects
///                           any file-level include cycle
///   SL009 hot-path        — a function marked with a bare `hot-path`
///                           marker comment may not allocate, take a
///                           mutex, or perform IO in its body
///
/// Escape hatch grammar (one per line; a comment-only line covers the next
/// line): `// lint: <key>-ok(<reason>)` with key in {nondeterminism,
/// unordered, stable-sort, fp-atomic, discard, mo, bare-wait, layering,
/// hot-path}. The reason is mandatory; an empty reason leaves the
/// violation in force. SL009's entry point is the bare *marker* comment
/// (`lint:` followed by the single word hot-path and nothing else), which
/// marks the next function as a hot path; `hot-path-ok(<reason>)` then
/// excuses individual lines inside it.

/// One rule violation at a file location.
struct Finding {
  std::string rule;     // "SL001".."SL009"
  std::string file;     // repo-relative path, e.g. "src/core/engine.cc"
  size_t line = 0;      // 1-based
  std::string message;  // human-readable description

  /// "file:line: [rule] message" — the CLI output format the self test
  /// asserts against.
  std::string ToString() const;
};

/// A parsed `lint: <key>-ok(<reason>)` escape annotation.
struct Annotation {
  std::string key;     // "unordered", "discard", ...
  std::string reason;  // non-empty; empty reasons are dropped at parse time
  size_t line = 0;     // line the annotation suppresses (already resolved:
                       // comment-only lines point at the next line)
};

/// A parsed bare marker comment (`lint: <key>` with nothing after the
/// key). Unlike an Annotation it asserts a property rather than excusing
/// a violation; SL009 consumes key "hot-path".
struct Marker {
  std::string key;
  size_t line = 0;  // resolved like Annotation::line
};

/// One `#include "..."` directive (quoted form only; angle includes are
/// toolchain headers and outside the layering rule's scope).
struct IncludeDirective {
  std::string target;  // the quoted path as written, e.g. "src/obs/trace.h"
  size_t line = 0;     // 1-based line of the directive
  size_t offset = 0;   // byte offset of the '#'
};

/// A source file with comments and string/char literals blanked out
/// (newlines preserved, so offsets and line numbers survive), plus the
/// escape annotations harvested from the comments before blanking.
class SourceFile {
 public:
  static SourceFile Parse(std::string path, const std::string& content);

  const std::string& path() const { return path_; }

  /// Same length as the original content; comment/string bytes are spaces.
  const std::string& scrubbed() const { return scrubbed_; }

  /// 1-based line of a byte offset into scrubbed().
  size_t LineOf(size_t offset) const;

  /// Byte offset of the start of 1-based `line`; npos past end of file.
  size_t OffsetOfLine(size_t line) const;

  /// True when an annotation with `key` covers `line`.
  bool Allows(const std::string& key, size_t line) const;

  /// True when a bare marker with `key` resolves to `line`.
  bool HasMarker(const std::string& key, size_t line) const;

  const std::vector<Annotation>& annotations() const { return annotations_; }
  const std::vector<Marker>& markers() const { return markers_; }

  /// Quoted #include directives, in file order (harvested from the raw
  /// text: the scrubber blanks string literals, include paths among them).
  const std::vector<IncludeDirective>& includes() const { return includes_; }

 private:
  std::string path_;
  std::string scrubbed_;
  std::vector<size_t> line_starts_;  // byte offset of each line start
  std::vector<Annotation> annotations_;
  std::vector<Marker> markers_;
  std::vector<IncludeDirective> includes_;
};

/// Names of functions declared in headers with a Status or Result<...>
/// return type. Drives SL005 (discarded-status).
class DeclIndex {
 public:
  /// Scans header text for `Status name(` / `Result<...> name(`
  /// declarations (multi-line tolerant) and records the names.
  void AddHeader(const std::string& content);

  bool Contains(const std::string& name) const {
    return names_.count(name) > 0;
  }
  size_t size() const { return names_.size(); }
  const std::set<std::string>& names() const { return names_; }

 private:
  std::set<std::string> names_;
};

/// Runs every rule over one file. `repo_relative_path` selects rule scopes
/// (e.g. "src/common/" is exempt from SL001).
std::vector<Finding> AnalyzeSource(const std::string& repo_relative_path,
                                   const std::string& content,
                                   const DeclIndex& index);

/// Builds the Status/Result declaration index from every .h under
/// `root`/src (sorted walk, so the index is reproducible).
DeclIndex IndexHeaders(const std::string& root);

/// Layer rank of a directory under src/ for SL008 ("common" -> 0,
/// "serve/server" -> 6, ...); -1 when the directory is outside the layer
/// DAG (e.g. "lint", which is a standalone tool layer).
int LayerRank(const std::string& dir);

/// (repo-relative path, file content) pairs — the unit the cross-file
/// include passes run over.
using FileSet = std::vector<std::pair<std::string, std::string>>;

/// All .h/.cc files under `root`/`subdir` for each subdir, sorted by
/// path (the same walk LintTree analyzes).
FileSet CollectTreeFiles(const std::string& root,
                         const std::vector<std::string>& subdirs);

/// File-level include-cycle detection over `files` (SL008). Edges follow
/// quoted includes whose target is itself in `files`; each back edge
/// reports one finding carrying the full cycle path. Not annotatable —
/// a cycle has no single responsible line.
std::vector<Finding> CheckIncludeCycles(const FileSet& files);

/// Human-readable directory-level include graph (deterministic order):
/// one `a -> b [count]` line per edge with layer ranks, then any
/// file-level cycles. Backs `safe_lint --print-include-graph`.
std::string FormatIncludeGraph(const FileSet& files);

/// Walks `root`/`subdir` for each subdir, indexes every header under
/// `root`/src, then analyzes all .h/.cc files found (per-file rules plus
/// the cross-file include-cycle pass). Paths in findings are relative to
/// `root`. Returns findings sorted by (file, line, rule).
std::vector<Finding> LintTree(const std::string& root,
                              const std::vector<std::string>& subdirs);

}  // namespace lint
}  // namespace safe
