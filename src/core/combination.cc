#include "src/core/combination.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/stats/entropy.h"

namespace safe {

namespace {

/// Canonical key of a combination: its sorted feature list.
using ComboKey = std::vector<int>;

/// Enumerates all subsets of `features` with size in [1, max_arity],
/// invoking fn(subset_indices) with indices into `features`.
void ForEachSubset(size_t num_features, size_t max_arity,
                   const std::function<void(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> subset;
  // Iterative DFS enumerating ordered ascending index subsets.
  std::function<void(size_t)> recurse = [&](size_t start) {
    if (!subset.empty()) fn(subset);
    if (subset.size() >= max_arity) return;
    for (size_t i = start; i < num_features; ++i) {
      subset.push_back(i);
      recurse(i + 1);
      subset.pop_back();
    }
  };
  recurse(0);
}

/// Subsets mined from one path: the path's distinct features with their
/// split values, plus every enumerated combination key in DFS order.
struct PathCombos {
  std::map<int, std::set<double>> features;
  std::vector<ComboKey> keys;
};

}  // namespace

std::vector<FeatureCombination> MineCombinations(
    const std::vector<gbdt::TreePath>& paths,
    const CombinationMinerOptions& options, ThreadPool* pool) {
  // Per-path enumeration is independent, so it fans out one task per
  // path; each task fills only its own slot. Each path enumerates at
  // most max_combinations keys — the global cap can never admit more
  // from a single path.
  std::vector<PathCombos> per_path(paths.size());
  ParallelFor(pool, 0, paths.size(), [&](size_t p) {
    PathCombos& mined = per_path[p];
    for (const auto& step : paths[p]) {
      mined.features[step.feature].insert(step.threshold);
    }
    std::vector<int> features;
    features.reserve(mined.features.size());
    for (const auto& [feature, values] : mined.features) {
      features.push_back(feature);
    }
    ForEachSubset(features.size(), options.max_arity,
                  [&](const std::vector<size_t>& subset) {
                    if (mined.keys.size() >= options.max_combinations) return;
                    ComboKey key;
                    key.reserve(subset.size());
                    for (size_t i : subset) key.push_back(features[i]);
                    mined.keys.push_back(std::move(key));
                  });
  });

  // De-duplicate across paths serially in path order, applying the
  // enumeration cap in the same order a serial run would — the merged
  // set is thread-count-invariant.
  std::map<ComboKey, std::map<int, std::set<double>>> merged;
  size_t enumerated = 0;
  for (const PathCombos& mined : per_path) {
    for (const ComboKey& key : mined.keys) {
      if (enumerated >= options.max_combinations) break;
      auto& slot = merged[key];
      for (int f : key) {
        const auto& values = mined.features.at(f);
        slot[f].insert(values.begin(), values.end());
      }
      ++enumerated;
    }
    if (enumerated >= options.max_combinations) break;
  }

  std::vector<FeatureCombination> out;
  out.reserve(merged.size());
  for (auto& [key, value_sets] : merged) {
    FeatureCombination combo;
    combo.features = key;
    for (int f : key) {
      const auto& values = value_sets[f];
      combo.split_values.emplace_back(values.begin(), values.end());
    }
    out.push_back(std::move(combo));
  }
  return out;
}

std::vector<FeatureCombination> RankCombinations(
    std::vector<FeatureCombination> combinations, const DataFrame& x,
    const std::vector<double>& labels, size_t gamma, ThreadPool* pool) {
  ParallelFor(pool, 0, combinations.size(), [&](size_t i) {
    FeatureCombination& combo = combinations[i];
    // Cell layout: per feature, |V|+1 value intervals plus a missing slot.
    size_t num_cells = 1;
    std::vector<size_t> strides(combo.features.size());
    for (size_t f = 0; f < combo.features.size(); ++f) {
      strides[f] = num_cells;
      num_cells *= combo.split_values[f].size() + 2;
    }
    if (num_cells > 1000000) {
      combo.gain_ratio = 0.0;  // degenerate: too fragmented to score
      return;
    }
    std::vector<PartitionCell> cells(num_cells);
    // Per-feature cursors: the ascending row scan touches each spilled
    // row group once per feature, and the cell tallies are integer
    // counts, so storage never changes the result.
    std::vector<ChunkedCursor<double>> cursors;
    cursors.reserve(combo.features.size());
    for (int f : combo.features) {
      cursors.push_back(x.column(static_cast<size_t>(f)).cursor());
    }
    for (size_t r = 0; r < x.num_rows(); ++r) {
      size_t cell = 0;
      for (size_t f = 0; f < combo.features.size(); ++f) {
        const double v = cursors[f].At(r);
        const auto& splits = combo.split_values[f];
        size_t slot;
        if (std::isnan(v)) {
          slot = splits.size() + 1;
        } else {
          slot = static_cast<size_t>(
              std::lower_bound(splits.begin(), splits.end(), v) -
              splits.begin());
        }
        cell += slot * strides[f];
      }
      cells[cell].total += 1;
      if (labels[r] > 0.5) cells[cell].positives += 1;
    }
    combo.gain_ratio = InformationGainRatio(cells);
  });

  // Descending gain ratio; equal scores order by the lexicographically
  // smaller feature list. Feature lists are distinct (combinations are
  // de-duplicated), so this is a total order and the top-γ slice cannot
  // depend on sort stability or scoring schedule.
  std::sort(combinations.begin(), combinations.end(),
            [](const FeatureCombination& a, const FeatureCombination& b) {
              if (a.gain_ratio != b.gain_ratio) {
                return a.gain_ratio > b.gain_ratio;
              }
              return a.features < b.features;
            });
  if (gamma > 0 && combinations.size() > gamma) {
    combinations.resize(gamma);
  }
  return combinations;
}

std::vector<FeatureCombination> RankCombinations(
    std::vector<FeatureCombination> combinations, const DataFrame& x,
    const std::vector<double>& labels, size_t gamma) {
  return RankCombinations(std::move(combinations), x, labels, gamma,
                          ThreadPool::Global());
}

}  // namespace safe
