#include "src/core/combination.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "src/common/thread_pool.h"
#include "src/stats/entropy.h"

namespace safe {

namespace {

/// Canonical key of a combination: its sorted feature list.
using ComboKey = std::vector<int>;

/// Enumerates all subsets of `features` with size in [1, max_arity],
/// invoking fn(subset_indices) with indices into `features`.
void ForEachSubset(size_t num_features, size_t max_arity,
                   const std::function<void(const std::vector<size_t>&)>& fn) {
  std::vector<size_t> subset;
  // Iterative DFS enumerating ordered ascending index subsets.
  std::function<void(size_t)> recurse = [&](size_t start) {
    if (!subset.empty()) fn(subset);
    if (subset.size() >= max_arity) return;
    for (size_t i = start; i < num_features; ++i) {
      subset.push_back(i);
      recurse(i + 1);
      subset.pop_back();
    }
  };
  recurse(0);
}

}  // namespace

std::vector<FeatureCombination> MineCombinations(
    const std::vector<gbdt::TreePath>& paths,
    const CombinationMinerOptions& options) {
  std::map<ComboKey, std::map<int, std::set<double>>> merged;
  size_t enumerated = 0;

  for (const auto& path : paths) {
    // Distinct features of this path, with their split values collected.
    std::map<int, std::set<double>> path_features;
    for (const auto& step : path) {
      path_features[step.feature].insert(step.threshold);
    }
    std::vector<int> features;
    features.reserve(path_features.size());
    for (const auto& [feature, values] : path_features) {
      features.push_back(feature);
    }

    ForEachSubset(
        features.size(), options.max_arity,
        [&](const std::vector<size_t>& subset) {
          if (enumerated >= options.max_combinations) return;
          ComboKey key;
          key.reserve(subset.size());
          for (size_t i : subset) key.push_back(features[i]);
          auto& slot = merged[key];
          for (int f : key) {
            slot[f].insert(path_features[f].begin(), path_features[f].end());
          }
          ++enumerated;
        });
    if (enumerated >= options.max_combinations) break;
  }

  std::vector<FeatureCombination> out;
  out.reserve(merged.size());
  for (auto& [key, value_sets] : merged) {
    FeatureCombination combo;
    combo.features = key;
    for (int f : key) {
      const auto& values = value_sets[f];
      combo.split_values.emplace_back(values.begin(), values.end());
    }
    out.push_back(std::move(combo));
  }
  return out;
}

std::vector<FeatureCombination> RankCombinations(
    std::vector<FeatureCombination> combinations, const DataFrame& x,
    const std::vector<double>& labels, size_t gamma) {
  ParallelFor(0, combinations.size(), [&](size_t i) {
    FeatureCombination& combo = combinations[i];
    // Cell layout: per feature, |V|+1 value intervals plus a missing slot.
    size_t num_cells = 1;
    std::vector<size_t> strides(combo.features.size());
    for (size_t f = 0; f < combo.features.size(); ++f) {
      strides[f] = num_cells;
      num_cells *= combo.split_values[f].size() + 2;
    }
    if (num_cells > 1000000) {
      combo.gain_ratio = 0.0;  // degenerate: too fragmented to score
      return;
    }
    std::vector<PartitionCell> cells(num_cells);
    for (size_t r = 0; r < x.num_rows(); ++r) {
      size_t cell = 0;
      for (size_t f = 0; f < combo.features.size(); ++f) {
        const double v =
            x.column(static_cast<size_t>(combo.features[f]))[r];
        const auto& splits = combo.split_values[f];
        size_t slot;
        if (std::isnan(v)) {
          slot = splits.size() + 1;
        } else {
          slot = static_cast<size_t>(
              std::lower_bound(splits.begin(), splits.end(), v) -
              splits.begin());
        }
        cell += slot * strides[f];
      }
      cells[cell].total += 1;
      if (labels[r] > 0.5) cells[cell].positives += 1;
    }
    combo.gain_ratio = InformationGainRatio(cells);
  });

  std::stable_sort(combinations.begin(), combinations.end(),
                   [](const FeatureCombination& a,
                      const FeatureCombination& b) {
                     return a.gain_ratio > b.gain_ratio;
                   });
  if (gamma > 0 && combinations.size() > gamma) {
    combinations.resize(gamma);
  }
  return combinations;
}

}  // namespace safe
