#include "src/core/selection.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"
#include "src/gbdt/booster.h"
#include "src/stats/correlation.h"
#include "src/stats/iv.h"

namespace safe {

std::vector<double> ComputeIvs(const DataFrame& x,
                               const std::vector<double>& labels,
                               size_t num_bins) {
  std::vector<double> ivs(x.num_columns(), 0.0);
  ParallelFor(0, x.num_columns(), [&](size_t c) {
    auto iv = InformationValue(x.column(c).values(), labels, num_bins);
    ivs[c] = iv.ok() ? *iv : 0.0;
  });
  return ivs;
}

std::vector<size_t> IvFilterIndices(const std::vector<double>& ivs,
                                    double iv_threshold) {
  std::vector<size_t> kept;
  for (size_t c = 0; c < ivs.size(); ++c) {
    if (ivs[c] > iv_threshold) kept.push_back(c);
  }
  return kept;
}

std::vector<size_t> RedundancyFilterIndices(
    const DataFrame& x, const std::vector<double>& ivs,
    const std::vector<size_t>& candidates, double pearson_threshold) {
  // Descending IV, so the stronger of a redundant pair survives — the
  // paper's Alg. 4 tie-break ("the feature with the smaller IV is
  // removed").
  std::vector<size_t> order = candidates;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return ivs[a] > ivs[b];
  });
  std::vector<size_t> kept;
  for (size_t candidate : order) {
    bool redundant = false;
    // The kept set is usually small; correlations computed lazily and in
    // parallel across kept columns.
    std::vector<char> hits(kept.size(), 0);
    ParallelFor(0, kept.size(), [&](size_t k) {
      const double r = PearsonCorrelation(
          x.column(candidate).values(), x.column(kept[k]).values());
      if (std::fabs(r) > pearson_threshold) hits[k] = 1;
    });
    for (char hit : hits) {
      if (hit) {
        redundant = true;
        break;
      }
    }
    if (!redundant) kept.push_back(candidate);
  }
  return kept;
}

Result<std::vector<size_t>> ImportanceRankIndices(
    const Dataset& train, const std::vector<size_t>& candidates,
    const std::vector<double>& ivs, const gbdt::GbdtParams& params,
    size_t max_output) {
  if (candidates.empty()) return std::vector<size_t>{};
  SAFE_ASSIGN_OR_RETURN(DataFrame candidate_frame,
                        train.x.Select(candidates));
  Dataset candidate_train;
  candidate_train.x = std::move(candidate_frame);
  candidate_train.y = train.y;

  SAFE_ASSIGN_OR_RETURN(gbdt::Booster ranker,
                        gbdt::Booster::Fit(candidate_train, nullptr, params));

  const auto importances = ranker.FeatureImportances();
  std::vector<char> ranked(candidates.size(), 0);
  std::vector<size_t> out;
  for (const auto& imp : importances) {
    out.push_back(candidates[static_cast<size_t>(imp.feature)]);
    ranked[static_cast<size_t>(imp.feature)] = 1;
  }
  // Unsplit candidates follow, ordered by IV: the ranker's trees are
  // finite, and an unsplit feature is unranked, not worthless.
  std::vector<size_t> rest;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!ranked[i]) rest.push_back(candidates[i]);
  }
  std::stable_sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
    return ivs[a] > ivs[b];
  });
  out.insert(out.end(), rest.begin(), rest.end());

  if (max_output > 0 && out.size() > max_output) out.resize(max_output);
  return out;
}

}  // namespace safe
