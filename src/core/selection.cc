#include "src/core/selection.h"

#include <algorithm>
#include <cmath>

#include "src/gbdt/booster.h"
#include "src/stats/correlation.h"
#include "src/stats/iv.h"

namespace safe {

std::vector<double> ComputeIvs(const DataFrame& x,
                               const std::vector<double>& labels,
                               size_t num_bins, ThreadPool* pool) {
  return InformationValueBatch(x, labels, num_bins, pool);
}

std::vector<double> ComputeIvs(const DataFrame& x,
                               const std::vector<double>& labels,
                               size_t num_bins) {
  return ComputeIvs(x, labels, num_bins, ThreadPool::Global());
}

std::vector<size_t> IvFilterIndices(const std::vector<double>& ivs,
                                    double iv_threshold) {
  std::vector<size_t> kept;
  for (size_t c = 0; c < ivs.size(); ++c) {
    if (ivs[c] > iv_threshold) kept.push_back(c);
  }
  return kept;
}

std::vector<size_t> RedundancyFilterIndices(
    const DataFrame& x, const std::vector<double>& ivs,
    const std::vector<size_t>& candidates, double pearson_threshold,
    ThreadPool* pool) {
  // Descending IV, so the stronger of a redundant pair survives — the
  // paper's Alg. 4 tie-break ("the feature with the smaller IV is
  // removed"). Equal IVs order by ascending column index: an explicit
  // total order, so the greedy pass below never depends on sort
  // implementation details or thread count.
  std::vector<size_t> order = candidates;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (ivs[a] != ivs[b]) return ivs[a] > ivs[b];
    return a < b;
  });

  // Ordered greedy with a parallel sweep per survivor: the first alive
  // candidate in `order` is kept, then its |Pearson| against every
  // still-alive later candidate is computed in one fan-out and the
  // correlated ones are marked dead. A candidate reaches its own turn
  // alive iff no earlier survivor correlates with it — exactly the
  // serial candidate-vs-kept-set greedy, but with per-survivor sweeps
  // wide enough to parallelize.
  std::vector<char> alive(order.size(), 1);
  std::vector<size_t> kept;
  std::vector<size_t> sweep_positions;  // positions into `order`
  std::vector<size_t> sweep_columns;    // matching column indices
  for (size_t i = 0; i < order.size(); ++i) {
    if (!alive[i]) continue;
    kept.push_back(order[i]);
    sweep_positions.clear();
    sweep_columns.clear();
    for (size_t j = i + 1; j < order.size(); ++j) {
      if (!alive[j]) continue;
      sweep_positions.push_back(j);
      sweep_columns.push_back(order[j]);
    }
    if (sweep_columns.empty()) break;
    const std::vector<double> rs =
        PearsonAgainst(x, order[i], sweep_columns, pool);
    for (size_t k = 0; k < sweep_positions.size(); ++k) {
      if (std::fabs(rs[k]) > pearson_threshold) {
        alive[sweep_positions[k]] = 0;
      }
    }
  }
  return kept;
}

std::vector<size_t> RedundancyFilterIndices(
    const DataFrame& x, const std::vector<double>& ivs,
    const std::vector<size_t>& candidates, double pearson_threshold) {
  return RedundancyFilterIndices(x, ivs, candidates, pearson_threshold,
                                 ThreadPool::Global());
}

Result<std::vector<size_t>> ImportanceRankIndices(
    const Dataset& train, const std::vector<size_t>& candidates,
    const std::vector<double>& ivs, const gbdt::GbdtParams& params,
    size_t max_output) {
  if (candidates.empty()) return std::vector<size_t>{};
  SAFE_ASSIGN_OR_RETURN(DataFrame candidate_frame,
                        train.x.Select(candidates));
  Dataset candidate_train;
  candidate_train.x = std::move(candidate_frame);
  candidate_train.y = train.y;

  SAFE_ASSIGN_OR_RETURN(gbdt::Booster ranker,
                        gbdt::Booster::Fit(candidate_train, nullptr, params));

  const auto importances = ranker.FeatureImportances();
  std::vector<char> ranked(candidates.size(), 0);
  std::vector<size_t> out;
  for (const auto& imp : importances) {
    out.push_back(candidates[static_cast<size_t>(imp.feature)]);
    ranked[static_cast<size_t>(imp.feature)] = 1;
  }
  // Unsplit candidates follow, ordered by descending IV with the
  // candidate-list position breaking ties (explicit total order): the
  // ranker's trees are finite, and an unsplit feature is unranked, not
  // worthless.
  std::vector<size_t> rest;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (!ranked[i]) rest.push_back(i);
  }
  std::sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
    const double iv_a = ivs[candidates[a]];
    const double iv_b = ivs[candidates[b]];
    if (iv_a != iv_b) return iv_a > iv_b;
    return a < b;
  });
  for (size_t p : rest) out.push_back(candidates[p]);

  if (max_output > 0 && out.size() > max_output) out.resize(max_output);
  return out;
}

}  // namespace safe
