#include "src/core/feature_plan.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "src/common/string_util.h"

namespace safe {

namespace {

const OperatorRegistry& DefaultRegistry() {
  static const OperatorRegistry registry = OperatorRegistry::Default();
  return registry;
}

}  // namespace

Result<FeaturePlan> FeaturePlan::Create(
    std::vector<std::string> input_columns,
    std::vector<GeneratedFeature> generated,
    std::vector<std::string> selected) {
  FeaturePlan plan;
  plan.input_columns_ = std::move(input_columns);
  plan.generated_ = std::move(generated);
  plan.selected_ = std::move(selected);

  std::unordered_map<std::string, size_t> slots;  // lint: unordered-ok(name-to-slot lookup; outputs follow the input/generated vectors)
  for (size_t i = 0; i < plan.input_columns_.size(); ++i) {
    auto [it, inserted] = slots.emplace(plan.input_columns_[i], i);
    if (!inserted) {
      return Status::InvalidArgument("plan: duplicate input column '" +
                                     plan.input_columns_[i] + "'");
    }
  }
  plan.parent_slots_.resize(plan.generated_.size());
  for (size_t g = 0; g < plan.generated_.size(); ++g) {
    const GeneratedFeature& feature = plan.generated_[g];
    for (const std::string& parent : feature.parents) {
      auto it = slots.find(parent);
      if (it == slots.end()) {
        return Status::InvalidArgument(
            "plan: feature '" + feature.name + "' references unknown parent '" +
            parent + "'");
      }
      plan.parent_slots_[g].push_back(it->second);
    }
    auto [it, inserted] =
        slots.emplace(feature.name, plan.input_columns_.size() + g);
    if (!inserted) {
      return Status::InvalidArgument("plan: duplicate feature name '" +
                                     feature.name + "'");
    }
  }
  for (const std::string& name : plan.selected_) {
    auto it = slots.find(name);
    if (it == slots.end()) {
      return Status::InvalidArgument("plan: selected column '" + name +
                                     "' is neither input nor generated");
    }
    plan.selected_slots_.push_back(it->second);
  }
  return plan;
}

Result<DataFrame> FeaturePlan::Transform(
    const DataFrame& x, const OperatorRegistry& registry) const {
  if (x.num_columns() != input_columns_.size()) {
    return Status::InvalidArgument(
        "plan transform: expected " +
        std::to_string(input_columns_.size()) + " input columns, got " +
        std::to_string(x.num_columns()));
  }
  // Workspace: input columns (validated by name) then generated ones.
  std::vector<Column> workspace;
  workspace.reserve(input_columns_.size() + generated_.size());
  for (size_t c = 0; c < input_columns_.size(); ++c) {
    if (x.column(c).name() != input_columns_[c]) {
      return Status::InvalidArgument(
          "plan transform: column " + std::to_string(c) + " is '" +
          x.column(c).name() + "', expected '" + input_columns_[c] + "'");
    }
    workspace.push_back(x.column(c));
  }
  for (size_t g = 0; g < generated_.size(); ++g) {
    const GeneratedFeature& feature = generated_[g];
    SAFE_ASSIGN_OR_RETURN(auto op, registry.Find(feature.op));
    // Chunked parents are gathered per feature (at most arity columns
    // resident at once); the generated column returns to chunked storage
    // so the output frame spills like its inputs.
    std::vector<const std::vector<double>*> parents;
    std::vector<std::vector<double>> gathered;
    gathered.reserve(parent_slots_[g].size());
    const ChunkedVector<double>* chunk_home = nullptr;
    for (size_t slot : parent_slots_[g]) {
      const Column& parent = workspace[slot];
      if (parent.chunked()) {
        if (chunk_home == nullptr) chunk_home = parent.chunks().get();
        gathered.push_back(parent.Gather());
        parents.push_back(&gathered.back());
      } else {
        parents.push_back(&parent.values());
      }
    }
    SAFE_ASSIGN_OR_RETURN(std::vector<double> values,
                          ApplyOperator(*op, feature.params, parents));
    Column column(feature.name, std::move(values));
    if (chunk_home != nullptr) {
      column = column.AsChunked(chunk_home->pool(),
                                chunk_home->group_rows());
    }
    workspace.push_back(std::move(column));
  }
  DataFrame out;
  for (size_t slot : selected_slots_) {
    SAFE_RETURN_NOT_OK(out.AddColumn(workspace[slot]));
  }
  return out;
}

Result<DataFrame> FeaturePlan::Transform(const DataFrame& x) const {
  return Transform(x, DefaultRegistry());
}

Result<std::vector<double>> FeaturePlan::TransformRow(
    const std::vector<double>& row, const OperatorRegistry& registry) const {
  if (row.size() != input_columns_.size()) {
    return Status::InvalidArgument(
        "plan transform row: expected " +
        std::to_string(input_columns_.size()) + " values, got " +
        std::to_string(row.size()));
  }
  std::vector<double> workspace(row);
  workspace.resize(input_columns_.size() + generated_.size());
  std::vector<double> inputs;
  for (size_t g = 0; g < generated_.size(); ++g) {
    const GeneratedFeature& feature = generated_[g];
    SAFE_ASSIGN_OR_RETURN(auto op, registry.Find(feature.op));
    inputs.clear();
    bool missing = false;
    for (size_t slot : parent_slots_[g]) {
      inputs.push_back(workspace[slot]);
      if (std::isnan(workspace[slot])) missing = true;
    }
    workspace[input_columns_.size() + g] =
        (missing && !op->handles_missing())
            ? std::numeric_limits<double>::quiet_NaN()
            : op->Apply(inputs.data(), feature.params);
  }
  std::vector<double> out;
  out.reserve(selected_slots_.size());
  for (size_t slot : selected_slots_) out.push_back(workspace[slot]);
  return out;
}

Result<std::vector<double>> FeaturePlan::TransformRow(
    const std::vector<double>& row) const {
  return TransformRow(row, DefaultRegistry());
}

size_t FeaturePlan::NumSelectedGenerated() const {
  size_t count = 0;
  for (size_t slot : selected_slots_) {
    if (slot >= input_columns_.size()) ++count;
  }
  return count;
}

std::string FeaturePlan::Serialize() const {
  std::ostringstream out;
  out << "feature_plan v1\n";
  out << "inputs " << input_columns_.size() << "\n";
  for (const auto& name : input_columns_) out << name << "\n";
  out << "generated " << generated_.size() << "\n";
  for (const auto& feature : generated_) {
    out << feature.name << "\n";
    out << feature.op << " " << feature.parents.size() << " "
        << feature.params.size() << "\n";
    for (const auto& parent : feature.parents) out << parent << "\n";
    for (size_t i = 0; i < feature.params.size(); ++i) {
      if (i > 0) out << " ";
      out << FormatDoubleExact(feature.params[i]);
    }
    if (!feature.params.empty()) out << "\n";
  }
  out << "selected " << selected_.size() << "\n";
  for (const auto& name : selected_) out << name << "\n";
  return out.str();
}

Result<FeaturePlan> FeaturePlan::Deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  auto next_line = [&](std::string* out_line) -> bool {
    while (std::getline(in, *out_line)) {
      if (!out_line->empty()) return true;
    }
    return false;
  };

  if (!next_line(&line) || line != "feature_plan v1") {
    return Status::InvalidArgument("plan deserialize: bad header");
  }

  auto read_count = [&](const std::string& tag,
                        size_t* count) -> Status {
    std::string header;
    if (!next_line(&header)) {
      return Status::InvalidArgument("plan deserialize: missing " + tag);
    }
    std::istringstream hs(header);
    std::string got_tag;
    hs >> got_tag >> *count;
    if (!hs || got_tag != tag) {
      return Status::InvalidArgument("plan deserialize: expected '" + tag +
                                     " N', got '" + header + "'");
    }
    return Status::OK();
  };

  size_t num_inputs = 0;
  SAFE_RETURN_NOT_OK(read_count("inputs", &num_inputs));
  std::vector<std::string> inputs;
  for (size_t i = 0; i < num_inputs; ++i) {
    if (!next_line(&line)) {
      return Status::InvalidArgument("plan deserialize: truncated inputs");
    }
    inputs.push_back(line);
  }

  size_t num_generated = 0;
  SAFE_RETURN_NOT_OK(read_count("generated", &num_generated));
  std::vector<GeneratedFeature> generated;
  for (size_t g = 0; g < num_generated; ++g) {
    GeneratedFeature feature;
    if (!next_line(&feature.name)) {
      return Status::InvalidArgument("plan deserialize: truncated features");
    }
    if (!next_line(&line)) {
      return Status::InvalidArgument("plan deserialize: truncated feature '" +
                                     feature.name + "'");
    }
    std::istringstream meta(line);
    size_t num_parents = 0;
    size_t num_params = 0;
    meta >> feature.op >> num_parents >> num_params;
    if (!meta) {
      return Status::InvalidArgument("plan deserialize: bad feature meta '" +
                                     line + "'");
    }
    for (size_t p = 0; p < num_parents; ++p) {
      if (!next_line(&line)) {
        return Status::InvalidArgument("plan deserialize: truncated parents");
      }
      feature.parents.push_back(line);
    }
    if (num_params > 0) {
      if (!next_line(&line)) {
        return Status::InvalidArgument("plan deserialize: truncated params");
      }
      // Token-wise parse via ParseDouble: istream >> double rejects the
      // "nan"/"inf" tokens that fitted params (e.g. empty group-by bins)
      // legitimately contain.
      std::istringstream ps(line);
      std::string token;
      for (size_t i = 0; i < num_params; ++i) {
        if (!(ps >> token)) {
          return Status::InvalidArgument("plan deserialize: bad params '" +
                                         line + "'");
        }
        auto value = ParseDouble(token);
        if (!value.ok()) {
          return Status::InvalidArgument("plan deserialize: bad param '" +
                                         token + "'");
        }
        feature.params.push_back(*value);
      }
    }
    generated.push_back(std::move(feature));
  }

  size_t num_selected = 0;
  SAFE_RETURN_NOT_OK(read_count("selected", &num_selected));
  std::vector<std::string> selected;
  for (size_t i = 0; i < num_selected; ++i) {
    if (!next_line(&line)) {
      return Status::InvalidArgument("plan deserialize: truncated selected");
    }
    selected.push_back(line);
  }
  return Create(std::move(inputs), std::move(generated), std::move(selected));
}

}  // namespace safe
