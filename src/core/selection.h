#pragma once

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/dataframe/dataframe.h"
#include "src/gbdt/params.h"

namespace safe {

/// \brief The three-step selection pipeline of paper Section IV-C,
/// exposed as free functions so the RAND/IMP comparison baselines can
/// reuse it verbatim (Section V-A1).
///
/// Every step is deterministic at any thread count: per-feature work
/// fans out one task per column (each writing its own slot) and every
/// ordering decision uses an explicit total order (descending IV with
/// ascending column index breaking ties), so `pool` is purely a speed
/// knob. `pool == nullptr` runs serially; passing the global pool
/// reproduces the historical default of the pool-less overloads.

/// Step 1 (Alg. 3): Information Values of every column, over `num_bins`
/// equal-frequency bins. Columns whose IV cannot be computed (constant,
/// all-missing) score 0. Fans one task per column across `pool`
/// (nullptr = the process-wide global pool, the historical behaviour).
std::vector<double> ComputeIvs(const DataFrame& x,
                               const std::vector<double>& labels,
                               size_t num_bins, ThreadPool* pool);
std::vector<double> ComputeIvs(const DataFrame& x,
                               const std::vector<double>& labels,
                               size_t num_bins);

/// Step 1 (Alg. 3): indices of columns with IV > `iv_threshold` (the
/// paper's α = 0.1, the Table I "medium predictor" floor).
std::vector<size_t> IvFilterIndices(const std::vector<double>& ivs,
                                    double iv_threshold);

/// Step 2 (Alg. 4): removes redundancy among `candidates` — processes
/// them in descending-IV order (ties broken by ascending column index,
/// an explicit total order so the greedy pass is reproducible) and drops
/// any column whose |Pearson| with an already-kept column exceeds
/// `pearson_threshold` (the paper's θ = 0.8, the Table II "extremely
/// strong" floor). Returns kept indices (into x's columns) in
/// descending-IV order.
///
/// Each time a survivor is kept, its correlations against every
/// still-alive later candidate are computed in one parallel sweep
/// (`PearsonAgainst`); the kept/dropped decisions are identical to the
/// serial greedy pass at any thread count.
std::vector<size_t> RedundancyFilterIndices(
    const DataFrame& x, const std::vector<double>& ivs,
    const std::vector<size_t>& candidates, double pearson_threshold,
    ThreadPool* pool);
std::vector<size_t> RedundancyFilterIndices(
    const DataFrame& x, const std::vector<double>& ivs,
    const std::vector<size_t>& candidates, double pearson_threshold);

/// Step 3 (Section IV-C3): trains a GBDT on the candidate columns and
/// returns up to `max_output` of them ranked by average split gain.
/// Candidates the model never splits on rank after ranked ones, by
/// descending IV (ties broken by candidate-list order).
[[nodiscard]] Result<std::vector<size_t>> ImportanceRankIndices(
    const Dataset& train, const std::vector<size_t>& candidates,
    const std::vector<double>& ivs, const gbdt::GbdtParams& params,
    size_t max_output);

}  // namespace safe
