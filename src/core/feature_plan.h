#pragma once

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/operators.h"
#include "src/dataframe/dataframe.h"

namespace safe {

/// \brief One constructed feature: an operator applied to named parents,
/// plus any parameters the operator learned at fit time.
///
/// Parents refer to original columns or to earlier entries of the plan
/// (iteration > 1 can build on iteration 1's outputs), so entries form a
/// DAG linearized in creation order.
struct GeneratedFeature {
  std::string name;                  // e.g. "(f3/f7)"
  std::string op;                    // operator registry name
  std::vector<std::string> parents;  // input column names
  std::vector<double> params;        // operator-fitted parameters
};

/// \brief The learned feature-generation function Ψ : X → Z (paper Eq. 1).
///
/// A FeaturePlan is a pure value: it records the input schema, every
/// generated feature in dependency order, and which columns the selection
/// stage kept. It serializes to a line-oriented text format, transforms
/// whole DataFrames for batch scoring, and transforms single rows for the
/// paper's real-time inference requirement.
class FeaturePlan {
 public:
  FeaturePlan() = default;

  /// \param input_columns  schema the plan expects (original features).
  /// \param generated      constructed features in dependency order.
  /// \param selected       final output column names; each must be an
  ///                       input column or a generated feature.
  [[nodiscard]] static Result<FeaturePlan> Create(std::vector<std::string> input_columns,
                                    std::vector<GeneratedFeature> generated,
                                    std::vector<std::string> selected);

  /// Applies Ψ to a frame whose columns match the input schema (by name).
  /// Output columns appear in `selected()` order.
  [[nodiscard]] Result<DataFrame> Transform(const DataFrame& x,
                              const OperatorRegistry& registry) const;
  [[nodiscard]] Result<DataFrame> Transform(const DataFrame& x) const;

  /// Applies Ψ to one dense row ordered like the input schema — the
  /// real-time path: no frame materialization, O(plan size) work.
  [[nodiscard]] Result<std::vector<double>> TransformRow(
      const std::vector<double>& row, const OperatorRegistry& registry) const;
  [[nodiscard]] Result<std::vector<double>> TransformRow(
      const std::vector<double>& row) const;

  const std::vector<std::string>& input_columns() const {
    return input_columns_;
  }
  const std::vector<GeneratedFeature>& generated() const {
    return generated_;
  }
  const std::vector<std::string>& selected() const { return selected_; }

  // Resolved slot indices — the serving compiler's entry point
  // (serve::CompiledPlan::Compile flattens these into a linear program;
  // see DESIGN.md "Serving path"). Slots index the evaluation workspace:
  // inputs occupy [0, input_columns().size()), generated feature g lives
  // at input_columns().size() + g.

  /// Per generated feature: workspace slots of its parents, in operator
  /// argument order.
  const std::vector<std::vector<size_t>>& parent_slots() const {
    return parent_slots_;
  }
  /// Workspace slot of each selected output, in selected() order.
  const std::vector<size_t>& selected_slots() const {
    return selected_slots_;
  }

  /// How many selected outputs are generated (vs original) features.
  size_t NumSelectedGenerated() const;

  std::string Serialize() const;
  [[nodiscard]] static Result<FeaturePlan> Deserialize(const std::string& text);

 private:
  std::vector<std::string> input_columns_;
  std::vector<GeneratedFeature> generated_;
  std::vector<std::string> selected_;
  // name -> slot in the evaluation workspace (inputs then generated).
  std::vector<size_t> selected_slots_;
  std::vector<std::vector<size_t>> parent_slots_;  // per generated feature
};

}  // namespace safe
