#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace safe {

/// \brief An n-ary feature-construction operator (paper Section III).
///
/// Operators are stateless singletons; anything they must learn from
/// training data (bin edges, means, group aggregates) is produced by
/// FitParams and stored in the GeneratedFeature that references them, so
/// a serialized FeaturePlan replays exactly — including on a single row
/// at inference time (the paper's real-time requirement).
class Operator {
 public:
  virtual ~Operator() = default;

  /// Stable identifier used in serialized plans ("add", "div", ...).
  virtual std::string name() const = 0;

  /// Number of parent features consumed (1, 2 or 3).
  virtual size_t arity() const = 0;

  /// True when argument order matters (the paper counts such operators
  /// once per ordering, e.g. "÷").
  virtual bool commutative() const { return true; }

  /// Infix/display symbol for generated-feature names ("+", "/", ...).
  virtual std::string symbol() const { return name(); }

  /// True when Apply handles NaN inputs itself (e.g. group-by, whose key
  /// binning has a missing bin); otherwise NaN inputs yield NaN output.
  virtual bool handles_missing() const { return false; }

  /// Learns operator parameters from training parent columns
  /// (default: none). Columns are parallel, length = rows.
  [[nodiscard]] virtual Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& /*parents*/) const {
    return std::vector<double>{};
  }

  /// Element-wise application; `inputs` holds arity() values. Returns NaN
  /// for undefined cases (log of a negative, division by zero, ...).
  virtual double Apply(const double* inputs,
                       const std::vector<double>& params) const = 0;
};

/// Applies an operator across full columns (NaN in, NaN out).
[[nodiscard]] Result<std::vector<double>> ApplyOperator(
    const Operator& op, const std::vector<double>& params,
    const std::vector<const std::vector<double>*>& parents);

/// \brief Name-keyed registry of operators (paper Section III: "new
/// operators should be easily added").
class OperatorRegistry {
 public:
  /// Registry with every built-in operator:
  /// binary arithmetic add/sub/mul/div, logical and/or/xor, group-by
  /// aggregates gbmean/gbmax/gbmin/gbstd/gbcount, unary
  /// log/sqrt/square/sigmoid/tanh/round/abs/zscore/minmax/discretize, and
  /// the ternary conditional.
  static OperatorRegistry Default();

  /// Registry holding only {add, sub, mul, div} — the configuration every
  /// experiment in the paper's Section V uses.
  static OperatorRegistry Arithmetic();

  /// Empty registry for fully custom configurations.
  static OperatorRegistry Empty();

  /// Adds an operator; fails on duplicate names.
  [[nodiscard]] Status Register(std::shared_ptr<const Operator> op);

  /// Looks an operator up by name.
  [[nodiscard]] Result<std::shared_ptr<const Operator>> Find(const std::string& name) const;

  /// All registered operators of the given arity.
  std::vector<std::shared_ptr<const Operator>> OfArity(size_t arity) const;

  std::vector<std::string> Names() const;
  size_t size() const { return ops_.size(); }

 private:
  std::map<std::string, std::shared_ptr<const Operator>> ops_;
};

}  // namespace safe
