#pragma once

#include <limits>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"
#include "src/dataframe/dataframe.h"
#include "src/gbdt/params.h"

namespace safe {

namespace obs {
class JsonValue;
}  // namespace obs

/// \brief How candidate feature combinations are mined each iteration.
///
/// kTreePaths is SAFE proper; the others are the paper's comparison
/// points, which share the full selection pipeline (Section V-A1).
enum class MiningStrategy {
  kTreePaths,          ///< SAFE: combinations from shared GBDT paths
  kRandomPairs,        ///< RAND: random combinations of all features
  kSplitFeaturePairs,  ///< IMP: random combinations of split features
  kNonSplitPairs,      ///< ablation: combinations of non-split features
};

/// \brief Hyper-parameters of the SAFE engine (paper Alg. 1).
struct SafeParams {
  /// nIter: outer iterations (the paper's benchmark runs use 1).
  size_t num_iterations = 1;
  /// tIter: wall-clock budget in seconds; iteration loop stops once spent.
  double time_budget_seconds = std::numeric_limits<double>::infinity();

  /// XGBoost used to mine combination relations (K1, D1 in Section IV-D).
  gbdt::GbdtParams miner;
  /// XGBoost used to rank candidate importance (K2, D2).
  gbdt::GbdtParams ranker;

  /// γ: combinations kept after gain-ratio ranking; 0 = min(4·M, 1000)
  /// (auto; the cap keeps the very wide datasets, e.g. gina's M = 970,
  /// from swamping the selection stage for the random strategies).
  size_t gamma = 0;
  /// Largest combination size (2 = binary operators only, as in Section V).
  size_t max_arity = 2;
  /// Operator names drawn from the registry; Section V uses {+,−,×,÷}.
  std::vector<std::string> operator_names = {"add", "sub", "mul", "div"};

  /// α: IV floor (Alg. 3; Table I medium-predictor boundary).
  double iv_threshold = 0.1;
  /// β: equal-frequency bins for IV.
  size_t iv_bins = 10;
  /// θ: Pearson redundancy ceiling (Alg. 4; Table II boundary).
  double pearson_threshold = 0.8;
  /// Final feature cap per iteration; 0 = 2·M (the paper's setting).
  size_t max_output_features = 0;

  /// Worker threads for the whole pipeline — one knob controls the GBDT
  /// boosters *and* every engine stage (combination mining/ranking,
  /// feature generation, the IV filter, Pearson redundancy removal).
  /// 0 = the shared process-wide pool, 1 = fully serial, k > 1 = a
  /// dedicated k-worker pool for this fit; when nonzero it also
  /// overrides miner/ranker GbdtParams::n_threads. The fitted plan is
  /// bit-identical at any setting — work partitioning is fixed by the
  /// data and every ordering decision uses an explicit total order
  /// (DESIGN.md, "Parallel training & determinism" and "Engine
  /// parallelism & determinism").
  size_t n_threads = 0;

  MiningStrategy strategy = MiningStrategy::kTreePaths;
  uint64_t seed = 42;

  SafeParams() {
    miner.num_trees = 20;
    miner.max_depth = 4;
    ranker.num_trees = 20;
    ranker.max_depth = 4;
  }
};

/// \brief Wall-clock of one pipeline stage inside an iteration.
/// `start_seconds` is the offset from the iteration start, so stages of
/// an iteration are non-overlapping and monotonically ordered.
struct StageTiming {
  std::string stage;
  double start_seconds = 0.0;
  double seconds = 0.0;
};

/// \brief Per-iteration funnel counts (how many features each stage kept)
/// plus per-stage wall-clock timings.
struct IterationDiagnostics {
  size_t num_paths = 0;
  size_t num_combinations = 0;
  size_t num_generated = 0;
  size_t num_candidates = 0;
  size_t num_after_iv = 0;
  size_t num_after_redundancy = 0;
  size_t num_selected = 0;
  double seconds = 0.0;
  std::vector<StageTiming> stages;
};

/// Serializes iteration diagnostics for RunReport (obs/report.h): an
/// array with every IterationDiagnostics field plus the stage timeline.
obs::JsonValue IterationDiagnosticsToJson(
    const std::vector<IterationDiagnostics>& iterations);

/// \brief Output of SafeEngine::Fit: the learned Ψ plus diagnostics.
struct SafeFitResult {
  FeaturePlan plan;
  std::vector<IterationDiagnostics> iterations;
};

/// \brief The SAFE automatic-feature-engineering engine (paper Alg. 1):
/// iteratively (1) mines promising feature combinations from GBDT paths,
/// (2) generates new features by applying operators to them, and
/// (3) selects survivors through the IV → Pearson → importance pipeline.
class SafeEngine {
 public:
  explicit SafeEngine(SafeParams params)
      : SafeEngine(std::move(params), OperatorRegistry::Default()) {}
  SafeEngine(SafeParams params, OperatorRegistry registry)
      : params_(std::move(params)), registry_(std::move(registry)) {}

  /// Learns Ψ from training data. `valid` is optional and only consulted
  /// by the internal boosters (e.g. early stopping when configured).
  [[nodiscard]] Result<SafeFitResult> Fit(const Dataset& train,
                            const Dataset* valid = nullptr) const;

  const SafeParams& params() const { return params_; }
  const OperatorRegistry& registry() const { return registry_; }

 private:
  SafeParams params_;
  OperatorRegistry registry_;
};

}  // namespace safe
