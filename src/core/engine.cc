#include "src/core/engine.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "src/common/random.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/combination.h"
#include "src/core/selection.h"
#include "src/gbdt/booster.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {

namespace {

/// Builds the display name of a generated feature.
std::string FeatureName(const Operator& op,
                        const std::vector<std::string>& parents) {
  if (op.arity() == 1) {
    return op.name() + "(" + parents[0] + ")";
  }
  if (op.arity() == 2 && op.symbol().size() <= 2 &&
      op.symbol() != op.name()) {
    return "(" + parents[0] + op.symbol() + parents[1] + ")";
  }
  std::string out = op.name() + "(";
  for (size_t i = 0; i < parents.size(); ++i) {
    if (i > 0) out += ";";
    out += parents[i];
  }
  out += ")";
  return out;
}

/// Random distinct pairs drawn from `pool`, as FeatureCombinations without
/// split values (RAND / IMP / non-split mining).
std::vector<FeatureCombination> RandomPairs(const std::vector<int>& pool,
                                            size_t count, Rng* rng) {
  std::vector<FeatureCombination> out;
  if (pool.size() < 2 || count == 0) return out;
  std::set<std::pair<int, int>> seen;
  const size_t max_distinct = pool.size() * (pool.size() - 1) / 2;
  const size_t target = std::min(count, max_distinct);
  size_t attempts = 0;
  while (seen.size() < target && attempts < target * 50) {
    ++attempts;
    int a = pool[rng->NextUint64Below(pool.size())];
    int b = pool[rng->NextUint64Below(pool.size())];
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!seen.insert({a, b}).second) continue;
  }
  for (const auto& [a, b] : seen) {
    FeatureCombination combo;
    combo.features = {a, b};
    combo.split_values = {{}, {}};
    out.push_back(std::move(combo));
  }
  return out;
}

/// Funnel counters shared by every Fit call; resolved once so the
/// per-iteration updates touch only atomics.
struct EngineCounters {
  obs::Counter* iterations;
  obs::Counter* paths;
  obs::Counter* combinations;
  obs::Counter* generated;
  obs::Counter* candidates;
  obs::Counter* after_iv;
  obs::Counter* after_redundancy;
  obs::Counter* selected;
  obs::Counter* generation_tasks;
  obs::Gauge* n_threads;

  static const EngineCounters& Get() {
    static const EngineCounters counters = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
      return EngineCounters{registry->counter("engine.iterations"),
                            registry->counter("engine.paths_mined"),
                            registry->counter("engine.combinations_mined"),
                            registry->counter("engine.features_generated"),
                            registry->counter("engine.candidates"),
                            registry->counter("engine.features_after_iv"),
                            registry->counter(
                                "engine.features_after_redundancy"),
                            registry->counter("engine.features_selected"),
                            registry->counter("engine.generation_tasks"),
                            registry->gauge("engine.n_threads")};
    }();
    return counters;
  }
};

/// One candidate generated column: a (combination, operator, ordering)
/// triple. Tasks are enumerated serially in combination order — the
/// exact order a serial run generates columns in — then evaluated
/// independently on the pool, each filling only its own slot. The
/// assembly pass walks tasks in enumeration order, so the produced
/// frame (column order, names, survivors) is identical at any thread
/// count.
struct GenerationTask {
  const Operator* op = nullptr;
  std::vector<int> ordering;
  std::string name;
  std::vector<std::string> parent_names;

  // Filled by the parallel evaluation phase.
  bool ok = false;
  std::vector<double> params;
  Column train_column;
  std::vector<double> valid_values;
};

}  // namespace

obs::JsonValue IterationDiagnosticsToJson(
    const std::vector<IterationDiagnostics>& iterations) {
  obs::JsonValue out = obs::JsonValue::Array();
  for (const auto& diag : iterations) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("num_paths", obs::JsonValue(uint64_t{diag.num_paths}));
    entry.Set("num_combinations",
              obs::JsonValue(uint64_t{diag.num_combinations}));
    entry.Set("num_generated", obs::JsonValue(uint64_t{diag.num_generated}));
    entry.Set("num_candidates",
              obs::JsonValue(uint64_t{diag.num_candidates}));
    entry.Set("num_after_iv", obs::JsonValue(uint64_t{diag.num_after_iv}));
    entry.Set("num_after_redundancy",
              obs::JsonValue(uint64_t{diag.num_after_redundancy}));
    entry.Set("num_selected", obs::JsonValue(uint64_t{diag.num_selected}));
    entry.Set("seconds", obs::JsonValue(diag.seconds));
    obs::JsonValue stages = obs::JsonValue::Array();
    for (const auto& stage : diag.stages) {
      obs::JsonValue s = obs::JsonValue::Object();
      s.Set("stage", obs::JsonValue(stage.stage));
      s.Set("start_seconds", obs::JsonValue(stage.start_seconds));
      s.Set("seconds", obs::JsonValue(stage.seconds));
      stages.Append(std::move(s));
    }
    entry.Set("stages", std::move(stages));
    out.Append(std::move(entry));
  }
  return out;
}

Result<SafeFitResult> SafeEngine::Fit(const Dataset& train,
                                      const Dataset* valid) const {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("safe: empty training data");
  }
  if (train.y == nullptr || train.y->size() != train.num_rows()) {
    return Status::InvalidArgument("safe: label size mismatch");
  }
  if (params_.num_iterations == 0) {
    return Status::InvalidArgument("safe: num_iterations must be > 0");
  }
  if (params_.max_arity < 1 || params_.max_arity > 3) {
    return Status::InvalidArgument("safe: max_arity must be 1..3");
  }
  if (params_.iv_bins < 2) {
    return Status::InvalidArgument("safe: iv_bins must be >= 2");
  }
  // Resolve operators up front so a typo fails fast.
  std::vector<std::shared_ptr<const Operator>> operators;
  for (const auto& name : params_.operator_names) {
    SAFE_ASSIGN_OR_RETURN(auto op, registry_.Find(name));
    if (op->arity() > params_.max_arity) continue;
    operators.push_back(std::move(op));
  }
  if (operators.empty()) {
    return Status::InvalidArgument(
        "safe: no usable operators (check names and max_arity)");
  }

  const size_t orig_m = train.x.num_columns();
  const size_t gamma =
      params_.gamma > 0 ? params_.gamma
                        : std::min<size_t>(4 * orig_m, 1000);
  const size_t max_output =
      params_.max_output_features > 0 ? params_.max_output_features
                                      : 2 * orig_m;

  SAFE_TRACE_SPAN("engine.fit");
  SAFE_FR_SCOPE("engine.fit");
  Stopwatch total_watch;
  Rng rng(params_.seed);

  // One pool serves every engine stage (and, via n_threads below, the
  // miner/ranker boosters): 0 = the shared global pool, 1 = serial
  // (null — ParallelFor runs inline), k > 1 = a dedicated pool for this
  // fit. The fitted plan is bit-identical at any setting.
  PoolSelection engine_pool = ResolvePool(params_.n_threads);
  ThreadPool* pool = engine_pool.pool;
  EngineCounters::Get().n_threads->Set(
      static_cast<double>(engine_pool.num_threads()));

  Dataset current = train;
  Dataset current_valid;
  const bool has_valid = valid != nullptr && valid->num_rows() > 0;
  if (has_valid) {
    if (valid->x.num_columns() != orig_m) {
      return Status::InvalidArgument("safe: valid column count mismatch");
    }
    current_valid = *valid;
  }

  std::vector<GeneratedFeature> all_generated;
  std::unordered_set<std::string> known_names;  // lint: unordered-ok(membership-only dedup; never iterated)
  for (const auto& name : train.x.ColumnNames()) known_names.insert(name);

  SafeFitResult result;

  for (size_t iter = 0; iter < params_.num_iterations; ++iter) {
    if (total_watch.ElapsedSeconds() >= params_.time_budget_seconds &&
        iter > 0) {
      break;
    }
    SAFE_TRACE_SPAN("engine.iteration");
    SAFE_FR_SCOPE("engine.iteration");
    Stopwatch iter_watch;
    IterationDiagnostics diag;
    // Closes the stage opened at `start` and appends its timing; stages
    // are sequential, so start offsets are monotone within the iteration.
    auto record_stage = [&](const char* stage, double start) {
      diag.stages.push_back(
          StageTiming{stage, start, iter_watch.ElapsedSeconds() - start});
    };

    // -------------------------------------------------- mine combinations
    std::vector<FeatureCombination> combos;
    const double mine_start = iter_watch.ElapsedSeconds();
    {
    SAFE_TRACE_SPAN("engine.mine_combinations");
    SAFE_FR_SCOPE("engine.mine_combinations");
    if (params_.strategy == MiningStrategy::kTreePaths ||
        params_.strategy == MiningStrategy::kSplitFeaturePairs ||
        params_.strategy == MiningStrategy::kNonSplitPairs) {
      gbdt::GbdtParams miner_params = params_.miner;
      miner_params.seed = rng.NextUint64();
      if (params_.n_threads != 0) miner_params.n_threads = params_.n_threads;
      SAFE_ASSIGN_OR_RETURN(
          gbdt::Booster miner,
          gbdt::Booster::Fit(current, has_valid ? &current_valid : nullptr,
                             miner_params));
      if (params_.strategy == MiningStrategy::kTreePaths) {
        const auto paths = miner.ExtractAllPaths();
        diag.num_paths = paths.size();
        CombinationMinerOptions options;
        options.max_arity = params_.max_arity;
        combos = MineCombinations(paths, options, pool);
        {
          SAFE_FR_SCOPE("engine.rank_combinations");
          combos = RankCombinations(combos, current.x, current.labels(),
                                    gamma, pool);
        }
      } else {
        std::vector<int> pool;
        if (params_.strategy == MiningStrategy::kSplitFeaturePairs) {
          pool = miner.SplitFeatures();
        } else {
          const auto split = miner.SplitFeatures();
          std::set<int> split_set(split.begin(), split.end());
          for (size_t c = 0; c < current.x.num_columns(); ++c) {
            if (!split_set.count(static_cast<int>(c))) {
              pool.push_back(static_cast<int>(c));
            }
          }
          if (pool.size() < 2) {
            // Everything splits: fall back to the full pool (keeps the
            // ablation runnable on tiny frames).
            pool.clear();
            for (size_t c = 0; c < current.x.num_columns(); ++c) {
              pool.push_back(static_cast<int>(c));
            }
          }
        }
        combos = RandomPairs(pool, gamma, &rng);
      }
    } else {  // kRandomPairs
      std::vector<int> pool;
      for (size_t c = 0; c < current.x.num_columns(); ++c) {
        pool.push_back(static_cast<int>(c));
      }
      combos = RandomPairs(pool, gamma, &rng);
    }
    }
    record_stage("mine_combinations", mine_start);
    diag.num_combinations = combos.size();

    // -------------------------------------------------- generate features
    std::vector<GeneratedFeature> iteration_features;
    DataFrame generated_train;
    DataFrame generated_valid;
    const double generate_start = iter_watch.ElapsedSeconds();
    {
    SAFE_TRACE_SPAN("engine.generate_features");
    SAFE_FR_SCOPE("engine.generate_features");
    // Enumerate candidate columns serially in combination order (the
    // order a serial run would generate them in), evaluate each one as
    // an independent pool task, then assemble survivors in enumeration
    // order — see GenerationTask.
    std::vector<GenerationTask> tasks;
    for (const auto& combo : combos) {
      for (const auto& op : operators) {
        if (op->arity() != combo.features.size()) continue;
        // Non-commutative operators act once per ordering (paper treats
        // "÷" as two operators). Ternary orderings stay at identity to
        // bound blow-up.
        std::vector<std::vector<int>> orderings;
        orderings.push_back(combo.features);
        if (!op->commutative() && combo.features.size() == 2) {
          orderings.push_back({combo.features[1], combo.features[0]});
        }
        for (auto& ordering : orderings) {
          GenerationTask task;
          task.op = op.get();
          for (int f : ordering) {
            task.parent_names.push_back(
                current.x.column(static_cast<size_t>(f)).name());
          }
          task.name = FeatureName(*op, task.parent_names);
          if (known_names.count(task.name)) continue;
          task.ordering = std::move(ordering);
          tasks.push_back(std::move(task));
        }
      }
    }
    EngineCounters::Get().generation_tasks->Increment(tasks.size());

    ParallelFor(pool, 0, tasks.size(), [&](size_t t) {
      const uint64_t start_ns = obs::NowNanos();
      GenerationTask& task = tasks[t];
      std::vector<const std::vector<double>*> train_parents;
      std::vector<const std::vector<double>*> valid_parents;
      // Operators consume whole vectors, so chunked parents are gathered
      // per task — at most arity columns resident at once, regardless of
      // frame width. The gathered bits equal the dense bits, so the
      // generated column is unchanged by storage.
      std::vector<std::vector<double>> gathered_train;
      std::vector<std::vector<double>> gathered_valid;
      gathered_train.reserve(task.ordering.size());
      gathered_valid.reserve(task.ordering.size());
      const ChunkedVector<double>* chunk_home = nullptr;
      for (int f : task.ordering) {
        const Column& parent = current.x.column(static_cast<size_t>(f));
        if (parent.chunked()) {
          if (chunk_home == nullptr) chunk_home = parent.chunks().get();
          gathered_train.push_back(parent.Gather());
          train_parents.push_back(&gathered_train.back());
        } else {
          train_parents.push_back(&parent.values());
        }
        if (has_valid) {
          const Column& valid_parent =
              current_valid.x.column(static_cast<size_t>(f));
          if (valid_parent.chunked()) {
            gathered_valid.push_back(valid_parent.Gather());
            valid_parents.push_back(&gathered_valid.back());
          } else {
            valid_parents.push_back(&valid_parent.values());
          }
        }
      }
      // Failures here (unfittable params, inapplicable operator,
      // constant or all-missing output) simply leave the task !ok — the
      // serial code skipped those columns the same way.
      auto params_result = task.op->FitParams(train_parents);
      if (!params_result.ok()) return;
      auto values_result =
          ApplyOperator(*task.op, *params_result, train_parents);
      if (!values_result.ok()) return;
      Column column(task.name, std::move(*values_result));
      if (column.IsConstant()) return;  // carries no information
      if (column.CountMissing() == column.size()) return;
      if (chunk_home != nullptr) {
        // Children of chunked parents go back to chunked storage (same
        // pool and group size), keeping the candidate pool spillable.
        column = column.AsChunked(chunk_home->pool(),
                                  chunk_home->group_rows());
      }
      if (has_valid) {
        auto valid_values =
            ApplyOperator(*task.op, *params_result, valid_parents);
        if (!valid_values.ok()) return;
        task.valid_values = std::move(*valid_values);
      }
      task.params = std::move(*params_result);
      task.train_column = std::move(column);
      task.ok = true;
      obs::PerThreadHistogram("engine.generate_us",
                              obs::DefaultLatencyBucketsUs())
          ->Observe(static_cast<double>(obs::NowNanos() - start_ns) / 1e3);
    });

    for (GenerationTask& task : tasks) {
      if (!task.ok) continue;
      if (has_valid) {
        SAFE_RETURN_NOT_OK(generated_valid.AddColumn(
            Column(task.name, std::move(task.valid_values))));
      }
      SAFE_RETURN_NOT_OK(
          generated_train.AddColumn(std::move(task.train_column)));
      known_names.insert(task.name);
      GeneratedFeature feature;
      feature.name = std::move(task.name);
      feature.op = task.op->name();
      feature.parents = std::move(task.parent_names);
      feature.params = std::move(task.params);
      iteration_features.push_back(std::move(feature));
    }
    }
    record_stage("generate_features", generate_start);
    diag.num_generated = generated_train.num_columns();

    // -------------------------------------------------- candidate pool
    const double pool_start = iter_watch.ElapsedSeconds();
    SAFE_ASSIGN_OR_RETURN(DataFrame candidate_frame,
                          current.x.Concat(generated_train));
    diag.num_candidates = candidate_frame.num_columns();
    Dataset candidates;
    candidates.x = std::move(candidate_frame);
    candidates.y = current.y;
    record_stage("candidate_pool", pool_start);

    // -------------------------------------------------- Alg. 3: IV filter
    const double iv_start = iter_watch.ElapsedSeconds();
    std::vector<double> ivs;
    std::vector<size_t> after_iv;
    {
      SAFE_TRACE_SPAN("engine.iv_filter");
      SAFE_FR_SCOPE("engine.iv_filter");
      ivs = ComputeIvs(candidates.x, candidates.labels(), params_.iv_bins,
                       pool);
      after_iv = IvFilterIndices(ivs, params_.iv_threshold);
      if (after_iv.empty()) {
        // Degenerate task (no feature clears α): fall back to every
        // candidate so the pipeline still emits a usable feature set.
        after_iv.resize(candidates.x.num_columns());
        for (size_t c = 0; c < after_iv.size(); ++c) after_iv[c] = c;
      }
    }
    record_stage("iv_filter", iv_start);
    diag.num_after_iv = after_iv.size();

    // -------------------------------------------------- Alg. 4: redundancy
    const double redundancy_start = iter_watch.ElapsedSeconds();
    std::vector<size_t> after_redundancy;
    {
      SAFE_TRACE_SPAN("engine.redundancy_filter");
      SAFE_FR_SCOPE("engine.redundancy_filter");
      after_redundancy = RedundancyFilterIndices(
          candidates.x, ivs, after_iv, params_.pearson_threshold, pool);
    }
    record_stage("redundancy_filter", redundancy_start);
    diag.num_after_redundancy = after_redundancy.size();

    // -------------------------------------------------- importance ranking
    const double rank_start = iter_watch.ElapsedSeconds();
    gbdt::GbdtParams ranker_params = params_.ranker;
    ranker_params.seed = rng.NextUint64();
    if (params_.n_threads != 0) ranker_params.n_threads = params_.n_threads;
    std::vector<size_t> selected;
    {
      SAFE_TRACE_SPAN("engine.importance_rank");
      SAFE_FR_SCOPE("engine.importance_rank");
      SAFE_ASSIGN_OR_RETURN(
          selected, ImportanceRankIndices(candidates, after_redundancy, ivs,
                                          ranker_params, max_output));
    }
    record_stage("importance_rank", rank_start);
    if (selected.empty()) {
      return Status::Internal("safe: selection produced no features");
    }
    diag.num_selected = selected.size();

    // -------------------------------------------------- next iteration
    SAFE_ASSIGN_OR_RETURN(DataFrame next_train,
                          candidates.x.Select(selected));
    current.x = std::move(next_train);
    if (has_valid) {
      SAFE_ASSIGN_OR_RETURN(DataFrame valid_candidates,
                            current_valid.x.Concat(generated_valid));
      SAFE_ASSIGN_OR_RETURN(DataFrame next_valid,
                            valid_candidates.Select(selected));
      current_valid.x = std::move(next_valid);
    }
    all_generated.insert(all_generated.end(),
                         std::make_move_iterator(iteration_features.begin()),
                         std::make_move_iterator(iteration_features.end()));

    diag.seconds = iter_watch.ElapsedSeconds();
    const EngineCounters& counters = EngineCounters::Get();
    counters.iterations->Increment();
    counters.paths->Increment(diag.num_paths);
    counters.combinations->Increment(diag.num_combinations);
    counters.generated->Increment(diag.num_generated);
    counters.candidates->Increment(diag.num_candidates);
    counters.after_iv->Increment(diag.num_after_iv);
    counters.after_redundancy->Increment(diag.num_after_redundancy);
    counters.selected->Increment(diag.num_selected);
    result.iterations.push_back(diag);
  }

  // Prune generated features the final selection does not need
  // (transitively), so inference pays only for what Ψ outputs.
  const std::vector<std::string> selected_names = current.x.ColumnNames();
  std::unordered_set<std::string> needed(selected_names.begin(),  // lint: unordered-ok(membership-only keep-mark; iteration is over the all_generated vector)
                                         selected_names.end());
  std::vector<char> keep(all_generated.size(), 0);
  for (size_t g = all_generated.size(); g-- > 0;) {
    if (needed.count(all_generated[g].name)) {
      keep[g] = 1;
      for (const auto& parent : all_generated[g].parents) {
        needed.insert(parent);
      }
    }
  }
  std::vector<GeneratedFeature> pruned;
  for (size_t g = 0; g < all_generated.size(); ++g) {
    if (keep[g]) pruned.push_back(std::move(all_generated[g]));
  }

  SAFE_ASSIGN_OR_RETURN(
      result.plan, FeaturePlan::Create(train.x.ColumnNames(),
                                       std::move(pruned), selected_names));
  return result;
}

}  // namespace safe
