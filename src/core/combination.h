#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/dataframe/dataframe.h"
#include "src/gbdt/tree.h"

namespace safe {

/// \brief A candidate feature combination mined from GBDT paths: the
/// parent feature indices plus, per feature, the split values observed
/// for it (the paper's V_i sets — a feature can split several times).
struct FeatureCombination {
  std::vector<int> features;                      // sorted, distinct
  std::vector<std::vector<double>> split_values;  // parallel to features
  /// Information gain ratio assigned by CombinationRanker.
  double gain_ratio = 0.0;
};

/// \brief Options for mining combinations out of tree paths.
struct CombinationMinerOptions {
  /// Largest combination size enumerated (the paper's experiments use
  /// binary operators only, i.e. 2; ternary operators need 3).
  size_t max_arity = 2;
  /// Hard cap on enumerated combinations (guards pathological deep trees).
  size_t max_combinations = 100000;
};

/// \brief Enumerates feature combinations of size 1..max_arity from the
/// distinct features of each path (paper Eq. 4), de-duplicated across
/// paths with split-value sets merged.
///
/// Per-path subset enumeration fans out one task per path across `pool`
/// (nullptr = serial); the per-path results are then merged into the
/// de-duplicated set serially in path order, with `max_combinations`
/// applied in that same order — so the mined set is identical to a
/// fully serial run at any thread count.
std::vector<FeatureCombination> MineCombinations(
    const std::vector<gbdt::TreePath>& paths,
    const CombinationMinerOptions& options, ThreadPool* pool = nullptr);

/// \brief Scores combinations by information gain ratio (paper Alg. 2):
/// the split features and values of a combination partition the records
/// into Π(|V_i|+1) cells; the gain ratio of that partition is the score.
/// Returns the top `gamma` combinations, sorted descending (all of them
/// when gamma == 0). Missing feature values occupy a dedicated slot per
/// feature.
///
/// Scoring fans out one task per combination across `pool` (nullptr =
/// the process-wide global pool, the historical behaviour); each task
/// writes only its own gain ratio. The final sort orders by descending
/// gain ratio with the lexicographically smaller feature list breaking
/// ties — an explicit total order (combinations are distinct feature
/// sets), so the kept top-γ slice is reproducible at any thread count.
std::vector<FeatureCombination> RankCombinations(
    std::vector<FeatureCombination> combinations, const DataFrame& x,
    const std::vector<double>& labels, size_t gamma,
    ThreadPool* pool);
std::vector<FeatureCombination> RankCombinations(
    std::vector<FeatureCombination> combinations, const DataFrame& x,
    const std::vector<double>& labels, size_t gamma);

}  // namespace safe
