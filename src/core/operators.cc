#include "src/core/operators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/linalg.h"
#include "src/dataframe/binning.h"
#include "src/gbdt/loss.h"
#include "src/stats/descriptive.h"

namespace safe {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Binary arithmetic

class AddOp : public Operator {
 public:
  std::string name() const override { return "add"; }
  size_t arity() const override { return 2; }
  std::string symbol() const override { return "+"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return in[0] + in[1];
  }
};

class SubOp : public Operator {
 public:
  std::string name() const override { return "sub"; }
  size_t arity() const override { return 2; }
  // b-a is the negation of a-b — the same feature up to a monotone
  // transform — so we treat sub as commutative and emit one ordering.
  std::string symbol() const override { return "-"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return in[0] - in[1];
  }
};

class MulOp : public Operator {
 public:
  std::string name() const override { return "mul"; }
  size_t arity() const override { return 2; }
  std::string symbol() const override { return "*"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return in[0] * in[1];
  }
};

class DivOp : public Operator {
 public:
  std::string name() const override { return "div"; }
  size_t arity() const override { return 2; }
  bool commutative() const override { return false; }  // paper's "÷"
  std::string symbol() const override { return "/"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (in[1] == 0.0) return kNaN;
    return in[0] / in[1];
  }
};

// ---------------------------------------------------------------------------
// Binary logical (inputs booleanized at > 0.5)

class LogicalOp : public Operator {
 public:
  size_t arity() const override { return 2; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (std::isnan(in[0]) || std::isnan(in[1])) return kNaN;
    return Combine(in[0] > 0.5, in[1] > 0.5) ? 1.0 : 0.0;
  }

 protected:
  virtual bool Combine(bool a, bool b) const = 0;
};

class AndOp : public LogicalOp {
 public:
  std::string name() const override { return "and"; }
  std::string symbol() const override { return "&"; }

 protected:
  bool Combine(bool a, bool b) const override { return a && b; }
};

class OrOp : public LogicalOp {
 public:
  std::string name() const override { return "or"; }
  std::string symbol() const override { return "|"; }

 protected:
  bool Combine(bool a, bool b) const override { return a || b; }
};

class XorOp : public LogicalOp {
 public:
  std::string name() const override { return "xor"; }
  std::string symbol() const override { return "^"; }

 protected:
  bool Combine(bool a, bool b) const override { return a != b; }
};

// ---------------------------------------------------------------------------
// Unary mathematical

class UnaryMathOp : public Operator {
 public:
  size_t arity() const override { return 1; }
};

class LogOp : public UnaryMathOp {
 public:
  std::string name() const override { return "log"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (!(in[0] > 0.0)) return kNaN;
    return std::log(in[0]);
  }
};

class SqrtOp : public UnaryMathOp {
 public:
  std::string name() const override { return "sqrt"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (in[0] < 0.0) return kNaN;
    return std::sqrt(in[0]);
  }
};

class SquareOp : public UnaryMathOp {
 public:
  std::string name() const override { return "square"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return in[0] * in[0];
  }
};

class SigmoidOp : public UnaryMathOp {
 public:
  std::string name() const override { return "sigmoid"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (std::isnan(in[0])) return kNaN;
    return gbdt::Sigmoid(in[0]);
  }
};

class TanhOp : public UnaryMathOp {
 public:
  std::string name() const override { return "tanh"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return std::tanh(in[0]);
  }
};

class RoundOp : public UnaryMathOp {
 public:
  std::string name() const override { return "round"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (std::isnan(in[0])) return kNaN;
    return std::round(in[0]);
  }
};

class AbsOp : public UnaryMathOp {
 public:
  std::string name() const override { return "abs"; }
  double Apply(const double* in, const std::vector<double>&) const override {
    return std::fabs(in[0]);
  }
};

// ---------------------------------------------------------------------------
// Unary fitted: normalization / discretization

class ZscoreOp : public UnaryMathOp {
 public:
  std::string name() const override { return "zscore"; }
  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& parents) const override {
    const double mu = Mean(*parents[0]);
    const double sd = StdDev(*parents[0]);
    return std::vector<double>{mu, sd > 1e-12 ? sd : 1.0};
  }
  double Apply(const double* in,
               const std::vector<double>& params) const override {
    return (in[0] - params[0]) / params[1];
  }
};

class MinMaxOp : public UnaryMathOp {
 public:
  std::string name() const override { return "minmax"; }
  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& parents) const override {
    const double lo = Min(*parents[0]);
    const double hi = Max(*parents[0]);
    if (std::isnan(lo)) {
      return Status::InvalidArgument("minmax: all values missing");
    }
    return std::vector<double>{lo, hi > lo ? hi - lo : 1.0};
  }
  double Apply(const double* in,
               const std::vector<double>& params) const override {
    return (in[0] - params[0]) / params[1];
  }
};

class DiscretizeOp : public UnaryMathOp {
 public:
  static constexpr size_t kBins = 10;
  std::string name() const override { return "discretize"; }
  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& parents) const override {
    SAFE_ASSIGN_OR_RETURN(BinEdges edges,
                          EqualFrequencyEdges(*parents[0], kBins));
    return edges.edges;
  }
  double Apply(const double* in,
               const std::vector<double>& params) const override {
    BinEdges edges{params};
    return static_cast<double>(edges.BinIndex(in[0]));
  }
};

// ---------------------------------------------------------------------------
// Binary group-by aggregates: parent 0 is the key (discretized into
// equal-frequency bins), parent 1 the value. Params layout:
//   [num_edges, edge_0..edge_{k-1}, agg_bin_0..agg_bin_{k+1}]
// with one aggregate slot per bin including the missing bin.

class GroupByOp : public Operator {
 public:
  size_t arity() const override { return 2; }
  bool commutative() const override { return false; }  // key vs value
  bool handles_missing() const override { return true; }

  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& parents) const override {
    static constexpr size_t kKeyBins = 16;
    SAFE_ASSIGN_OR_RETURN(BinEdges edges,
                          EqualFrequencyEdges(*parents[0], kKeyBins));
    const size_t cells = edges.missing_bin() + 1;
    std::vector<std::vector<double>> groups(cells);
    const auto& keys = *parents[0];
    const auto& values = *parents[1];
    for (size_t r = 0; r < keys.size(); ++r) {
      groups[edges.BinIndex(keys[r])].push_back(values[r]);
    }
    std::vector<double> params;
    params.push_back(static_cast<double>(edges.edges.size()));
    params.insert(params.end(), edges.edges.begin(), edges.edges.end());
    for (const auto& group : groups) {
      params.push_back(Aggregate(group));
    }
    return params;
  }

  double Apply(const double* in,
               const std::vector<double>& params) const override {
    const size_t num_edges = static_cast<size_t>(params[0]);
    BinEdges edges{std::vector<double>(params.begin() + 1,
                                       params.begin() + 1 +
                                           static_cast<long>(num_edges))};
    const size_t bin = edges.BinIndex(in[0]);
    return params[1 + num_edges + bin];
  }

 protected:
  /// Aggregate of one group's (possibly empty) values.
  virtual double Aggregate(const std::vector<double>& values) const = 0;
};

class GroupByMeanOp : public GroupByOp {
 public:
  std::string name() const override { return "gbmean"; }

 protected:
  double Aggregate(const std::vector<double>& v) const override {
    return v.empty() ? kNaN : Mean(v);
  }
};

class GroupByMaxOp : public GroupByOp {
 public:
  std::string name() const override { return "gbmax"; }

 protected:
  double Aggregate(const std::vector<double>& v) const override {
    return v.empty() ? kNaN : Max(v);
  }
};

class GroupByMinOp : public GroupByOp {
 public:
  std::string name() const override { return "gbmin"; }

 protected:
  double Aggregate(const std::vector<double>& v) const override {
    return v.empty() ? kNaN : Min(v);
  }
};

class GroupByStdOp : public GroupByOp {
 public:
  std::string name() const override { return "gbstd"; }

 protected:
  double Aggregate(const std::vector<double>& v) const override {
    return v.empty() ? kNaN : StdDev(v);
  }
};

class GroupByCountOp : public GroupByOp {
 public:
  std::string name() const override { return "gbcount"; }

 protected:
  double Aggregate(const std::vector<double>& v) const override {
    return static_cast<double>(v.size());
  }
};

// ---------------------------------------------------------------------------
// Regression operators — the paper's Section III: "Ridge regression and
// kernel ridge regression in [24] can also be considered as binary
// operators". Both regress parent 1 on parent 0 and emit the residual,
// the part of b that a cannot explain (AutoLearn's constructed feature).

/// residual of the 1-D ridge fit b ~ w*a + c. Params: {w, c}.
class RidgeOp : public Operator {
 public:
  static constexpr double kLambda = 1.0;

  std::string name() const override { return "ridge"; }
  size_t arity() const override { return 2; }
  bool commutative() const override { return false; }

  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& parents) const override {
    const auto& a = *parents[0];
    const auto& b = *parents[1];
    double sum_a = 0.0;
    double sum_b = 0.0;
    size_t n = 0;
    for (size_t r = 0; r < a.size(); ++r) {
      if (std::isnan(a[r]) || std::isnan(b[r])) continue;
      sum_a += a[r];
      sum_b += b[r];
      ++n;
    }
    if (n < 3) {
      return Status::InvalidArgument("ridge: too few paired rows");
    }
    const double mean_a = sum_a / static_cast<double>(n);
    const double mean_b = sum_b / static_cast<double>(n);
    double cov = 0.0;
    double var = 0.0;
    for (size_t r = 0; r < a.size(); ++r) {
      if (std::isnan(a[r]) || std::isnan(b[r])) continue;
      cov += (a[r] - mean_a) * (b[r] - mean_b);
      var += (a[r] - mean_a) * (a[r] - mean_a);
    }
    const double w = cov / (var + kLambda);
    return std::vector<double>{w, mean_b - w * mean_a};
  }

  double Apply(const double* in,
               const std::vector<double>& params) const override {
    return in[1] - (params[0] * in[0] + params[1]);
  }
};

/// residual of an RBF kernel-ridge fit of b on a over quantile landmarks.
/// Params: {m, gamma, c_1..c_m, alpha_1..alpha_m}.
class KernelRidgeOp : public Operator {
 public:
  static constexpr size_t kLandmarks = 24;
  static constexpr double kLambda = 0.1;

  std::string name() const override { return "krr"; }
  size_t arity() const override { return 2; }
  bool commutative() const override { return false; }

  Result<std::vector<double>> FitParams(
      const std::vector<const std::vector<double>*>& parents) const override {
    const auto& a = *parents[0];
    const auto& b = *parents[1];
    // Landmark inputs at quantiles of a; targets are per-landmark means
    // of b (a Nystrom-style compression keeping the fit O(m^3)).
    std::vector<std::pair<double, double>> paired;
    for (size_t r = 0; r < a.size(); ++r) {
      if (std::isnan(a[r]) || std::isnan(b[r])) continue;
      paired.emplace_back(a[r], b[r]);
    }
    if (paired.size() < kLandmarks) {
      return Status::InvalidArgument("krr: too few paired rows");
    }
    std::sort(paired.begin(), paired.end());
    const size_t m = kLandmarks;
    std::vector<double> centers(m);
    std::vector<double> targets(m);
    const size_t chunk = paired.size() / m;
    for (size_t k = 0; k < m; ++k) {
      const size_t lo = k * chunk;
      const size_t hi = (k + 1 == m) ? paired.size() : lo + chunk;
      double ca = 0.0;
      double cb = 0.0;
      for (size_t i = lo; i < hi; ++i) {
        ca += paired[i].first;
        cb += paired[i].second;
      }
      centers[k] = ca / static_cast<double>(hi - lo);
      targets[k] = cb / static_cast<double>(hi - lo);
    }
    // Bandwidth from the landmark spread.
    const double span = centers.back() - centers.front();
    const double gamma =
        span > 1e-12 ? 1.0 / (2.0 * (span / static_cast<double>(m)) *
                              (span / static_cast<double>(m)) * m)
                     : 1.0;
    // Solve (K + lambda I) alpha = targets.
    std::vector<double> kernel(m * m);
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < m; ++j) {
        const double d = centers[i] - centers[j];
        kernel[i * m + j] = std::exp(-gamma * d * d);
      }
      kernel[i * m + i] += kLambda;
    }
    SAFE_ASSIGN_OR_RETURN(std::vector<double> alpha,
                          SolveLinearSystem(std::move(kernel), targets));
    std::vector<double> params;
    params.push_back(static_cast<double>(m));
    params.push_back(gamma);
    params.insert(params.end(), centers.begin(), centers.end());
    params.insert(params.end(), alpha.begin(), alpha.end());
    return params;
  }

  double Apply(const double* in,
               const std::vector<double>& params) const override {
    const size_t m = static_cast<size_t>(params[0]);
    const double gamma = params[1];
    const double* centers = params.data() + 2;
    const double* alpha = params.data() + 2 + m;
    double prediction = 0.0;
    for (size_t k = 0; k < m; ++k) {
      const double d = in[0] - centers[k];
      prediction += alpha[k] * std::exp(-gamma * d * d);
    }
    return in[1] - prediction;
  }
};

// ---------------------------------------------------------------------------
// Ternary conditional: a > 0 ? b : c.

class CondOp : public Operator {
 public:
  std::string name() const override { return "cond"; }
  size_t arity() const override { return 3; }
  bool commutative() const override { return false; }
  double Apply(const double* in, const std::vector<double>&) const override {
    if (std::isnan(in[0])) return kNaN;
    return in[0] > 0.0 ? in[1] : in[2];
  }
};

void RegisterArithmetic(OperatorRegistry* registry) {
  SAFE_CHECK(registry->Register(std::make_shared<AddOp>()).ok());
  SAFE_CHECK(registry->Register(std::make_shared<SubOp>()).ok());
  SAFE_CHECK(registry->Register(std::make_shared<MulOp>()).ok());
  SAFE_CHECK(registry->Register(std::make_shared<DivOp>()).ok());
}

}  // namespace

Result<std::vector<double>> ApplyOperator(
    const Operator& op, const std::vector<double>& params,
    const std::vector<const std::vector<double>*>& parents) {
  if (parents.size() != op.arity()) {
    return Status::InvalidArgument(
        "operator '" + op.name() + "' expects " +
        std::to_string(op.arity()) + " parents, got " +
        std::to_string(parents.size()));
  }
  const size_t rows = parents[0]->size();
  for (const auto* parent : parents) {
    if (parent->size() != rows) {
      return Status::InvalidArgument("operator parents differ in length");
    }
  }
  std::vector<double> out(rows);
  std::vector<double> inputs(op.arity());
  for (size_t r = 0; r < rows; ++r) {
    bool missing = false;
    for (size_t p = 0; p < parents.size(); ++p) {
      inputs[p] = (*parents[p])[r];
      // Group-by tolerates a missing key (it has a missing bin); every
      // other operator propagates NaN.
      if (std::isnan(inputs[p])) missing = true;
    }
    if (missing && !op.handles_missing()) {
      out[r] = kNaN;
    } else {
      out[r] = op.Apply(inputs.data(), params);
    }
  }
  return out;
}

OperatorRegistry OperatorRegistry::Empty() { return OperatorRegistry(); }

OperatorRegistry OperatorRegistry::Arithmetic() {
  OperatorRegistry registry;
  RegisterArithmetic(&registry);
  return registry;
}

OperatorRegistry OperatorRegistry::Default() {
  OperatorRegistry registry;
  RegisterArithmetic(&registry);
  SAFE_CHECK(registry.Register(std::make_shared<AndOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<OrOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<XorOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<LogOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<SqrtOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<SquareOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<SigmoidOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<TanhOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<RoundOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<AbsOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<ZscoreOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<MinMaxOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<DiscretizeOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<GroupByMeanOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<GroupByMaxOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<GroupByMinOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<GroupByStdOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<GroupByCountOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<RidgeOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<KernelRidgeOp>()).ok());
  SAFE_CHECK(registry.Register(std::make_shared<CondOp>()).ok());
  return registry;
}

Status OperatorRegistry::Register(std::shared_ptr<const Operator> op) {
  if (op == nullptr) {
    return Status::InvalidArgument("cannot register null operator");
  }
  const size_t arity = op->arity();
  if (arity < 1 || arity > 3) {
    return Status::InvalidArgument("operator arity must be 1..3");
  }
  auto [it, inserted] = ops_.emplace(op->name(), std::move(op));
  if (!inserted) {
    return Status::AlreadyExists("operator '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<const Operator>> OperatorRegistry::Find(
    const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("no operator named '" + name + "'");
  }
  return it->second;
}

std::vector<std::shared_ptr<const Operator>> OperatorRegistry::OfArity(
    size_t arity) const {
  std::vector<std::shared_ptr<const Operator>> out;
  for (const auto& [name, op] : ops_) {
    if (op->arity() == arity) out.push_back(op);
  }
  return out;
}

std::vector<std::string> OperatorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(ops_.size());
  for (const auto& [name, op] : ops_) names.push_back(name);
  return names;
}

}  // namespace safe
