#pragma once

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/result.h"

namespace safe {
namespace models {

/// \brief Hyper-parameters of the weighted Gini CART used by DT / RF /
/// ET / AdaBoost.
struct CartParams {
  size_t max_depth = 30;
  size_t min_samples_leaf = 1;
  size_t min_samples_split = 2;
  /// Per-node feature-subset size; 0 means all features (plain CART),
  /// sqrt(M) is the forest convention.
  size_t max_features = 0;
  /// Extra-Trees mode: one uniform-random threshold per candidate feature
  /// instead of an exhaustive scan.
  bool random_thresholds = false;
};

/// \brief A classification tree node; leaves carry P(y=1).
struct CartNode {
  int left = -1;
  int right = -1;
  int feature = -1;
  double threshold = 0.0;
  double proba = 0.5;
  /// Weighted Gini impurity decrease of this split (0 on leaves); the
  /// mean-decrease-in-impurity feature importance sums these.
  double gain = 0.0;

  bool is_leaf() const { return left < 0; }
};

/// \brief Weighted binary-classification CART with exact or randomized
/// split search. Inputs are imputed feature columns (no NaN) — forest
/// wrappers impute once and share columns across trees.
class CartTree {
 public:
  /// \param columns  column pointers, all of equal length.
  /// \param labels   binary labels per row.
  /// \param weights  per-row sample weights (AdaBoost reweighting).
  /// \param rows     rows to train on (bootstrap sample for RF).
  /// \param rng      used for feature subsets / random thresholds.
  [[nodiscard]] Status Fit(const std::vector<const std::vector<double>*>& columns,
             const std::vector<double>& labels,
             const std::vector<double>& weights,
             const std::vector<size_t>& rows, const CartParams& params,
             Rng* rng);

  /// P(y=1) for one dense row.
  double PredictRowProba(const double* row) const;

  const std::vector<CartNode>& nodes() const { return nodes_; }

 private:
  std::vector<CartNode> nodes_;
};

}  // namespace models
}  // namespace safe
