#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/models/cart.h"
#include "src/models/classifier.h"

namespace safe {
namespace models {

/// \brief Shared mean-imputed column store for the CART family.
///
/// CART has no native missing handling (unlike the GBDT engine), so the
/// wrappers impute with training means, once, and share columns across
/// all trees of a forest.
class ImputedColumns {
 public:
  /// Learns means from `frame` and stores imputed copies of its columns.
  void FitMeans(const DataFrame& frame);

  /// Imputes a new frame with the *training* means.
  std::vector<std::vector<double>> Transform(const DataFrame& frame) const;

  /// Column pointers into the stored training columns.
  std::vector<const std::vector<double>*> TrainColumnPtrs() const;

  size_t num_columns() const { return means_.size(); }

 private:
  std::vector<double> means_;
  std::vector<std::vector<double>> train_columns_;
};

/// \brief CART decision tree (paper's DT; scikit-learn
/// DecisionTreeClassifier analogue: unbounded depth, Gini).
class DecisionTreeClassifier : public Classifier {
 public:
  explicit DecisionTreeClassifier(uint64_t seed) : seed_(seed) {}
  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "Decision Tree"; }

 private:
  uint64_t seed_;
  ImputedColumns imputer_;
  CartTree tree_;
  bool fitted_ = false;
};

/// \brief Bagged forest base for RF and ET.
class ForestClassifier : public Classifier {
 public:
  ForestClassifier(uint64_t seed, size_t num_trees, bool bootstrap,
                   bool random_thresholds)
      : seed_(seed),
        num_trees_(num_trees),
        bootstrap_(bootstrap),
        random_thresholds_(random_thresholds) {}

  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;

  /// Mean-decrease-in-impurity importances, normalized to sum to 1
  /// (the importance score used for the paper's Fig. 3).
  std::vector<double> FeatureImportances() const;

 protected:
  uint64_t seed_;
  size_t num_trees_;
  bool bootstrap_;
  bool random_thresholds_;
  ImputedColumns imputer_;
  std::vector<CartTree> trees_;
  bool fitted_ = false;
};

/// \brief Random Forest (paper's RF): bootstrap + sqrt(M) feature subsets.
class RandomForestClassifier : public ForestClassifier {
 public:
  explicit RandomForestClassifier(uint64_t seed, size_t num_trees = 100)
      : ForestClassifier(seed, num_trees, /*bootstrap=*/true,
                         /*random_thresholds=*/false) {}
  std::string name() const override { return "Random Forest"; }
};

/// \brief Extremely randomized trees (paper's ET): full sample + random
/// thresholds.
class ExtraTreesClassifier : public ForestClassifier {
 public:
  explicit ExtraTreesClassifier(uint64_t seed, size_t num_trees = 100)
      : ForestClassifier(seed, num_trees, /*bootstrap=*/false,
                         /*random_thresholds=*/true) {}
  std::string name() const override { return "Extra Trees"; }
};

/// \brief AdaBoost (paper's AB): SAMME with depth-1 stumps.
class AdaBoostClassifier : public Classifier {
 public:
  explicit AdaBoostClassifier(uint64_t seed, size_t num_rounds = 50)
      : seed_(seed), num_rounds_(num_rounds) {}
  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "AdaBoost"; }

 private:
  uint64_t seed_;
  size_t num_rounds_;
  ImputedColumns imputer_;
  std::vector<CartTree> stumps_;
  std::vector<double> alphas_;
  bool fitted_ = false;
};

}  // namespace models
}  // namespace safe
