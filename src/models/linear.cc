#include "src/models/linear.h"

#include <cmath>

#include "src/common/random.h"
#include "src/gbdt/loss.h"

namespace safe {
namespace models {

namespace {

Status ValidateTrain(const Dataset& train) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("linear model: empty training data");
  }
  if (train.y == nullptr || train.y->size() != train.num_rows()) {
    return Status::InvalidArgument("linear model: label size mismatch");
  }
  return Status::OK();
}

Status ValidatePredict(bool fitted, size_t expected_cols,
                       const DataFrame& x) {
  if (!fitted) {
    return Status::InvalidArgument("linear model: predict before fit");
  }
  if (x.num_columns() != expected_cols) {
    return Status::InvalidArgument(
        "linear model: expected " + std::to_string(expected_cols) +
        " features, got " + std::to_string(x.num_columns()));
  }
  return Status::OK();
}

std::vector<double> Margins(const DenseMatrix& x,
                            const std::vector<double>& w, double b) {
  std::vector<double> out(x.rows, b);
  for (size_t r = 0; r < x.rows; ++r) {
    const double* row = x.row(r);
    double dot = 0.0;
    for (size_t c = 0; c < x.cols; ++c) dot += row[c] * w[c];
    out[r] += dot;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// LogisticRegressionClassifier

Status LogisticRegressionClassifier::Fit(const Dataset& train) {
  SAFE_RETURN_NOT_OK(ValidateTrain(train));
  scaler_ = StandardScaler::Fit(train.x);
  DenseMatrix x = scaler_.Transform(train.x);
  const auto& y = train.labels();
  const size_t n = x.rows;
  const size_t m = x.cols;

  weights_.assign(m, 0.0);
  bias_ = 0.0;
  std::vector<double> vel_w(m, 0.0);
  double vel_b = 0.0;
  const double momentum = 0.9;
  const double lr = 0.5;
  const double lambda = l2_ / static_cast<double>(n);

  std::vector<double> grad_w(m);
  for (size_t iter = 0; iter < max_iters_; ++iter) {
    std::fill(grad_w.begin(), grad_w.end(), 0.0);
    double grad_b = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double* row = x.row(r);
      double margin = bias_;
      for (size_t c = 0; c < m; ++c) margin += row[c] * weights_[c];
      const double residual = gbdt::Sigmoid(margin) - y[r];
      for (size_t c = 0; c < m; ++c) grad_w[c] += residual * row[c];
      grad_b += residual;
    }
    const double inv_n = 1.0 / static_cast<double>(n);
    double grad_norm = 0.0;
    for (size_t c = 0; c < m; ++c) {
      grad_w[c] = grad_w[c] * inv_n + lambda * weights_[c];
      grad_norm += grad_w[c] * grad_w[c];
    }
    grad_b *= inv_n;
    grad_norm += grad_b * grad_b;

    for (size_t c = 0; c < m; ++c) {
      vel_w[c] = momentum * vel_w[c] - lr * grad_w[c];
      weights_[c] += vel_w[c];
    }
    vel_b = momentum * vel_b - lr * grad_b;
    bias_ += vel_b;

    if (grad_norm < 1e-12) break;  // converged
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> LogisticRegressionClassifier::PredictScores(
    const DataFrame& x) const {
  SAFE_RETURN_NOT_OK(ValidatePredict(fitted_, scaler_.num_columns(), x));
  DenseMatrix dense = scaler_.Transform(x);
  std::vector<double> margins = Margins(dense, weights_, bias_);
  for (double& v : margins) v = gbdt::Sigmoid(v);
  return margins;
}

// ---------------------------------------------------------------------------
// LinearSvmClassifier

Status LinearSvmClassifier::Fit(const Dataset& train) {
  SAFE_RETURN_NOT_OK(ValidateTrain(train));
  scaler_ = StandardScaler::Fit(train.x);
  DenseMatrix x = scaler_.Transform(train.x);
  const auto& y = train.labels();
  const size_t n = x.rows;
  const size_t m = x.cols;

  weights_.assign(m, 0.0);
  bias_ = 0.0;
  Rng rng(seed_);

  // Pegasos: eta_t = 1 / (lambda * t), one pass = n stochastic steps.
  size_t t = 0;
  for (size_t epoch = 0; epoch < epochs_; ++epoch) {
    for (size_t step = 0; step < n; ++step) {
      ++t;
      const size_t r = static_cast<size_t>(rng.NextUint64Below(n));
      const double* row = x.row(r);
      const double target = y[r] > 0.5 ? 1.0 : -1.0;
      double margin = bias_;
      for (size_t c = 0; c < m; ++c) margin += row[c] * weights_[c];
      const double eta = 1.0 / (reg_lambda_ * static_cast<double>(t));
      // L2 shrink.
      const double shrink = 1.0 - eta * reg_lambda_;
      for (size_t c = 0; c < m; ++c) weights_[c] *= shrink;
      if (target * margin < 1.0) {
        for (size_t c = 0; c < m; ++c) weights_[c] += eta * target * row[c];
        bias_ += eta * target;
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> LinearSvmClassifier::PredictScores(
    const DataFrame& x) const {
  SAFE_RETURN_NOT_OK(ValidatePredict(fitted_, scaler_.num_columns(), x));
  DenseMatrix dense = scaler_.Transform(x);
  return Margins(dense, weights_, bias_);
}

}  // namespace models
}  // namespace safe
