#include "src/models/cart.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace safe {
namespace models {

namespace {

/// Weighted Gini impurity of a (pos, total) weight mass.
double Gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 2.0 * p * (1.0 - p);
}

struct BestSplit {
  double score = -1.0;  // weighted impurity decrease
  int feature = -1;
  double threshold = 0.0;
  bool valid() const { return feature >= 0; }
};

}  // namespace

Status CartTree::Fit(const std::vector<const std::vector<double>*>& columns,
                     const std::vector<double>& labels,
                     const std::vector<double>& weights,
                     const std::vector<size_t>& rows,
                     const CartParams& params, Rng* rng) {
  if (columns.empty() || rows.empty()) {
    return Status::InvalidArgument("cart: empty input");
  }
  for (const auto* col : columns) {
    if (col == nullptr || col->size() != labels.size() ||
        labels.size() != weights.size()) {
      return Status::InvalidArgument("cart: column/label/weight mismatch");
    }
  }
  nodes_.clear();
  nodes_.emplace_back();

  struct Task {
    int node;
    size_t depth;
    std::vector<size_t> rows;
  };
  std::vector<Task> stack;
  stack.push_back(Task{0, 0, rows});

  const size_t num_features = columns.size();
  std::vector<size_t> feature_pool(num_features);
  for (size_t f = 0; f < num_features; ++f) feature_pool[f] = f;

  // Scratch for the exact scan.
  std::vector<std::pair<double, size_t>> sorted;

  while (!stack.empty()) {
    Task task = std::move(stack.back());
    stack.pop_back();

    double pos_w = 0.0;
    double total_w = 0.0;
    for (size_t r : task.rows) {
      total_w += weights[r];
      if (labels[r] > 0.5) pos_w += weights[r];
    }
    CartNode& node_ref = nodes_[static_cast<size_t>(task.node)];
    node_ref.proba = total_w > 0.0 ? pos_w / total_w : 0.5;

    const bool pure = pos_w <= 0.0 || pos_w >= total_w;
    if (pure || task.depth >= params.max_depth ||
        task.rows.size() < params.min_samples_split) {
      continue;  // stays a leaf
    }

    // Candidate features for this node.
    std::vector<size_t> candidates;
    if (params.max_features == 0 || params.max_features >= num_features) {
      candidates = feature_pool;
    } else {
      candidates =
          rng->SampleWithoutReplacement(num_features, params.max_features);
    }

    const double parent_impurity = Gini(pos_w, total_w) * total_w;
    BestSplit best;

    for (size_t f : candidates) {
      const auto& col = *columns[f];
      if (params.random_thresholds) {
        // Extra-Trees: a single uniform threshold in the node's range.
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (size_t r : task.rows) {
          lo = std::min(lo, col[r]);
          hi = std::max(hi, col[r]);
        }
        if (!(hi > lo)) continue;
        const double threshold = rng->NextUniform(lo, hi);
        double lp = 0.0;
        double lt = 0.0;
        size_t left_n = 0;
        for (size_t r : task.rows) {
          if (col[r] <= threshold) {
            lt += weights[r];
            if (labels[r] > 0.5) lp += weights[r];
            ++left_n;
          }
        }
        const size_t right_n = task.rows.size() - left_n;
        if (left_n < params.min_samples_leaf ||
            right_n < params.min_samples_leaf) {
          continue;
        }
        const double score = parent_impurity - Gini(lp, lt) * lt -
                             Gini(pos_w - lp, total_w - lt) * (total_w - lt);
        if (score > best.score) {
          best = BestSplit{score, static_cast<int>(f), threshold};
        }
      } else {
        // Exact scan over sorted values; thresholds at value midpoints.
        sorted.clear();
        sorted.reserve(task.rows.size());
        for (size_t r : task.rows) sorted.emplace_back(col[r], r);
        std::sort(sorted.begin(), sorted.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        double lp = 0.0;
        double lt = 0.0;
        for (size_t i = 0; i + 1 < sorted.size(); ++i) {
          const size_t r = sorted[i].second;
          lt += weights[r];
          if (labels[r] > 0.5) lp += weights[r];
          if (sorted[i].first == sorted[i + 1].first) continue;  // tie block
          const size_t left_n = i + 1;
          const size_t right_n = sorted.size() - left_n;
          if (left_n < params.min_samples_leaf ||
              right_n < params.min_samples_leaf) {
            continue;
          }
          const double score =
              parent_impurity - Gini(lp, lt) * lt -
              Gini(pos_w - lp, total_w - lt) * (total_w - lt);
          if (score > best.score) {
            const double threshold =
                0.5 * (sorted[i].first + sorted[i + 1].first);
            best = BestSplit{score, static_cast<int>(f), threshold};
          }
        }
      }
    }

    if (!best.valid() || best.score <= 1e-12) continue;

    std::vector<size_t> left_rows;
    std::vector<size_t> right_rows;
    const auto& col = *columns[static_cast<size_t>(best.feature)];
    for (size_t r : task.rows) {
      (col[r] <= best.threshold ? left_rows : right_rows).push_back(r);
    }
    if (left_rows.empty() || right_rows.empty()) continue;

    const int left_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    const int right_index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    CartNode& node = nodes_[static_cast<size_t>(task.node)];
    node.left = left_index;
    node.right = right_index;
    node.feature = best.feature;
    node.threshold = best.threshold;
    node.gain = best.score;

    stack.push_back(Task{right_index, task.depth + 1, std::move(right_rows)});
    stack.push_back(Task{left_index, task.depth + 1, std::move(left_rows)});
  }
  return Status::OK();
}

double CartTree::PredictRowProba(const double* row) const {
  if (nodes_.empty()) return 0.5;
  int idx = 0;
  while (!nodes_[static_cast<size_t>(idx)].is_leaf()) {
    const CartNode& node = nodes_[static_cast<size_t>(idx)];
    idx = (row[node.feature] <= node.threshold) ? node.left : node.right;
  }
  return nodes_[static_cast<size_t>(idx)].proba;
}

}  // namespace models
}  // namespace safe
