#include "src/models/mlp.h"

#include <algorithm>
#include <cmath>

#include "src/common/random.h"
#include "src/gbdt/loss.h"

namespace safe {
namespace models {

namespace {

/// Adam state for one parameter vector.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;

  explicit AdamState(size_t n) : m(n, 0.0), v(n, 0.0) {}

  void Step(std::vector<double>* params, const std::vector<double>& grad,
            double lr, size_t t) {
    constexpr double kBeta1 = 0.9;
    constexpr double kBeta2 = 0.999;
    constexpr double kEps = 1e-8;
    const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(t));
    for (size_t i = 0; i < params->size(); ++i) {
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grad[i];
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
      (*params)[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + kEps);
    }
  }
};

}  // namespace

Status MlpClassifier::Fit(const Dataset& train) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("mlp: empty training data");
  }
  if (train.y == nullptr || train.y->size() != train.num_rows()) {
    return Status::InvalidArgument("mlp: label size mismatch");
  }
  if (hidden_ == 0 || epochs_ == 0 || batch_size_ == 0) {
    return Status::InvalidArgument("mlp: hidden/epochs/batch must be > 0");
  }
  scaler_ = StandardScaler::Fit(train.x);
  DenseMatrix x = scaler_.Transform(train.x);
  const auto& y = train.labels();
  const size_t n = x.rows;
  inputs_ = x.cols;

  Rng rng(seed_);
  // He initialization for the ReLU layer.
  const double scale1 = std::sqrt(2.0 / static_cast<double>(inputs_));
  const double scale2 = std::sqrt(2.0 / static_cast<double>(hidden_));
  w1_.resize(hidden_ * inputs_);
  for (double& w : w1_) w = scale1 * rng.NextGaussian();
  b1_.assign(hidden_, 0.0);
  w2_.resize(hidden_);
  for (double& w : w2_) w = scale2 * rng.NextGaussian();
  b2_ = 0.0;

  AdamState adam_w1(w1_.size());
  AdamState adam_b1(b1_.size());
  AdamState adam_w2(w2_.size());
  AdamState adam_b2(1);

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<double> grad_w1(w1_.size());
  std::vector<double> grad_b1(b1_.size());
  std::vector<double> grad_w2(w2_.size());
  std::vector<double> grad_b2(1);
  std::vector<double> hidden_act(hidden_);
  size_t adam_t = 0;

  for (size_t epoch = 0; epoch < epochs_; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += batch_size_) {
      const size_t end = std::min(n, start + batch_size_);
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      std::fill(grad_w1.begin(), grad_w1.end(), 0.0);
      std::fill(grad_b1.begin(), grad_b1.end(), 0.0);
      std::fill(grad_w2.begin(), grad_w2.end(), 0.0);
      grad_b2[0] = 0.0;

      for (size_t i = start; i < end; ++i) {
        const size_t r = order[i];
        const double* row = x.row(r);
        // Forward.
        for (size_t h = 0; h < hidden_; ++h) {
          double z = b1_[h];
          const double* wrow = w1_.data() + h * inputs_;
          for (size_t c = 0; c < inputs_; ++c) z += wrow[c] * row[c];
          hidden_act[h] = z > 0.0 ? z : 0.0;
        }
        double logit = b2_;
        for (size_t h = 0; h < hidden_; ++h) {
          logit += w2_[h] * hidden_act[h];
        }
        const double p = gbdt::Sigmoid(logit);
        const double dlogit = (p - y[r]) * inv_batch;
        // Backward.
        grad_b2[0] += dlogit;
        for (size_t h = 0; h < hidden_; ++h) {
          grad_w2[h] += dlogit * hidden_act[h];
          if (hidden_act[h] > 0.0) {
            const double dh = dlogit * w2_[h];
            grad_b1[h] += dh;
            double* gw = grad_w1.data() + h * inputs_;
            for (size_t c = 0; c < inputs_; ++c) gw[c] += dh * row[c];
          }
        }
      }
      ++adam_t;
      adam_w1.Step(&w1_, grad_w1, learning_rate_, adam_t);
      adam_b1.Step(&b1_, grad_b1, learning_rate_, adam_t);
      adam_w2.Step(&w2_, grad_w2, learning_rate_, adam_t);
      std::vector<double> b2_vec{b2_};
      adam_b2.Step(&b2_vec, grad_b2, learning_rate_, adam_t);
      b2_ = b2_vec[0];
    }
  }
  fitted_ = true;
  return Status::OK();
}

std::vector<double> MlpClassifier::Forward(const double* row) const {
  std::vector<double> hidden(hidden_);
  for (size_t h = 0; h < hidden_; ++h) {
    double z = b1_[h];
    const double* wrow = w1_.data() + h * inputs_;
    for (size_t c = 0; c < inputs_; ++c) z += wrow[c] * row[c];
    hidden[h] = z > 0.0 ? z : 0.0;
  }
  return hidden;
}

Result<std::vector<double>> MlpClassifier::PredictScores(
    const DataFrame& x) const {
  if (!fitted_) {
    return Status::InvalidArgument("mlp: predict before fit");
  }
  if (x.num_columns() != scaler_.num_columns()) {
    return Status::InvalidArgument(
        "mlp: expected " + std::to_string(scaler_.num_columns()) +
        " features, got " + std::to_string(x.num_columns()));
  }
  DenseMatrix dense = scaler_.Transform(x);
  std::vector<double> scores(dense.rows);
  for (size_t r = 0; r < dense.rows; ++r) {
    const std::vector<double> hidden = Forward(dense.row(r));
    double logit = b2_;
    for (size_t h = 0; h < hidden_; ++h) logit += w2_[h] * hidden[h];
    scores[r] = gbdt::Sigmoid(logit);
  }
  return scores;
}

}  // namespace models
}  // namespace safe
