#include "src/models/classifier.h"
#include "src/models/knn.h"
#include "src/models/linear.h"
#include "src/models/mlp.h"
#include "src/models/tree_models.h"
#include "src/models/xgb.h"

namespace safe {
namespace models {

const std::vector<ClassifierKind>& AllClassifierKinds() {
  static const std::vector<ClassifierKind> kKinds = {
      ClassifierKind::kAdaBoost,           ClassifierKind::kDecisionTree,
      ClassifierKind::kExtraTrees,         ClassifierKind::kKnn,
      ClassifierKind::kLogisticRegression, ClassifierKind::kMlp,
      ClassifierKind::kRandomForest,       ClassifierKind::kLinearSvm,
      ClassifierKind::kXgboost,
  };
  return kKinds;
}

const char* ClassifierShortName(ClassifierKind kind) {
  switch (kind) {
    case ClassifierKind::kAdaBoost:
      return "AB";
    case ClassifierKind::kDecisionTree:
      return "DT";
    case ClassifierKind::kExtraTrees:
      return "ET";
    case ClassifierKind::kKnn:
      return "kNN";
    case ClassifierKind::kLogisticRegression:
      return "LR";
    case ClassifierKind::kMlp:
      return "MLP";
    case ClassifierKind::kRandomForest:
      return "RF";
    case ClassifierKind::kLinearSvm:
      return "SVM";
    case ClassifierKind::kXgboost:
      return "XGB";
  }
  return "?";
}

std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind,
                                           uint64_t seed) {
  switch (kind) {
    case ClassifierKind::kAdaBoost:
      return std::make_unique<AdaBoostClassifier>(seed);
    case ClassifierKind::kDecisionTree:
      return std::make_unique<DecisionTreeClassifier>(seed);
    case ClassifierKind::kExtraTrees:
      return std::make_unique<ExtraTreesClassifier>(seed);
    case ClassifierKind::kKnn:
      return std::make_unique<KnnClassifier>(seed);
    case ClassifierKind::kLogisticRegression:
      return std::make_unique<LogisticRegressionClassifier>(seed);
    case ClassifierKind::kMlp:
      return std::make_unique<MlpClassifier>(seed);
    case ClassifierKind::kRandomForest:
      return std::make_unique<RandomForestClassifier>(seed);
    case ClassifierKind::kLinearSvm:
      return std::make_unique<LinearSvmClassifier>(seed);
    case ClassifierKind::kXgboost:
      return std::make_unique<XgbClassifier>(seed);
  }
  return nullptr;
}

}  // namespace models
}  // namespace safe
