#pragma once

#include <cstddef>
#include <vector>

#include "src/dataframe/dataframe.h"

namespace safe {
namespace models {

/// \brief Row-major dense matrix used by the distance/linear/neural
/// models, which want contiguous rows rather than the DataFrame's
/// contiguous columns.
struct DenseMatrix {
  std::vector<double> values;  // rows * cols
  size_t rows = 0;
  size_t cols = 0;

  double at(size_t r, size_t c) const { return values[r * cols + c]; }
  double* row(size_t r) { return values.data() + r * cols; }
  const double* row(size_t r) const { return values.data() + r * cols; }
};

/// \brief Standardizer with mean imputation.
///
/// Learns per-column mean/std on the training frame; Transform maps each
/// cell to (v - mean)/std with NaN imputed to the mean (i.e., 0 after
/// scaling). Constant columns scale to 0. This mirrors what a
/// scikit-learn pipeline (SimpleImputer + StandardScaler) does in front
/// of kNN / LR / MLP / SVM.
class StandardScaler {
 public:
  /// Learns means and stds from `frame`.
  static StandardScaler Fit(const DataFrame& frame);

  /// Applies the learned scaling; column count must match Fit.
  DenseMatrix Transform(const DataFrame& frame) const;

  /// Scales a single dense row in place (NaN -> 0 post-scaling).
  void TransformRow(std::vector<double>* row) const;

  size_t num_columns() const { return means_.size(); }

 private:
  std::vector<double> means_;
  std::vector<double> inv_stds_;
};

}  // namespace models
}  // namespace safe
