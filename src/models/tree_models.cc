#include "src/models/tree_models.h"

#include <algorithm>
#include <cmath>

#include "src/stats/descriptive.h"

namespace safe {
namespace models {

namespace {

Status ValidateTrain(const Dataset& train) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("tree model: empty training data");
  }
  if (train.y == nullptr || train.y->size() != train.num_rows()) {
    return Status::InvalidArgument("tree model: label size mismatch");
  }
  return Status::OK();
}

Status ValidatePredict(bool fitted, size_t expected_cols,
                       const DataFrame& x) {
  if (!fitted) {
    return Status::InvalidArgument("tree model: predict before fit");
  }
  if (x.num_columns() != expected_cols) {
    return Status::InvalidArgument(
        "tree model: expected " + std::to_string(expected_cols) +
        " features, got " + std::to_string(x.num_columns()));
  }
  return Status::OK();
}

/// Traverses a CART over imputed *columns* for row r.
double PredictFromColumns(const CartTree& tree,
                          const std::vector<std::vector<double>>& columns,
                          size_t r) {
  const auto& nodes = tree.nodes();
  if (nodes.empty()) return 0.5;
  int idx = 0;
  while (!nodes[static_cast<size_t>(idx)].is_leaf()) {
    const CartNode& node = nodes[static_cast<size_t>(idx)];
    idx = (columns[static_cast<size_t>(node.feature)][r] <= node.threshold)
              ? node.left
              : node.right;
  }
  return nodes[static_cast<size_t>(idx)].proba;
}

}  // namespace

void ImputedColumns::FitMeans(const DataFrame& frame) {
  means_.resize(frame.num_columns());
  train_columns_.resize(frame.num_columns());
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const auto& values = frame.column(c).values();
    means_[c] = Mean(values);
    auto& out = train_columns_[c];
    out = values;
    for (double& v : out) {
      if (std::isnan(v)) v = means_[c];
    }
  }
}

std::vector<std::vector<double>> ImputedColumns::Transform(
    const DataFrame& frame) const {
  std::vector<std::vector<double>> out(frame.num_columns());
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    out[c] = frame.column(c).values();
    for (double& v : out[c]) {
      if (std::isnan(v)) v = means_[c];
    }
  }
  return out;
}

std::vector<const std::vector<double>*> ImputedColumns::TrainColumnPtrs()
    const {
  std::vector<const std::vector<double>*> ptrs;
  ptrs.reserve(train_columns_.size());
  for (const auto& col : train_columns_) ptrs.push_back(&col);
  return ptrs;
}

// ---------------------------------------------------------------------------
// DecisionTreeClassifier

Status DecisionTreeClassifier::Fit(const Dataset& train) {
  SAFE_RETURN_NOT_OK(ValidateTrain(train));
  imputer_.FitMeans(train.x);
  const size_t n = train.num_rows();
  std::vector<double> weights(n, 1.0);
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;
  CartParams params;  // defaults: deep exact tree
  Rng rng(seed_);
  SAFE_RETURN_NOT_OK(tree_.Fit(imputer_.TrainColumnPtrs(), train.labels(),
                               weights, rows, params, &rng));
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> DecisionTreeClassifier::PredictScores(
    const DataFrame& x) const {
  SAFE_RETURN_NOT_OK(ValidatePredict(fitted_, imputer_.num_columns(), x));
  auto columns = imputer_.Transform(x);
  std::vector<double> scores(x.num_rows());
  for (size_t r = 0; r < x.num_rows(); ++r) {
    scores[r] = PredictFromColumns(tree_, columns, r);
  }
  return scores;
}

// ---------------------------------------------------------------------------
// ForestClassifier (RF / ET)

Status ForestClassifier::Fit(const Dataset& train) {
  SAFE_RETURN_NOT_OK(ValidateTrain(train));
  if (num_trees_ == 0) {
    return Status::InvalidArgument("forest: num_trees must be > 0");
  }
  imputer_.FitMeans(train.x);
  const size_t n = train.num_rows();
  const size_t m = train.x.num_columns();

  CartParams params;
  params.max_features = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(static_cast<double>(m))));
  params.random_thresholds = random_thresholds_;

  std::vector<double> weights(n, 1.0);
  auto column_ptrs = imputer_.TrainColumnPtrs();

  trees_.assign(num_trees_, CartTree());
  Rng seeder(seed_);
  Status failure;
  for (size_t t = 0; t < num_trees_; ++t) {
    Rng rng = seeder.Fork();
    std::vector<size_t> rows(n);
    if (bootstrap_) {
      for (size_t i = 0; i < n; ++i) {
        rows[i] = static_cast<size_t>(rng.NextUint64Below(n));
      }
    } else {
      for (size_t i = 0; i < n; ++i) rows[i] = i;
    }
    Status st = trees_[t].Fit(column_ptrs, train.labels(), weights, rows,
                              params, &rng);
    if (!st.ok()) failure = st;
  }
  SAFE_RETURN_NOT_OK(failure);
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> ForestClassifier::PredictScores(
    const DataFrame& x) const {
  SAFE_RETURN_NOT_OK(ValidatePredict(fitted_, imputer_.num_columns(), x));
  auto columns = imputer_.Transform(x);
  std::vector<double> scores(x.num_rows(), 0.0);
  for (const auto& tree : trees_) {
    for (size_t r = 0; r < x.num_rows(); ++r) {
      scores[r] += PredictFromColumns(tree, columns, r);
    }
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& s : scores) s *= inv;
  return scores;
}

std::vector<double> ForestClassifier::FeatureImportances() const {
  std::vector<double> importances(imputer_.num_columns(), 0.0);
  for (const auto& tree : trees_) {
    for (const auto& node : tree.nodes()) {
      if (!node.is_leaf()) {
        importances[static_cast<size_t>(node.feature)] += node.gain;
      }
    }
  }
  double total = 0.0;
  for (double v : importances) total += v;
  if (total > 0.0) {
    for (double& v : importances) v /= total;
  }
  return importances;
}

// ---------------------------------------------------------------------------
// AdaBoostClassifier (SAMME, decision stumps)

Status AdaBoostClassifier::Fit(const Dataset& train) {
  SAFE_RETURN_NOT_OK(ValidateTrain(train));
  if (num_rounds_ == 0) {
    return Status::InvalidArgument("adaboost: num_rounds must be > 0");
  }
  imputer_.FitMeans(train.x);
  stumps_.clear();
  alphas_.clear();

  const size_t n = train.num_rows();
  const auto& labels = train.labels();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  std::vector<size_t> rows(n);
  for (size_t i = 0; i < n; ++i) rows[i] = i;

  CartParams params;
  params.max_depth = 1;
  auto column_ptrs = imputer_.TrainColumnPtrs();
  Rng rng(seed_);

  for (size_t round = 0; round < num_rounds_; ++round) {
    CartTree stump;
    SAFE_RETURN_NOT_OK(
        stump.Fit(column_ptrs, labels, weights, rows, params, &rng));

    // Weighted error of the hard prediction over the training columns.
    double err = 0.0;
    std::vector<char> wrong(n);
    for (size_t i = 0; i < n; ++i) {
      double proba = 0.5;
      {
        const auto& nodes = stump.nodes();
        int idx = 0;
        while (!nodes[static_cast<size_t>(idx)].is_leaf()) {
          const CartNode& node = nodes[static_cast<size_t>(idx)];
          idx = ((*column_ptrs[static_cast<size_t>(node.feature)])[i] <=
                 node.threshold)
                    ? node.left
                    : node.right;
        }
        proba = nodes[static_cast<size_t>(idx)].proba;
      }
      const bool predicted_pos = proba > 0.5;
      const bool is_pos = labels[i] > 0.5;
      wrong[i] = (predicted_pos != is_pos) ? 1 : 0;
      if (wrong[i]) err += weights[i];
    }

    if (err <= 1e-12) {
      // Perfect stump: dominate the vote and stop.
      stumps_.push_back(std::move(stump));
      alphas_.push_back(10.0);
      break;
    }
    if (err >= 0.5) {
      // No better than chance; SAMME stops here.
      if (stumps_.empty()) {
        // Keep one stump so the model is usable (predicts priors).
        stumps_.push_back(std::move(stump));
        alphas_.push_back(0.0);
      }
      break;
    }
    const double alpha = std::log((1.0 - err) / err);
    for (size_t i = 0; i < n; ++i) {
      if (wrong[i]) weights[i] *= std::exp(alpha);
    }
    double total = 0.0;
    for (double w : weights) total += w;
    for (double& w : weights) w /= total;

    stumps_.push_back(std::move(stump));
    alphas_.push_back(alpha);
  }
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> AdaBoostClassifier::PredictScores(
    const DataFrame& x) const {
  SAFE_RETURN_NOT_OK(ValidatePredict(fitted_, imputer_.num_columns(), x));
  auto columns = imputer_.Transform(x);
  std::vector<double> scores(x.num_rows(), 0.0);
  for (size_t t = 0; t < stumps_.size(); ++t) {
    for (size_t r = 0; r < x.num_rows(); ++r) {
      const double proba = PredictFromColumns(stumps_[t], columns, r);
      scores[r] += alphas_[t] * (proba > 0.5 ? 1.0 : -1.0);
    }
  }
  return scores;
}

}  // namespace models
}  // namespace safe
