#include "src/models/xgb.h"

namespace safe {
namespace models {

Status XgbClassifier::Fit(const Dataset& train) {
  auto result = gbdt::Booster::Fit(train, nullptr, params_);
  if (!result.ok()) return result.status();
  booster_ = std::move(*result);
  return Status::OK();
}

Result<std::vector<double>> XgbClassifier::PredictScores(
    const DataFrame& x) const {
  if (!booster_.has_value()) {
    return Status::InvalidArgument("xgb: predict before fit");
  }
  return booster_->PredictProba(x);
}

}  // namespace models
}  // namespace safe
