#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/dataframe/dataframe.h"

namespace safe {
namespace models {

/// \brief Common interface of the nine evaluation classifiers
/// (paper Table III). Scores are ranking scores: any monotone transform of
/// P(y=1|x), which is all AUC evaluation needs.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Trains on the dataset (binary labels). Implementations must be
  /// re-fittable: a second Fit discards the first model.
  [[nodiscard]] virtual Status Fit(const Dataset& train) = 0;

  /// Per-row ranking scores; requires a prior successful Fit and the same
  /// column count as training.
  [[nodiscard]] virtual Result<std::vector<double>> PredictScores(
      const DataFrame& x) const = 0;

  /// Human-readable name ("Random Forest").
  virtual std::string name() const = 0;
};

/// The paper's nine classifiers, in Table III row order.
enum class ClassifierKind {
  kAdaBoost,            // AB
  kDecisionTree,        // DT
  kExtraTrees,          // ET
  kKnn,                 // kNN
  kLogisticRegression,  // LR
  kMlp,                 // MLP
  kRandomForest,        // RF
  kLinearSvm,           // SVM
  kXgboost,             // XGB
};

/// All nine kinds, Table III order.
const std::vector<ClassifierKind>& AllClassifierKinds();

/// Paper abbreviation ("AB", "DT", ..., "XGB").
const char* ClassifierShortName(ClassifierKind kind);

/// Constructs a classifier with its library-default hyper-parameters
/// (chosen to mirror the scikit-learn / XGBoost defaults the paper uses,
/// scaled where noted in DESIGN.md).
std::unique_ptr<Classifier> MakeClassifier(ClassifierKind kind,
                                           uint64_t seed);

}  // namespace models
}  // namespace safe
