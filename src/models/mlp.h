#pragma once

#include <cstdint>
#include <vector>

#include "src/models/classifier.h"
#include "src/models/dense.h"

namespace safe {
namespace models {

/// \brief One-hidden-layer ReLU MLP with a sigmoid output, trained with
/// mini-batch Adam on log-loss over standardized features (paper's MLP;
/// scikit-learn MLPClassifier analogue, hidden size 100 scaled down to 64
/// for the single-core harness — see DESIGN.md Substitution 3).
class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(uint64_t seed, size_t hidden = 64,
                         size_t epochs = 30, size_t batch_size = 64,
                         double learning_rate = 1e-3)
      : seed_(seed),
        hidden_(hidden),
        epochs_(epochs),
        batch_size_(batch_size),
        learning_rate_(learning_rate) {}
  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "MLP"; }

 private:
  std::vector<double> Forward(const double* row) const;

  uint64_t seed_;
  size_t hidden_;
  size_t epochs_;
  size_t batch_size_;
  double learning_rate_;
  StandardScaler scaler_;
  // Parameters: w1 [hidden x in], b1 [hidden], w2 [hidden], b2.
  std::vector<double> w1_;
  std::vector<double> b1_;
  std::vector<double> w2_;
  double b2_ = 0.0;
  size_t inputs_ = 0;
  bool fitted_ = false;
};

}  // namespace models
}  // namespace safe
