#include "src/models/dense.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/stats/descriptive.h"

namespace safe {
namespace models {

namespace {
// Standardized values are winsorized at +/-kClip: constructed features
// (ratios especially) are heavy-tailed, and a single extreme row would
// otherwise dominate gradient steps in the fixed-step linear/NN trainers.
constexpr double kClip = 10.0;
}  // namespace

StandardScaler StandardScaler::Fit(const DataFrame& frame) {
  StandardScaler scaler;
  scaler.means_.resize(frame.num_columns());
  scaler.inv_stds_.resize(frame.num_columns());
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const auto& values = frame.column(c).values();
    scaler.means_[c] = Mean(values);
    const double sd = StdDev(values);
    scaler.inv_stds_[c] = sd > 1e-12 ? 1.0 / sd : 0.0;
  }
  return scaler;
}

DenseMatrix StandardScaler::Transform(const DataFrame& frame) const {
  SAFE_CHECK(frame.num_columns() == means_.size());
  DenseMatrix out;
  out.rows = frame.num_rows();
  out.cols = frame.num_columns();
  out.values.resize(out.rows * out.cols);
  for (size_t c = 0; c < out.cols; ++c) {
    const auto& values = frame.column(c).values();
    for (size_t r = 0; r < out.rows; ++r) {
      const double v = values[r];
      out.values[r * out.cols + c] =
          std::isnan(v)
              ? 0.0
              : std::clamp((v - means_[c]) * inv_stds_[c], -kClip, kClip);
    }
  }
  return out;
}

void StandardScaler::TransformRow(std::vector<double>* row) const {
  SAFE_CHECK(row->size() == means_.size());
  for (size_t c = 0; c < row->size(); ++c) {
    const double v = (*row)[c];
    (*row)[c] = std::isnan(v)
                    ? 0.0
                    : std::clamp((v - means_[c]) * inv_stds_[c], -kClip,
                                 kClip);
  }
}

}  // namespace models
}  // namespace safe
