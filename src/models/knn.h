#pragma once

#include <cstdint>

#include "src/models/classifier.h"
#include "src/models/dense.h"

namespace safe {
namespace models {

/// \brief k-nearest-neighbours on standardized features with brute-force
/// Euclidean search (paper's kNN; scikit-learn default k = 5). The score
/// is the positive fraction among the k neighbours, distance ties broken
/// by training order.
class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(uint64_t seed, size_t k = 5)
      : seed_(seed), k_(k) {}
  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "kNN"; }

 private:
  uint64_t seed_;
  size_t k_;
  StandardScaler scaler_;
  DenseMatrix train_x_;
  std::vector<double> train_y_;
  bool fitted_ = false;
};

}  // namespace models
}  // namespace safe
