#pragma once

#include <cstdint>
#include <optional>

#include "src/gbdt/booster.h"
#include "src/models/classifier.h"

namespace safe {
namespace models {

/// \brief Classifier adapter over the library's own GBDT engine
/// (paper's XGB).
class XgbClassifier : public Classifier {
 public:
  explicit XgbClassifier(uint64_t seed) {
    params_.seed = seed;
    params_.num_trees = 100;
    params_.max_depth = 4;
    params_.learning_rate = 0.3;
  }
  explicit XgbClassifier(gbdt::GbdtParams params)
      : params_(std::move(params)) {}

  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "XGBoost"; }

  /// The trained ensemble (valid after Fit).
  const gbdt::Booster& booster() const { return *booster_; }

 private:
  gbdt::GbdtParams params_;
  std::optional<gbdt::Booster> booster_;
};

}  // namespace models
}  // namespace safe
