#include "src/models/knn.h"

#include <algorithm>
#include <cmath>

#include "src/common/thread_pool.h"

namespace safe {
namespace models {

Status KnnClassifier::Fit(const Dataset& train) {
  if (train.num_rows() == 0 || train.x.num_columns() == 0) {
    return Status::InvalidArgument("knn: empty training data");
  }
  if (train.y == nullptr || train.y->size() != train.num_rows()) {
    return Status::InvalidArgument("knn: label size mismatch");
  }
  if (k_ == 0) {
    return Status::InvalidArgument("knn: k must be > 0");
  }
  scaler_ = StandardScaler::Fit(train.x);
  train_x_ = scaler_.Transform(train.x);
  train_y_ = train.labels();
  fitted_ = true;
  return Status::OK();
}

Result<std::vector<double>> KnnClassifier::PredictScores(
    const DataFrame& x) const {
  if (!fitted_) {
    return Status::InvalidArgument("knn: predict before fit");
  }
  if (x.num_columns() != scaler_.num_columns()) {
    return Status::InvalidArgument(
        "knn: expected " + std::to_string(scaler_.num_columns()) +
        " features, got " + std::to_string(x.num_columns()));
  }
  DenseMatrix query = scaler_.Transform(x);
  const size_t k = std::min(k_, train_x_.rows);
  std::vector<double> scores(query.rows, 0.0);

  ParallelFor(0, query.rows, [&](size_t q) {
    const double* qrow = query.row(q);
    // Max-heap of (distance, index) capped at k: O(n log k) per query.
    std::vector<std::pair<double, size_t>> heap;
    heap.reserve(k + 1);
    for (size_t t = 0; t < train_x_.rows; ++t) {
      const double* trow = train_x_.row(t);
      double dist = 0.0;
      for (size_t c = 0; c < train_x_.cols; ++c) {
        const double d = qrow[c] - trow[c];
        dist += d * d;
      }
      if (heap.size() < k) {
        heap.emplace_back(dist, t);
        std::push_heap(heap.begin(), heap.end());
      } else if (dist < heap.front().first) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = {dist, t};
        std::push_heap(heap.begin(), heap.end());
      }
    }
    double positives = 0.0;
    for (const auto& [dist, t] : heap) {
      if (train_y_[t] > 0.5) positives += 1.0;
    }
    scores[q] = positives / static_cast<double>(heap.size());
  });
  return scores;
}

}  // namespace models
}  // namespace safe
