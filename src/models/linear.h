#pragma once

#include <cstdint>
#include <vector>

#include "src/models/classifier.h"
#include "src/models/dense.h"

namespace safe {
namespace models {

/// \brief L2-regularized logistic regression trained with full-batch
/// gradient descent + momentum on standardized features (paper's LR;
/// scikit-learn LogisticRegression analogue with C = 1).
class LogisticRegressionClassifier : public Classifier {
 public:
  explicit LogisticRegressionClassifier(uint64_t seed, size_t max_iters = 300,
                                        double l2 = 1.0)
      : seed_(seed), max_iters_(max_iters), l2_(l2) {}
  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "Logistic Regression"; }

 private:
  uint64_t seed_;
  size_t max_iters_;
  double l2_;  // total L2 strength (sklearn C=1 -> lambda = 1)
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

/// \brief Linear SVM trained with Pegasos-style sub-gradient descent on
/// the hinge loss (paper's SVM). Scores are raw margins — a monotone
/// ranking, which is all the AUC evaluation needs.
class LinearSvmClassifier : public Classifier {
 public:
  explicit LinearSvmClassifier(uint64_t seed, size_t epochs = 20,
                               double reg_lambda = 1e-4)
      : seed_(seed), epochs_(epochs), reg_lambda_(reg_lambda) {}
  [[nodiscard]] Status Fit(const Dataset& train) override;
  [[nodiscard]] Result<std::vector<double>> PredictScores(const DataFrame& x) const override;
  std::string name() const override { return "Linear SVM"; }

 private:
  uint64_t seed_;
  size_t epochs_;
  double reg_lambda_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace models
}  // namespace safe
