#include "src/stats/chimerge.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace safe {

double ChiSquare(size_t pos_a, size_t total_a, size_t pos_b,
                 size_t total_b) {
  const double neg_a = static_cast<double>(total_a - pos_a);
  const double neg_b = static_cast<double>(total_b - pos_b);
  const double pa = static_cast<double>(pos_a);
  const double pb = static_cast<double>(pos_b);
  const double n = static_cast<double>(total_a + total_b);
  if (n == 0.0) return 0.0;
  const double pos_rate = (pa + pb) / n;
  const double neg_rate = (neg_a + neg_b) / n;
  double chi2 = 0.0;
  const double observed[2][2] = {{pa, neg_a}, {pb, neg_b}};
  const double row_totals[2] = {static_cast<double>(total_a),
                                static_cast<double>(total_b)};
  const double col_rates[2] = {pos_rate, neg_rate};
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      // Continuity pseudo-count keeps empty expectations finite.
      const double expected = std::max(row_totals[r] * col_rates[c], 0.5);
      const double diff = observed[r][c] - expected;
      chi2 += diff * diff / expected;
    }
  }
  return chi2;
}

Result<BinEdges> ChiMergeEdges(const std::vector<double>& values,
                               const std::vector<double>& labels,
                               const ChiMergeOptions& options) {
  if (values.size() != labels.size() || values.empty()) {
    return Status::InvalidArgument("chimerge: size mismatch or empty");
  }
  if (options.max_bins < 2) {
    return Status::InvalidArgument("chimerge: max_bins must be >= 2");
  }
  SAFE_ASSIGN_OR_RETURN(BinEdges initial,
                        EqualFrequencyEdges(values, options.initial_bins));

  struct Interval {
    double upper_edge;  // +inf for the last interval
    size_t positives = 0;
    size_t total = 0;
  };
  std::vector<Interval> intervals(initial.edges.size() + 1);
  for (size_t b = 0; b < initial.edges.size(); ++b) {
    intervals[b].upper_edge = initial.edges[b];
  }
  intervals.back().upper_edge = std::numeric_limits<double>::infinity();

  for (size_t r = 0; r < values.size(); ++r) {
    if (std::isnan(values[r])) continue;  // missing has its own bin later
    const size_t b = initial.BinIndex(values[r]);
    intervals[b].total += 1;
    if (labels[r] > 0.5) intervals[b].positives += 1;
  }
  // Drop empty intervals up front (duplicated quantiles).
  intervals.erase(std::remove_if(intervals.begin(), intervals.end() - 1,
                                 [](const Interval& interval) {
                                   return interval.total == 0;
                                 }),
                  intervals.end() - 1);

  while (intervals.size() > options.max_bins) {
    double best_chi2 = std::numeric_limits<double>::infinity();
    size_t best = 0;
    for (size_t i = 0; i + 1 < intervals.size(); ++i) {
      const double chi2 =
          ChiSquare(intervals[i].positives, intervals[i].total,
                    intervals[i + 1].positives, intervals[i + 1].total);
      if (chi2 < best_chi2) {
        best_chi2 = chi2;
        best = i;
      }
    }
    if (best_chi2 > options.chi_threshold &&
        intervals.size() <= options.initial_bins) {
      // All adjacent pairs differ significantly — stop early, but only
      // once below the bin cap is impossible; the cap is a hard limit.
      if (intervals.size() <= options.max_bins) break;
    }
    intervals[best].positives += intervals[best + 1].positives;
    intervals[best].total += intervals[best + 1].total;
    intervals[best].upper_edge = intervals[best + 1].upper_edge;
    intervals.erase(intervals.begin() + static_cast<long>(best) + 1);
  }
  // Keep merging below the cap while pairs stay statistically similar.
  while (intervals.size() > 2) {
    double best_chi2 = std::numeric_limits<double>::infinity();
    size_t best = 0;
    for (size_t i = 0; i + 1 < intervals.size(); ++i) {
      const double chi2 =
          ChiSquare(intervals[i].positives, intervals[i].total,
                    intervals[i + 1].positives, intervals[i + 1].total);
      if (chi2 < best_chi2) {
        best_chi2 = chi2;
        best = i;
      }
    }
    if (best_chi2 > options.chi_threshold) break;
    intervals[best].positives += intervals[best + 1].positives;
    intervals[best].total += intervals[best + 1].total;
    intervals[best].upper_edge = intervals[best + 1].upper_edge;
    intervals.erase(intervals.begin() + static_cast<long>(best) + 1);
  }

  BinEdges out;
  for (size_t i = 0; i + 1 < intervals.size(); ++i) {
    out.edges.push_back(intervals[i].upper_edge);
  }
  return out;
}

}  // namespace safe
