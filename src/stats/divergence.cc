#include "src/stats/divergence.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace safe {

namespace {
Status ValidateDistributions(const std::vector<double>& p,
                             const std::vector<double>& q) {
  if (p.size() != q.size()) {
    return Status::InvalidArgument("divergence: size mismatch");
  }
  if (p.empty()) {
    return Status::InvalidArgument("divergence: empty distributions");
  }
  double sp = 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] < 0.0 || q[i] < 0.0) {
      return Status::InvalidArgument("divergence: negative probability");
    }
    sp += p[i];
    sq += q[i];
  }
  if (std::fabs(sp - 1.0) > 1e-6 || std::fabs(sq - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        "divergence: distributions must sum to 1");
  }
  return Status::OK();
}
}  // namespace

Result<double> KlDivergence(const std::vector<double>& p,
                            const std::vector<double>& q) {
  SAFE_RETURN_NOT_OK(ValidateDistributions(p, q));
  double kl = 0.0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) continue;
    if (q[i] == 0.0) return std::numeric_limits<double>::infinity();
    kl += p[i] * std::log(p[i] / q[i]);
  }
  return kl;
}

Result<double> JsDivergence(const std::vector<double>& p,
                            const std::vector<double>& q) {
  SAFE_RETURN_NOT_OK(ValidateDistributions(p, q));
  std::vector<double> r(p.size());
  for (size_t i = 0; i < p.size(); ++i) r[i] = 0.5 * (p[i] + q[i]);
  SAFE_ASSIGN_OR_RETURN(double kl_pr, KlDivergence(p, r));
  SAFE_ASSIGN_OR_RETURN(double kl_qr, KlDivergence(q, r));
  return 0.5 * (kl_pr + kl_qr);
}

Result<double> FeatureStabilityJsd(
    const std::vector<size_t>& occurrence_counts, size_t num_runs,
    size_t features_per_run) {
  if (num_runs == 0 || features_per_run == 0) {
    return Status::InvalidArgument("stability: zero runs or features");
  }
  if (occurrence_counts.empty()) {
    return Status::InvalidArgument("stability: no features observed");
  }
  std::vector<size_t> sorted = occurrence_counts;
  std::sort(sorted.begin(), sorted.end(), std::greater<size_t>());

  double total = 0.0;
  for (size_t c : sorted) total += static_cast<double>(c);
  if (total <= 0.0) {
    return Status::InvalidArgument("stability: all occurrence counts zero");
  }

  // Observed distribution vs the ideal where the same `features_per_run`
  // features appear in every run, over the union support.
  const size_t support = std::max(sorted.size(), features_per_run);
  std::vector<double> observed(support, 0.0);
  std::vector<double> ideal(support, 0.0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    observed[i] = static_cast<double>(sorted[i]) / total;
  }
  for (size_t i = 0; i < features_per_run; ++i) {
    ideal[i] = 1.0 / static_cast<double>(features_per_run);
  }
  return JsDivergence(observed, ideal);
}

}  // namespace safe
