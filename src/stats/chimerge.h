#pragma once

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/dataframe/binning.h"

namespace safe {

/// \brief Options for ChiMerge discretization.
struct ChiMergeOptions {
  /// Stop merging when this many bins remain.
  size_t max_bins = 10;
  /// Also stop when the smallest adjacent-pair chi-square exceeds this
  /// threshold (3.841 = chi2 at 95% confidence, 1 dof, 2 classes).
  double chi_threshold = 3.841;
  /// Initial fine-grained quantile bins before merging.
  size_t initial_bins = 64;
};

/// \brief ChiMerge [Kerber 1992]: bottom-up supervised discretization.
///
/// The paper's Section III lists ChiMerge as the canonical supervised
/// discretization operator. Starting from fine equal-frequency bins, the
/// adjacent pair with the lowest chi-square statistic (i.e., the most
/// similar class distributions) is merged repeatedly until both stopping
/// rules hold. Returns interior cut points compatible with BinEdges.
[[nodiscard]] Result<BinEdges> ChiMergeEdges(const std::vector<double>& values,
                               const std::vector<double>& labels,
                               const ChiMergeOptions& options = {});

/// Chi-square statistic of a 2x2 contingency given two (pos,total) cells;
/// 0.5 continuity pseudo-counts guard empty expectations.
double ChiSquare(size_t pos_a, size_t total_a, size_t pos_b, size_t total_b);

}  // namespace safe
