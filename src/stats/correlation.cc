#include "src/stats/correlation.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {

PearsonBand ClassifyPearson(double r) {
  const double a = std::fabs(r);
  if (a < 0.2) return PearsonBand::kVeryWeak;
  if (a < 0.4) return PearsonBand::kWeak;
  if (a < 0.6) return PearsonBand::kModerate;
  if (a < 0.8) return PearsonBand::kStrong;
  return PearsonBand::kExtremelyStrong;
}

const char* PearsonBandName(PearsonBand band) {
  switch (band) {
    case PearsonBand::kVeryWeak:
      return "Very weak or no correlation";
    case PearsonBand::kWeak:
      return "Weak correlation";
    case PearsonBand::kModerate:
      return "Moderate correlation";
    case PearsonBand::kStrong:
      return "Strong correlation";
    case PearsonBand::kExtremelyStrong:
      return "Extremely strong correlation";
  }
  return "?";
}

namespace {

/// Walking read head over one column: Seek(pos) yields a contiguous
/// window starting at pos and ending at the column's next span boundary
/// (the whole column when dense).
struct ColumnWalker {
  explicit ColumnWalker(const Column& c) : col(c) {}

  void Seek(size_t pos) {
    if (!col.chunked()) {
      ptr = col.values().data() + pos;
      end = col.size();
      return;
    }
    const ChunkedVector<double>& chunks = *col.chunks();
    span = chunks.PinSpan(pos, chunks.GroupEnd(chunks.GroupOf(pos)));
    ptr = span.data();
    end = span.end();
  }

  const Column& col;
  ChunkedVector<double>::Span span;
  const double* ptr = nullptr;  ///< first value of the current window
  size_t end = 0;               ///< row index one past the window
};

/// Invokes fn(pa, pb, len) over maximal windows where both columns are
/// contiguous, in ascending row order; pa/pb point at the same row.
template <typename Fn>
void ZipSpans(const Column& a, const Column& b, Fn&& fn) {
  const size_t n = a.size();
  ColumnWalker wa(a);
  ColumnWalker wb(b);
  size_t pos = 0;
  while (pos < n) {
    wa.Seek(pos);
    wb.Seek(pos);
    const size_t stop = std::min(wa.end, wb.end);
    fn(wa.ptr, wb.ptr, stop - pos);
    pos = stop;
  }
}

}  // namespace

double PearsonCorrelation(const Column& a, const Column& b) {
  SAFE_CHECK(a.size() == b.size());
  // Two-pass: means over paired non-missing rows, then moments. Each
  // pass accumulates in ascending row order regardless of storage, so
  // the arithmetic matches the dense overload bit for bit.
  double sum_a = 0.0;
  double sum_b = 0.0;
  size_t n = 0;
  ZipSpans(a, b, [&](const double* pa, const double* pb, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      if (std::isnan(pa[i]) || std::isnan(pb[i])) continue;
      sum_a += pa[i];
      sum_b += pb[i];
      ++n;
    }
  });
  if (n < 2) return 0.0;
  const double mu_a = sum_a / static_cast<double>(n);
  const double mu_b = sum_b / static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  ZipSpans(a, b, [&](const double* pa, const double* pb, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      if (std::isnan(pa[i]) || std::isnan(pb[i])) continue;
      const double da = pa[i] - mu_a;
      const double db = pb[i] - mu_b;
      cov += da * db;
      var_a += da * da;
      var_b += db * db;
    }
  });
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  double r = cov / std::sqrt(var_a * var_b);
  // Clamp tiny floating-point excursions outside [-1, 1].
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;
  return r;
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  SAFE_CHECK(a.size() == b.size());
  // Two-pass: means over paired non-missing rows, then moments.
  double sum_a = 0.0;
  double sum_b = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    sum_a += a[i];
    sum_b += b[i];
    ++n;
  }
  if (n < 2) return 0.0;
  const double mu_a = sum_a / static_cast<double>(n);
  const double mu_b = sum_b / static_cast<double>(n);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) continue;
    const double da = a[i] - mu_a;
    const double db = b[i] - mu_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  double r = cov / std::sqrt(var_a * var_b);
  // Clamp tiny floating-point excursions outside [-1, 1].
  if (r > 1.0) r = 1.0;
  if (r < -1.0) r = -1.0;
  return r;
}

std::vector<std::vector<double>> PearsonMatrix(const DataFrame& frame,
                                               ThreadPool* pool) {
  const size_t m = frame.num_columns();
  std::vector<std::vector<double>> mat(m, std::vector<double>(m, 0.0));
  if (pool == nullptr) pool = ThreadPool::Global();
  ParallelFor(pool, 0, m, [&](size_t i) {
    mat[i][i] = 1.0;
    for (size_t j = i + 1; j < m; ++j) {
      mat[i][j] = PearsonCorrelation(frame.column(i), frame.column(j));
    }
  });
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < i; ++j) mat[i][j] = mat[j][i];
  }
  return mat;
}

std::vector<double> PearsonAgainst(const DataFrame& frame, size_t anchor,
                                   const std::vector<size_t>& others,
                                   ThreadPool* pool) {
  static obs::Counter* pairs_counter =
      obs::MetricsRegistry::Global()->counter("stats.pearson_pairs");
  std::vector<double> out(others.size(), 0.0);
  const Column& anchor_column = frame.column(anchor);
  ParallelFor(pool, 0, others.size(), [&](size_t i) {
    const uint64_t start_ns = obs::NowNanos();
    out[i] = PearsonCorrelation(anchor_column, frame.column(others[i]));
    obs::PerThreadHistogram("stats.pearson_pair_us",
                            obs::DefaultLatencyBucketsUs())
        ->Observe(static_cast<double>(obs::NowNanos() - start_ns) / 1e3);
  });
  pairs_counter->Increment(others.size());
  return out;
}

}  // namespace safe
