#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace safe {

double Mean(const std::vector<double>& values) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : values) {
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double Variance(const std::vector<double>& values) {
  const double mu = Mean(values);
  double sum = 0.0;
  size_t n = 0;
  for (double v : values) {
    if (std::isnan(v)) continue;
    sum += (v - mu) * (v - mu);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double StdDev(const std::vector<double>& values) {
  return std::sqrt(Variance(values));
}

double Quantile(std::vector<double> values, double q) {
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return std::isnan(v); }),
               values.end());
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Min(const std::vector<double>& values) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (double v : values) {
    if (std::isnan(v)) continue;
    if (std::isnan(best) || v < best) best = v;
  }
  return best;
}

double Max(const std::vector<double>& values) {
  double best = std::numeric_limits<double>::quiet_NaN();
  for (double v : values) {
    if (std::isnan(v)) continue;
    if (std::isnan(best) || v > best) best = v;
  }
  return best;
}

size_t CountEqual(const std::vector<double>& values, double target) {
  size_t n = 0;
  for (double v : values) {
    if (v == target) ++n;
  }
  return n;
}

}  // namespace safe
