#include "src/stats/entropy.h"

#include <cmath>

#include "src/dataframe/binning.h"

namespace safe {

double EntropyFromCounts(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  if (total == 0) return 0.0;
  double h = 0.0;
  for (size_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log(p);
  }
  return h;
}

double BinaryEntropy(size_t pos, size_t n) {
  if (n == 0 || pos == 0 || pos == n) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(n);
  return -p * std::log(p) - (1.0 - p) * std::log(1.0 - p);
}

double InformationGain(const std::vector<PartitionCell>& cells) {
  size_t total = 0;
  size_t positives = 0;
  for (const auto& c : cells) {
    total += c.total;
    positives += c.positives;
  }
  if (total == 0) return 0.0;
  const double h_before = BinaryEntropy(positives, total);
  double h_after = 0.0;
  for (const auto& c : cells) {
    if (c.total == 0) continue;
    const double w =
        static_cast<double>(c.total) / static_cast<double>(total);
    h_after += w * BinaryEntropy(c.positives, c.total);
  }
  return h_before - h_after;
}

double SplitInformation(const std::vector<PartitionCell>& cells) {
  size_t total = 0;
  for (const auto& c : cells) total += c.total;
  if (total == 0) return 0.0;
  double si = 0.0;
  for (const auto& c : cells) {
    if (c.total == 0) continue;
    const double w =
        static_cast<double>(c.total) / static_cast<double>(total);
    si -= w * std::log(w);
  }
  return si;
}

double InformationGainRatio(const std::vector<PartitionCell>& cells) {
  const double si = SplitInformation(cells);
  if (si <= 0.0) return 0.0;
  return InformationGain(cells) / si;
}

double BinnedInformationGain(const std::vector<double>& feature,
                             const std::vector<double>& labels,
                             size_t num_bins) {
  if (feature.size() != labels.size() || feature.empty()) return 0.0;
  auto edges = EqualFrequencyEdges(feature, num_bins);
  if (!edges.ok()) return 0.0;  // constant or all-missing column
  std::vector<PartitionCell> cells(edges->missing_bin() + 1);
  for (size_t r = 0; r < feature.size(); ++r) {
    PartitionCell& cell = cells[edges->BinIndex(feature[r])];
    cell.total += 1;
    if (labels[r] > 0.5) cell.positives += 1;
  }
  return InformationGain(cells);
}

}  // namespace safe
