#pragma once

#include <vector>

#include "src/common/result.h"

namespace safe {

/// \brief Area under the ROC curve of scores against binary labels.
///
/// Computed via the rank statistic (Mann–Whitney U) with midrank tie
/// handling, equivalent to trapezoidal ROC integration. Returns
/// InvalidArgument when sizes mismatch, inputs are empty, or labels are
/// single-class (AUC undefined).
[[nodiscard]] Result<double> Auc(const std::vector<double>& scores,
                   const std::vector<double>& labels);

}  // namespace safe
