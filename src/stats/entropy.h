#pragma once

#include <cstddef>
#include <vector>

namespace safe {

/// Shannon entropy (nats) of a discrete distribution given as counts.
/// Zero-count cells contribute zero.
double EntropyFromCounts(const std::vector<size_t>& counts);

/// Binary entropy (nats) of a class split with `pos` positives out of `n`.
double BinaryEntropy(size_t pos, size_t n);

/// \brief Label statistics of one cell of a partition of the records.
struct PartitionCell {
  size_t positives = 0;
  size_t total = 0;
};

/// Information gain (nats) of partitioning binary-labelled records into
/// `cells`: H(Y) − Σ (n_c/n) H(Y|cell c). Cells with total == 0 are
/// ignored.
double InformationGain(const std::vector<PartitionCell>& cells);

/// Split information (intrinsic entropy, nats) of a partition:
/// −Σ (n_c/n) ln(n_c/n).
double SplitInformation(const std::vector<PartitionCell>& cells);

/// Quinlan's gain ratio: InformationGain / SplitInformation; 0 when the
/// partition is trivial (a single non-empty cell). This is the score
/// Algorithm 2 of the paper assigns to each feature combination.
double InformationGainRatio(const std::vector<PartitionCell>& cells);

/// Information gain of a numeric feature against binary labels after
/// equal-frequency binning into `num_bins` bins (missing values get a
/// dedicated bin). Returns 0 when the feature is constant or all-missing.
/// This is the selection score of the TFC and FCTree baselines.
double BinnedInformationGain(const std::vector<double>& feature,
                             const std::vector<double>& labels,
                             size_t num_bins);

}  // namespace safe
