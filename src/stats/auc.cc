#include "src/stats/auc.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace safe {

Result<double> Auc(const std::vector<double>& scores,
                   const std::vector<double>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("AUC: score/label size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("AUC: empty input");
  }
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });

  double rank_sum_pos = 0.0;
  size_t n_pos = 0;
  size_t i = 0;
  const size_t n = order.size();
  while (i < n) {
    size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    // Midrank of the tie group [i, j) with 1-based ranks.
    const double midrank = 0.5 * static_cast<double>(i + 1 + j);
    for (size_t k = i; k < j; ++k) {
      if (labels[order[k]] > 0.5) {
        rank_sum_pos += midrank;
        ++n_pos;
      }
    }
    i = j;
  }
  const size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    return Status::InvalidArgument("AUC: labels are single-class");
  }
  const double u = rank_sum_pos -
                   static_cast<double>(n_pos) *
                       (static_cast<double>(n_pos) + 1.0) / 2.0;
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace safe
