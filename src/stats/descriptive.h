#pragma once

#include <cstddef>
#include <vector>

namespace safe {

/// Mean of the non-missing values (0 if all missing).
double Mean(const std::vector<double>& values);

/// Population variance of the non-missing values.
double Variance(const std::vector<double>& values);

/// Population standard deviation of the non-missing values.
double StdDev(const std::vector<double>& values);

/// Linear-interpolated quantile q in [0,1] of the non-missing values.
/// Returns NaN when every value is missing.
double Quantile(std::vector<double> values, double q);

/// Minimum / maximum over non-missing values (NaN when all missing).
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Count of values strictly equal to `target`.
size_t CountEqual(const std::vector<double>& values, double target);

}  // namespace safe
