#pragma once

#include <vector>

#include "src/common/thread_pool.h"
#include "src/dataframe/dataframe.h"

namespace safe {

/// Rule-of-thumb correlation-strength bands for |Pearson| (paper Table II).
enum class PearsonBand {
  kVeryWeak,         ///< [0, 0.2)
  kWeak,             ///< [0.2, 0.4)
  kModerate,         ///< [0.4, 0.6)
  kStrong,           ///< [0.6, 0.8)
  kExtremelyStrong,  ///< [0.8, 1]
};

/// Classifies |r| into its Table II band.
PearsonBand ClassifyPearson(double r);

/// Human-readable band name.
const char* PearsonBandName(PearsonBand band);

/// \brief Pearson correlation coefficient (Eq. 7) between two features.
///
/// Rows where either value is NaN are skipped. Returns 0 when either
/// feature is constant over the paired rows (no linear relationship is
/// measurable), matching the redundancy filter's "not redundant" default.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Storage-agnostic overload: zip-walks the two columns span by span in
/// ascending row order, so both passes accumulate in exactly the order
/// the dense overload does — bit-identical results on the same data,
/// dense, chunked, or mixed.
double PearsonCorrelation(const Column& a, const Column& b);

/// Dense symmetric correlation matrix of all frame columns, with the
/// upper triangle computed in parallel on `pool` (nullptr = global pool).
std::vector<std::vector<double>> PearsonMatrix(const DataFrame& frame,
                                               ThreadPool* pool = nullptr);

/// \brief Pearson of `anchor` against each column in `others` (both index
/// into `frame`), one pool task per pair; `out[i]` pairs `others[i]`.
///
/// This is the fan-out shape of Alg. 4's redundancy sweep: one kept
/// feature checked against every still-alive candidate at once. Tasks
/// are independent and write disjoint slots, so the result is
/// deterministic at any thread count; `pool == nullptr` runs serially.
std::vector<double> PearsonAgainst(const DataFrame& frame, size_t anchor,
                                   const std::vector<size_t>& others,
                                   ThreadPool* pool = nullptr);

}  // namespace safe
