#pragma once

#include <vector>

#include "src/common/result.h"

namespace safe {

/// Mean binary log-loss of probability scores against {0,1} labels;
/// probabilities are clamped to [1e-15, 1-1e-15].
[[nodiscard]] Result<double> LogLoss(const std::vector<double>& probabilities,
                       const std::vector<double>& labels);

/// Accuracy of thresholded scores (score > threshold -> positive).
[[nodiscard]] Result<double> Accuracy(const std::vector<double>& scores,
                        const std::vector<double>& labels,
                        double threshold = 0.5);

/// F1 of the positive class at the given threshold. Returns 0 when there
/// are no predicted and no actual positives.
[[nodiscard]] Result<double> F1Score(const std::vector<double>& scores,
                       const std::vector<double>& labels,
                       double threshold = 0.5);

/// Kolmogorov–Smirnov statistic: max |TPR − FPR| over all thresholds.
/// The standard industry acceptance metric for fraud / credit scores
/// (the deployment domain of the paper's Section V-B).
[[nodiscard]] Result<double> KsStatistic(const std::vector<double>& scores,
                           const std::vector<double>& labels);

}  // namespace safe
