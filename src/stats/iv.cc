#include "src/stats/iv.h"

#include <cmath>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {

IvBand ClassifyIv(double iv) {
  if (iv < 0.02) return IvBand::kUseless;
  if (iv < 0.1) return IvBand::kWeak;
  if (iv < 0.3) return IvBand::kMedium;
  if (iv <= 0.5) return IvBand::kStrong;
  return IvBand::kExtremelyStrong;
}

const char* IvBandName(IvBand band) {
  switch (band) {
    case IvBand::kUseless:
      return "Useless for prediction";
    case IvBand::kWeak:
      return "Weak predictor";
    case IvBand::kMedium:
      return "Medium predictor";
    case IvBand::kStrong:
      return "Strong predictor";
    case IvBand::kExtremelyStrong:
      return "Extremely strong predictor";
  }
  return "?";
}

Result<double> InformationValueWithEdges(const std::vector<double>& feature,
                                         const std::vector<double>& labels,
                                         const BinEdges& edges) {
  if (feature.size() != labels.size()) {
    return Status::InvalidArgument("IV: feature/label size mismatch");
  }
  if (feature.empty()) {
    return Status::InvalidArgument("IV: empty input");
  }
  const size_t num_cells = edges.missing_bin() + 1;
  std::vector<double> pos(num_cells, 0.0);
  std::vector<double> neg(num_cells, 0.0);
  double np = 0.0;
  double nn = 0.0;
  for (size_t i = 0; i < feature.size(); ++i) {
    const size_t b = edges.BinIndex(feature[i]);
    if (labels[i] > 0.5) {
      pos[b] += 1.0;
      np += 1.0;
    } else {
      neg[b] += 1.0;
      nn += 1.0;
    }
  }
  if (np == 0.0 || nn == 0.0) {
    return Status::InvalidArgument("IV: labels are single-class");
  }
  double iv = 0.0;
  for (size_t b = 0; b < num_cells; ++b) {
    if (pos[b] == 0.0 && neg[b] == 0.0) continue;
    // 0.5 pseudo-count keeps WoE finite when a bin is single-class.
    const double p = (pos[b] > 0.0 ? pos[b] : 0.5) / np;
    const double q = (neg[b] > 0.0 ? neg[b] : 0.5) / nn;
    iv += (p - q) * std::log(p / q);
  }
  return iv;
}

Result<double> InformationValue(const std::vector<double>& feature,
                                const std::vector<double>& labels,
                                size_t num_bins) {
  SAFE_ASSIGN_OR_RETURN(BinEdges edges,
                        EqualFrequencyEdges(feature, num_bins));
  return InformationValueWithEdges(feature, labels, edges);
}

Result<double> InformationValue(const Column& feature,
                                const std::vector<double>& labels,
                                size_t num_bins) {
  if (feature.size() != labels.size()) {
    return Status::InvalidArgument("IV: feature/label size mismatch");
  }
  if (feature.size() == 0) {
    return Status::InvalidArgument("IV: empty input");
  }
  SAFE_ASSIGN_OR_RETURN(BinEdges edges,
                        EqualFrequencyEdges(feature, num_bins));
  const size_t num_cells = edges.missing_bin() + 1;
  std::vector<double> pos(num_cells, 0.0);
  std::vector<double> neg(num_cells, 0.0);
  double np = 0.0;
  double nn = 0.0;
  feature.ForEachSpan(
      0, feature.size(), [&](size_t base, const double* values, size_t len) {
        for (size_t i = 0; i < len; ++i) {
          const size_t b = edges.BinIndex(values[i]);
          if (labels[base + i] > 0.5) {
            pos[b] += 1.0;
            np += 1.0;
          } else {
            neg[b] += 1.0;
            nn += 1.0;
          }
        }
      });
  if (np == 0.0 || nn == 0.0) {
    return Status::InvalidArgument("IV: labels are single-class");
  }
  double iv = 0.0;
  for (size_t b = 0; b < num_cells; ++b) {
    if (pos[b] == 0.0 && neg[b] == 0.0) continue;
    // 0.5 pseudo-count keeps WoE finite when a bin is single-class.
    const double p = (pos[b] > 0.0 ? pos[b] : 0.5) / np;
    const double q = (neg[b] > 0.0 ? neg[b] : 0.5) / nn;
    iv += (p - q) * std::log(p / q);
  }
  return iv;
}

std::vector<double> InformationValueBatch(const DataFrame& x,
                                          const std::vector<double>& labels,
                                          size_t num_bins, ThreadPool* pool) {
  static obs::Counter* columns_counter =
      obs::MetricsRegistry::Global()->counter("stats.iv_columns");
  std::vector<double> ivs(x.num_columns(), 0.0);
  ParallelFor(pool, 0, x.num_columns(), [&](size_t c) {
    const uint64_t start_ns = obs::NowNanos();
    auto iv = InformationValue(x.column(c), labels, num_bins);
    ivs[c] = iv.ok() ? *iv : 0.0;
    obs::PerThreadHistogram("stats.iv_column_us",
                            obs::DefaultLatencyBucketsUs())
        ->Observe(static_cast<double>(obs::NowNanos() - start_ns) / 1e3);
  });
  columns_counter->Increment(x.num_columns());
  return ivs;
}

}  // namespace safe
