#include "src/stats/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace safe {

namespace {
Status Validate(const std::vector<double>& scores,
                const std::vector<double>& labels) {
  if (scores.size() != labels.size()) {
    return Status::InvalidArgument("metric: score/label size mismatch");
  }
  if (scores.empty()) {
    return Status::InvalidArgument("metric: empty input");
  }
  return Status::OK();
}
}  // namespace

Result<double> LogLoss(const std::vector<double>& probabilities,
                       const std::vector<double>& labels) {
  SAFE_RETURN_NOT_OK(Validate(probabilities, labels));
  double total = 0.0;
  for (size_t i = 0; i < probabilities.size(); ++i) {
    const double p = std::clamp(probabilities[i], 1e-15, 1.0 - 1e-15);
    total -= labels[i] * std::log(p) + (1.0 - labels[i]) * std::log(1.0 - p);
  }
  return total / static_cast<double>(probabilities.size());
}

Result<double> Accuracy(const std::vector<double>& scores,
                        const std::vector<double>& labels,
                        double threshold) {
  SAFE_RETURN_NOT_OK(Validate(scores, labels));
  size_t correct = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] > threshold;
    if (predicted == (labels[i] > 0.5)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(scores.size());
}

Result<double> F1Score(const std::vector<double>& scores,
                       const std::vector<double>& labels,
                       double threshold) {
  SAFE_RETURN_NOT_OK(Validate(scores, labels));
  size_t true_pos = 0;
  size_t false_pos = 0;
  size_t false_neg = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] > threshold;
    const bool actual = labels[i] > 0.5;
    if (predicted && actual) ++true_pos;
    if (predicted && !actual) ++false_pos;
    if (!predicted && actual) ++false_neg;
  }
  const double denom =
      2.0 * static_cast<double>(true_pos) + static_cast<double>(false_pos) +
      static_cast<double>(false_neg);
  if (denom == 0.0) return 0.0;
  return 2.0 * static_cast<double>(true_pos) / denom;
}

Result<double> KsStatistic(const std::vector<double>& scores,
                           const std::vector<double>& labels) {
  SAFE_RETURN_NOT_OK(Validate(scores, labels));
  std::vector<size_t> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];  // descending scores
  });
  double n_pos = 0.0;
  double n_neg = 0.0;
  for (double y : labels) (y > 0.5 ? n_pos : n_neg) += 1.0;
  if (n_pos == 0.0 || n_neg == 0.0) {
    return Status::InvalidArgument("KS: labels are single-class");
  }
  double tpr = 0.0;
  double fpr = 0.0;
  double ks = 0.0;
  size_t i = 0;
  while (i < order.size()) {
    // Process a tie block so KS is evaluated between distinct scores.
    size_t j = i;
    while (j < order.size() &&
           scores[order[j]] == scores[order[i]]) {
      if (labels[order[j]] > 0.5) {
        tpr += 1.0 / n_pos;
      } else {
        fpr += 1.0 / n_neg;
      }
      ++j;
    }
    ks = std::max(ks, std::fabs(tpr - fpr));
    i = j;
  }
  return ks;
}

}  // namespace safe
