#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace safe {

/// Kullback–Leibler divergence KLD(P‖Q) = Σ P(i) ln(P(i)/Q(i)) (Eq. 15).
/// Inputs must be same-length distributions (non-negative, each summing
/// to ~1). Terms with P(i)=0 contribute 0; P(i)>0 with Q(i)=0 makes the
/// divergence infinite.
[[nodiscard]] Result<double> KlDivergence(const std::vector<double>& p,
                            const std::vector<double>& q);

/// Jensen–Shannon divergence (Eq. 14):
/// ½·KLD(P‖R) + ½·KLD(Q‖R) with R = ½(P+Q). Always finite; bounded by
/// ln 2. Supports distributions over a shared index space.
[[nodiscard]] Result<double> JsDivergence(const std::vector<double>& p,
                            const std::vector<double>& q);

/// \brief Feature-stability score of Section V-A5.
///
/// `occurrence_counts[i]` is the number of runs (out of `num_runs`) in
/// which generated feature i appeared; each run emits `features_per_run`
/// features. The score is the JSD between the observed occurrence
/// distribution and the ideal one where the same `features_per_run`
/// features appear in all runs. Lower is more stable.
[[nodiscard]] Result<double> FeatureStabilityJsd(const std::vector<size_t>& occurrence_counts,
                                   size_t num_runs, size_t features_per_run);

}  // namespace safe
