#pragma once

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/common/thread_pool.h"
#include "src/dataframe/binning.h"
#include "src/dataframe/dataframe.h"

namespace safe {

/// Rule-of-thumb predictive-power bands for Information Value
/// (paper Table I).
enum class IvBand {
  kUseless,          ///< IV in [0, 0.02)
  kWeak,             ///< IV in [0.02, 0.1)
  kMedium,           ///< IV in [0.1, 0.3)
  kStrong,           ///< IV in [0.3, 0.5)
  kExtremelyStrong,  ///< IV > 0.5
};

/// Classifies an IV into its Table I band.
IvBand ClassifyIv(double iv);

/// Human-readable band name ("Weak predictor", ...).
const char* IvBandName(IvBand band);

/// \brief Information Value of a feature against binary labels (Eq. 6):
///   IV = Σ_i (n_p^i/n_p − n_n^i/n_n) · ln[(n_p^i/n_p)/(n_n^i/n_n)]
/// over equal-frequency bins of the feature (paper Algorithm 3 packs the
/// records into β same-frequency bins). Empty-side bins are smoothed with
/// a 0.5 pseudo-count so the logarithm stays finite, the standard WoE
/// adjustment in credit scoring.
///
/// Returns InvalidArgument when labels are single-class or sizes mismatch.
[[nodiscard]] Result<double> InformationValue(const std::vector<double>& feature,
                                const std::vector<double>& labels,
                                size_t num_bins);

/// IV given precomputed bin edges (missing values get their own bin).
[[nodiscard]] Result<double> InformationValueWithEdges(const std::vector<double>& feature,
                                         const std::vector<double>& labels,
                                         const BinEdges& edges);

/// Storage-agnostic InformationValue: fits edges and counts bins by
/// streaming the column row-group-wise. The bin tallies are integer
/// counts accumulated in ascending row order either way, so the result
/// is bit-identical to the vector overload on the same data.
[[nodiscard]] Result<double> InformationValue(const Column& feature,
                                const std::vector<double>& labels,
                                size_t num_bins);

/// \brief IV of every frame column, one pool task per column (Alg. 3's
/// per-feature loop). Each task fits its own equal-frequency edges, so
/// binning parallelizes together with the IV itself. Columns whose IV is
/// undefined (constant, all-missing, single-class labels) score 0.
///
/// Deterministic at any thread count: tasks are independent and each
/// writes only its own output slot. `pool == nullptr` runs serially.
std::vector<double> InformationValueBatch(const DataFrame& x,
                                          const std::vector<double>& labels,
                                          size_t num_bins,
                                          ThreadPool* pool = nullptr);

}  // namespace safe
