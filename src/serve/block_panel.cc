#include "src/serve/block_panel.h"

#include <string>

namespace safe {
namespace serve {

void GatherBlock(const std::vector<std::vector<double>>& rows, size_t begin,
                 size_t n, size_t width, size_t stride, double* panel) {
  for (size_t i = 0; i < n; ++i) {
    const double* row = rows[begin + i].data();
    for (size_t s = 0; s < width; ++s) {
      panel[s * stride + i] = row[s];
    }
  }
}

void GatherBlockPtrs(const double* const* rows, size_t n, size_t width,
                     size_t stride, double* panel) {
  for (size_t i = 0; i < n; ++i) {
    const double* row = rows[i];
    for (size_t s = 0; s < width; ++s) {
      panel[s * stride + i] = row[s];
    }
  }
}

Result<std::vector<double>> RowsToPanel(
    const std::vector<std::vector<double>>& rows, size_t stride) {
  if (rows.empty()) {
    return Status::InvalidArgument("block panel: empty batch");
  }
  const size_t width = rows[0].size();
  if (width == 0) {
    return Status::InvalidArgument("block panel: zero-width rows");
  }
  if (stride < rows.size()) {
    return Status::InvalidArgument(
        "block panel: stride " + std::to_string(stride) + " < " +
        std::to_string(rows.size()) + " rows");
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != width) {
      return Status::InvalidArgument(
          "block panel: row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, expected " +
          std::to_string(width));
    }
  }
  std::vector<double> panel(width * stride, 0.0);
  GatherBlock(rows, 0, rows.size(), width, stride, panel.data());
  return panel;
}

Result<std::vector<std::vector<double>>> PanelToRows(
    const std::vector<double>& panel, size_t num_rows, size_t width,
    size_t stride) {
  if (num_rows == 0) {
    return Status::InvalidArgument("block panel: empty batch");
  }
  if (width == 0) {
    return Status::InvalidArgument("block panel: zero-width rows");
  }
  if (stride < num_rows) {
    return Status::InvalidArgument(
        "block panel: stride " + std::to_string(stride) + " < " +
        std::to_string(num_rows) + " rows");
  }
  if (panel.size() != width * stride) {
    return Status::InvalidArgument(
        "block panel: panel holds " + std::to_string(panel.size()) +
        " values, expected " + std::to_string(width * stride));
  }
  std::vector<std::vector<double>> rows(num_rows,
                                        std::vector<double>(width, 0.0));
  for (size_t i = 0; i < num_rows; ++i) {
    for (size_t s = 0; s < width; ++s) {
      rows[i][s] = panel[s * stride + i];
    }
  }
  return rows;
}

}  // namespace serve
}  // namespace safe
