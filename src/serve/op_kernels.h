#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "src/gbdt/loss.h"

namespace safe {
namespace serve {

/// Scalar arithmetic of every specialized opcode, factored out of the
/// per-row interpreter switch so the block-wise batch executor can run
/// literally the same code per lane. Each function body is the verbatim
/// Operator::Apply arithmetic of its operator family (see compiled_plan.cc
/// for the name -> opcode mapping); sharing one definition between the
/// per-row and batch paths is what makes their bit-identity structural
/// rather than coincidental.
namespace op {

inline constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

inline double Add(double a, double b) { return a + b; }
inline double Sub(double a, double b) { return a - b; }
inline double Mul(double a, double b) { return a * b; }
inline double Div(double a, double b) {
  return (b == 0.0) ? kNaN : a / b;
}
inline double And(double a, double b) {
  return ((a > 0.5) && (b > 0.5)) ? 1.0 : 0.0;
}
inline double Or(double a, double b) {
  return ((a > 0.5) || (b > 0.5)) ? 1.0 : 0.0;
}
inline double Xor(double a, double b) {
  return ((a > 0.5) != (b > 0.5)) ? 1.0 : 0.0;
}
inline double Log(double a) { return !(a > 0.0) ? kNaN : std::log(a); }
inline double Sqrt(double a) { return (a < 0.0) ? kNaN : std::sqrt(a); }
inline double Square(double a) { return a * a; }
inline double SigmoidOp(double a) { return gbdt::Sigmoid(a); }
inline double Tanh(double a) { return std::tanh(a); }
inline double Round(double a) { return std::round(a); }
inline double Abs(double a) { return std::fabs(a); }
/// zscore and minmax: (x - p0) / p1 over the fitted two-param layout.
inline double Zscore(double a, const double* prm) {
  return (a - prm[0]) / prm[1];
}
/// BinEdges::BinIndex over the edge span: count of edges < value.
inline double Discretize(double a, const double* prm, size_t param_count) {
  const double* end = prm + param_count;
  return static_cast<double>(std::lower_bound(prm, end, a) - prm);
}
/// Shared body of the five group-by aggregates. Params layout:
/// [n, edge_0..edge_{n-1}, agg_bin_0..agg_bin_{n+1}]; NaN keys land in
/// the missing bin (BinEdges::missing_bin() == n + 1).
inline double GroupBy(double a, const double* prm) {
  const size_t n = static_cast<size_t>(prm[0]);
  const double* edges = prm + 1;
  const size_t bin =
      std::isnan(a)
          ? n + 1
          : static_cast<size_t>(std::lower_bound(edges, edges + n, a) -
                                edges);
  return prm[1 + n + bin];
}
inline double Ridge(double a, double b, const double* prm) {
  return b - (prm[0] * a + prm[1]);
}
inline double Krr(double a, double b, const double* prm) {
  const size_t m = static_cast<size_t>(prm[0]);
  const double gamma = prm[1];
  const double* centers = prm + 2;
  const double* alpha = prm + 2 + m;
  double prediction = 0.0;
  for (size_t k = 0; k < m; ++k) {
    const double d = a - centers[k];
    prediction += alpha[k] * std::exp(-gamma * d * d);
  }
  return b - prediction;
}
inline double Cond(double a, double b, double c) {
  return (a > 0.0) ? b : c;
}

}  // namespace op
}  // namespace serve
}  // namespace safe
