#pragma once

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"
#include "src/gbdt/booster.h"
#include "src/gbdt/forest_layout.h"
#include "src/serve/compiled_plan.h"

namespace safe {
namespace serve {

/// \brief Vectorized batch engine for the serving path (DESIGN.md
/// "Vectorized batch execution").
///
/// Where RowScorer runs program -> gather -> forest once per row,
/// BatchScorer processes blocks of kBlockRows rows through three
/// column-wise stages over one reusable Scratch:
///
///   1. transpose the block into a slot-major column panel
///      (block_panel.h) — every scratch slot becomes one contiguous
///      kBlockRows-lane span;
///   2. CompiledPlan::ExecuteBlock — each opcode runs as one contiguous
///      loop over the whole block (dispatch paid per block, inner loops
///      SIMD-friendly, per-lane arithmetic shared with the per-row
///      interpreter via op_kernels.h);
///   3. gbdt::PackedForest::AccumulateMargins — QuickScorer-style
///      bitvector traversal, tree-major over the block, reading split
///      features straight out of the panel (split indices were remapped
///      to panel slots at Create time, so there is no gather step).
///
/// Output contract: scoring any batch is bit-identical to calling
/// RowScorer::ScoreRow on each row — and therefore to the interpreted
/// booster.PredictRowProba(*plan.TransformRow(row)) — for every batch
/// size, ragged tail included (serve_batch_equivalence_test). Immutable
/// after Create; ScoreRows is safe for any number of concurrent callers.
class BatchScorer {
 public:
  /// Rows per block: large enough that per-block dispatch amortizes to
  /// noise, small enough that one panel of a transform-heavy plan
  /// (~100 slots -> ~100 KiB) stays cache-resident.
  static constexpr size_t kBlockRows = 128;

  /// Reusable per-caller buffers: the slot-major column panel plus the
  /// per-lane margin accumulators.
  struct Scratch {
    std::vector<double> panels;   // scratch_size() slots x kBlockRows
    std::vector<double> margins;  // kBlockRows
  };

  BatchScorer() = default;

  /// Compiles `plan` and packs `booster` into the interleaved forest
  /// layout. Fails like RowScorer::Create: booster/plan feature-count
  /// mismatch, or a tree splitting outside the plan's outputs.
  [[nodiscard]] static Result<BatchScorer> Create(
      const FeaturePlan& plan, const gbdt::Booster& booster,
      const OperatorRegistry& registry);
  [[nodiscard]] static Result<BatchScorer> Create(
      const FeaturePlan& plan, const gbdt::Booster& booster);

  size_t num_inputs() const { return plan_.num_inputs(); }
  size_t num_features() const { return plan_.num_outputs(); }
  const CompiledPlan& plan() const { return plan_; }
  const gbdt::PackedForest& forest() const { return forest_; }

  Scratch MakeScratch() const;

  /// Allocation-free core: scores rows [begin, begin + n) — n at most
  /// kBlockRows, every row holding num_inputs() doubles — into out[0..n).
  /// ScoreBlock writes probabilities (margins through the objective's
  /// link), ScoreBlockMargin raw margins.
  void ScoreBlock(const std::vector<std::vector<double>>& rows, size_t begin,
                  size_t n, Scratch* scratch, double* out) const;
  void ScoreBlockMargin(const std::vector<std::vector<double>>& rows,
                        size_t begin, size_t n, Scratch* scratch,
                        double* out) const;

  /// Same allocation-free core over an array of row pointers (each row
  /// `num_inputs()` doubles): the scoring server's micro-batcher stages
  /// requests as pointers into caller memory and scores them without an
  /// intermediate copy. Bit-identical to the vector overloads (same
  /// gather/execute/traverse pipeline over the same panel).
  void ScoreBlockPtrs(const double* const* rows, size_t n, Scratch* scratch,
                      double* out) const;
  void ScoreBlockMarginPtrs(const double* const* rows, size_t n,
                            Scratch* scratch, double* out) const;

  /// Checked whole-batch probability scoring: validates row widths,
  /// resizes `out` to rows.size() (reusing capacity), and streams the
  /// batch block by block over a per-thread Scratch — zero steady-state
  /// allocation, safe for concurrent callers. An empty batch yields an
  /// empty output.
  [[nodiscard]] Status ScoreRows(const std::vector<std::vector<double>>& rows,
                                 std::vector<double>* out) const;

 private:
  Scratch* LocalScratch() const;

  CompiledPlan plan_;
  gbdt::PackedForest forest_;
  double base_score_ = 0.0;
  gbdt::Objective objective_ = gbdt::Objective::kLogistic;
};

}  // namespace serve
}  // namespace safe
