#include "src/serve/batch_scorer.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "src/gbdt/loss.h"
#include "src/serve/block_panel.h"

namespace safe {
namespace serve {

Result<BatchScorer> BatchScorer::Create(const FeaturePlan& plan,
                                        const gbdt::Booster& booster,
                                        const OperatorRegistry& registry) {
  BatchScorer scorer;
  SAFE_ASSIGN_OR_RETURN(scorer.plan_, CompiledPlan::Compile(plan, registry));
  if (booster.num_features() != scorer.plan_.num_outputs()) {
    return Status::InvalidArgument(
        "batch scorer: booster expects " +
        std::to_string(booster.num_features()) + " features, plan produces " +
        std::to_string(scorer.plan_.num_outputs()));
  }
  // Remap forest split features to the panel slots the compiled program
  // writes, so block scoring traverses the panel directly.
  SAFE_ASSIGN_OR_RETURN(
      scorer.forest_,
      gbdt::PackedForest::Build(booster.trees(), booster.num_features(),
                                &scorer.plan_.selected_slots()));
  scorer.base_score_ = booster.base_score();
  scorer.objective_ = booster.objective();
  return scorer;
}

Result<BatchScorer> BatchScorer::Create(const FeaturePlan& plan,
                                        const gbdt::Booster& booster) {
  static const OperatorRegistry registry = OperatorRegistry::Default();
  return Create(plan, booster, registry);
}

BatchScorer::Scratch BatchScorer::MakeScratch() const {
  Scratch scratch;
  scratch.panels.resize(plan_.scratch_size() * kBlockRows);
  scratch.margins.resize(kBlockRows);
  return scratch;
}

void BatchScorer::ScoreBlockMargin(const std::vector<std::vector<double>>& rows,
                                   size_t begin, size_t n, Scratch* scratch,
                                   double* out) const {
  double* panels = scratch->panels.data();
  GatherBlock(rows, begin, n, plan_.num_inputs(), kBlockRows, panels);
  plan_.ExecuteBlock(panels, kBlockRows, n);
  double* margins = scratch->margins.data();
  // Same per-row accumulation sequence as the scalar ForestMargin: base
  // score first, then the trees in order (AccumulateMargins adds tree t
  // before tree t+1 for every lane).
  for (size_t i = 0; i < n; ++i) margins[i] = base_score_;
  forest_.AccumulateMargins(panels, kBlockRows, n, margins);
  for (size_t i = 0; i < n; ++i) out[i] = margins[i];
}

void BatchScorer::ScoreBlock(const std::vector<std::vector<double>>& rows,
                             size_t begin, size_t n, Scratch* scratch,
                             double* out) const {
  ScoreBlockMargin(rows, begin, n, scratch, out);
  for (size_t i = 0; i < n; ++i) {
    out[i] = gbdt::TransformMargin(objective_, out[i]);
  }
}

void BatchScorer::ScoreBlockMarginPtrs(const double* const* rows, size_t n,
                                       Scratch* scratch, double* out) const {
  double* panels = scratch->panels.data();
  GatherBlockPtrs(rows, n, plan_.num_inputs(), kBlockRows, panels);
  plan_.ExecuteBlock(panels, kBlockRows, n);
  double* margins = scratch->margins.data();
  for (size_t i = 0; i < n; ++i) margins[i] = base_score_;
  forest_.AccumulateMargins(panels, kBlockRows, n, margins);
  for (size_t i = 0; i < n; ++i) out[i] = margins[i];
}

void BatchScorer::ScoreBlockPtrs(const double* const* rows, size_t n,
                                 Scratch* scratch, double* out) const {
  ScoreBlockMarginPtrs(rows, n, scratch, out);
  for (size_t i = 0; i < n; ++i) {
    out[i] = gbdt::TransformMargin(objective_, out[i]);
  }
}

BatchScorer::Scratch* BatchScorer::LocalScratch() const {
  // Per-thread scratch keyed by scorer identity — the same scheme as
  // RowScorer::LocalScratch, so one shared BatchScorer is race-free and
  // allocation-free in steady state under concurrent callers.
  thread_local std::vector<
      std::pair<const BatchScorer*, std::unique_ptr<Scratch>>>
      cache;
  for (auto& [key, scratch] : cache) {
    if (key == this) {
      // Guard against address reuse after another scorer's destruction.
      if (scratch->panels.size() != plan_.scratch_size() * kBlockRows) {
        *scratch = MakeScratch();
      }
      return scratch.get();
    }
  }
  cache.emplace_back(this, std::make_unique<Scratch>(MakeScratch()));
  return cache.back().second.get();
}

Status BatchScorer::ScoreRows(const std::vector<std::vector<double>>& rows,
                              std::vector<double>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("batch scorer: null output vector");
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != plan_.num_inputs()) {
      return Status::InvalidArgument(
          "batch scorer: row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, expected " +
          std::to_string(plan_.num_inputs()));
    }
  }
  out->resize(rows.size());
  Scratch* scratch = LocalScratch();
  for (size_t begin = 0; begin < rows.size(); begin += kBlockRows) {
    const size_t n = std::min(kBlockRows, rows.size() - begin);
    ScoreBlock(rows, begin, n, scratch, out->data() + begin);
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace safe
