#include "src/serve/compiled_plan.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <string>

#include "src/serve/op_kernels.h"

namespace safe {
namespace serve {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Built-in operator name -> opcode. Anything not listed compiles to
/// kGeneric (virtual dispatch with pre-staged params). The mapping keys
/// on the registry name because that is the stable identifier serialized
/// plans carry; the per-opcode bodies in Execute are verbatim copies of
/// the corresponding Operator::Apply arithmetic, which is what makes the
/// compiled output bit-identical to the interpreted one.
OpCode LookupOpCode(const std::string& name) {
  if (name == "add") return OpCode::kAdd;
  if (name == "sub") return OpCode::kSub;
  if (name == "mul") return OpCode::kMul;
  if (name == "div") return OpCode::kDiv;
  if (name == "and") return OpCode::kAnd;
  if (name == "or") return OpCode::kOr;
  if (name == "xor") return OpCode::kXor;
  if (name == "log") return OpCode::kLog;
  if (name == "sqrt") return OpCode::kSqrt;
  if (name == "square") return OpCode::kSquare;
  if (name == "sigmoid") return OpCode::kSigmoid;
  if (name == "tanh") return OpCode::kTanh;
  if (name == "round") return OpCode::kRound;
  if (name == "abs") return OpCode::kAbs;
  if (name == "zscore" || name == "minmax") return OpCode::kZscore;
  if (name == "discretize") return OpCode::kDiscretize;
  if (name == "gbmean" || name == "gbmax" || name == "gbmin" ||
      name == "gbstd" || name == "gbcount") {
    return OpCode::kGroupBy;
  }
  if (name == "ridge") return OpCode::kRidge;
  if (name == "krr") return OpCode::kKrr;
  if (name == "cond") return OpCode::kCond;
  return OpCode::kGeneric;
}

/// True when `v` holds a non-negative integer (a count stored as double).
bool IsCount(double v) {
  return std::isfinite(v) && v >= 0.0 && v == std::floor(v) &&
         v <= 1e9;
}

/// Validates the fitted-param layout a specialized opcode will index into
/// at Execute time. The interpreted path trusts these layouts blindly at
/// Apply time; compiling is the moment to reject a malformed plan instead
/// of reading out of bounds per row.
Status ValidateParams(OpCode code, const std::string& op_name,
                      const std::vector<double>& params) {
  auto fail = [&](const std::string& what) {
    return Status::InvalidArgument("compile: operator '" + op_name + "': " +
                                   what);
  };
  switch (code) {
    case OpCode::kZscore:
    case OpCode::kRidge:
      if (params.size() != 2) return fail("expected 2 params");
      return Status::OK();
    case OpCode::kGroupBy: {
      if (params.empty() || !IsCount(params[0])) {
        return fail("missing/invalid edge count");
      }
      const size_t n = static_cast<size_t>(params[0]);
      // Layout: [n, edge_0..edge_{n-1}, agg_bin_0..agg_bin_{n+1}].
      if (params.size() != 1 + n + (n + 2)) {
        return fail("param layout does not match edge count");
      }
      return Status::OK();
    }
    case OpCode::kKrr: {
      if (params.size() < 2 || !IsCount(params[0]) || params[0] < 1.0) {
        return fail("missing/invalid landmark count");
      }
      const size_t m = static_cast<size_t>(params[0]);
      if (params.size() != 2 + 2 * m) {
        return fail("param layout does not match landmark count");
      }
      return Status::OK();
    }
    default:
      // Stateless opcodes ignore params; discretize treats every param as
      // an edge, so any size is a valid (possibly empty) edge list.
      return Status::OK();
  }
}

}  // namespace

Result<CompiledPlan> CompiledPlan::Compile(const FeaturePlan& plan,
                                           const OperatorRegistry& registry) {
  CompiledPlan compiled;
  compiled.num_inputs_ = plan.input_columns().size();
  compiled.scratch_size_ = compiled.num_inputs_ + plan.generated().size();
  if (compiled.scratch_size_ >
      static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return Status::InvalidArgument("compile: plan too large");
  }

  const auto& parent_slots = plan.parent_slots();
  compiled.instructions_.reserve(plan.generated().size());
  for (size_t g = 0; g < plan.generated().size(); ++g) {
    const GeneratedFeature& feature = plan.generated()[g];
    SAFE_ASSIGN_OR_RETURN(auto op, registry.Find(feature.op));
    if (parent_slots[g].size() != op->arity()) {
      return Status::InvalidArgument(
          "compile: feature '" + feature.name + "' has " +
          std::to_string(parent_slots[g].size()) + " parents, operator '" +
          feature.op + "' expects " + std::to_string(op->arity()));
    }
    Instruction inst;
    inst.code = LookupOpCode(feature.op);
    inst.arity = static_cast<uint8_t>(op->arity());
    inst.handles_missing = op->handles_missing();
    for (size_t p = 0; p < parent_slots[g].size(); ++p) {
      inst.parents[p] = static_cast<uint32_t>(parent_slots[g][p]);
    }
    inst.out = static_cast<uint32_t>(compiled.num_inputs_ + g);
    if (inst.code == OpCode::kGeneric) {
      inst.generic_index = static_cast<uint32_t>(compiled.generic_ops_.size());
      compiled.generic_ops_.push_back(std::move(op));
      compiled.generic_params_.push_back(feature.params);
    } else {
      SAFE_RETURN_NOT_OK(ValidateParams(inst.code, feature.op,
                                        feature.params));
      inst.param_begin = static_cast<uint32_t>(compiled.params_.size());
      inst.param_count = static_cast<uint32_t>(feature.params.size());
      compiled.params_.insert(compiled.params_.end(), feature.params.begin(),
                              feature.params.end());
    }
    compiled.instructions_.push_back(inst);
  }

  compiled.selected_slots_.reserve(plan.selected_slots().size());
  for (size_t slot : plan.selected_slots()) {
    compiled.selected_slots_.push_back(static_cast<uint32_t>(slot));
  }
  return compiled;
}

Result<CompiledPlan> CompiledPlan::Compile(const FeaturePlan& plan) {
  static const OperatorRegistry registry = OperatorRegistry::Default();
  return Compile(plan, registry);
}

void CompiledPlan::Execute(const double* row, double* scratch,
                           double* out) const {
  if (num_inputs_ > 0) {
    std::memcpy(scratch, row, num_inputs_ * sizeof(double));
  }
  const double* arena = params_.data();
  for (const Instruction& inst : instructions_) {
    double in[3] = {0.0, 0.0, 0.0};
    bool missing = false;
    for (uint8_t p = 0; p < inst.arity; ++p) {
      in[p] = scratch[inst.parents[p]];
      if (std::isnan(in[p])) missing = true;
    }
    double value = kNaN;
    if (!missing || inst.handles_missing) {
      const double* prm = arena + inst.param_begin;
      switch (inst.code) {
        case OpCode::kAdd:
          value = op::Add(in[0], in[1]);
          break;
        case OpCode::kSub:
          value = op::Sub(in[0], in[1]);
          break;
        case OpCode::kMul:
          value = op::Mul(in[0], in[1]);
          break;
        case OpCode::kDiv:
          value = op::Div(in[0], in[1]);
          break;
        case OpCode::kAnd:
          value = op::And(in[0], in[1]);
          break;
        case OpCode::kOr:
          value = op::Or(in[0], in[1]);
          break;
        case OpCode::kXor:
          value = op::Xor(in[0], in[1]);
          break;
        case OpCode::kLog:
          value = op::Log(in[0]);
          break;
        case OpCode::kSqrt:
          value = op::Sqrt(in[0]);
          break;
        case OpCode::kSquare:
          value = op::Square(in[0]);
          break;
        case OpCode::kSigmoid:
          value = op::SigmoidOp(in[0]);
          break;
        case OpCode::kTanh:
          value = op::Tanh(in[0]);
          break;
        case OpCode::kRound:
          value = op::Round(in[0]);
          break;
        case OpCode::kAbs:
          value = op::Abs(in[0]);
          break;
        case OpCode::kZscore:
          value = op::Zscore(in[0], prm);
          break;
        case OpCode::kDiscretize:
          value = op::Discretize(in[0], prm, inst.param_count);
          break;
        case OpCode::kGroupBy:
          value = op::GroupBy(in[0], prm);
          break;
        case OpCode::kRidge:
          value = op::Ridge(in[0], in[1], prm);
          break;
        case OpCode::kKrr:
          value = op::Krr(in[0], in[1], prm);
          break;
        case OpCode::kCond:
          value = op::Cond(in[0], in[1], in[2]);
          break;
        case OpCode::kGeneric:
          value = generic_ops_[inst.generic_index]->Apply(
              in, generic_params_[inst.generic_index]);
          break;
      }
    }
    scratch[inst.out] = value;
  }
  for (size_t i = 0; i < selected_slots_.size(); ++i) {
    out[i] = scratch[selected_slots_[i]];
  }
}

// lint: hot-path
void CompiledPlan::ExecuteBlock(double* panels, size_t stride,
                                size_t n) const {
  const double* arena = params_.data();
  for (const Instruction& inst : instructions_) {
    const double* p0 =
        inst.arity > 0 ? panels + inst.parents[0] * stride : nullptr;
    const double* p1 =
        inst.arity > 1 ? panels + inst.parents[1] * stride : nullptr;
    const double* p2 =
        inst.arity > 2 ? panels + inst.parents[2] * stride : nullptr;
    double* dst = panels + inst.out * stride;
    const double* prm = arena + inst.param_begin;
    const bool handles_missing = inst.handles_missing;
    // One contiguous lane loop per opcode. Each lane reproduces the
    // scalar Execute step exactly: the same missing short-circuit, then
    // the same op:: kernel — one shared definition, so bit-identity with
    // the per-row path is structural (serve_batch_equivalence_test).
    auto unary = [&](auto kernel) {
      for (size_t i = 0; i < n; ++i) {
        const double a = p0[i];
        dst[i] = (std::isnan(a) && !handles_missing) ? op::kNaN : kernel(a);
      }
    };
    auto binary = [&](auto kernel) {
      for (size_t i = 0; i < n; ++i) {
        const double a = p0[i];
        const double b = p1[i];
        dst[i] = ((std::isnan(a) || std::isnan(b)) && !handles_missing)
                     ? op::kNaN
                     : kernel(a, b);
      }
    };
    switch (inst.code) {
      case OpCode::kAdd:
        binary([](double a, double b) { return op::Add(a, b); });
        break;
      case OpCode::kSub:
        binary([](double a, double b) { return op::Sub(a, b); });
        break;
      case OpCode::kMul:
        binary([](double a, double b) { return op::Mul(a, b); });
        break;
      case OpCode::kDiv:
        binary([](double a, double b) { return op::Div(a, b); });
        break;
      case OpCode::kAnd:
        binary([](double a, double b) { return op::And(a, b); });
        break;
      case OpCode::kOr:
        binary([](double a, double b) { return op::Or(a, b); });
        break;
      case OpCode::kXor:
        binary([](double a, double b) { return op::Xor(a, b); });
        break;
      case OpCode::kLog:
        unary([](double a) { return op::Log(a); });
        break;
      case OpCode::kSqrt:
        unary([](double a) { return op::Sqrt(a); });
        break;
      case OpCode::kSquare:
        unary([](double a) { return op::Square(a); });
        break;
      case OpCode::kSigmoid:
        unary([](double a) { return op::SigmoidOp(a); });
        break;
      case OpCode::kTanh:
        unary([](double a) { return op::Tanh(a); });
        break;
      case OpCode::kRound:
        unary([](double a) { return op::Round(a); });
        break;
      case OpCode::kAbs:
        unary([](double a) { return op::Abs(a); });
        break;
      case OpCode::kZscore:
        unary([&](double a) { return op::Zscore(a, prm); });
        break;
      case OpCode::kDiscretize:
        unary([&](double a) {
          return op::Discretize(a, prm, inst.param_count);
        });
        break;
      case OpCode::kGroupBy:
        unary([&](double a) { return op::GroupBy(a, prm); });
        break;
      case OpCode::kRidge:
        binary([&](double a, double b) { return op::Ridge(a, b, prm); });
        break;
      case OpCode::kKrr:
        binary([&](double a, double b) { return op::Krr(a, b, prm); });
        break;
      case OpCode::kCond:
        for (size_t i = 0; i < n; ++i) {
          const double a = p0[i];
          const double b = p1[i];
          const double c = p2[i];
          dst[i] =
              ((std::isnan(a) || std::isnan(b) || std::isnan(c)) &&
               !handles_missing)
                  ? op::kNaN
                  : op::Cond(a, b, c);
        }
        break;
      case OpCode::kGeneric: {
        const Operator& generic = *generic_ops_[inst.generic_index];
        const std::vector<double>& params =
            generic_params_[inst.generic_index];
        for (size_t i = 0; i < n; ++i) {
          double in[3] = {0.0, 0.0, 0.0};
          bool missing = false;
          for (uint8_t p = 0; p < inst.arity; ++p) {
            in[p] = panels[inst.parents[p] * stride + i];
            if (std::isnan(in[p])) missing = true;
          }
          dst[i] = (missing && !handles_missing) ? op::kNaN
                                                 : generic.Apply(in, params);
        }
        break;
      }
    }
  }
}

Result<std::vector<double>> CompiledPlan::ExecuteRow(
    const std::vector<double>& row) const {
  if (row.size() != num_inputs_) {
    return Status::InvalidArgument(
        "compiled plan: expected " + std::to_string(num_inputs_) +
        " values, got " + std::to_string(row.size()));
  }
  std::vector<double> scratch(scratch_size_);
  std::vector<double> out(num_outputs());
  Execute(row.data(), scratch.data(), out.data());
  return out;
}

}  // namespace serve
}  // namespace safe
