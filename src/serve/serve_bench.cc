#include "src/serve/serve_bench.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/gbdt/booster.h"
#include "src/obs/flight_recorder.h"
#include "src/serve/batch_scorer.h"
#include "src/serve/scorer.h"
// lint: layering-ok(the benchmark driver sits above the whole serving stack by design; it is a tool, not a library layer)
#include "src/serve/server/scoring_server.h"

namespace safe {
namespace serve {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// NaN-aware bitwise agreement (NaN payload bits are not contractual).
bool SameOutput(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::isnan(a) && std::isnan(b);
  return Bits(a) == Bits(b);
}

PathStats SummarizeSamples(std::vector<uint64_t>* samples_ns) {
  PathStats stats;
  if (samples_ns->empty()) return stats;
  std::sort(samples_ns->begin(), samples_ns->end());
  const size_t n = samples_ns->size();
  stats.p50_us = static_cast<double>((*samples_ns)[n / 2]) / 1e3;
  stats.p99_us =
      static_cast<double>((*samples_ns)[std::min(n - 1, (n * 99) / 100)]) /
      1e3;
  uint64_t total_ns = 0;
  for (uint64_t s : *samples_ns) total_ns += s;
  if (total_ns > 0) {
    stats.rows_per_s =
        static_cast<double>(n) / (static_cast<double>(total_ns) / 1e9);
  }
  return stats;
}

obs::JsonValue PathStatsToJson(const PathStats& stats) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("p50_us", obs::JsonValue(stats.p50_us));
  out.Set("p99_us", obs::JsonValue(stats.p99_us));
  out.Set("rows_per_s", obs::JsonValue(stats.rows_per_s));
  return out;
}

/// Percentiles over completed-request latencies plus the run-wide
/// completion rate (completed / wall-clock, not 1/mean-latency — the two
/// differ whenever clients overlap).
ServerLoadStats SummarizeLoad(std::vector<uint64_t>* samples_ns,
                              uint64_t wall_ns, uint64_t rejected) {
  ServerLoadStats stats;
  stats.completed = samples_ns->size();
  stats.rejected = rejected;
  if (!samples_ns->empty()) {
    std::sort(samples_ns->begin(), samples_ns->end());
    const size_t n = samples_ns->size();
    stats.p50_us = static_cast<double>((*samples_ns)[n / 2]) / 1e3;
    stats.p99_us =
        static_cast<double>((*samples_ns)[std::min(n - 1, (n * 99) / 100)]) /
        1e3;
  }
  if (wall_ns > 0) {
    stats.sustained_qps = static_cast<double>(stats.completed) /
                          (static_cast<double>(wall_ns) / 1e9);
  }
  return stats;
}

obs::JsonValue LoadStatsToJson(const ServerLoadStats& stats) {
  obs::JsonValue out = obs::JsonValue::Object();
  out.Set("p50_us", obs::JsonValue(stats.p50_us));
  out.Set("p99_us", obs::JsonValue(stats.p99_us));
  out.Set("sustained_qps", obs::JsonValue(stats.sustained_qps));
  out.Set("completed", obs::JsonValue(uint64_t{stats.completed}));
  out.Set("rejected", obs::JsonValue(uint64_t{stats.rejected}));
  return out;
}

}  // namespace

obs::JsonValue ServeBenchReport::ToJson() const {
  obs::JsonValue out = obs::JsonValue::Object();
  obs::JsonValue config = obs::JsonValue::Object();
  config.Set("score_rows", obs::JsonValue(uint64_t{score_rows}));
  config.Set("repeats", obs::JsonValue(uint64_t{repeats}));
  config.Set("features", obs::JsonValue(uint64_t{features}));
  config.Set("outputs", obs::JsonValue(uint64_t{outputs}));
  config.Set("generated", obs::JsonValue(uint64_t{generated}));
  config.Set("trees", obs::JsonValue(uint64_t{trees}));
  out.Set("config", std::move(config));
  out.Set("naive_per_row", PathStatsToJson(naive));
  out.Set("fused_per_row", PathStatsToJson(fused));
  obs::JsonValue batch = obs::JsonValue::Object();
  batch.Set("rows_per_s", obs::JsonValue(batch_rows_per_s));
  batch.Set("loop_rows_per_s", obs::JsonValue(loop_batch_rows_per_s));
  batch.Set("block_rows", obs::JsonValue(uint64_t{block_rows}));
  out.Set("fused_batch", std::move(batch));
  obs::JsonValue sweep_json = obs::JsonValue::Array();
  for (const BatchSweepPoint& point : sweep) {
    obs::JsonValue entry = obs::JsonValue::Object();
    entry.Set("batch", obs::JsonValue(uint64_t{point.batch_size}));
    entry.Set("rows_per_s", obs::JsonValue(point.rows_per_s));
    sweep_json.Append(std::move(entry));
  }
  out.Set("batch_sweep", std::move(sweep_json));
  out.Set("speedup_per_row", obs::JsonValue(speedup));
  out.Set("speedup_batch", obs::JsonValue(batch_speedup));
  out.Set("outputs_identical", obs::JsonValue(outputs_identical));
  obs::JsonValue recorder = obs::JsonValue::Object();
  recorder.Set("enabled", obs::JsonValue(recorder_enabled));
  recorder.Set("fused_armed_rows_per_s",
               obs::JsonValue(fused_armed_rows_per_s));
  recorder.Set("fused_disarmed_rows_per_s",
               obs::JsonValue(fused_disarmed_rows_per_s));
  recorder.Set("overhead_pct", obs::JsonValue(recorder_overhead_pct));
  out.Set("recorder", std::move(recorder));
  obs::JsonValue server_json = obs::JsonValue::Object();
  obs::JsonValue server_config = obs::JsonValue::Object();
  server_config.Set("shards", obs::JsonValue(uint64_t{server_shards}));
  server_config.Set("clients", obs::JsonValue(uint64_t{server_clients}));
  server_config.Set("max_batch_rows",
                    obs::JsonValue(uint64_t{server_batch_rows}));
  server_config.Set("max_wait_us",
                    obs::JsonValue(uint64_t{server_batch_wait_us}));
  server_json.Set("config", std::move(server_config));
  server_json.Set("outputs_identical",
                  obs::JsonValue(server_outputs_identical));
  server_json.Set("closed_loop", LoadStatsToJson(server_closed));
  obs::JsonValue open_json = LoadStatsToJson(server_open);
  open_json.Set("target_qps", obs::JsonValue(server_open_target_qps));
  server_json.Set("open_loop", std::move(open_json));
  server_json.Set("mean_batch_fill", obs::JsonValue(server_mean_batch_fill));
  out.Set("server", std::move(server_json));
  return out;
}

Result<ServeBenchReport> RunServeBench(const ServeBenchOptions& options) {
  ServeBenchOptions opts = options;
  if (opts.quick) {
    opts.train_rows = std::min<size_t>(opts.train_rows, 1000);
    opts.score_rows = std::min<size_t>(opts.score_rows, 8000);
    opts.server.closed_requests_per_client =
        std::min<size_t>(opts.server.closed_requests_per_client, 800);
    opts.server.open_requests =
        std::min<size_t>(opts.server.open_requests, 6000);
    opts.server.open_target_qps =
        std::min(opts.server.open_target_qps, 12000.0);
  }
  if (opts.train_rows == 0 || opts.score_rows == 0 || opts.repeats == 0 ||
      opts.features == 0 || opts.batch_size == 0) {
    return Status::InvalidArgument("serve bench: all sizes must be > 0");
  }
  if (opts.server.num_shards == 0 || opts.server.client_threads == 0 ||
      opts.server.max_batch_rows == 0 || opts.server.queue_capacity == 0) {
    return Status::InvalidArgument("serve bench: server sizes must be > 0");
  }

  // Fit a SAFE plan and a GBDT on a synthetic workload.
  data::SyntheticSpec spec;
  spec.num_rows = opts.train_rows;
  spec.num_features = opts.features;
  spec.num_informative = std::max<size_t>(1, opts.features / 2);
  spec.num_interactions = 3;
  spec.seed = opts.seed;
  SAFE_ASSIGN_OR_RETURN(Dataset train, data::MakeSyntheticDataset(spec));

  SafeParams safe_params;
  safe_params.seed = opts.seed;
  SafeEngine engine(safe_params);
  SAFE_ASSIGN_OR_RETURN(SafeFitResult fit, engine.Fit(train));
  const FeaturePlan& plan = fit.plan;

  SAFE_ASSIGN_OR_RETURN(DataFrame engineered, plan.Transform(train.x));
  gbdt::GbdtParams gbdt_params;
  gbdt_params.seed = opts.seed;
  Dataset engineered_train{std::move(engineered), train.y};
  SAFE_ASSIGN_OR_RETURN(
      gbdt::Booster booster,
      gbdt::Booster::Fit(engineered_train, nullptr, gbdt_params));

  SAFE_ASSIGN_OR_RETURN(RowScorer scorer, RowScorer::Create(plan, booster));

  // Fresh rows from the same distribution for scoring.
  data::SyntheticSpec score_spec = spec;
  score_spec.num_rows = opts.score_rows;
  score_spec.seed = opts.seed + 1;
  SAFE_ASSIGN_OR_RETURN(Dataset score_data,
                        data::MakeSyntheticDataset(score_spec));
  std::vector<std::vector<double>> rows;
  rows.reserve(opts.score_rows);
  for (size_t r = 0; r < opts.score_rows; ++r) {
    rows.push_back(score_data.x.Row(r));
  }

  ServeBenchReport report;
  report.score_rows = opts.score_rows;
  report.repeats = opts.repeats;
  report.features = opts.features;
  report.outputs = plan.selected().size();
  report.generated = plan.generated().size();
  report.trees = booster.trees().size();
  report.block_rows = BatchScorer::kBlockRows;

  // Bit-identity sweep (doubles as warmup for both paths).
  RowScorer::Scratch scratch = scorer.MakeScratch();
  report.outputs_identical = true;
  for (const std::vector<double>& row : rows) {
    SAFE_ASSIGN_OR_RETURN(std::vector<double> transformed,
                          plan.TransformRow(row));
    const double naive = booster.PredictRowProba(transformed);
    const double fused = scorer.ScoreRow(row.data(), &scratch);
    if (!SameOutput(naive, fused)) {
      report.outputs_identical = false;
      break;
    }
  }
  if (!report.outputs_identical) {
    return Status::Internal(
        "serve bench: fused scorer diverged from the naive path");
  }

  // Batch chunks are staged (and warmed once, untimed) before any timing
  // so neither path pays their construction.
  std::vector<std::vector<std::vector<double>>> chunks;
  for (size_t begin = 0; begin < rows.size(); begin += opts.batch_size) {
    const size_t end = std::min(rows.size(), begin + opts.batch_size);
    chunks.emplace_back(rows.begin() + static_cast<long>(begin),
                        rows.begin() + static_cast<long>(end));
  }
  std::vector<double> batch_out;
  for (const auto& chunk : chunks) {
    SAFE_RETURN_NOT_OK(scorer.ScoreBatch(chunk, &batch_out));
  }

  // The three paths are timed interleaved, pass by pass, so slow clock
  // drift (thermal / frequency scaling) biases the speedup ratio as
  // little as possible on a shared machine.
  std::vector<uint64_t> naive_samples;
  std::vector<uint64_t> fused_samples;
  naive_samples.reserve(opts.score_rows * opts.repeats);
  fused_samples.reserve(opts.score_rows * opts.repeats);
  uint64_t batch_ns = 0;
  uint64_t loop_batch_ns = 0;
  for (size_t pass = 0; pass < opts.repeats; ++pass) {
    // Naive per-row path: interpreted TransformRow + booster row predict.
    for (const std::vector<double>& row : rows) {
      const uint64_t t0 = NowNs();
      auto transformed = plan.TransformRow(row);
      if (!transformed.ok()) return transformed.status();
      const double proba = booster.PredictRowProba(*transformed);
      naive_samples.push_back(NowNs() - t0);
      (void)proba;  // the call's cost is the subject; value unused
    }
    // Fused per-row path over one reusable scratch.
    for (const std::vector<double>& row : rows) {
      const uint64_t t0 = NowNs();
      const double proba = scorer.ScoreRow(row.data(), &scratch);
      fused_samples.push_back(NowNs() - t0);
      (void)proba;
    }
    // Naive-loop batch pass: the same chunks scored by looping ScoreRow
    // (what ScoreBatch did before vectorization), so the vectorized
    // pass below is compared against a loop and not just against the
    // interpreted path.
    const uint64_t loop_t0 = NowNs();
    for (const auto& chunk : chunks) {
      batch_out.resize(chunk.size());
      for (size_t r = 0; r < chunk.size(); ++r) {
        batch_out[r] = scorer.ScoreRow(chunk[r].data(), &scratch);
      }
    }
    loop_batch_ns += NowNs() - loop_t0;
    // Vectorized micro-batch path.
    const uint64_t batch_t0 = NowNs();
    for (const auto& chunk : chunks) {
      SAFE_RETURN_NOT_OK(scorer.ScoreBatch(chunk, &batch_out));
    }
    batch_ns += NowNs() - batch_t0;
  }
  report.naive = SummarizeSamples(&naive_samples);
  report.fused = SummarizeSamples(&fused_samples);
  if (batch_ns > 0) {
    report.batch_rows_per_s =
        static_cast<double>(opts.score_rows * opts.repeats) /
        (static_cast<double>(batch_ns) / 1e9);
  }
  if (loop_batch_ns > 0) {
    report.loop_batch_rows_per_s =
        static_cast<double>(opts.score_rows * opts.repeats) /
        (static_cast<double>(loop_batch_ns) / 1e9);
  }

  if (report.naive.rows_per_s > 0.0) {
    report.speedup = report.fused.rows_per_s / report.naive.rows_per_s;
    report.batch_speedup = report.batch_rows_per_s / report.naive.rows_per_s;
  }

  // Batch-size sweep: ScoreBatch throughput as rows-per-call varies.
  // Every size is first verified bit-identical to the fused per-row
  // outputs (block boundaries and ragged tails must never change
  // results), then timed over the whole scoring set.
  {
    std::vector<double> expected(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      expected[r] = scorer.ScoreRow(rows[r].data(), &scratch);
    }
    for (const size_t size : {size_t{1}, size_t{16}, size_t{64}, size_t{128},
                              size_t{256}, size_t{1024}}) {
      if (size > rows.size()) continue;
      std::vector<std::vector<std::vector<double>>> sweep_chunks;
      for (size_t begin = 0; begin < rows.size(); begin += size) {
        const size_t end = std::min(rows.size(), begin + size);
        sweep_chunks.emplace_back(rows.begin() + static_cast<long>(begin),
                                  rows.begin() + static_cast<long>(end));
      }
      // Warm + equivalence check, untimed.
      size_t checked = 0;
      for (const auto& chunk : sweep_chunks) {
        SAFE_RETURN_NOT_OK(scorer.ScoreBatch(chunk, &batch_out));
        for (size_t r = 0; r < chunk.size(); ++r, ++checked) {
          if (!SameOutput(expected[checked], batch_out[r])) {
            return Status::Internal(
                "serve bench: batch size " + std::to_string(size) +
                " diverged from the per-row path at row " +
                std::to_string(checked));
          }
        }
      }
      uint64_t best_ns = 0;
      for (size_t pass = 0; pass < std::max<size_t>(opts.repeats, 2); ++pass) {
        const uint64_t t0 = NowNs();
        for (const auto& chunk : sweep_chunks) {
          SAFE_RETURN_NOT_OK(scorer.ScoreBatch(chunk, &batch_out));
        }
        const uint64_t elapsed = NowNs() - t0;
        if (best_ns == 0 || elapsed < best_ns) best_ns = elapsed;
      }
      BatchSweepPoint point;
      point.batch_size = size;
      if (best_ns > 0) {
        point.rows_per_s = static_cast<double>(rows.size()) /
                           (static_cast<double>(best_ns) / 1e9);
      }
      report.sweep.push_back(point);
    }
  }

  // Recorder overhead on the fused path: whole passes re-timed with the
  // flight recorder armed vs disarmed. Each pass times both arms,
  // alternating which goes first so the warmer-cache advantage of the
  // second half doesn't systematically flatter either arm. The gate
  // consumes the ratio of per-arm *minima* across passes: scheduler
  // interference only ever adds time, so the minimum of each arm is the
  // interference-free estimate, where a per-pass ratio would inherit
  // the noise of whichever pass it came from. With SAFE_TELEMETRY=OFF
  // both arms run the same no-op code and the gate is skipped
  // (recorder_enabled = false).
  report.recorder_enabled = SAFE_TELEMETRY_ENABLED != 0;
  {
    const bool was_armed = obs::FlightRecorder::armed();
    const size_t overhead_passes = 2 * std::max<size_t>(opts.repeats, 5);
    uint64_t armed_min_ns = 0;
    uint64_t disarmed_min_ns = 0;
    for (size_t pass = 0; pass < overhead_passes; ++pass) {
      const bool armed_first = (pass % 2) != 0;
      for (int half = 0; half < 2; ++half) {
        const bool arm = (half == 0) == armed_first;
        if (arm) {
          obs::FlightRecorder::Arm();
        } else {
          obs::FlightRecorder::Disarm();
        }
        const uint64_t t0 = NowNs();
        for (const std::vector<double>& row : rows) {
          const double proba = scorer.ScoreRow(row.data(), &scratch);
          (void)proba;
        }
        const uint64_t elapsed = NowNs() - t0;
        uint64_t& best = arm ? armed_min_ns : disarmed_min_ns;
        if (best == 0 || elapsed < best) best = elapsed;
      }
    }
    if (!was_armed) obs::FlightRecorder::Disarm();
    if (disarmed_min_ns > 0 && armed_min_ns > 0) {
      report.recorder_overhead_pct =
          (static_cast<double>(armed_min_ns) /
               static_cast<double>(disarmed_min_ns) -
           1.0) *
          100.0;
      const double scored = static_cast<double>(rows.size());
      report.fused_armed_rows_per_s =
          scored / (static_cast<double>(armed_min_ns) / 1e9);
      report.fused_disarmed_rows_per_s =
          scored / (static_cast<double>(disarmed_min_ns) / 1e9);
    }
  }

  // --- Scoring server under load (src/serve/server/) ---
  {
    server::ServerOptions server_options;
    server_options.num_shards = opts.server.num_shards;
    server_options.queue_capacity = opts.server.queue_capacity;
    server_options.batcher.max_batch_rows = opts.server.max_batch_rows;
    server_options.batcher.max_wait_us = opts.server.max_wait_us;
    SAFE_ASSIGN_OR_RETURN(
        std::unique_ptr<server::ScoringServer> scoring_server,
        server::ScoringServer::Create(plan, booster, server_options));
    report.server_shards = scoring_server->num_shards();
    report.server_clients = opts.server.client_threads;
    report.server_batch_rows = opts.server.max_batch_rows;
    report.server_batch_wait_us = opts.server.max_wait_us;
    report.server_open_target_qps = opts.server.open_target_qps;

    // Server equivalence before any timing: mixed single-row and batch
    // requests, every response bit-compared to the fused per-row path
    // (which the earlier sweep already proved equal to the naive path).
    {
      std::vector<double> expected(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) {
        expected[r] = scorer.ScoreRow(rows[r].data(), &scratch);
      }
      const size_t single_rows = std::min<size_t>(rows.size(), 512);
      for (size_t r = 0; r < single_rows; ++r) {
        SAFE_ASSIGN_OR_RETURN(const double proba,
                              scoring_server->Score(r, rows[r]));
        if (!SameOutput(expected[r], proba)) {
          return Status::Internal(
              "serve bench: server single-row response diverged from the "
              "fused path at row " +
              std::to_string(r));
        }
      }
      size_t checked = 0;
      for (size_t c = 0; c < chunks.size(); ++c) {
        SAFE_RETURN_NOT_OK(
            scoring_server->ScoreBatch(c, chunks[c], &batch_out));
        for (size_t r = 0; r < chunks[c].size(); ++r, ++checked) {
          if (!SameOutput(expected[checked], batch_out[r])) {
            return Status::Internal(
                "serve bench: server batch response diverged from the "
                "fused path at row " +
                std::to_string(checked));
          }
        }
      }
      report.server_outputs_identical = true;
    }

    const size_t clients = opts.server.client_threads;
    std::atomic<bool> failed{false};

    // Closed loop: each client keeps exactly one request outstanding, so
    // completions track the service rate and queues never saturate.
    {
      const size_t per_client = opts.server.closed_requests_per_client;
      std::vector<std::vector<uint64_t>> samples(clients);
      std::atomic<uint64_t> rejected{0};
      const uint64_t wall_t0 = NowNs();
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          std::vector<uint64_t>& mine = samples[c];
          mine.reserve(per_client);
          for (size_t i = 0; i < per_client; ++i) {
            const size_t r = (c * per_client + i) % rows.size();
            const uint64_t t0 = NowNs();
            const Result<double> proba =
                scoring_server->Score(c * per_client + i, rows[r]);
            if (!proba.ok()) {
              if (proba.status().code() == StatusCode::kUnavailable) {
                // lint: mo-ok(standalone tally, read only after the thread joins)
                rejected.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              // lint: mo-ok(standalone flag, read only after the thread joins)
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            mine.push_back(NowNs() - t0);
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      const uint64_t wall_ns = NowNs() - wall_t0;
      // lint: mo-ok(joins above order every worker write before this read)
      if (failed.load(std::memory_order_relaxed)) {
        return Status::Internal("serve bench: closed-loop request failed");
      }
      std::vector<uint64_t> merged;
      for (const std::vector<uint64_t>& part : samples) {
        merged.insert(merged.end(), part.begin(), part.end());
      }
      report.server_closed =
          SummarizeLoad(&merged, wall_ns,
                        // lint: mo-ok(joins above order every worker write before this read)
                        rejected.load(std::memory_order_relaxed));
    }

    // Open loop: arrivals are scheduled on a fixed grid at the target
    // rate regardless of completions, and latency is measured from the
    // *scheduled* arrival — a server falling behind pays its backlog in
    // the tail instead of quietly slowing the generator down.
    {
      const size_t total = opts.server.open_requests;
      const double target_qps = std::max(1.0, opts.server.open_target_qps);
      const double ns_per_req = 1e9 / target_qps;
      std::vector<std::vector<uint64_t>> samples(clients);
      std::vector<uint64_t> last_done(clients, 0);
      std::atomic<uint64_t> rejected{0};
      // Start 1 ms out so no client begins behind its first arrival.
      const uint64_t start_ns = NowNs() + 1000000;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          for (size_t i = c; i < total; i += clients) {
            const uint64_t arrival =
                start_ns +
                static_cast<uint64_t>(static_cast<double>(i) * ns_per_req);
            for (;;) {
              const uint64_t now = NowNs();
              if (now >= arrival) break;
              const uint64_t remaining = arrival - now;
              if (remaining > 200000) {
                // Sleep to within ~100 us of the arrival, then spin the
                // rest (sleep_for wakeups are too coarse for the grid).
                std::this_thread::sleep_for(
                    std::chrono::nanoseconds(remaining - 100000));
              } else {
                std::this_thread::yield();
              }
            }
            const Result<double> proba =
                scoring_server->Score(i, rows[i % rows.size()]);
            const uint64_t done = NowNs();
            if (!proba.ok()) {
              if (proba.status().code() == StatusCode::kUnavailable) {
                // lint: mo-ok(standalone tally, read only after the thread joins)
                rejected.fetch_add(1, std::memory_order_relaxed);
                continue;
              }
              // lint: mo-ok(standalone flag, read only after the thread joins)
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            samples[c].push_back(done - arrival);
            last_done[c] = done;
          }
        });
      }
      for (std::thread& thread : threads) thread.join();
      // lint: mo-ok(joins above order every worker write before this read)
      if (failed.load(std::memory_order_relaxed)) {
        return Status::Internal("serve bench: open-loop request failed");
      }
      uint64_t end_ns = start_ns;
      for (const uint64_t done : last_done) end_ns = std::max(end_ns, done);
      std::vector<uint64_t> merged;
      for (const std::vector<uint64_t>& part : samples) {
        merged.insert(merged.end(), part.begin(), part.end());
      }
      report.server_open =
          SummarizeLoad(&merged, end_ns - start_ns,
                        // lint: mo-ok(joins above order every worker write before this read)
                        rejected.load(std::memory_order_relaxed));
    }

    scoring_server->Stop();
    const server::ServerStats server_stats = scoring_server->stats();
    if (server_stats.batches > 0) {
      report.server_mean_batch_fill =
          static_cast<double>(server_stats.completed_rows) /
          static_cast<double>(server_stats.batches);
    }
  }
  return report;
}

Result<ServingGate> ReadServingGate(const std::string& baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    return Status::IoError("cannot open gate baseline '" + baseline_path +
                           "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue doc;
  std::string error;
  if (!obs::JsonValue::Parse(buffer.str(), &doc, &error)) {
    return Status::InvalidArgument("gate baseline '" + baseline_path +
                                   "': " + error);
  }
  const obs::JsonValue* min_speedup = doc.Find("min_speedup");
  if (min_speedup == nullptr ||
      min_speedup->type() != obs::JsonValue::Type::kNumber) {
    return Status::InvalidArgument("gate baseline '" + baseline_path +
                                   "' lacks a numeric min_speedup");
  }
  ServingGate gate;
  gate.min_speedup = min_speedup->number_value();
  const obs::JsonValue* overhead = doc.Find("max_recorder_overhead_pct");
  if (overhead != nullptr) {
    if (overhead->type() != obs::JsonValue::Type::kNumber) {
      return Status::InvalidArgument(
          "gate baseline '" + baseline_path +
          "': max_recorder_overhead_pct must be a number");
    }
    gate.max_recorder_overhead_pct = overhead->number_value();
  }
  const obs::JsonValue* batch = doc.Find("min_batch_speedup");
  if (batch != nullptr) {
    if (batch->type() != obs::JsonValue::Type::kNumber) {
      return Status::InvalidArgument("gate baseline '" + baseline_path +
                                     "': min_batch_speedup must be a number");
    }
    gate.min_batch_speedup = batch->number_value();
  }
  const obs::JsonValue* qps = doc.Find("min_sustained_qps");
  if (qps != nullptr) {
    if (qps->type() != obs::JsonValue::Type::kNumber) {
      return Status::InvalidArgument("gate baseline '" + baseline_path +
                                     "': min_sustained_qps must be a number");
    }
    gate.min_sustained_qps = qps->number_value();
  }
  return gate;
}

}  // namespace serve
}  // namespace safe
