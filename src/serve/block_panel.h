#pragma once

#include <cstddef>
#include <vector>

#include "src/common/result.h"

namespace safe {
namespace serve {

/// Column-panel layout of a row block: value of column (slot) `s` for
/// block-local row (lane) `i` lives at `panel[s * stride + i]`. The
/// batch scorer transposes each block of incoming rows into this shape
/// so every opcode — and every forest split — reads one contiguous lane
/// span instead of striding across row vectors.

/// Unchecked hot-path transpose: rows [begin, begin + n) of `rows`, each
/// of length `width`, into the first `width` slots of `panel`. The
/// caller guarantees n <= stride and uniform row width; lanes >= n of
/// each slot are left untouched (they never reach an output). Copies are
/// raw 64-bit moves, so NaN payload bits survive unchanged.
void GatherBlock(const std::vector<std::vector<double>>& rows, size_t begin,
                 size_t n, size_t width, size_t stride, double* panel);

/// Same transpose over an array of row pointers instead of owned row
/// vectors — the scoring server stages requests as pointers into caller
/// memory, so micro-batches are gathered without copying rows first.
/// `rows[0..n)` must each point at `width` doubles.
void GatherBlockPtrs(const double* const* rows, size_t n, size_t width,
                     size_t stride, double* panel);

/// Checked whole-batch transpose for tests and offline callers: returns
/// a width x stride panel holding all of `rows`. Rejects an empty batch,
/// zero-width rows, a ragged batch (any row width differing from the
/// first), and stride < rows.size() — a Status error in every case,
/// never UB.
[[nodiscard]] Result<std::vector<double>> RowsToPanel(
    const std::vector<std::vector<double>>& rows, size_t stride);

/// Inverse of RowsToPanel: lanes [0, num_rows) of a width x stride panel
/// back to row vectors. Same rejection rules (empty/zero sizes, stride <
/// num_rows, panel size not width * stride). Round-tripping through
/// RowsToPanel/PanelToRows is lossless to the bit, NaN payloads included
/// (serve_block_panel_test).
[[nodiscard]] Result<std::vector<std::vector<double>>> PanelToRows(
    const std::vector<double>& panel, size_t num_rows, size_t width,
    size_t stride);

}  // namespace serve
}  // namespace safe
