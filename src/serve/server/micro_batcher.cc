#include "src/serve/server/micro_batcher.h"

namespace safe {
namespace serve {
namespace server {

MicroBatcher::Decision MicroBatcher::Decide(size_t pending_rows,
                                            uint64_t oldest_ns,
                                            uint64_t now_ns,
                                            bool closing) const {
  Decision decision;
  if (pending_rows == 0) {
    // Idle: wait for the doorbell. An elapsed timeout with nothing
    // staged must not cut (there is nothing to score) and must not set a
    // deadline (there is nothing whose wait to bound).
    decision.action = Action::kWait;
    decision.has_deadline = false;
    return decision;
  }
  if (closing) {
    decision.action = Action::kCut;
    return decision;
  }
  if (pending_rows >= options_.max_batch_rows) {
    decision.action = Action::kCut;
    return decision;
  }
  const uint64_t deadline_ns = oldest_ns + options_.max_wait_us * 1000;
  if (now_ns >= deadline_ns) {
    decision.action = Action::kCut;
    return decision;
  }
  decision.action = Action::kWait;
  decision.deadline_ns = deadline_ns;
  decision.has_deadline = true;
  return decision;
}

}  // namespace server
}  // namespace serve
}  // namespace safe
