#pragma once

#include <cstddef>
#include <cstdint>

namespace safe {
namespace serve {
namespace server {

/// \brief Dynamic micro-batching policy: admit up to B rows or wait at
/// most T microseconds past the oldest pending row, whichever comes
/// first (DESIGN.md "Scoring server").
struct BatcherOptions {
  /// B — rows that trigger an immediate cut. Batches may overshoot B
  /// when a single multi-row request straddles the boundary; the scorer
  /// splits oversized batches into kBlockRows blocks, so overshoot only
  /// affects batching granularity, never results.
  size_t max_batch_rows = 64;
  /// T — max time a pending row waits for co-riders before the batch is
  /// cut anyway (the tail-latency bound).
  uint64_t max_wait_us = 100;
};

/// \brief The cut decision engine, deliberately free of clocks, threads
/// and queues: every input (pending rows, oldest enqueue time, "now",
/// closing flag) is a parameter, so scripted arrival sequences with a
/// fake clock drive it through every branch with exact assertions and
/// zero real sleeps (serve_micro_batcher_test). The shard worker loop in
/// ScoringServer feeds it the steady clock.
///
/// Rules, in precedence order:
///   1. nothing pending      -> kWait with no deadline (a timeout never
///                              cuts an empty batch — "empty-timeout");
///   2. closing              -> kCut (flush-on-close: drain what is
///                              staged without waiting for co-riders);
///   3. pending >= B         -> kCut (row-count trigger);
///   4. now >= oldest + T    -> kCut (wait-time trigger);
///   5. otherwise            -> kWait until oldest + T.
class MicroBatcher {
 public:
  enum class Action {
    kWait,  ///< sleep until `deadline_ns` (or indefinitely when none)
    kCut,   ///< score the staged rows now
  };

  struct Decision {
    Action action = Action::kWait;
    /// Absolute wake-up time for kWait, in the same clock as `now_ns`;
    /// meaningful only when `has_deadline`.
    uint64_t deadline_ns = 0;
    bool has_deadline = false;

    bool operator==(const Decision& other) const {
      return action == other.action &&
             has_deadline == other.has_deadline &&
             (!has_deadline || deadline_ns == other.deadline_ns);
    }
  };

  explicit MicroBatcher(const BatcherOptions& options) : options_(options) {}

  const BatcherOptions& options() const { return options_; }

  /// Pure function of its arguments (same inputs, same decision —
  /// that is the whole determinism story of the batcher layer).
  /// `oldest_ns` is the enqueue timestamp of the earliest pending row;
  /// ignored when `pending_rows` is 0.
  [[nodiscard]] Decision Decide(size_t pending_rows, uint64_t oldest_ns,
                                uint64_t now_ns, bool closing) const;

 private:
  BatcherOptions options_;
};

}  // namespace server
}  // namespace serve
}  // namespace safe
