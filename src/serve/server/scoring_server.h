#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mpsc_queue.h"
#include "src/common/thread_annotations.h"
#include "src/common/result.h"
#include "src/core/feature_plan.h"
#include "src/gbdt/booster.h"
#include "src/serve/batch_scorer.h"
#include "src/serve/server/micro_batcher.h"

namespace safe {
namespace serve {
namespace server {

/// \brief Scoring-server configuration (DESIGN.md "Scoring server").
struct ServerOptions {
  /// Independent shards: each owns a bounded MPSC request queue, one
  /// dedicated worker thread, and its own BatchScorer replica (private
  /// scratch, no cross-shard state), so shards never contend.
  size_t num_shards = 1;
  /// Per-shard queue bound in *requests* (a k-row batch request occupies
  /// one slot). A full queue rejects — admission control, not blocking.
  /// Rounded up to a power of two by the queue.
  size_t queue_capacity = 1024;
  /// Dynamic micro-batching policy (B rows / T microseconds).
  BatcherOptions batcher;
};

/// \brief Always-on functional counters (plain atomics, independent of
/// SAFE_TELEMETRY): the no-loss/no-duplication contract is asserted on
/// these in every build mode.
struct ServerStats {
  uint64_t accepted_requests = 0;
  uint64_t accepted_rows = 0;
  uint64_t rejected_requests = 0;
  uint64_t completed_requests = 0;
  uint64_t completed_rows = 0;
  uint64_t batches = 0;
};

/// \brief Multi-threaded scoring service over the vectorized batch
/// engine: the in-process front of ROADMAP item 2.
///
/// Architecture (client thread -> response):
///
///   Score()/ScoreBatch() --TryPush--> shard MPSC queue --drain--> worker
///     worker stages requests, MicroBatcher decides the cut (B rows or
///     T us past the oldest pending row), BatchScorer::ScoreBlockPtrs
///     scores the staged row pointers in kBlockRows blocks, the worker
///     writes each request's output slots and rings its completion sync.
///
/// Contracts:
///   - Determinism: every response is bit-identical to calling
///     RowScorer::Score on the same row, for any shard count, batcher
///     setting, arrival interleaving, or batch cut points — micro-batch
///     composition is invisible in the outputs (serve_server_test,
///     DESIGN.md "Vectorized batch execution" output contract).
///   - Backpressure: when a shard queue is full (or the server is
///     stopping) submission fails fast with StatusCode::kUnavailable;
///     the caller's output buffer is untouched. Nothing ever blocks on
///     admission, nothing accepted is ever dropped or scored twice.
///   - Shutdown: Stop() closes the queues (new requests rejected),
///     flushes every staged and queued request (flush-on-close), then
///     joins the workers; every accepted request completes.
///
/// Telemetry: serve.server.{requests,rows,rejected,batches} counters and
/// serve.server.{latency_us,batch_fill,queue_depth} histograms — a
/// namespace disjoint from the library-call series serve.latency_us /
/// serve.batch_latency_us, so server traffic never pollutes those.
/// Flight-recorder spans: serve.server.batch per cut on each shard
/// worker timeline ("server.shard<k>").
class ScoringServer {
 public:
  /// Builds per-shard BatchScorer replicas from the fitted plan +
  /// booster and starts the shard workers. Fails like BatchScorer::
  /// Create (plan/booster mismatch) or on zero-sized options.
  [[nodiscard]] static Result<std::unique_ptr<ScoringServer>> Create(
      const FeaturePlan& plan, const gbdt::Booster& booster,
      const ServerOptions& options);

  ~ScoringServer();

  ScoringServer(const ScoringServer&) = delete;
  ScoringServer& operator=(const ScoringServer&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t num_inputs() const { return num_inputs_; }
  const ServerOptions& options() const { return options_; }

  /// Blocking single-row round trip on the shard `route_key` hashes to.
  /// Unavailable when that shard's queue is full or the server is
  /// stopping; InvalidArgument on a wrong-width row.
  [[nodiscard]] Result<double> Score(uint64_t route_key,
                                     const std::vector<double>& row) const;
  /// Round-robin routed variant.
  [[nodiscard]] Result<double> Score(const std::vector<double>& row) const;

  /// Blocking batch round trip: all rows travel as one request to one
  /// shard (one queue slot, all-or-nothing admission) and come back in
  /// input order in `out` (resized to rows.size()). On rejection `out`
  /// is untouched.
  [[nodiscard]] Status ScoreBatch(uint64_t route_key,
                                  const std::vector<std::vector<double>>& rows,
                                  std::vector<double>* out) const;
  [[nodiscard]] Status ScoreBatch(const std::vector<std::vector<double>>& rows,
                                  std::vector<double>* out) const;

  /// Drains every accepted request, then stops the workers. Idempotent;
  /// also run by the destructor. Submissions during and after Stop are
  /// rejected with kUnavailable.
  void Stop();

  ServerStats stats() const;

 private:
  struct Sync;

  /// One enqueued unit of work: k caller-owned row pointers plus their
  /// k output slots and the caller's completion sync. The caller blocks
  /// for the round trip, so every pointer stays valid until completion.
  struct Request {
    const double* const* rows = nullptr;
    double* out = nullptr;
    size_t num_rows = 0;
    Sync* sync = nullptr;
    uint64_t enqueue_ns = 0;
  };

  /// Per-call completion notifier on the calling thread's stack.
  struct Sync {
    Mutex mutex;
    CondVar cv;
    bool done GUARDED_BY(mutex) = false;
  };

  struct Shard {
    explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

    MpscQueue<Request> queue;
    // Doorbell: the worker parks here when idle; producers ring after a
    // successful push iff `waiting` says the worker may be asleep (the
    // seq_cst handshake with MpscQueue::TryPush/SizeApprox makes the
    // lost-wakeup window impossible — see ShardLoop). The cv predicate
    // is the lock-free queue state itself, so nothing is GUARDED_BY
    // this mutex; it exists only to make park/ring atomic.
    Mutex mutex;
    CondVar cv;
    std::atomic<bool> waiting{false};
    std::thread worker;
    BatchScorer scorer;  // replica: private compiled plan + forest
  };

  ScoringServer() = default;

  [[nodiscard]] Status Submit(uint64_t route_key, const double* const* rows,
                              size_t num_rows, double* out) const;
  void ShardLoop(Shard* shard);
  /// Scores and completes the staged requests (one micro-batch cut).
  void CutBatch(Shard* shard, std::vector<Request>* staged, size_t staged_rows,
                std::vector<const double*>* row_ptrs,
                std::vector<double>* outs, BatchScorer::Scratch* scratch);

  ServerOptions options_;
  size_t num_inputs_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stop_started_{false};
  std::atomic<bool> stop_finished_{false};
  /// Submissions between their stopping-check and push outcome; Stop()
  /// waits for this to hit zero before closing the queues, so no request
  /// can be accepted into a queue the workers have drained past.
  mutable std::atomic<uint64_t> in_flight_{0};
  mutable std::atomic<uint64_t> next_shard_{0};

  // Functional counters (see ServerStats).
  mutable std::atomic<uint64_t> accepted_requests_{0};
  mutable std::atomic<uint64_t> accepted_rows_{0};
  mutable std::atomic<uint64_t> rejected_requests_{0};
  std::atomic<uint64_t> completed_requests_{0};
  std::atomic<uint64_t> completed_rows_{0};
  std::atomic<uint64_t> batches_{0};
};

}  // namespace server
}  // namespace serve
}  // namespace safe
