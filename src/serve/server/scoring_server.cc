#include "src/serve/server/scoring_server.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace safe {
namespace serve {
namespace server {

namespace {

/// Steady-clock nanoseconds. Deliberately not obs::NowNanos(): request
/// deadlines and latency accounting must keep working in
/// SAFE_TELEMETRY=OFF builds, where the obs clock stubs to 0.
uint64_t NowSteadyNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::chrono::steady_clock::time_point SteadyTimePoint(uint64_t ns) {
  // Round UP to the clock's granularity: truncating would produce a
  // time_point just before the batcher deadline, making wait_until wake
  // early and the loop re-wait on the same truncated point (a brief
  // busy-spin on platforms where steady_clock is coarser than 1ns).
  return std::chrono::steady_clock::time_point(
      std::chrono::ceil<std::chrono::steady_clock::duration>(
          std::chrono::nanoseconds(ns)));
}

std::vector<double> PowerOfTwoBuckets(double max_bound) {
  std::vector<double> bounds;
  for (double b = 1.0; b <= max_bound; b *= 2.0) bounds.push_back(b);
  return bounds;
}

/// serve.server.* metrics — a namespace disjoint from the library-call
/// series (serve.latency_us / serve.batch_latency_us), asserted by
/// serve_server_test. Resolved once; hot paths touch only the atomics.
struct ServerMetrics {
  obs::Counter* requests;
  obs::Counter* rows;
  obs::Counter* rejected;
  obs::Counter* batches;
  obs::Histogram* latency_us;   // request enqueue -> completion
  obs::Histogram* batch_fill;   // rows per micro-batch cut
  obs::Histogram* queue_depth;  // shard backlog sampled at each cut

  static const ServerMetrics& Get() {
    static const ServerMetrics metrics = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
      return ServerMetrics{
          registry->counter("serve.server.requests"),
          registry->counter("serve.server.rows"),
          registry->counter("serve.server.rejected"),
          registry->counter("serve.server.batches"),
          registry->histogram("serve.server.latency_us",
                              obs::DefaultLatencyBucketsUs()),
          registry->histogram("serve.server.batch_fill",
                              PowerOfTwoBuckets(4096.0)),
          registry->histogram("serve.server.queue_depth",
                              PowerOfTwoBuckets(65536.0))};
    }();
    return metrics;
  }
};

}  // namespace

Result<std::unique_ptr<ScoringServer>> ScoringServer::Create(
    const FeaturePlan& plan, const gbdt::Booster& booster,
    const ServerOptions& options) {
  if (options.num_shards == 0 || options.queue_capacity == 0 ||
      options.batcher.max_batch_rows == 0) {
    return Status::InvalidArgument(
        "scoring server: num_shards, queue_capacity and max_batch_rows "
        "must all be > 0");
  }
  // One canonical scorer, copied per shard: replicas share nothing
  // mutable, and bit-identity across replicas is trivial (identical
  // compiled plan, identical packed forest).
  SAFE_ASSIGN_OR_RETURN(BatchScorer scorer, BatchScorer::Create(plan, booster));

  auto server = std::unique_ptr<ScoringServer>(new ScoringServer());
  server->options_ = options;
  server->num_inputs_ = scorer.num_inputs();
  server->shards_.reserve(options.num_shards);
  for (size_t s = 0; s < options.num_shards; ++s) {
    auto shard = std::make_unique<Shard>(options.queue_capacity);
    shard->scorer = scorer;
    server->shards_.push_back(std::move(shard));
  }
  for (size_t s = 0; s < options.num_shards; ++s) {
    Shard* shard = server->shards_[s].get();
    ScoringServer* raw = server.get();
    shard->worker = std::thread([raw, shard] { raw->ShardLoop(shard); });
  }
  return server;
}

ScoringServer::~ScoringServer() { Stop(); }

void ScoringServer::Stop() {
  bool expected = false;
  if (!stop_started_.compare_exchange_strong(expected, true,
                                             std::memory_order_seq_cst)) {
    // Another thread is stopping (or has stopped) the server; wait for
    // the workers to be gone before returning so "after Stop()" always
    // means fully drained. Sleep rather than spin: the drain can take as
    // long as the backlog, and this path is not latency-critical.
    while (!stop_finished_.load(std::memory_order_acquire)) {  // lint: mo-ok(acquire pairs with the release store at the end of the winning Stop)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    return;
  }
  // lint: mo-ok(seq_cst, not weaker: must order against Submit's in_flight_ increment / stopping_ check pair)
  stopping_.store(true, std::memory_order_seq_cst);
  // Let in-flight submissions finish their push/reject before closing,
  // so no request can be claimed into a queue the workers have already
  // drained past (that request would never complete). Submissions spend
  // only a few instructions inside the gate, so waits here are short;
  // yield first for the common case, then back off to sleeps.
  // lint: mo-ok(acquire pairs with Submit's release decrements; zero means every gated push/reject retired)
  for (int spins = 0; in_flight_.load(std::memory_order_acquire) != 0;
       ++spins) {
    if (spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  // Close() only after in_flight_ hit zero: MpscQueue::TryPush checks
  // closed_ only at the top of its claim loop, so a push racing Close
  // could otherwise land after Close returns — the in-flight gate is the
  // external quiesce Close() requires (see MpscQueue::Close docs).
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    // Ring under the lock: a worker between its predicate check and its
    // park would otherwise miss the only notify it will ever get.
    MutexLock lock(shard->mutex);
    shard->cv.NotifyOne();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // lint: mo-ok(release pairs with the acquire poll at the top of Stop; publishes the joined workers)
  stop_finished_.store(true, std::memory_order_release);
}

ServerStats ScoringServer::stats() const {
  ServerStats stats;
  // lint: mo-ok(standalone tallies; each pairs with its own relaxed increments, cross-counter skew is fine)
  stats.accepted_requests = accepted_requests_.load(std::memory_order_relaxed);
  // lint: mo-ok(see above)
  stats.accepted_rows = accepted_rows_.load(std::memory_order_relaxed);
  // lint: mo-ok(see above)
  stats.rejected_requests = rejected_requests_.load(std::memory_order_relaxed);
  stats.completed_requests =
      completed_requests_.load(std::memory_order_relaxed);  // lint: mo-ok(see above)
  // lint: mo-ok(see above)
  stats.completed_rows = completed_rows_.load(std::memory_order_relaxed);
  // lint: mo-ok(see above)
  stats.batches = batches_.load(std::memory_order_relaxed);
  return stats;
}

Status ScoringServer::Submit(uint64_t route_key, const double* const* rows,
                             size_t num_rows, double* out) const {
  if (num_rows == 0) return Status::OK();
  // The in-flight gate pairs with Stop(): a submission that passes the
  // stopping check below completes its push before the queues close.
  // lint: mo-ok(seq_cst, not weaker: the increment must order before the stopping_ load against Stop's store/wait pair)
  in_flight_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {  // lint: mo-ok(seq_cst half of the gate; see the fetch_add above)
    // lint: mo-ok(release pairs with Stop's acquire poll of in_flight_)
    in_flight_.fetch_sub(1, std::memory_order_release);
    // lint: mo-ok(standalone tally; pairs with stats()'s relaxed load)
    rejected_requests_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().rejected->Increment();
    return Status::Unavailable("scoring server is stopping");
  }
  Shard& shard = *shards_[route_key % shards_.size()];

  Sync sync;
  Request request;
  request.rows = rows;
  request.out = out;
  request.num_rows = num_rows;
  request.sync = &sync;
  request.enqueue_ns = NowSteadyNs();
  const bool pushed = shard.queue.TryPush(request);
  // lint: mo-ok(release pairs with Stop's acquire poll: the push outcome is settled before Stop may close the queues)
  in_flight_.fetch_sub(1, std::memory_order_release);
  if (!pushed) {
    // lint: mo-ok(standalone tally; pairs with stats()'s relaxed load)
    rejected_requests_.fetch_add(1, std::memory_order_relaxed);
    ServerMetrics::Get().rejected->Increment();
    return Status::Unavailable(
        "scoring server: shard " +
        std::to_string(route_key % shards_.size()) +
        " queue is full (" + std::to_string(shard.queue.capacity()) +
        " requests) — retry after backoff");
  }
  // lint: mo-ok(standalone tallies; pair with stats()'s relaxed loads)
  accepted_requests_.fetch_add(1, std::memory_order_relaxed);
  // lint: mo-ok(see above)
  accepted_rows_.fetch_add(num_rows, std::memory_order_relaxed);
  const ServerMetrics& metrics = ServerMetrics::Get();
  metrics.requests->Increment();
  metrics.rows->Increment(num_rows);
  // Doorbell: ring only when the worker may be parked. The seq_cst
  // TryPush claim above and this seq_cst load order against the
  // worker's waiting-store / SizeApprox-load pair, so either we see
  // `waiting` and notify, or the worker sees our push and skips the
  // wait — a lost wakeup is impossible.
  if (shard.waiting.load(std::memory_order_seq_cst)) {  // lint: mo-ok(seq_cst, not weaker: orders against the worker's waiting-store / SizeApprox-load pair)
    MutexLock lock(shard.mutex);
    shard.cv.NotifyOne();
  }
  MutexLock lock(sync.mutex);
  while (!sync.done) sync.cv.Wait(sync.mutex);
  return Status::OK();
}

Result<double> ScoringServer::Score(uint64_t route_key,
                                    const std::vector<double>& row) const {
  if (row.size() != num_inputs_) {
    return Status::InvalidArgument(
        "scoring server: expected " + std::to_string(num_inputs_) +
        " values, got " + std::to_string(row.size()));
  }
  const double* row_ptr = row.data();
  double proba = 0.0;
  SAFE_RETURN_NOT_OK(Submit(route_key, &row_ptr, 1, &proba));
  return proba;
}

Result<double> ScoringServer::Score(const std::vector<double>& row) const {
  // lint: mo-ok(standalone round-robin cursor; pairs only with itself)
  return Score(next_shard_.fetch_add(1, std::memory_order_relaxed), row);
}

Status ScoringServer::ScoreBatch(uint64_t route_key,
                                 const std::vector<std::vector<double>>& rows,
                                 std::vector<double>* out) const {
  if (out == nullptr) {
    return Status::InvalidArgument("scoring server: null output vector");
  }
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != num_inputs_) {
      return Status::InvalidArgument(
          "scoring server: row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " values, expected " +
          std::to_string(num_inputs_));
    }
  }
  if (rows.empty()) {
    out->clear();
    return Status::OK();
  }
  std::vector<const double*> row_ptrs;
  row_ptrs.reserve(rows.size());
  for (const std::vector<double>& row : rows) row_ptrs.push_back(row.data());
  // Score into a local buffer so a rejected request leaves `out`
  // untouched (the backpressure contract).
  std::vector<double> scores(rows.size(), 0.0);
  SAFE_RETURN_NOT_OK(
      Submit(route_key, row_ptrs.data(), rows.size(), scores.data()));
  *out = std::move(scores);
  return Status::OK();
}

Status ScoringServer::ScoreBatch(const std::vector<std::vector<double>>& rows,
                                 std::vector<double>* out) const {
  // lint: mo-ok(standalone round-robin cursor; pairs only with itself)
  return ScoreBatch(next_shard_.fetch_add(1, std::memory_order_relaxed), rows,
                    out);
}

void ScoringServer::CutBatch(Shard* shard, std::vector<Request>* staged,
                             size_t staged_rows,
                             std::vector<const double*>* row_ptrs,
                             std::vector<double>* outs,
                             BatchScorer::Scratch* scratch) {
  SAFE_FR_SCOPE("serve.server.batch");
  // Flatten the staged requests' row pointers; scoring runs in
  // kBlockRows blocks, so a cut larger than one block (a multi-row
  // request straddling B) costs extra blocks, never extra allocation in
  // steady state.
  row_ptrs->clear();
  for (const Request& request : *staged) {
    for (size_t i = 0; i < request.num_rows; ++i) {
      row_ptrs->push_back(request.rows[i]);
    }
  }
  outs->resize(staged_rows);
  for (size_t begin = 0; begin < staged_rows;
       begin += BatchScorer::kBlockRows) {
    const size_t n = std::min(BatchScorer::kBlockRows, staged_rows - begin);
    shard->scorer.ScoreBlockPtrs(row_ptrs->data() + begin, n, scratch,
                                 outs->data() + begin);
  }

  const uint64_t done_ns = NowSteadyNs();
  const ServerMetrics& metrics = ServerMetrics::Get();
  size_t offset = 0;
  for (const Request& request : *staged) {
    for (size_t i = 0; i < request.num_rows; ++i) {
      request.out[i] = (*outs)[offset + i];
    }
    offset += request.num_rows;
    metrics.latency_us->Observe(
        static_cast<double>(done_ns - request.enqueue_ns) / 1e3);
    // lint: mo-ok(standalone tallies; pair with stats()'s relaxed loads — completion itself is published by the sync mutex below)
    completed_requests_.fetch_add(1, std::memory_order_relaxed);
    // lint: mo-ok(see above)
    completed_rows_.fetch_add(request.num_rows, std::memory_order_relaxed);
    {
      // Notify while holding the sync mutex: the waiting caller owns the
      // Sync on its stack and may destroy it the moment it observes
      // `done`, so the cv must not be touched outside the lock.
      MutexLock lock(request.sync->mutex);
      request.sync->done = true;
      request.sync->cv.NotifyOne();
    }
  }
  // lint: mo-ok(standalone tally; pairs with stats()'s relaxed load)
  batches_.fetch_add(1, std::memory_order_relaxed);
  metrics.batches->Increment();
  metrics.batch_fill->Observe(static_cast<double>(staged_rows));
  metrics.queue_depth->Observe(
      static_cast<double>(shard->queue.SizeApprox()));
  SAFE_FR_COUNTER("serve.server.batch_fill",
                  static_cast<double>(staged_rows));
}

void ScoringServer::ShardLoop(Shard* shard) {
  // Label the timeline like pool workers do ("pool<id>.worker<k>"), so
  // flight-recorder traces attribute batch spans to shards.
  size_t shard_index = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].get() == shard) shard_index = s;
  }
  obs::FlightRecorder::Global()->SetCurrentThreadLabel(
      "server.shard" + std::to_string(shard_index));

  const MicroBatcher batcher(options_.batcher);
  std::vector<Request> staged;
  size_t staged_rows = 0;
  uint64_t oldest_ns = 0;
  std::vector<const double*> row_ptrs;
  std::vector<double> outs;
  BatchScorer::Scratch scratch = shard->scorer.MakeScratch();

  for (;;) {
    // Drain the queue into staging until the row trigger is reached or
    // the queue is momentarily empty. SizeApprox counts claimed slots,
    // so a producer mid-push (claimed, not yet published) makes us spin
    // briefly instead of mistaking the queue for empty.
    while (staged_rows < options_.batcher.max_batch_rows) {
      Request request;
      if (shard->queue.TryPop(&request)) {
        if (staged.empty()) oldest_ns = request.enqueue_ns;
        staged.push_back(request);
        staged_rows += request.num_rows;
        continue;
      }
      if (shard->queue.SizeApprox() == 0) break;
      std::this_thread::yield();
    }

    // lint: mo-ok(acquire pairs with Stop's seq_cst store; only the flag itself is consumed here)
    const bool closing = stopping_.load(std::memory_order_acquire);
    const MicroBatcher::Decision decision =
        batcher.Decide(staged_rows, oldest_ns, NowSteadyNs(), closing);
    if (decision.action == MicroBatcher::Action::kCut) {
      CutBatch(shard, &staged, staged_rows, &row_ptrs, &outs, &scratch);
      staged.clear();
      staged_rows = 0;
      continue;
    }

    // kWait. Shutdown exit: keyed off queue.closed(), NOT stopping_.
    // Stop() sets stopping_ BEFORE waiting for in_flight_ submissions to
    // drain, so a racing Submit that passed its stopping check may still
    // push after stopping_ becomes visible here; exiting on stopping_
    // could strand that request (its caller would block forever). The
    // queue closes only after in_flight_ reaches zero, so once closed()
    // is true and the queue is drained, no further push can succeed and
    // it is safe to exit. stopping_ (`closing`) is used only for the
    // batcher's flush-on-close cut decision above.
    if (shard->queue.closed() && staged.empty() &&
        shard->queue.SizeApprox() == 0) {
      break;
    }

    MutexLock lock(shard->mutex);
    // lint: mo-ok(seq_cst, not weaker: the store must order before the SizeApprox below against a producer's TryPush CAS / waiting-load pair)
    shard->waiting.store(true, std::memory_order_seq_cst);
    // Park on the doorbell predicate (queue work or shutdown), re-checked
    // under the flag: a producer that missed `waiting` is guaranteed
    // (seq_cst) to be visible to SizeApprox, so re-evaluating the
    // predicate before every wait makes a lost or spurious wakeup
    // harmless.
    if (decision.has_deadline) {
      // Timed park: a single pass — on wakeup (signal, timeout or
      // spurious) control returns to the batcher, which re-decides
      // against the clock rather than re-arming the same deadline.
      if (shard->queue.SizeApprox() == 0 &&
          !stopping_.load(std::memory_order_acquire)) {  // lint: mo-ok(acquire flag read; see `closing` above)
        shard->cv.WaitUntil(shard->mutex,
                            SteadyTimePoint(decision.deadline_ns));
      }
    } else {
      while (shard->queue.SizeApprox() == 0 &&
             !stopping_.load(std::memory_order_acquire)) {  // lint: mo-ok(acquire flag read; see `closing` above)
        shard->cv.Wait(shard->mutex);
      }
    }
    // lint: mo-ok(relaxed un-park: producers that read a stale true only take one spurious notify)
    shard->waiting.store(false, std::memory_order_relaxed);
  }
}

}  // namespace server
}  // namespace serve
}  // namespace safe
