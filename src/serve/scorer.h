#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"
#include "src/gbdt/booster.h"
#include "src/serve/batch_scorer.h"
#include "src/serve/compiled_plan.h"

namespace safe {
namespace serve {

/// \brief One node of the flattened forest. Same fields and traversal
/// semantics as gbdt::TreeNode, stored contiguously across all trees so
/// scoring walks one array instead of a vector-of-trees-of-vectors.
struct FlatNode {
  int32_t left = -1;
  int32_t right = -1;     // children, tree-relative
  int32_t feature = -1;   // split column into the transformed features
  double threshold = 0.0;
  double value = 0.0;
  bool default_left = true;

  bool is_leaf() const { return left < 0; }
};

/// \brief Fused low-latency scorer: compiled FeaturePlan program + GBDT
/// leaf traversal in one pass over a reusable scratch buffer
/// (DESIGN.md "Serving path").
///
/// Built once from a fitted plan and booster, then immutable — safe for
/// any number of concurrent callers. The convenience APIs (Score /
/// ScoreMargin / ScoreBatch) keep a per-thread Scratch internally, so the
/// steady-state path performs zero heap allocations; latency-critical
/// callers can instead hold their own Scratch and use the unchecked
/// ScoreRow* core.
///
/// Output contract: ScoreRow(row) is bit-identical to
/// booster.PredictRowProba(*plan.TransformRow(row)) — the interpreted
/// two-step path — for every row (serve_equivalence_test).
class RowScorer {
 public:
  /// Reusable per-caller buffers: the compiled plan's scratch slots plus
  /// the transformed feature vector the forest traverses.
  struct Scratch {
    std::vector<double> slots;
    std::vector<double> features;
  };

  RowScorer() = default;

  /// Compiles `plan` and flattens `booster`. Fails when the booster's
  /// feature count differs from the plan's selected output count, or when
  /// a tree references a feature outside that range.
  [[nodiscard]] static Result<RowScorer> Create(
      const FeaturePlan& plan, const gbdt::Booster& booster,
      const OperatorRegistry& registry);
  [[nodiscard]] static Result<RowScorer> Create(const FeaturePlan& plan,
                                                const gbdt::Booster& booster);

  size_t num_inputs() const { return plan_.num_inputs(); }
  size_t num_features() const { return plan_.num_outputs(); }
  const CompiledPlan& plan() const { return plan_; }
  /// The vectorized batch engine ScoreBatch delegates to.
  const BatchScorer& batch() const { return *batch_; }

  Scratch MakeScratch() const;

  /// Allocation-free fused core: compiled program into scratch->slots,
  /// gather into scratch->features, forest margin over features. `row`
  /// must hold num_inputs() doubles.
  double ScoreRowMargin(const double* row, Scratch* scratch) const;
  /// Margin passed through the objective's link (sigmoid for logistic).
  double ScoreRow(const double* row, Scratch* scratch) const;

  /// Checked single-row probability. Thread-safe: each calling thread
  /// reuses its own cached Scratch. Records serve.latency_us and
  /// serve.rows telemetry.
  [[nodiscard]] Result<double> Score(const std::vector<double>& row) const;
  [[nodiscard]] Result<double> ScoreMargin(
      const std::vector<double>& row) const;

  /// Checked micro-batch probability scoring through the vectorized
  /// BatchScorer (cache-blocked column panels + QuickScorer forest
  /// traversal), bit-identical to per-row Score for every batch size.
  /// `out` is resized to rows.size() (reusing its capacity), so a caller
  /// looping over batches allocates nothing in steady state. Thread-safe
  /// for concurrent callers. Records one serve.batch_latency_us
  /// observation and the true batch size into serve.batch_rows; the
  /// per-row serve.latency_us series is never touched.
  [[nodiscard]] Status ScoreBatch(const std::vector<std::vector<double>>& rows,
                                  std::vector<double>* out) const;

 private:
  double ForestMargin(const double* features) const;
  Scratch* LocalScratch() const;

  CompiledPlan plan_;
  std::vector<FlatNode> nodes_;   // all trees, concatenated
  std::vector<uint32_t> roots_;   // offset of each tree's root in nodes_
  double base_score_ = 0.0;
  gbdt::Objective objective_ = gbdt::Objective::kLogistic;
  // Shared (immutable) so copies of the scorer stay cheap; never null
  // after a successful Create.
  std::shared_ptr<const BatchScorer> batch_;
};

}  // namespace serve
}  // namespace safe
