#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/result.h"
#include "src/core/feature_plan.h"
#include "src/core/operators.h"

namespace safe {
namespace serve {

/// \brief Opcodes of the linear serving program. One code per built-in
/// operator family; the compiler inlines each family's arithmetic so the
/// per-row loop is a flat switch with no virtual dispatch, no registry
/// lookups and no heap traffic. Operators the compiler does not know
/// (custom registrations) fall back to kGeneric, which calls the virtual
/// Operator::Apply with a pre-staged params vector — still allocation-free
/// per row, just not inlined.
enum class OpCode : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAnd,
  kOr,
  kXor,
  kLog,
  kSqrt,
  kSquare,
  kSigmoid,
  kTanh,
  kRound,
  kAbs,
  kZscore,     // also minmax: (x - p0) / p1
  kDiscretize, // bin index over the edge span
  kGroupBy,    // shared layout of gbmean/gbmax/gbmin/gbstd/gbcount
  kRidge,
  kKrr,
  kCond,
  kGeneric,
};

/// \brief One step of the compiled program: apply `code` to the scratch
/// slots named by `parents`, using the param span
/// [param_begin, param_begin + param_count) of the shared arena, and
/// write the result to scratch slot `out`.
struct Instruction {
  OpCode code = OpCode::kGeneric;
  uint8_t arity = 0;
  /// Mirrors Operator::handles_missing(): when false, any NaN parent
  /// short-circuits to NaN without evaluating the body (the interpreted
  /// path's routing, preserved bit-for-bit).
  bool handles_missing = false;
  uint32_t parents[3] = {0, 0, 0};
  uint32_t out = 0;
  uint32_t param_begin = 0;
  uint32_t param_count = 0;
  /// kGeneric only: index into the compiled plan's fallback tables.
  uint32_t generic_index = 0;
};

/// \brief A fitted FeaturePlan flattened into a linear, allocation-free
/// operator program (DESIGN.md "Serving path").
///
/// Compile() resolves every name once — operators to opcodes, parent and
/// output columns to scratch-slot indices, fitted params into one
/// contiguous arena — and validates the param layouts that the
/// interpreted path only trusts at Apply time. Execute() then runs the
/// program over a caller-owned scratch buffer with zero heap allocations
/// and produces outputs bit-identical to FeaturePlan::TransformRow /
/// Transform (serve_equivalence_test proves this for every registered
/// operator, including NaN routing).
///
/// A CompiledPlan is immutable after Compile, so any number of threads
/// may Execute it concurrently as long as each brings its own scratch.
class CompiledPlan {
 public:
  CompiledPlan() = default;

  [[nodiscard]] static Result<CompiledPlan> Compile(
      const FeaturePlan& plan, const OperatorRegistry& registry);
  /// Compiles against the default registry.
  [[nodiscard]] static Result<CompiledPlan> Compile(const FeaturePlan& plan);

  size_t num_inputs() const { return num_inputs_; }
  size_t num_outputs() const { return selected_slots_.size(); }
  /// Scratch doubles Execute needs: inputs followed by generated slots.
  size_t scratch_size() const { return scratch_size_; }
  const std::vector<Instruction>& instructions() const {
    return instructions_;
  }

  /// Slot indices (into the scratch layout) of the served outputs, in
  /// output order. The batch scorer maps forest split features straight
  /// to these slots so block scoring needs no gather step.
  const std::vector<uint32_t>& selected_slots() const {
    return selected_slots_;
  }

  /// Runs the program on one dense row (length num_inputs(), ordered like
  /// the plan's input schema). `scratch` must hold scratch_size() doubles,
  /// `out` num_outputs(); neither is read on entry. No allocation, no
  /// locks — safe for concurrent callers with distinct buffers.
  void Execute(const double* row, double* scratch, double* out) const;

  /// Block-wise form of Execute for the vectorized batch path: `panels`
  /// is a slot-major matrix (scratch slot s occupies
  /// [s * stride, s * stride + n)) whose input slots [0, num_inputs())
  /// are already loaded for lanes [0, n); n must be <= stride. Runs each
  /// instruction as one contiguous loop over the whole block — the
  /// dispatch cost is paid once per opcode per block instead of once per
  /// row, and the inner loops are SIMD-friendly — while every lane
  /// reproduces the scalar Execute arithmetic exactly (shared op::
  /// kernels, same NaN short-circuit), so panel contents are
  /// bit-identical to n scalar Execute calls. No allocation, no locks.
  void ExecuteBlock(double* panels, size_t stride, size_t n) const;

  /// Checked convenience wrapper for tests and one-off callers; allocates
  /// the output (and scratch) per call.
  [[nodiscard]] Result<std::vector<double>> ExecuteRow(
      const std::vector<double>& row) const;

 private:
  size_t num_inputs_ = 0;
  size_t scratch_size_ = 0;
  std::vector<Instruction> instructions_;
  std::vector<double> params_;           // contiguous param arena
  std::vector<uint32_t> selected_slots_; // gather list for outputs
  // kGeneric fallback: the operator (kept alive via the registry's
  // shared ownership) and its params staged as the vector Apply expects.
  std::vector<std::shared_ptr<const Operator>> generic_ops_;
  std::vector<std::vector<double>> generic_params_;
};

}  // namespace serve
}  // namespace safe
