#include "src/serve/scorer.h"

#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "src/gbdt/loss.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {
namespace serve {

namespace {

obs::Histogram* LatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global()->histogram(
          "serve.latency_us", obs::DefaultLatencyBucketsUs());
  return histogram;
}

obs::Counter* RowsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global()->counter("serve.rows");
  return counter;
}

obs::Histogram* BatchLatencyHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global()->histogram(
          "serve.batch_latency_us", obs::DefaultLatencyBucketsUs());
  return histogram;
}

obs::Histogram* BatchRowsHistogram() {
  static obs::Histogram* histogram = [] {
    // Power-of-two batch-size buckets up to 4096 rows (typical batches
    // are tens to hundreds; larger ones land in the overflow bucket).
    std::vector<double> bounds;
    for (double b = 1.0; b <= 4096.0; b *= 2.0) bounds.push_back(b);
    return obs::MetricsRegistry::Global()->histogram("serve.batch_rows",
                                                     std::move(bounds));
  }();
  return histogram;
}

/// 1-in-N request sampling for flight-recorder spans on the per-row hot
/// path: keeps armed-recorder overhead within the serving budget
/// (bench_serving measures and gates it) while still populating the
/// timeline with representative requests.
constexpr uint32_t kScoreRowSampleOneInN = 64;

}  // namespace

Result<RowScorer> RowScorer::Create(const FeaturePlan& plan,
                                    const gbdt::Booster& booster,
                                    const OperatorRegistry& registry) {
  RowScorer scorer;
  // The batch engine compiles the plan (and validates the booster against
  // it); the per-row path shares that compiled program.
  SAFE_ASSIGN_OR_RETURN(BatchScorer batch,
                        BatchScorer::Create(plan, booster, registry));
  scorer.plan_ = batch.plan();
  scorer.batch_ = std::make_shared<const BatchScorer>(std::move(batch));
  scorer.base_score_ = booster.base_score();
  scorer.objective_ = booster.objective();

  const int32_t num_features =
      static_cast<int32_t>(scorer.plan_.num_outputs());
  scorer.roots_.reserve(booster.trees().size());
  for (const gbdt::RegressionTree& tree : booster.trees()) {
    scorer.roots_.push_back(static_cast<uint32_t>(scorer.nodes_.size()));
    if (tree.empty()) {
      // RegressionTree::PredictRow returns 0.0 for an empty tree; a single
      // zero leaf reproduces that contribution exactly.
      scorer.nodes_.push_back(FlatNode{});
      continue;
    }
    for (const gbdt::TreeNode& node : tree.nodes()) {
      FlatNode flat;
      flat.left = node.left;
      flat.right = node.right;
      flat.feature = node.feature;
      flat.threshold = node.threshold;
      flat.value = node.value;
      flat.default_left = node.default_left;
      if (!node.is_leaf() &&
          (node.feature < 0 || node.feature >= num_features)) {
        return Status::InvalidArgument(
            "scorer: tree split on feature " + std::to_string(node.feature) +
            " outside the plan's " + std::to_string(num_features) +
            " outputs");
      }
      scorer.nodes_.push_back(flat);
    }
  }
  return scorer;
}

Result<RowScorer> RowScorer::Create(const FeaturePlan& plan,
                                    const gbdt::Booster& booster) {
  static const OperatorRegistry registry = OperatorRegistry::Default();
  return Create(plan, booster, registry);
}

RowScorer::Scratch RowScorer::MakeScratch() const {
  Scratch scratch;
  scratch.slots.resize(plan_.scratch_size());
  scratch.features.resize(plan_.num_outputs());
  return scratch;
}

double RowScorer::ForestMargin(const double* features) const {
  // Same traversal and the same accumulation order as
  // Booster::PredictRowMargin (base score, then trees in order), so the
  // fused margin is bit-identical to the interpreted one.
  double margin = base_score_;
  for (uint32_t root : roots_) {
    const FlatNode* tree = nodes_.data() + root;
    int32_t idx = 0;
    while (!tree[idx].is_leaf()) {
      const FlatNode& node = tree[idx];
      const double v = features[node.feature];
      if (std::isnan(v)) {
        idx = node.default_left ? node.left : node.right;
      } else {
        idx = (v <= node.threshold) ? node.left : node.right;
      }
    }
    margin += tree[idx].value;
  }
  return margin;
}

// lint: hot-path
double RowScorer::ScoreRowMargin(const double* row, Scratch* scratch) const {
  plan_.Execute(row, scratch->slots.data(), scratch->features.data());
  return ForestMargin(scratch->features.data());
}

// lint: hot-path
double RowScorer::ScoreRow(const double* row, Scratch* scratch) const {
  SAFE_FR_SAMPLED_SCOPE("serve.score_row", kScoreRowSampleOneInN);
  return gbdt::TransformMargin(objective_, ScoreRowMargin(row, scratch));
}

RowScorer::Scratch* RowScorer::LocalScratch() const {
  // Per-thread scratch keyed by scorer identity: threads never share a
  // buffer, so concurrent Score calls on one shared scorer are race-free.
  // The vector is tiny (one entry per live scorer the thread has used);
  // lookups are a pointer scan, steady state allocates nothing.
  thread_local std::vector<std::pair<const RowScorer*, std::unique_ptr<Scratch>>>
      cache;
  for (auto& [key, scratch] : cache) {
    if (key == this) {
      // Guard against address reuse after another scorer's destruction.
      if (scratch->slots.size() != plan_.scratch_size() ||
          scratch->features.size() != plan_.num_outputs()) {
        *scratch = MakeScratch();
      }
      return scratch.get();
    }
  }
  cache.emplace_back(this, std::make_unique<Scratch>(MakeScratch()));
  return cache.back().second.get();
}

Result<double> RowScorer::Score(const std::vector<double>& row) const {
  const uint64_t start_ns = obs::NowNanos();
  if (row.size() != plan_.num_inputs()) {
    return Status::InvalidArgument(
        "scorer: expected " + std::to_string(plan_.num_inputs()) +
        " values, got " + std::to_string(row.size()));
  }
  const double proba = ScoreRow(row.data(), LocalScratch());
  RowsCounter()->Increment();
  LatencyHistogram()->Observe(
      static_cast<double>(obs::NowNanos() - start_ns) / 1e3);
  return proba;
}

Result<double> RowScorer::ScoreMargin(const std::vector<double>& row) const {
  if (row.size() != plan_.num_inputs()) {
    return Status::InvalidArgument(
        "scorer: expected " + std::to_string(plan_.num_inputs()) +
        " values, got " + std::to_string(row.size()));
  }
  return ScoreRowMargin(row.data(), LocalScratch());
}

Status RowScorer::ScoreBatch(const std::vector<std::vector<double>>& rows,
                             std::vector<double>* out) const {
  SAFE_TRACE_SPAN("serve.score_batch");
  SAFE_FR_SCOPE("serve.score_batch");
  const uint64_t start_ns = obs::NowNanos();
  if (out == nullptr) {
    return Status::InvalidArgument("scorer: null output vector");
  }
  // Vectorized path: cache-blocked column panels through the compiled
  // program, then the QuickScorer-style packed forest — bit-identical to
  // looping ScoreRow (serve_batch_equivalence_test). Row-width
  // validation happens inside ScoreRows.
  SAFE_RETURN_NOT_OK(batch_->ScoreRows(rows, out));
  RowsCounter()->Increment(rows.size());
  // Batch-level series: serve.latency_us stays per-row (Score) so batch
  // totals no longer pollute its distribution.
  BatchRowsHistogram()->Observe(static_cast<double>(rows.size()));
  BatchLatencyHistogram()->Observe(
      static_cast<double>(obs::NowNanos() - start_ns) / 1e3);
  return Status::OK();
}

}  // namespace serve
}  // namespace safe
