#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/obs/json.h"

namespace safe {
namespace serve {

/// \brief Load-generator knobs for the scoring-server section of the
/// serving benchmark (src/serve/server/, DESIGN.md "Scoring server").
struct ServerLoadOptions {
  size_t num_shards = 2;
  /// Per-shard queue bound in requests (admission control).
  size_t queue_capacity = 1024;
  /// Micro-batcher B (rows) and T (microseconds).
  size_t max_batch_rows = 64;
  uint64_t max_wait_us = 100;
  /// Concurrent client threads in both loop modes.
  size_t client_threads = 4;
  /// Closed loop: requests each client issues back-to-back (one
  /// outstanding request per client — throughput tracks service rate).
  size_t closed_requests_per_client = 2500;
  /// Open loop: total arrivals scheduled at `open_target_qps`,
  /// independent of completions — the backlog-honest tail-latency mode.
  size_t open_requests = 20000;
  double open_target_qps = 20000.0;
};

/// \brief One load-generator run: latency distribution over completed
/// requests plus the sustained completion rate.
struct ServerLoadStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  /// Completed requests per wall-clock second over the whole run (the
  /// CI gate's subject in open-loop mode).
  double sustained_qps = 0.0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
};

/// \brief Configuration of the serving benchmark (shared by
/// bench/bench_serving.cc and `safe_cli serve-bench`).
struct ServeBenchOptions {
  /// Rows used to fit the SAFE plan and the GBDT.
  size_t train_rows = 2000;
  /// Original feature count of the synthetic workload. The default is
  /// transform-heavy enough (2x features generated downstream) that the
  /// fused/naive ratio is a stable gate subject.
  size_t features = 24;
  /// Rows scored per timing pass.
  size_t score_rows = 20000;
  /// Timing passes over the scoring rows (latency samples accumulate).
  size_t repeats = 3;
  /// Rows per ScoreBatch call in the micro-batch measurement.
  size_t batch_size = 256;
  uint64_t seed = 42;
  /// Shrinks every knob for CI smoke runs (a few seconds end to end).
  bool quick = false;
  /// Scoring-server load generation (closed + open loop).
  ServerLoadOptions server;
};

/// \brief Per-path latency/throughput summary.
struct PathStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double rows_per_s = 0.0;
};

/// \brief One point of the batch-size sweep: ScoreBatch throughput at a
/// given rows-per-call, outputs verified bit-identical to the per-row
/// path before timing.
struct BatchSweepPoint {
  size_t batch_size = 0;
  double rows_per_s = 0.0;
};

/// \brief Machine-readable result of one serving benchmark run.
struct ServeBenchReport {
  size_t score_rows = 0;
  /// Effective timing passes (after any --quick clamping).
  size_t repeats = 0;
  size_t features = 0;
  size_t outputs = 0;
  size_t generated = 0;
  size_t trees = 0;
  /// Naive per-row path: FeaturePlan::TransformRow + PredictRowProba.
  PathStats naive;
  /// Fused per-row path: RowScorer::ScoreRow over reusable scratch.
  PathStats fused;
  /// Vectorized micro-batch path: RowScorer::ScoreBatch (block panels +
  /// block-wise opcodes + packed forest).
  double batch_rows_per_s = 0.0;
  /// Naive-loop batch pass: the same chunks scored by looping
  /// RowScorer::ScoreRow — the pre-vectorization ScoreBatch — so the
  /// vectorization win is measured against a loop, not just against the
  /// interpreted path.
  double loop_batch_rows_per_s = 0.0;
  /// BatchScorer::kBlockRows of the measured binary.
  size_t block_rows = 0;
  /// ScoreBatch throughput at several rows-per-call sizes (each verified
  /// bit-identical to the per-row outputs before timing).
  std::vector<BatchSweepPoint> sweep;
  /// fused.rows_per_s / naive.rows_per_s (the CI gate's subject).
  double speedup = 0.0;
  /// batch_rows_per_s / naive.rows_per_s (gated by min_batch_speedup).
  double batch_speedup = 0.0;
  /// Every scored row was bit-identical across naive and fused paths.
  bool outputs_identical = false;
  /// Whether this binary compiled the flight recorder in
  /// (SAFE_TELEMETRY=ON); the overhead gate only applies when true.
  bool recorder_enabled = false;
  /// Fused path re-timed with the flight recorder armed (sampled
  /// serve.score_row spans) vs disarmed, alternating pass by pass.
  double fused_armed_rows_per_s = 0.0;
  double fused_disarmed_rows_per_s = 0.0;
  /// Median per-pass armed/disarmed time ratio minus one, in percent
  /// (slightly negative values are timing noise).
  double recorder_overhead_pct = 0.0;

  /// --- Scoring server under load (src/serve/server/) ---
  /// Effective server/load-gen configuration (after --quick clamping).
  size_t server_shards = 0;
  size_t server_clients = 0;
  size_t server_batch_rows = 0;
  uint64_t server_batch_wait_us = 0;
  /// Every server response (mixed single-row and batch requests) was
  /// bit-identical to the fused per-row path. The run aborts when not.
  bool server_outputs_identical = false;
  /// Closed loop: client_threads clients, one outstanding request each.
  ServerLoadStats server_closed;
  /// Open loop: arrivals scheduled at server_open_target_qps; latency is
  /// measured from the *scheduled* arrival, so queueing delay under
  /// overload is included (the honest tail).
  ServerLoadStats server_open;
  double server_open_target_qps = 0.0;
  /// Mean rows per micro-batch cut across both loops (server stats).
  double server_mean_batch_fill = 0.0;

  /// Serializes to the BENCH_serving.json schema.
  obs::JsonValue ToJson() const;
};

/// Runs the benchmark: fits a SAFE plan + GBDT on a synthetic workload,
/// verifies the fused scorer is bit-identical to the naive path over
/// every scoring row, then times both per-row paths (p50/p99/rows-per-s)
/// and the fused micro-batch path.
[[nodiscard]] Result<ServeBenchReport> RunServeBench(
    const ServeBenchOptions& options);

/// \brief Committed CI thresholds for the serving benchmark
/// (bench/baselines/serving.json).
struct ServingGate {
  /// Minimum fused/naive per-row speedup.
  double min_speedup = 0.0;
  /// Minimum vectorized-batch/naive speedup (report.batch_speedup);
  /// <= 0 disables that check (legacy baselines).
  double min_batch_speedup = 0.0;
  /// Ceiling on recorder_overhead_pct (armed vs disarmed fused path);
  /// <= 0 disables that check. Only enforced when the binary was built
  /// with SAFE_TELEMETRY=ON (report.recorder_enabled).
  double max_recorder_overhead_pct = 0.0;
  /// Floor on the open-loop sustained completion rate
  /// (report.server_open.sustained_qps); <= 0 disables that check.
  double min_sustained_qps = 0.0;
};

/// Reads the committed gate file: "min_speedup" (required), plus
/// "min_batch_speedup", "max_recorder_overhead_pct" and
/// "min_sustained_qps" (all optional, default 0 = disabled).
[[nodiscard]] Result<ServingGate> ReadServingGate(
    const std::string& baseline_path);

}  // namespace serve
}  // namespace safe
