#include "src/obs/trace_export.h"

#include <fstream>
#include <utility>

namespace safe {
namespace obs {

namespace {

JsonValue EventRecord(const char* phase, const char* name, uint64_t ts_ns,
                      uint32_t tid) {
  JsonValue record = JsonValue::Object();
  record.Set("name", JsonValue(name != nullptr ? name : ""));
  record.Set("ph", JsonValue(phase));
  record.Set("ts", JsonValue(static_cast<double>(ts_ns) / 1e3));
  record.Set("pid", JsonValue(1));
  record.Set("tid", JsonValue(static_cast<uint64_t>(tid)));
  return record;
}

std::string TrackName(const ThreadTimeline& timeline) {
  if (!timeline.label.empty()) return timeline.label;
  return "thread" + std::to_string(timeline.thread_index);
}

}  // namespace

JsonValue ChromeTraceJson(const std::vector<ThreadTimeline>& timelines) {
  JsonValue events = JsonValue::Array();
  for (const ThreadTimeline& timeline : timelines) {
    const uint32_t tid = timeline.thread_index;
    JsonValue meta = JsonValue::Object();
    meta.Set("name", JsonValue("thread_name"));
    meta.Set("ph", JsonValue("M"));
    meta.Set("pid", JsonValue(1));
    meta.Set("tid", JsonValue(static_cast<uint64_t>(tid)));
    JsonValue meta_args = JsonValue::Object();
    meta_args.Set("name", JsonValue(TrackName(timeline)));
    meta.Set("args", std::move(meta_args));
    events.Append(std::move(meta));

    // Track open begins so the emitted stream stays well-nested even
    // when the ring dropped an end event; unmatched begins are closed
    // at the track's last timestamp after the walk.
    std::vector<const char*> open;
    uint64_t last_ts_ns = 0;
    for (const TraceEvent& event : timeline.events) {
      if (event.ts_ns > last_ts_ns) last_ts_ns = event.ts_ns;
      switch (event.type) {
        case TraceEventType::kBegin:
          open.push_back(event.name);
          events.Append(EventRecord("B", event.name, event.ts_ns, tid));
          break;
        case TraceEventType::kEnd:
          if (open.empty()) break;  // begin lost to a drop: skip the end
          open.pop_back();
          events.Append(EventRecord("E", event.name, event.ts_ns, tid));
          break;
        case TraceEventType::kInstant: {
          JsonValue record = EventRecord("i", event.name, event.ts_ns, tid);
          record.Set("s", JsonValue("t"));  // thread-scoped instant
          events.Append(std::move(record));
          break;
        }
        case TraceEventType::kCounter: {
          JsonValue record = EventRecord("C", event.name, event.ts_ns, tid);
          JsonValue args = JsonValue::Object();
          args.Set("value", JsonValue(event.value));
          record.Set("args", std::move(args));
          events.Append(std::move(record));
          break;
        }
      }
    }
    while (!open.empty()) {
      events.Append(EventRecord("E", open.back(), last_ts_ns, tid));
      open.pop_back();
    }
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", JsonValue("ms"));
  return doc;
}

JsonValue FlightRecorderSummaryJson(
    const std::vector<ThreadTimeline>& timelines) {
  uint64_t total_events = 0;
  uint64_t total_dropped = 0;
  JsonValue threads = JsonValue::Array();
  for (const ThreadTimeline& timeline : timelines) {
    total_events += timeline.events.size();
    total_dropped += timeline.dropped;
    JsonValue entry = JsonValue::Object();
    entry.Set("thread", JsonValue(static_cast<uint64_t>(timeline.thread_index)));
    entry.Set("label", JsonValue(TrackName(timeline)));
    entry.Set("events", JsonValue(static_cast<uint64_t>(timeline.events.size())));
    entry.Set("dropped", JsonValue(timeline.dropped));
    threads.Append(std::move(entry));
  }
  JsonValue out = JsonValue::Object();
  out.Set("events", JsonValue(total_events));
  out.Set("dropped", JsonValue(total_dropped));
  out.Set("threads", std::move(threads));
  return out;
}

bool WriteChromeTrace(const std::string& path, std::string* error) {
  const JsonValue doc =
      ChromeTraceJson(FlightRecorder::Global()->Snapshot());
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  out << doc.Serialize(/*indent=*/-1) << "\n";
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "failed writing trace to '" + path + "'";
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace safe
