#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {
namespace obs {

/// \brief Structured end-of-run report: metrics + span timeline + caller
/// sections (e.g. SAFE's per-iteration funnel diagnostics), serializable
/// to JSON (machines) and a fixed-width table (humans).
///
/// Typical use:
///   obs::RunReport report("safe_cli fit");
///   report.CaptureTelemetry();                // global registry + tracer
///   report.AddSection("iterations", IterationDiagnosticsToJson(diags));
///   report.set_wall_seconds(watch.ElapsedSeconds());
///   report.WriteFile(path, &error);
class RunReport {
 public:
  explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

  void set_wall_seconds(double seconds) { wall_seconds_ = seconds; }

  /// Snapshots the global MetricsRegistry and Tracer into the report.
  /// In SAFE_TELEMETRY=OFF builds both snapshots are empty.
  void CaptureTelemetry();

  void SetMetrics(MetricsSnapshot metrics) { metrics_ = std::move(metrics); }
  void SetSpans(std::vector<SpanRecord> spans) { spans_ = std::move(spans); }

  /// Attaches a caller-provided JSON section under `key` (top level).
  void AddSection(const std::string& key, JsonValue value);

  const MetricsSnapshot& metrics() const { return metrics_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Full report as a JSON document (schema documented in DESIGN.md).
  JsonValue ToJson() const;
  std::string ToJsonString() const { return ToJson().Serialize(); }

  /// Human-readable summary: counters/gauges, histogram stats, and spans
  /// aggregated by name (count, total, mean).
  std::string ToTable() const;

  /// Writes the JSON document to `path`. Returns false and fills
  /// `*error` (when non-null) on I/O failure.
  bool WriteFile(const std::string& path, std::string* error = nullptr) const;

 private:
  std::string tool_;
  double wall_seconds_ = 0.0;
  MetricsSnapshot metrics_;
  std::vector<SpanRecord> spans_;
  std::vector<std::pair<std::string, JsonValue>> sections_;
};

/// MetricsSnapshot as JSON: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, buckets: [{le, count}...]}}}.
JsonValue MetricsToJson(const MetricsSnapshot& metrics);

/// Span list as a JSON array ordered by start time; times in
/// microseconds relative to the trace epoch.
JsonValue SpansToJson(const std::vector<SpanRecord>& spans);

}  // namespace obs
}  // namespace safe
