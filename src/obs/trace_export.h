#pragma once

#include <string>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/json.h"

namespace safe {
namespace obs {

/// \brief Renders flight-recorder timelines as a Chrome trace-event
/// document (the `{"traceEvents": [...]}` object form), loadable in
/// chrome://tracing and https://ui.perfetto.dev.
///
/// Layout: one process (pid 1); each ThreadTimeline becomes a track
/// (tid = thread_index) named by a `thread_name` metadata record (the
/// timeline label, or "thread<index>" when unlabeled). Events map to
/// phases "B"/"E" (span begin/end), "i" (instant, thread-scoped) and
/// "C" (counter); timestamps are microseconds since the trace epoch.
///
/// The emitted stream is guaranteed well-nested per track even when the
/// ring dropped events mid-span: an end whose begin is missing is
/// skipped, and a begin whose end is missing is closed synthetically at
/// the track's last timestamp. Exporting is lossy only in those drop
/// cases — FlightScope already skips the end when its begin dropped, so
/// in-capacity recordings export verbatim.
JsonValue ChromeTraceJson(const std::vector<ThreadTimeline>& timelines);

/// \brief Compact per-run summary for RunReport sections:
/// {events, dropped, threads: [{thread, label, events, dropped}, ...]}.
JsonValue FlightRecorderSummaryJson(
    const std::vector<ThreadTimeline>& timelines);

/// Snapshots the global FlightRecorder and writes ChromeTraceJson to
/// `path` (compact, single line). Returns false and fills `*error`
/// (when non-null) on I/O failure. With SAFE_TELEMETRY=OFF this writes
/// a valid empty trace document.
bool WriteChromeTrace(const std::string& path, std::string* error = nullptr);

}  // namespace obs
}  // namespace safe
