#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"  // for SAFE_TELEMETRY_ENABLED

namespace safe {
namespace obs {

/// \brief One completed span: a named, nested interval on one thread.
/// Times are nanoseconds since the process-wide trace epoch (the first
/// use of the tracer), so spans from different threads share a timeline.
struct SpanRecord {
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_index = 0;  ///< dense per-thread id, not the OS tid
  uint32_t depth = 0;         ///< nesting level at span start (0 = root)
};

#if SAFE_TELEMETRY_ENABLED

/// Nanoseconds since the trace epoch (steady clock).
uint64_t NowNanos();

/// \brief Collects spans from every thread into one run timeline.
///
/// Each thread appends completed spans to its own buffer (registered on
/// first use, kept alive past thread exit via shared_ptr), so recording
/// never contends across threads; Snapshot() walks all buffers under the
/// registry mutex. Buffers cap at kMaxSpansPerThread; overflow is counted
/// in the `obs.spans_dropped` counter rather than growing without bound.
class Tracer {
 public:
  static constexpr size_t kMaxSpansPerThread = 1 << 16;

  /// Copies every recorded span, sorted by start time.
  std::vector<SpanRecord> Snapshot() const EXCLUDES(mutex_);

  /// Drops all recorded spans (registrations and the epoch are kept).
  void Reset() EXCLUDES(mutex_);

  static Tracer* Global();

  // Internal API used by TraceSpan.
  struct ThreadBuffer {
    Mutex mutex;
    uint32_t thread_index = 0;  ///< set once at registration, then read-only
    uint32_t depth = 0;  ///< touched only by the owning thread
    std::vector<SpanRecord> spans GUARDED_BY(mutex);
  };
  ThreadBuffer* LocalBuffer() EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ GUARDED_BY(mutex_);
  uint32_t next_thread_index_ GUARDED_BY(mutex_) = 0;
};

/// \brief RAII trace span: records [construction, destruction) into the
/// global tracer. Use via SAFE_TRACE_SPAN so disabled builds compile the
/// whole thing away.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) { Begin(); }
  explicit TraceSpan(std::string name) : name_(std::move(name)) { Begin(); }
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin();

  std::string name_;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t depth_ = 0;
};

#else  // !SAFE_TELEMETRY_ENABLED — inline no-op stubs.

inline uint64_t NowNanos() { return 0; }

class Tracer {
 public:
  std::vector<SpanRecord> Snapshot() const { return {}; }
  void Reset() {}
  static Tracer* Global() {
    static Tracer tracer;
    return &tracer;
  }
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  explicit TraceSpan(const std::string&) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace obs
}  // namespace safe

#define SAFE_OBS_CONCAT_INNER(a, b) a##b
#define SAFE_OBS_CONCAT(a, b) SAFE_OBS_CONCAT_INNER(a, b)

/// Opens a scoped trace span: SAFE_TRACE_SPAN("engine.mine_combinations");
/// The span closes when the enclosing scope exits.
#define SAFE_TRACE_SPAN(name) \
  ::safe::obs::TraceSpan SAFE_OBS_CONCAT(safe_trace_span_, __LINE__)(name)
