#include "src/obs/metrics.h"

#include <algorithm>

namespace safe {
namespace obs {

std::vector<double> DefaultLatencyBucketsUs() {
  // 1-2.5-5 decades from 1us to 1s; the overflow bucket catches the rest.
  return {1.0,    2.5,    5.0,    10.0,    25.0,    50.0,     100.0,
          250.0,  500.0,  1000.0, 2500.0,  5000.0,  10000.0,  25000.0,
          50000.0, 100000.0, 250000.0, 500000.0, 1000000.0};
}

#if SAFE_TELEMETRY_ENABLED

namespace {
/// Process-unique sequence number for the calling thread, assigned on
/// first use (0, 1, 2, ... in first-use order).
uint64_t ThreadSequenceNumber() {
  static std::atomic<uint64_t> next{0};
  thread_local const uint64_t id = next.fetch_add(1);
  return id;
}
}  // namespace

Histogram* PerThreadHistogram(const std::string& base_name,
                              std::vector<double> upper_bounds) {
  // Per-thread cache: registry lookup (mutex) only on each thread's first
  // call for a given base name.
  thread_local std::map<std::string, Histogram*> cache;
  Histogram*& slot = cache[base_name];
  if (slot == nullptr) {
    slot = MetricsRegistry::Global()->histogram(
        base_name + ".thread" + std::to_string(ThreadSequenceNumber()),
        std::move(upper_bounds));
  }
  return slot;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)) {
  std::sort(upper_bounds_.begin(), upper_bounds_.end());
  upper_bounds_.erase(
      std::unique(upper_bounds_.begin(), upper_bounds_.end()),
      upper_bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(
      upper_bounds_.size() + 1);
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    // lint: mo-ok(pre-publication init; the object escapes only via the registry mutex)
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  // lint: mo-ok(standalone telemetry tallies; Snapshot tolerates torn cross-bucket views)
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  // lint: mo-ok(see above)
  count_.fetch_add(1, std::memory_order_relaxed);
  // lint: mo-ok(RMW retry on the standalone sum cell)
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {  // lint: mo-ok(retry loop on the same standalone cell)
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.upper_bounds = upper_bounds_;
  snap.counts.resize(upper_bounds_.size() + 1);
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    // lint: mo-ok(pairs with Observe's relaxed tallies; per-cell consistency is all Snapshot promises)
    snap.counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  // lint: mo-ok(see above)
  snap.count = count_.load(std::memory_order_relaxed);
  // lint: mo-ok(see above)
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) {
    // lint: mo-ok(telemetry reset; racing Observe tallies may land on either side)
    counts_[i].store(0, std::memory_order_relaxed);
  }
  // lint: mo-ok(see above)
  count_.store(0, std::memory_order_relaxed);
  // lint: mo-ok(see above)
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms[name] = histogram->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

MetricsRegistry* MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return registry;
}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace obs
}  // namespace safe
