#include "src/obs/flight_recorder.h"

#if SAFE_TELEMETRY_ENABLED

#include "src/obs/trace.h"  // NowNanos: shared trace epoch

namespace safe {
namespace obs {

namespace internal {
std::atomic<bool> g_recorder_armed{false};
thread_local uint64_t g_sample_counter = 0;
}  // namespace internal

namespace {

std::atomic<uint64_t> g_next_recorder_id{1};

TraceEvent MakeEvent(const char* name, TraceEventType type, double value) {
  TraceEvent event;
  event.ts_ns = NowNanos();
  event.name = name;
  event.value = value;
  event.type = type;
  return event;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t events_per_thread)
    : events_per_thread_(events_per_thread == 0 ? 1 : events_per_thread),
      // lint: mo-ok(standalone id counter; pairs only with itself)
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

void FlightRecorder::Arm() {
  // lint: mo-ok(standalone on/off flag; pairs with armed()'s relaxed load)
  internal::g_recorder_armed.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Disarm() {
  // lint: mo-ok(see Arm)
  internal::g_recorder_armed.store(false, std::memory_order_relaxed);
}

internal::EventBuffer* FlightRecorder::LocalBuffer() {
  // Keyed by the recorder's process-unique id (not `this` — a destroyed
  // test instance's address can be reused) so the global recorder and
  // test instances coexist on one thread. The shared_ptr in the cache
  // and in buffers_ keeps a buffer alive past both thread exit and
  // recorder destruction.
  thread_local std::vector<
      std::pair<uint64_t, std::shared_ptr<internal::EventBuffer>>>
      cache;
  for (const auto& entry : cache) {
    if (entry.first == id_) return entry.second.get();
  }
  auto buffer = std::make_shared<internal::EventBuffer>(events_per_thread_);
  {
    MutexLock lock(mutex_);
    buffer->thread_index_ = next_thread_index_++;
    buffers_.push_back(buffer);
  }
  cache.emplace_back(id_, buffer);
  return buffer.get();
}

void FlightRecorder::SetCurrentThreadLabel(std::string label) {
  internal::EventBuffer* buffer = LocalBuffer();
  MutexLock lock(mutex_);
  buffer->label_ = std::move(label);
}

void FlightRecorder::RecordInstant(const char* name) {
  LocalBuffer()->Record(MakeEvent(name, TraceEventType::kInstant, 0.0));
}

void FlightRecorder::RecordCounter(const char* name, double value) {
  LocalBuffer()->Record(MakeEvent(name, TraceEventType::kCounter, value));
}

std::vector<ThreadTimeline> FlightRecorder::Snapshot() const {
  std::vector<ThreadTimeline> out;
  MutexLock lock(mutex_);
  out.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadTimeline timeline;
    timeline.thread_index = buffer->thread_index_;
    timeline.label = buffer->label_;
    timeline.dropped = buffer->dropped();
    const uint64_t n = buffer->size();  // acquire: publishes events_[0, n)
    // n >= 1 also publishes the lazily allocated ring itself; with n == 0
    // the vector may be concurrently resizing in its owner — don't touch.
    if (n > 0) {
      timeline.events.assign(buffer->events_.begin(),
                             buffer->events_.begin() + static_cast<long>(n));
    }
    out.push_back(std::move(timeline));
  }
  return out;
}

void FlightRecorder::Clear() {
  MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    // lint: mo-ok(truncates the published prefix; pairs with size()'s acquire load like Record's release store)
    buffer->size_.store(0, std::memory_order_release);
    // lint: mo-ok(standalone drop tally reset)
    buffer->dropped_.store(0, std::memory_order_relaxed);
  }
}

FlightRecorder* FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never freed
  return recorder;
}

void FlightScope::Begin(const char* name) {
  internal::EventBuffer* buffer = FlightRecorder::Global()->LocalBuffer();
  if (!buffer->Record(MakeEvent(name, TraceEventType::kBegin, 0.0))) {
    return;  // begin dropped: skip the end too, one drop per lost span
  }
  buffer_ = buffer;
  name_ = name;
}

void FlightScope::End() {
  buffer_->Record(MakeEvent(name_, TraceEventType::kEnd, 0.0));
}

void SampledFlightScope::Begin(const char* name) {
  internal::EventBuffer* buffer = FlightRecorder::Global()->LocalBuffer();
  if (!buffer->Record(MakeEvent(name, TraceEventType::kBegin, 0.0))) {
    return;
  }
  buffer_ = buffer;
  name_ = name;
}

void SampledFlightScope::End() {
  buffer_->Record(MakeEvent(name_, TraceEventType::kEnd, 0.0));
}

}  // namespace obs
}  // namespace safe

#endif  // SAFE_TELEMETRY_ENABLED
