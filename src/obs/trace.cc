#include "src/obs/trace.h"

#if SAFE_TELEMETRY_ENABLED

#include <algorithm>
#include <chrono>

namespace safe {
namespace obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point TraceEpoch() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return epoch;
}

Counter* DroppedCounter() {
  static Counter* counter =
      MetricsRegistry::Global()->counter("obs.spans_dropped");
  return counter;
}

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - TraceEpoch())
          .count());
}

Tracer::ThreadBuffer* Tracer::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local;
  if (local == nullptr) {
    local = std::make_shared<ThreadBuffer>();
    MutexLock lock(mutex_);
    local->thread_index = next_thread_index_++;
    buffers_.push_back(local);
  }
  return local.get();
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    MutexLock lock(mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(buffer->mutex);
      out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.depth < b.depth;
            });
  return out;
}

void Tracer::Reset() {
  MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->spans.clear();
  }
}

Tracer* Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never freed
  // Pin the epoch the first time anyone touches tracing so span starts
  // are small offsets rather than raw steady-clock readings.
  TraceEpoch();
  return tracer;
}

void TraceSpan::Begin() {
  buffer_ = Tracer::Global()->LocalBuffer();
  depth_ = buffer_->depth++;
  start_ns_ = NowNanos();
}

TraceSpan::~TraceSpan() {
  const uint64_t end_ns = NowNanos();
  --buffer_->depth;
  MutexLock lock(buffer_->mutex);
  if (buffer_->spans.size() >= Tracer::kMaxSpansPerThread) {
    DroppedCounter()->Increment();
    return;
  }
  SpanRecord record;
  record.name = std::move(name_);
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  record.thread_index = buffer_->thread_index;
  record.depth = depth_;
  buffer_->spans.push_back(std::move(record));
}

}  // namespace obs
}  // namespace safe

#endif  // SAFE_TELEMETRY_ENABLED
