#include "src/obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace safe {
namespace obs {

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

/// Recursive-descent JSON parser over a raw character range.
class Parser {
 public:
  Parser(const char* begin, const char* end) : p_(begin), end_(end) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out, error, 0)) return false;
    SkipWhitespace();
    if (p_ != end_) {
      Fail(error, "trailing characters after JSON value");
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  void Fail(std::string* error, const std::string& message) {
    if (error != nullptr && error->empty()) {
      *error = "json: " + message + " at offset " +
               std::to_string(static_cast<size_t>(p_ - begin_));
    }
  }

  bool Literal(const char* word) {
    const char* q = p_;
    for (const char* w = word; *w != '\0'; ++w, ++q) {
      if (q == end_ || *q != *w) return false;
    }
    p_ = q;
    return true;
  }

  bool ParseString(std::string* out, std::string* error) {
    if (p_ == end_ || *p_ != '"') {
      Fail(error, "expected string");
      return false;
    }
    ++p_;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) break;
      char esc = *p_++;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (end_ - p_ < 4) {
            Fail(error, "truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail(error, "bad \\u escape");
              return false;
            }
          }
          // UTF-8 encode (surrogate pairs unsupported; the writer only
          // emits \u00xx for control bytes).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail(error, "unknown escape");
          return false;
      }
    }
    if (p_ == end_) {
      Fail(error, "unterminated string");
      return false;
    }
    ++p_;  // closing quote
    return true;
  }

  bool ParseValue(JsonValue* out, std::string* error, int depth) {
    if (depth > kMaxDepth) {
      Fail(error, "nesting too deep");
      return false;
    }
    SkipWhitespace();
    if (p_ == end_) {
      Fail(error, "unexpected end of input");
      return false;
    }
    const char c = *p_;
    if (c == 'n') {
      if (!Literal("null")) {
        Fail(error, "bad literal");
        return false;
      }
      *out = JsonValue();
      return true;
    }
    if (c == 't') {
      if (!Literal("true")) {
        Fail(error, "bad literal");
        return false;
      }
      *out = JsonValue(true);
      return true;
    }
    if (c == 'f') {
      if (!Literal("false")) {
        Fail(error, "bad literal");
        return false;
      }
      *out = JsonValue(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!ParseString(&s, error)) return false;
      *out = JsonValue(std::move(s));
      return true;
    }
    if (c == '[') {
      ++p_;
      *out = JsonValue::Array();
      SkipWhitespace();
      if (p_ != end_ && *p_ == ']') {
        ++p_;
        return true;
      }
      for (;;) {
        JsonValue item;
        if (!ParseValue(&item, error, depth + 1)) return false;
        out->Append(std::move(item));
        SkipWhitespace();
        if (p_ != end_ && *p_ == ',') {
          ++p_;
          continue;
        }
        if (p_ != end_ && *p_ == ']') {
          ++p_;
          return true;
        }
        Fail(error, "expected ',' or ']'");
        return false;
      }
    }
    if (c == '{') {
      ++p_;
      *out = JsonValue::Object();
      SkipWhitespace();
      if (p_ != end_ && *p_ == '}') {
        ++p_;
        return true;
      }
      for (;;) {
        SkipWhitespace();
        std::string key;
        if (!ParseString(&key, error)) return false;
        SkipWhitespace();
        if (p_ == end_ || *p_ != ':') {
          Fail(error, "expected ':'");
          return false;
        }
        ++p_;
        JsonValue value;
        if (!ParseValue(&value, error, depth + 1)) return false;
        out->Set(key, std::move(value));
        SkipWhitespace();
        if (p_ != end_ && *p_ == ',') {
          ++p_;
          continue;
        }
        if (p_ != end_ && *p_ == '}') {
          ++p_;
          return true;
        }
        Fail(error, "expected ',' or '}'");
        return false;
      }
    }
    // Number.
    char* num_end = nullptr;
    const double value = std::strtod(p_, &num_end);
    if (num_end == p_ || num_end > end_) {
      Fail(error, "expected value");
      return false;
    }
    p_ = num_end;
    *out = JsonValue(value);
    return true;
  }

  const char* p_;
  const char* begin_ = p_;
  const char* end_;
};

}  // namespace

std::string JsonFormatNumber(double value) {
  if (std::isnan(value) || std::isinf(value)) {
    // JSON has no NaN/Inf; reports clamp to null-ish zero rather than
    // emitting invalid documents.
    return "0";
  }
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, value);
    if (std::strtod(shorter, nullptr) == value) return shorter;
  }
  return buf;
}

void JsonValue::Append(JsonValue value) {
  if (type_ != Type::kArray) return;
  items_.push_back(std::move(value));
}

void JsonValue::Set(const std::string& key, JsonValue value) {
  if (type_ != Type::kObject) return;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(key, std::move(value));
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += JsonFormatNumber(number_);
      return;
    case Type::kString:
      AppendEscaped(string_, out);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        items_[i].SerializeTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        AppendIndent(out, indent, depth + 1);
        AppendEscaped(members_[i].first, out);
        *out += indent < 0 ? ":" : ": ";
        members_[i].second.SerializeTo(out, indent, depth + 1);
      }
      AppendIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  if (indent >= 0) out.push_back('\n');
  return out;
}

bool JsonValue::operator==(const JsonValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull:
      return true;
    case Type::kBool:
      return bool_ == other.bool_;
    case Type::kNumber:
      return number_ == other.number_;
    case Type::kString:
      return string_ == other.string_;
    case Type::kArray:
      return items_ == other.items_;
    case Type::kObject:
      return members_ == other.members_;
  }
  return false;
}

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.Parse(out, error);
}

}  // namespace obs
}  // namespace safe
