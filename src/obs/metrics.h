#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_annotations.h"

// Compile-time telemetry switch (CMake option SAFE_TELEMETRY). When off,
// every metric and span in the tree compiles to an inline no-op so the
// instrumented hot paths carry zero overhead and the binaries contain no
// telemetry symbols (tools/check_telemetry_symbols.py verifies this).
#ifndef SAFE_TELEMETRY_ENABLED
#define SAFE_TELEMETRY_ENABLED 1
#endif

namespace safe {
namespace obs {

/// \brief Point-in-time copy of one histogram.
///
/// Buckets follow the Prometheus `le` convention: `counts[i]` is the
/// number of observations `<= upper_bounds[i]`, with one extra overflow
/// bucket at the end (`counts.size() == upper_bounds.size() + 1`).
struct HistogramSnapshot {
  std::vector<double> upper_bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// \brief Point-in-time copy of every metric in a registry; safe to read,
/// serialize, and diff while the hot paths keep mutating the live metrics.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Exponential latency buckets in microseconds (1us .. 1s), the default
/// for the *_us histograms registered across the library.
std::vector<double> DefaultLatencyBucketsUs();

// Declared for both telemetry modes; defined in metrics.cc (real) or as
// an inline stub below (no-op).
class Histogram;

/// \brief Histogram in the global registry named
/// `<base_name>.thread<k>`, where k is a small process-unique sequence
/// number assigned to the calling thread on first use.
///
/// Gives hot parallel stages (e.g. the GBDT per-feature histogram build)
/// per-thread timing series without any cross-thread contention: the
/// resolved pointer is cached thread-locally, so repeated calls from the
/// same thread touch only that thread's map. With SAFE_TELEMETRY=OFF this
/// returns the shared no-op histogram.
Histogram* PerThreadHistogram(const std::string& base_name,
                              std::vector<double> upper_bounds);

#if SAFE_TELEMETRY_ENABLED

/// \brief Monotonically increasing counter; lock-free relaxed increments.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    // lint: mo-ok(standalone telemetry tally; readers need the count, not an ordering with other data)
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  // lint: mo-ok(see Increment; value() pairs with those relaxed updates)
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  // lint: mo-ok(see Increment)
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (queue depth, pool size).
class Gauge {
 public:
  // lint: mo-ok(standalone telemetry value; pairs with value()'s relaxed load only)
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    // lint: mo-ok(RMW on the standalone gauge cell; no other data ordered)
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {  // lint: mo-ok(retry loop on the same standalone cell)
    }
  }
  // lint: mo-ok(pairs with Set/Add's relaxed updates)
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};  // lint: fp-atomic-ok(telemetry gauge; feeds no deterministic output)
};

/// \brief Fixed-bucket histogram; Observe is lock-free (relaxed atomics),
/// Snapshot copies without stopping writers.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> upper_bounds_;           // sorted ascending
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds + overflow
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  // lint: fp-atomic-ok(telemetry histogram sum; diagnostics only)
};

/// \brief Named metric registry. Creation takes a mutex; the returned
/// pointers are stable for the registry's lifetime, so hot paths resolve
/// a metric once (typically into a function-local static) and then touch
/// only the atomics.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name) EXCLUDES(mutex_);
  Gauge* gauge(const std::string& name) EXCLUDES(mutex_);
  /// Returns the existing histogram when `name` is already registered
  /// (the bounds argument is then ignored).
  Histogram* histogram(const std::string& name,
                       std::vector<double> upper_bounds) EXCLUDES(mutex_);

  /// Copies every metric; values observed during the copy may or may not
  /// be included (each metric is internally consistent).
  MetricsSnapshot Snapshot() const EXCLUDES(mutex_);

  /// Zeroes all values but keeps registrations (pointers stay valid).
  void Reset() EXCLUDES(mutex_);

  /// Process-wide registry used by the built-in instrumentation.
  static MetricsRegistry* Global();

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

#else  // !SAFE_TELEMETRY_ENABLED — inline no-op stubs.

class Counter {
 public:
  void Increment(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  double value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  explicit Histogram(const std::vector<double>&) {}
  void Observe(double) {}
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
};

namespace internal {
inline Counter g_noop_counter;
inline Gauge g_noop_gauge;
inline Histogram g_noop_histogram{{}};
}  // namespace internal

inline Histogram* PerThreadHistogram(const std::string&,
                                     std::vector<double>) {
  return &internal::g_noop_histogram;
}

class MetricsRegistry {
 public:
  Counter* counter(const std::string&) { return &internal::g_noop_counter; }
  Gauge* gauge(const std::string&) { return &internal::g_noop_gauge; }
  Histogram* histogram(const std::string&, std::vector<double>) {
    return &internal::g_noop_histogram;
  }
  MetricsSnapshot Snapshot() const { return {}; }
  void Reset() {}
  static MetricsRegistry* Global() {
    static MetricsRegistry registry;
    return &registry;
  }
};

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace obs
}  // namespace safe
