#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace safe {
namespace obs {

/// \brief Minimal ordered JSON document model used by the telemetry run
/// reports (src/obs/report.h).
///
/// Deliberately tiny: numbers are doubles (integers up to 2^53 survive a
/// round trip exactly), objects preserve insertion order so serialized
/// reports are byte-stable, and parsing exists so tests can assert that
/// a report round-trips. Lives below src/common in the layer stack, so it
/// must not depend on Status/Result.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool value) : type_(Type::kBool), bool_(value) {}
  JsonValue(double value) : type_(Type::kNumber), number_(value) {}
  JsonValue(int value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(int64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(uint64_t value) : JsonValue(static_cast<double>(value)) {}
  JsonValue(const char* value) : type_(Type::kString), string_(value) {}
  JsonValue(std::string value)
      : type_(Type::kString), string_(std::move(value)) {}

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }

  /// Array elements (valid for kArray).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in insertion order (valid for kObject).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Appends to an array (no-op on other types).
  void Append(JsonValue value);
  /// Sets/overwrites an object key, preserving first-insertion order.
  void Set(const std::string& key, JsonValue value);
  /// Object lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Pretty-prints with two-space indentation and a trailing newline at
  /// top level when `indent >= 0`; `indent < 0` emits compact JSON.
  std::string Serialize(int indent = 2) const;

  /// Structural equality (object member order matters — reports are
  /// emitted deterministically).
  bool operator==(const JsonValue& other) const;
  bool operator!=(const JsonValue& other) const { return !(*this == other); }

  /// Parses `text` into `*out`. Returns false and fills `*error`
  /// (when non-null) on malformed input or trailing garbage.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Formats a double the way the serializer does: integral values without
/// a fractional part, everything else with round-trip precision.
std::string JsonFormatNumber(double value);

}  // namespace obs
}  // namespace safe
