#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/obs/metrics.h"  // for SAFE_TELEMETRY_ENABLED

namespace safe {
namespace obs {

/// \brief Kind of one flight-recorder event.
///
/// Spans are recorded as separate begin/end events (not one completed
/// record like obs::TraceSpan) so the record path stays a single fixed
/// size write with no per-scope state beyond the RAII object itself.
enum class TraceEventType : uint16_t {
  kBegin = 0,    ///< span opens; matched by the next kEnd at same depth
  kEnd = 1,      ///< span closes
  kInstant = 2,  ///< point event
  kCounter = 3,  ///< sampled counter value (in `value`)
};

/// \brief One POD flight-recorder event: 32 bytes, trivially copyable.
///
/// `name` must be a string literal (or otherwise outlive the recorder);
/// the record path never copies or owns it. Timestamps share the
/// monotonic process trace epoch with obs::Tracer, so flight-recorder
/// timelines and coarse spans line up on one clock.
struct TraceEvent {
  uint64_t ts_ns = 0;          ///< nanoseconds since the trace epoch
  const char* name = nullptr;  ///< static string; never owned
  double value = 0.0;          ///< counter sample payload
  TraceEventType type = TraceEventType::kInstant;
  uint16_t reserved = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(TraceEvent) <= 32,
              "TraceEvent must stay within the 32-byte record budget");
static_assert(std::is_trivially_copyable_v<TraceEvent>,
              "TraceEvent must be POD so the record path is a plain store");

/// \brief Drained copy of one thread's event buffer.
struct ThreadTimeline {
  uint32_t thread_index = 0;  ///< dense registration order, not the OS tid
  std::string label;          ///< e.g. "main" or "pool0.worker3"; may be empty
  uint64_t dropped = 0;       ///< events rejected because the buffer was full
  std::vector<TraceEvent> events;
};

#if SAFE_TELEMETRY_ENABLED

class FlightRecorder;

namespace internal {

/// \brief Fixed-capacity single-writer event buffer.
///
/// The owning thread appends with Record(); no lock, no allocation —
/// storage is preallocated at registration. When full, events are
/// dropped (not wrapped) and counted, so the drop count for a given
/// record sequence is deterministic: capacity K, K+N records => N drops.
/// Readers (Snapshot) see a consistent prefix via the release/acquire
/// pair on `size_`.
class EventBuffer {
 public:
  explicit EventBuffer(size_t capacity) : capacity_(capacity) {}

  EventBuffer(const EventBuffer&) = delete;
  EventBuffer& operator=(const EventBuffer&) = delete;

  /// Appends one event. Owning thread only. Returns false (and bumps the
  /// drop counter) when the buffer is full.
  // lint: hot-path
  bool Record(const TraceEvent& event) {
    // lint: mo-ok(single-writer cell; only this thread stores size_, so its own last store is visible)
    const uint64_t n = size_.load(std::memory_order_relaxed);
    if (n >= capacity_) {
      // lint: mo-ok(standalone drop tally; pairs with dropped()'s relaxed load)
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // The ring is allocated on first record, not at registration: a
    // thread that only ever labels itself (e.g. a scoring-server shard
    // worker in a process that never arms the recorder) costs a registry
    // entry, not `capacity * 32` bytes — server lifecycle churn would
    // otherwise retain one full ring per worker thread forever. The
    // release store of size_ below publishes the allocation along with
    // the event: readers that observe size_ >= 1 (acquire) may touch
    // events_; readers that observe 0 must not.
    if (events_.empty()) events_.resize(capacity_);  // lint: hot-path-ok(one-time lazy ring allocation, amortized to zero; published by the size_ release store below)
    events_[n] = event;
    // lint: mo-ok(release publish of events_[0, n] and the ring allocation; pairs with size()'s acquire load in Snapshot)
    size_.store(n + 1, std::memory_order_release);
    return true;
  }

  // lint: mo-ok(acquire side of Record's release publish; makes events_[0, size) safe to read)
  uint64_t size() const { return size_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    // lint: mo-ok(pairs with Record's relaxed drop tally)
    return dropped_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

 private:
  friend class ::safe::obs::FlightRecorder;

  const size_t capacity_;
  std::vector<TraceEvent> events_;  // lazily sized to capacity_ on first
                                    // Record; never resized afterwards
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
  uint32_t thread_index_ = 0;   // assigned at registration
  std::string label_;           // guarded by the recorder's mutex
};

/// Armed flag for the global recorder; checked inline (one relaxed load
/// and a branch) on every instrumentation site, so a disarmed recorder
/// costs effectively nothing on the hot paths.
extern std::atomic<bool> g_recorder_armed;

/// Per-thread sampling counter shared by every SampledFlightScope site,
/// advanced inline so an unsampled (armed) entry costs one increment
/// and a compare — no out-of-line call on per-row paths.
extern thread_local uint64_t g_sample_counter;

}  // namespace internal

/// \brief Always-compilable low-overhead event tracer.
///
/// Each thread records into its own fixed-capacity internal::EventBuffer
/// (registered on first use, kept alive past thread exit via shared_ptr,
/// exactly like obs::Tracer). The global instance is *armed* explicitly
/// (--trace on the bench harness, `safe_cli trace`, or tests); while
/// disarmed, the SAFE_FR_* instrumentation macros reduce to a relaxed
/// atomic load. Snapshot() drains every buffer into ThreadTimelines for
/// the Chrome-trace exporter (src/obs/trace_export.h).
///
/// Clear() and label writes take the registry mutex; Record is
/// synchronization-free. Clearing while other threads are actively
/// recording is race-free but may interleave stale sizes — arm/clear at
/// phase boundaries, not mid-burst.
class FlightRecorder {
 public:
  /// 64Ki events/thread = 2 MiB/thread; bounds memory for long runs
  /// while holding minutes of sampled serving traffic or a full fit.
  static constexpr size_t kDefaultEventsPerThread = size_t{1} << 16;

  explicit FlightRecorder(
      size_t events_per_thread = kDefaultEventsPerThread);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Arms / disarms the *global* instrumentation sites. Instance-level
  /// Record calls (via LocalBuffer) ignore the flag.
  static void Arm();
  static void Disarm();
  static bool armed() {
    // lint: mo-ok(standalone on/off flag; Arm/Disarm store it relaxed, a stale read only delays the first event)
    return internal::g_recorder_armed.load(std::memory_order_relaxed);
  }

  /// The calling thread's buffer, registering (and preallocating) it on
  /// first use. The pointer stays valid for the process lifetime.
  internal::EventBuffer* LocalBuffer() EXCLUDES(mutex_);

  /// Names the calling thread's timeline ("main", "pool0.worker3", ...).
  void SetCurrentThreadLabel(std::string label) EXCLUDES(mutex_);

  /// Convenience single-event recorders on the calling thread's buffer.
  void RecordInstant(const char* name);
  void RecordCounter(const char* name, double value);

  /// Copies every thread's events (a consistent prefix of each buffer),
  /// ordered by registration index.
  std::vector<ThreadTimeline> Snapshot() const EXCLUDES(mutex_);

  /// Drops all recorded events and zeroes drop counters; registrations
  /// and labels are kept.
  void Clear() EXCLUDES(mutex_);

  size_t events_per_thread() const { return events_per_thread_; }

  /// Process-wide recorder used by the SAFE_FR_* macros.
  static FlightRecorder* Global();

 private:
  const size_t events_per_thread_;
  const uint64_t id_;  ///< process-unique; keys the thread-local cache
  mutable Mutex mutex_;
  std::vector<std::shared_ptr<internal::EventBuffer>> buffers_
      GUARDED_BY(mutex_);
  uint32_t next_thread_index_ GUARDED_BY(mutex_) = 0;
};

/// \brief RAII begin/end pair on the global recorder; no-op while
/// disarmed. If the begin event is dropped (buffer full), the end is
/// skipped too, so a lost span costs exactly one drop count and the
/// surviving stream stays well-nested.
class FlightScope {
 public:
  explicit FlightScope(const char* name) {
    if (FlightRecorder::armed()) Begin(name);
  }
  ~FlightScope() {
    if (buffer_ != nullptr) End();
  }

  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

 private:
  void Begin(const char* name);
  void End();

  internal::EventBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
};

/// \brief FlightScope that records only every Nth construction on the
/// calling thread (one shared per-thread counter across all sampled
/// sites), bounding event volume on per-request paths like
/// serve::RowScorer::ScoreRow.
class SampledFlightScope {
 public:
  SampledFlightScope(const char* name, uint32_t one_in_n) {
    // The whole sampling decision stays inline: with a literal rate the
    // modulo folds to a mask, so an armed-but-unsampled construction is
    // a relaxed load, a thread-local increment and a compare.
    if (FlightRecorder::armed() &&
        (one_in_n <= 1 ||
         (internal::g_sample_counter++ % one_in_n) == 0)) {
      Begin(name);
    }
  }
  ~SampledFlightScope() {
    if (buffer_ != nullptr) End();
  }

  SampledFlightScope(const SampledFlightScope&) = delete;
  SampledFlightScope& operator=(const SampledFlightScope&) = delete;

 private:
  void Begin(const char* name);
  void End();

  internal::EventBuffer* buffer_ = nullptr;
  const char* name_ = nullptr;
};

/// Free-function instrumentation helpers with the same armed fast path.
inline void FlightRecorderInstant(const char* name) {
  if (FlightRecorder::armed()) {
    FlightRecorder::Global()->RecordInstant(name);
  }
}
inline void FlightRecorderCounter(const char* name, double value) {
  if (FlightRecorder::armed()) {
    FlightRecorder::Global()->RecordCounter(name, value);
  }
}

#else  // !SAFE_TELEMETRY_ENABLED — inline no-op stubs.

class FlightRecorder {
 public:
  static constexpr size_t kDefaultEventsPerThread = size_t{1} << 16;

  explicit FlightRecorder(size_t = kDefaultEventsPerThread) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static void Arm() {}
  static void Disarm() {}
  static bool armed() { return false; }
  void SetCurrentThreadLabel(const std::string&) {}
  void RecordInstant(const char*) {}
  void RecordCounter(const char*, double) {}
  std::vector<ThreadTimeline> Snapshot() const { return {}; }
  void Clear() {}
  size_t events_per_thread() const { return 0; }
  static FlightRecorder* Global() {
    static FlightRecorder recorder;
    return &recorder;
  }
};

class FlightScope {
 public:
  explicit FlightScope(const char*) {}
  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;
};

class SampledFlightScope {
 public:
  SampledFlightScope(const char*, uint32_t) {}
  SampledFlightScope(const SampledFlightScope&) = delete;
  SampledFlightScope& operator=(const SampledFlightScope&) = delete;
};

inline void FlightRecorderInstant(const char*) {}
inline void FlightRecorderCounter(const char*, double) {}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace obs
}  // namespace safe

#define SAFE_FR_CONCAT_INNER(a, b) a##b
#define SAFE_FR_CONCAT(a, b) SAFE_FR_CONCAT_INNER(a, b)

/// Opens a flight-recorder span for the enclosing scope:
///   SAFE_FR_SCOPE("gbdt.build_histograms");
/// `name` must be a string literal. Records nothing while the global
/// recorder is disarmed (or when SAFE_TELEMETRY=OFF).
#define SAFE_FR_SCOPE(name)                                         \
  ::safe::obs::FlightScope SAFE_FR_CONCAT(safe_fr_scope_, __LINE__)(name)

/// Same, but records only one in `one_in_n` entries per thread:
///   SAFE_FR_SAMPLED_SCOPE("serve.score_row", 64);
#define SAFE_FR_SAMPLED_SCOPE(name, one_in_n)                       \
  ::safe::obs::SampledFlightScope SAFE_FR_CONCAT(safe_fr_sampled_,  \
                                                 __LINE__)(name, one_in_n)

/// Point event / counter sample at the call site.
#define SAFE_FR_INSTANT(name) ::safe::obs::FlightRecorderInstant(name)
#define SAFE_FR_COUNTER(name, value) \
  ::safe::obs::FlightRecorderCounter(name, value)
