#include "src/obs/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/obs/flight_recorder.h"
#include "src/obs/trace_export.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace safe {
namespace obs {

namespace {

constexpr int kReportSchemaVersion = 1;

std::string FormatFixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace

JsonValue MetricsToJson(const MetricsSnapshot& metrics) {
  JsonValue out = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : metrics.counters) {
    counters.Set(name, JsonValue(value));
  }
  out.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : metrics.gauges) {
    gauges.Set(name, JsonValue(value));
  }
  out.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, snap] : metrics.histograms) {
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue(snap.count));
    h.Set("sum", JsonValue(snap.sum));
    JsonValue buckets = JsonValue::Array();
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      // Skip empty buckets to keep reports compact; the overflow bucket
      // has no finite upper bound and serializes le = null.
      if (snap.counts[i] == 0) continue;
      JsonValue bucket = JsonValue::Object();
      if (i < snap.upper_bounds.size()) {
        bucket.Set("le", JsonValue(snap.upper_bounds[i]));
      } else {
        bucket.Set("le", JsonValue());
      }
      bucket.Set("count", JsonValue(snap.counts[i]));
      buckets.Append(std::move(bucket));
    }
    h.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(h));
  }
  out.Set("histograms", std::move(histograms));
  return out;
}

JsonValue SpansToJson(const std::vector<SpanRecord>& spans) {
  JsonValue out = JsonValue::Array();
  for (const auto& span : spans) {
    JsonValue s = JsonValue::Object();
    s.Set("name", JsonValue(span.name));
    s.Set("start_us", JsonValue(static_cast<double>(span.start_ns) / 1e3));
    s.Set("duration_us",
          JsonValue(static_cast<double>(span.duration_ns) / 1e3));
    s.Set("thread", JsonValue(static_cast<uint64_t>(span.thread_index)));
    s.Set("depth", JsonValue(static_cast<uint64_t>(span.depth)));
    out.Append(std::move(s));
  }
  return out;
}

void RunReport::CaptureTelemetry() {
#if defined(__unix__) || defined(__APPLE__)
  // Peak RSS at emission time, so bench reports record memory next to
  // time (groundwork for out-of-core work, ROADMAP item 3).
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    const double peak_bytes = static_cast<double>(usage.ru_maxrss);
#else
    const double peak_bytes = static_cast<double>(usage.ru_maxrss) * 1024.0;
#endif
    MetricsRegistry::Global()->gauge("process.peak_rss_bytes")
        ->Set(peak_bytes);
  }
#endif
  metrics_ = MetricsRegistry::Global()->Snapshot();
  spans_ = Tracer::Global()->Snapshot();
  // The flight-recorder summary rides along whenever anything was
  // recorded (or dropped), so reports show event volume per thread
  // without embedding the full trace.
  const std::vector<ThreadTimeline> timelines =
      FlightRecorder::Global()->Snapshot();
  uint64_t total = 0;
  for (const ThreadTimeline& timeline : timelines) {
    total += timeline.events.size() + timeline.dropped;
  }
  if (total > 0) {
    AddSection("flight_recorder", FlightRecorderSummaryJson(timelines));
  }
}

void RunReport::AddSection(const std::string& key, JsonValue value) {
  for (auto& [k, v] : sections_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  sections_.emplace_back(key, std::move(value));
}

JsonValue RunReport::ToJson() const {
  JsonValue out = JsonValue::Object();
  out.Set("tool", JsonValue(tool_));
  out.Set("schema_version", JsonValue(kReportSchemaVersion));
  out.Set("telemetry_enabled", JsonValue(SAFE_TELEMETRY_ENABLED != 0));
  out.Set("wall_seconds", JsonValue(wall_seconds_));
  out.Set("metrics", MetricsToJson(metrics_));
  out.Set("spans", SpansToJson(spans_));
  for (const auto& [key, value] : sections_) {
    out.Set(key, value);
  }
  return out;
}

std::string RunReport::ToTable() const {
  std::ostringstream out;
  out << "== run report: " << tool_ << " ==\n";
  out << "wall time: " << FormatFixed(wall_seconds_, 3) << "s\n";

  if (!metrics_.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : metrics_.counters) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!metrics_.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : metrics_.gauges) {
      out << "  " << name << " = " << FormatFixed(value, 3) << "\n";
    }
  }
  if (!metrics_.histograms.empty()) {
    out << "histograms (count / sum / mean):\n";
    for (const auto& [name, snap] : metrics_.histograms) {
      out << "  " << name << " = " << snap.count << " / "
          << FormatFixed(snap.sum, 1) << " / "
          << FormatFixed(snap.mean(), 1) << "\n";
    }
  }

  if (!spans_.empty()) {
    // Aggregate the timeline by span name for a digestible summary.
    struct Agg {
      uint64_t count = 0;
      uint64_t total_ns = 0;
    };
    std::map<std::string, Agg> by_name;
    for (const auto& span : spans_) {
      Agg& agg = by_name[span.name];
      agg.count += 1;
      agg.total_ns += span.duration_ns;
    }
    std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                  by_name.end());
    std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
      return a.second.total_ns > b.second.total_ns;
    });
    out << "spans (count / total ms / mean ms):\n";
    for (const auto& [name, agg] : rows) {
      const double total_ms = static_cast<double>(agg.total_ns) / 1e6;
      out << "  " << name << " = " << agg.count << " / "
          << FormatFixed(total_ms, 2) << " / "
          << FormatFixed(total_ms / static_cast<double>(agg.count), 3)
          << "\n";
    }
  }
  return out.str();
}

bool RunReport::WriteFile(const std::string& path,
                          std::string* error) const {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) {
      *error = "cannot open '" + path + "' for writing";
    }
    return false;
  }
  out << ToJsonString();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace safe
