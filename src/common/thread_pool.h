#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace safe {

/// \brief Fixed-size thread pool with a shared FIFO queue.
///
/// The paper requires "most parts of the algorithm to be computed in
/// parallel" (Section I); IV computation, the Pearson matrix, GBDT split
/// search and the evaluation harness all fan out through this pool (via
/// ParallelFor). With num_threads == 1 tasks run on the caller thread at
/// Submit time, which keeps single-core machines overhead-free and
/// execution deterministic.
class ThreadPool {
 public:
  /// \param num_threads 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Enqueues a task; the future resolves when it has run.
  std::future<void> Submit(std::function<void()> task);

  /// Process-wide default pool (sized to hardware concurrency).
  static ThreadPool* Global();

 private:
  /// A queued task plus its enqueue time (for the task-wait histogram).
  struct PendingTask {
    std::packaged_task<void()> task;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  size_t num_threads_;
  std::vector<std::thread> workers_;
  std::queue<PendingTask> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// \brief Runs fn(i) for i in [begin, end) across the pool, blocking until
/// all iterations finish. Exceptions in fn are not supported (the library
/// is exception-free); fn must communicate failure through its captures.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

/// ParallelFor on the global pool.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

}  // namespace safe
