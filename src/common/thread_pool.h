#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace safe {

/// \brief Fixed-size thread pool with a shared FIFO queue.
///
/// The paper requires "most parts of the algorithm to be computed in
/// parallel" (Section I); IV computation, the Pearson matrix, GBDT split
/// search and the evaluation harness all fan out through this pool (via
/// ParallelFor). With num_threads == 1 tasks run on the caller thread at
/// Submit time, which keeps single-core machines overhead-free and
/// execution deterministic.
///
/// Submit is re-entrant: a task submitted from one of this pool's own
/// worker threads runs inline on the caller instead of being queued.
/// Without that rule a worker that submits subtasks and blocks on their
/// futures can starve the queue (every worker waiting, nothing draining)
/// — the classic nested fork-join deadlock.
class ThreadPool {
 public:
  /// \param num_threads 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Process-unique id assigned at construction; worker threads register
  /// flight-recorder timelines as "pool<id>.worker<index>" so traces
  /// distinguish the global pool from dedicated ones.
  uint32_t pool_id() const { return pool_id_; }

  /// Enqueues a task; the future resolves when it has run. Called from a
  /// worker thread of this same pool, the task runs inline (see above).
  std::future<void> Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// True when the calling thread is one of this pool's workers.
  bool InWorkerThread() const;

  /// Index of the calling thread within its owning pool ([0, n)), or -1
  /// when the caller is not a pool worker. Stable for the thread's
  /// lifetime; used for per-thread telemetry.
  static int CurrentWorkerIndex();

  /// Process-wide default pool (sized to hardware concurrency).
  static ThreadPool* Global();

 private:
  /// A queued task plus its enqueue time (for the task-wait histogram).
  struct PendingTask {
    std::packaged_task<void()> task;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop(size_t worker_index);

  size_t num_threads_;
  uint32_t pool_id_ = 0;
  std::vector<std::thread> workers_;
  Mutex mutex_;
  CondVar cv_;
  std::queue<PendingTask> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
};

/// \brief A ThreadPool* resolved from an `n_threads` knob, together with
/// ownership of any dedicated pool that resolution created.
///
/// The library-wide convention (GbdtParams::n_threads,
/// SafeParams::n_threads): 0 selects the shared process-wide pool, 1 is
/// fully serial (`pool` stays null — ParallelFor/ParallelForChunks run
/// the same task list inline), and k > 1 builds a dedicated k-worker
/// pool that lives as long as this selection.
struct PoolSelection {
  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> owned;

  /// Worker count the selection executes with (1 when serial).
  size_t num_threads() const { return pool ? pool->num_threads() : 1; }
};

/// Resolves the 0/1/k `n_threads` convention described on PoolSelection.
PoolSelection ResolvePool(size_t n_threads);

/// \brief Runs fn(i) for i in [begin, end) across the pool, blocking until
/// all iterations finish. Exceptions in fn are not supported (the library
/// is exception-free); fn must communicate failure through its captures.
void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

/// ParallelFor on the global pool.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn);

/// Number of fixed-size chunks ParallelForChunks uses for a range of `n`
/// elements at the given grain (`ceil(n / grain)`; 0 when n == 0).
size_t NumFixedChunks(size_t n, size_t grain);

/// \brief Deterministic chunked parallel-for: partitions [begin, end)
/// into fixed-size chunks of `grain` elements and runs
/// fn(chunk_index, lo, hi) for each chunk across the pool.
///
/// Unlike ParallelFor, the work partition depends only on the range and
/// the grain — never on the pool size — so callers that accumulate a
/// partial result per chunk and reduce the partials in chunk-index order
/// get bit-identical floating-point results at any thread count
/// (including pool == nullptr, which runs the same chunks sequentially).
/// This is the ordered-reduction substrate the GBDT trainer's
/// determinism guarantee is built on (DESIGN.md, "Parallel training &
/// determinism").
void ParallelForChunks(ThreadPool* pool, size_t begin, size_t end,
                       size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace safe
