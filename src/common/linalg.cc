#include "src/common/linalg.h"

#include <cmath>

namespace safe {

Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n * n) {
    return Status::InvalidArgument("solve: A must be n*n for b of size n");
  }
  if (n == 0) {
    return Status::InvalidArgument("solve: empty system");
  }
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a[col * n + col]);
    for (size_t r = col + 1; r < n; ++r) {
      const double candidate = std::fabs(a[r * n + col]);
      if (candidate > best) {
        best = candidate;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::InvalidArgument("solve: singular matrix");
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double inv_pivot = 1.0 / a[col * n + col];
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] * inv_pivot;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) {
        a[r * n + c] -= factor * a[col * n + c];
      }
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t c = row + 1; c < n; ++c) {
      sum -= a[row * n + c] * x[c];
    }
    x[row] = sum / a[row * n + row];
  }
  return x;
}

}  // namespace safe
