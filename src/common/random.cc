#include "src/common/random.h"

#include <cmath>
#include <numbers>

#include "src/common/logging.h"

namespace safe {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextUint64Below(uint64_t bound) {
  SAFE_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SAFE_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextUint64Below(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k > n) k = n;
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(NextUint64Below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace safe
