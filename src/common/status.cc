#include "src/common/status.h"

namespace safe {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace safe
