#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace safe {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Parses a double; "" / "NA" / "nan" / "?" parse as NaN (missing).
[[nodiscard]] Result<double> ParseDouble(std::string_view s);

/// Parses a base-10 integer.
[[nodiscard]] Result<int64_t> ParseInt(std::string_view s);

/// Formats with `precision` significant decimal digits, no trailing-zero
/// trimming (stable widths for table output).
std::string FormatDouble(double value, int precision = 6);

/// Round-trip-exact formatting (%.17g); model serialization uses this so
/// thresholds equal to data values survive a save/load unchanged.
std::string FormatDoubleExact(double value);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins parts with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

}  // namespace safe
