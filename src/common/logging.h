#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace safe {
namespace internal {

/// \brief Severity levels for the lightweight logger.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kFatal = 3 };

/// \brief Stream-style log sink; flushes (and aborts for kFatal) on
/// destruction. Used through the SAFE_LOG / SAFE_CHECK macros.
///
/// Lines carry a timestamp, level, dense thread id, and source location:
///   [2026-08-05 09:14:02.113 INFO t0 src/core/engine.cc:131] ...
/// Each message is emitted as one ostream write, so concurrent threads
/// never interleave partial lines. The minimum level defaults to INFO
/// and is overridable via the SAFE_LOG_LEVEL environment variable
/// (DEBUG/INFO/WARN/FATAL or 0-3) or SetMinLogLevel().
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Global minimum level actually emitted (kFatal always emits).
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

}  // namespace internal
}  // namespace safe

#define SAFE_LOG_DEBUG                                            \
  ::safe::internal::LogMessage(::safe::internal::LogLevel::kDebug, \
                               __FILE__, __LINE__)
#define SAFE_LOG_INFO                                            \
  ::safe::internal::LogMessage(::safe::internal::LogLevel::kInfo, \
                               __FILE__, __LINE__)
#define SAFE_LOG_WARNING                                            \
  ::safe::internal::LogMessage(::safe::internal::LogLevel::kWarning, \
                               __FILE__, __LINE__)
#define SAFE_LOG_FATAL                                            \
  ::safe::internal::LogMessage(::safe::internal::LogLevel::kFatal, \
                               __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Always on (release too):
/// reserved for invariants whose violation would corrupt results.
#define SAFE_CHECK(cond) \
  if (!(cond)) SAFE_LOG_FATAL << "Check failed: " #cond " "

#ifndef NDEBUG
#define SAFE_DCHECK(cond) SAFE_CHECK(cond)
#else
#define SAFE_DCHECK(cond) \
  if (false) SAFE_LOG_FATAL << ""
#endif
