#pragma once

#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace safe {

/// \brief Either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result aborts (programming error), so callers must check ok()
/// or use the SAFE_ASSIGN_OR_RETURN macro.
///
/// [[nodiscard]] like Status: an ignored Result is an ignored error path.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. Must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    SAFE_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return status_.ok(); }

  const Status& status() const { return status_; }

  const T& ValueOrDie() const& {
    SAFE_CHECK(ok()) << "ValueOrDie on errored Result: " << status_.ToString();
    return *value_;
  }
  T& ValueOrDie() & {
    SAFE_CHECK(ok()) << "ValueOrDie on errored Result: " << status_.ToString();
    return *value_;
  }
  T&& ValueOrDie() && {
    SAFE_CHECK(ok()) << "ValueOrDie on errored Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace safe

/// Propagates a non-OK Status from an expression.
#define SAFE_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::safe::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define SAFE_CONCAT_IMPL(a, b) a##b
#define SAFE_CONCAT(a, b) SAFE_CONCAT_IMPL(a, b)

/// Evaluates an expression yielding Result<T>; on error returns the Status,
/// otherwise moves the value into `lhs` (which may include a declaration).
#define SAFE_ASSIGN_OR_RETURN(lhs, rexpr)                                 \
  SAFE_ASSIGN_OR_RETURN_IMPL(SAFE_CONCAT(_safe_result_, __LINE__), lhs,   \
                             rexpr)

#define SAFE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                               \
  if (!result_name.ok()) return result_name.status();       \
  lhs = std::move(result_name).ValueOrDie()
