#include "src/common/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

namespace safe {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty() || s == "NA" || s == "na" || s == "nan" || s == "NaN" ||
      s == "?" || s == "null" || s == "NULL") {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("cannot parse double: '" +
                                   std::string(s) + "'");
  }
  return value;
}

Result<int64_t> ParseInt(std::string_view s) {
  s = StripWhitespace(s);
  int64_t value = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("cannot parse int: '" + std::string(s) +
                                   "'");
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatDoubleExact(double value) {
  if (std::isnan(value)) return "nan";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace safe
