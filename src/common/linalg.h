#pragma once

#include <vector>

#include "src/common/result.h"

namespace safe {

/// \brief Solves the dense linear system A·x = b by Gaussian elimination
/// with partial pivoting. A is row-major n×n and is consumed (modified).
/// Fails when the matrix is numerically singular.
///
/// Sized for the small systems this library needs (kernel-ridge landmark
/// fits, n <= a few hundred); not a general-purpose LAPACK stand-in.
[[nodiscard]] Result<std::vector<double>> SolveLinearSystem(std::vector<double> a,
                                              std::vector<double> b);

}  // namespace safe
