#pragma once

#include <chrono>

namespace safe {

/// \brief Monotonic wall-clock stopwatch used by the benchmark harnesses
/// and SAFE's iteration-time budget (`tIter` in Algorithm 1).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace safe
