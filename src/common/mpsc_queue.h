#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace safe {

/// \brief Bounded lock-free multi-producer / single-consumer queue.
///
/// The request front of the scoring server (src/serve/server/): many
/// client threads TryPush concurrently, one shard worker TryPops. The
/// algorithm is the classic bounded ring with per-cell sequence numbers
/// (Vyukov), restricted to one consumer so the pop side needs no CAS:
///
///   - every cell carries an atomic sequence; a producer claims slot
///     `pos` by CASing the shared tail, writes the value, then publishes
///     it by storing `pos + 1` into the cell's sequence (release);
///   - the consumer reads the head cell's sequence (acquire); once it
///     reads `head + 1` the value is visible, and recycling the cell
///     stores `head + capacity` so producers can reuse it a lap later.
///
/// Guarantees the property test (common_mpsc_queue_test) locks down:
///   - FIFO per producer: one thread's successful pushes are popped in
///     push order (claims are tail-ordered, and a producer's own claims
///     are ordered by its program order);
///   - no loss, no duplication: each claimed slot is popped exactly once,
///     including across capacity-boundary wraparounds;
///   - bounded: TryPush fails (returns false) when `capacity()` values
///     are in flight — admission control, never blocking;
///   - shutdown drains deterministically: after Close(), TryPush always
///     fails while TryPop keeps returning the remaining values in order
///     until the queue is empty.
///
/// TryPush never blocks and never allocates; TryPop may transiently
/// return false while a producer that claimed the head slot has not yet
/// published it (the value is not lost — it appears on a later TryPop).
/// Capacity is rounded up to a power of two.
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap *= 2;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      // lint: mo-ok(pre-publication init: no other thread sees the queue before the constructor returns)
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
    capacity_ = cap;
    mask_ = cap - 1;
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const { return capacity_; }

  /// Multi-producer push. False when the queue is full or closed; the
  /// value is untouched (still valid in the caller) on failure.
  ///
  /// The successful tail CAS is seq_cst (not relaxed) so a producer's
  /// publish and a consumer's sleep handshake can order against each
  /// other through SizeApprox — see ScoringServer's doorbell protocol.
  // lint: hot-path
  [[nodiscard]] bool TryPush(T& value) {
    // lint: mo-ok(optimistic read; the claim itself is the CAS below, which re-validates)
    uint64_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      // lint: mo-ok(acquire pairs with Close()'s release store of closed_)
      if (closed_.load(std::memory_order_acquire)) return false;
      Cell& cell = cells_[pos & mask_];
      // lint: mo-ok(acquire pairs with the consumer's release recycle store in TryPop)
      const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
      const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
      if (dif == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_seq_cst,
                                        // lint: mo-ok(failure order: the reloaded pos is re-validated on the next lap)
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          // lint: mo-ok(release publishes cell.value; pairs with TryPop's acquire sequence load)
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded `pos`; retry with the newer tail.
      } else if (dif < 0) {
        return false;  // full: the head lap has not recycled this cell yet
      } else {
        // lint: mo-ok(optimistic reload; the CAS re-validates)
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Single-consumer pop. False when empty (or when the head value is
  /// claimed but not yet published by its producer).
  // lint: hot-path
  [[nodiscard]] bool TryPop(T* out) {
    // lint: mo-ok(single-consumer: head_ is only written by this thread)
    const uint64_t head = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[head & mask_];
    // lint: mo-ok(acquire pairs with the producer's release publish store in TryPush)
    const uint64_t seq = cell.sequence.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(head + 1) < 0) {
      return false;
    }
    *out = std::move(cell.value);
    // lint: mo-ok(release recycle: pairs with a producer's acquire sequence load a lap later)
    cell.sequence.store(head + capacity_, std::memory_order_release);
    // lint: mo-ok(release pairs with SizeApprox's acquire head load)
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Rejects all future pushes; values already in the queue stay poppable
  /// (the shutdown drain).
  ///
  /// REQUIRED QUIESCE PROTOCOL: `closed_` is checked only at the top of
  /// TryPush's claim loop, so a push racing Close() can still claim a
  /// slot and land AFTER Close returns (a won CAS cannot be un-claimed).
  /// A caller that treats Close() as "the consumer may now drain to empty
  /// and stop" MUST first quiesce producers externally — e.g. the scoring
  /// server's in_flight_ gate: producers register before their stopping
  /// check, Stop() sets stopping and waits for the count to hit zero, and
  /// only then calls Close(). Without such a handshake, late pushes are
  /// silently stranded behind a consumer that believed the queue was
  /// drained. Alternatively, keep popping after Close until the producers
  /// are known (by other means) to have exited.
  // lint: mo-ok(release pairs with TryPush's acquire closed_ load)
  void Close() { closed_.store(true, std::memory_order_release); }

  // lint: mo-ok(acquire pairs with Close()'s release store)
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Claimed-minus-consumed estimate; exact when quiescent. The seq_cst
  /// tail load pairs with TryPush's seq_cst CAS for the server's
  /// sleep/wake handshake.
  size_t SizeApprox() const {
    const uint64_t tail = tail_.load(std::memory_order_seq_cst);
    // lint: mo-ok(acquire pairs with TryPop's release head store)
    const uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> sequence{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::atomic<uint64_t> tail_{0};  // next slot producers claim
  std::atomic<uint64_t> head_{0};  // next slot the consumer reads
  std::atomic<bool> closed_{false};
};

}  // namespace safe
