#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace safe {

/// \brief Deterministic, platform-independent PRNG (xoshiro256**, seeded
/// via SplitMix64).
///
/// std::mt19937 with std::*_distribution is not reproducible across
/// standard libraries; every randomized component in this library takes an
/// explicit seed and draws through Rng so results are bit-stable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) — bound must be > 0.
  uint64_t NextUint64Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic pairing).
  double NextGaussian();

  /// Bernoulli with probability p of true.
  bool NextBernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextUint64Below(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n). k is clamped to n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Forks an independent stream (seeded from this stream's output);
  /// used to hand per-thread / per-tree RNGs deterministic seeds.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace safe
