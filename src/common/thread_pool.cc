#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <string>

// lint: layering-ok(telemetry instrumentation of the pool; obs includes no common headers besides thread_annotations.h, so the dependency stays acyclic at file level — verified by SL008 cycle detection)
#include "src/obs/flight_recorder.h"
// lint: layering-ok(see above)
#include "src/obs/metrics.h"
// lint: layering-ok(see above)
#include "src/obs/trace.h"

namespace safe {

namespace {

/// Pool metrics, resolved once; Submit and the worker loop touch only
/// the atomics afterwards.
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Counter* tasks_submitted;
  obs::Histogram* task_wait_us;
  obs::Histogram* task_run_us;

  static const PoolMetrics& Get() {
    static const PoolMetrics metrics = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
      return PoolMetrics{
          registry->gauge("threadpool.queue_depth"),
          registry->counter("threadpool.tasks_submitted"),
          registry->histogram("threadpool.task_wait_us",
                              obs::DefaultLatencyBucketsUs()),
          registry->histogram("threadpool.task_run_us",
                              obs::DefaultLatencyBucketsUs())};
    }();
    return metrics;
  }
};

/// Identity of the pool (and slot) owning the current thread; null/-1 on
/// threads that are not pool workers. Submit consults these to detect
/// re-entrant submission from a worker of the same pool.
thread_local const ThreadPool* t_worker_pool = nullptr;
thread_local int t_worker_index = -1;

/// Dense pool ids for flight-recorder worker labels.
std::atomic<uint32_t> g_next_pool_id{0};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  // lint: mo-ok(standalone id counter; pairs only with itself, no other data published)
  pool_id_ = g_next_pool_id.fetch_add(1, std::memory_order_relaxed);
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  if (num_threads_ == 1) return;  // run inline, no workers
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::InWorkerThread() const { return t_worker_pool == this; }

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  const PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks_submitted->Increment();
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  // Run inline for single-thread pools and for nested submission from one
  // of this pool's own workers: queuing in the latter case can deadlock
  // once every worker blocks on futures of queued subtasks.
  if (num_threads_ == 1 || InWorkerThread()) {
    const uint64_t run_start_ns = obs::NowNanos();
    packaged();
    metrics.task_run_us->Observe(
        static_cast<double>(obs::NowNanos() - run_start_ns) / 1e3);
    return fut;
  }
  {
    MutexLock lock(mutex_);
    queue_.push(PendingTask{std::move(packaged), obs::NowNanos()});
    metrics.queue_depth->Set(static_cast<double>(queue_.size()));
  }
  cv_.NotifyOne();
  return fut;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_worker_pool = this;
  t_worker_index = static_cast<int>(worker_index);
  // Flight-recorder timelines carry the pool/worker identity so traces
  // attribute task grains to specific workers (no-op with telemetry off).
  obs::FlightRecorder::Global()->SetCurrentThreadLabel(
      "pool" + std::to_string(pool_id_) + ".worker" +
      std::to_string(worker_index));
  const PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    PendingTask pending;
    {
      MutexLock lock(mutex_);
      while (!stop_ && queue_.empty()) cv_.Wait(mutex_);
      if (stop_ && queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop();
      metrics.queue_depth->Set(static_cast<double>(queue_.size()));
    }
    const uint64_t run_start_ns = obs::NowNanos();
    metrics.task_wait_us->Observe(
        static_cast<double>(run_start_ns - pending.enqueue_ns) / 1e3);
    pending.task();
    metrics.task_run_us->Observe(
        static_cast<double>(obs::NowNanos() - run_start_ns) / 1e3);
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool pool(0);
  return &pool;
}

PoolSelection ResolvePool(size_t n_threads) {
  PoolSelection selection;
  if (n_threads == 0) {
    selection.pool = ThreadPool::Global();
  } else if (n_threads > 1) {
    selection.owned = std::make_unique<ThreadPool>(n_threads);
    selection.pool = selection.owned.get();
  }
  return selection;
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t workers = pool ? pool->num_threads() : 1;
  if (workers <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Static chunking: one contiguous block per worker keeps cache behaviour
  // predictable for the column-major scans that dominate this library.
  const size_t num_chunks = std::min(workers, n);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool->Submit([lo, hi, &fn] {
      SAFE_FR_SCOPE("pool.block");
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.wait();
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(ThreadPool::Global(), begin, end, fn);
}

size_t NumFixedChunks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return (n + grain - 1) / grain;
}

void ParallelForChunks(ThreadPool* pool, size_t begin, size_t end,
                       size_t grain,
                       const std::function<void(size_t, size_t, size_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = NumFixedChunks(end - begin, grain);
  const size_t workers = pool ? pool->num_threads() : 1;
  if (workers <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t lo = begin + c * grain;
      SAFE_FR_SCOPE("pool.chunk");
      fn(c, lo, std::min(end, lo + grain));
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * grain;
    const size_t hi = std::min(end, lo + grain);
    futures.push_back(pool->Submit([c, lo, hi, &fn] {
      SAFE_FR_SCOPE("pool.chunk");
      fn(c, lo, hi);
    }));
  }
  for (auto& f : futures) f.wait();
}

}  // namespace safe
