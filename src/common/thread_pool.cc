#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace safe {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  num_threads_ = num_threads;
  if (num_threads_ == 1) return;  // run inline, no workers
  workers_.reserve(num_threads_);
  for (size_t i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> fut = packaged.get_future();
  if (num_threads_ == 1) {
    packaged();
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool pool(0);
  return &pool;
}

void ParallelFor(ThreadPool* pool, size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t workers = pool ? pool->num_threads() : 1;
  if (workers <= 1 || n == 1) {
    for (size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  // Static chunking: one contiguous block per worker keeps cache behaviour
  // predictable for the column-major scans that dominate this library.
  const size_t num_chunks = std::min(workers, n);
  const size_t chunk = (n + num_chunks - 1) / num_chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool->Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  for (auto& f : futures) f.wait();
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(ThreadPool::Global(), begin, end, fn);
}

}  // namespace safe
