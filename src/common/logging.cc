#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace safe {
namespace internal {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

/// Initial level: the SAFE_LOG_LEVEL environment variable (a name such
/// as DEBUG/INFO/WARN/WARNING/FATAL, case-insensitive, or a number 0-3),
/// defaulting to INFO.
int InitialLevelFromEnv() {
  const char* env = std::getenv("SAFE_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  std::string value;
  for (const char* p = env; *p != '\0'; ++p) {
    value.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
  }
  if (value == "DEBUG" || value == "0") return 0;
  if (value == "INFO" || value == "1") return 1;
  if (value == "WARN" || value == "WARNING" || value == "2") return 2;
  if (value == "FATAL" || value == "3") return 3;
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_min_level{InitialLevelFromEnv()};

/// Dense per-thread id for log lines (OS tids are long and non-local).
uint32_t LocalThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

/// "YYYY-MM-DD HH:MM:SS.mmm" in local time.
std::string Timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm_buf{};
  localtime_r(&seconds, &tm_buf);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(millis));
  return buf;
}

}  // namespace

LogLevel GetMinLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << Timestamp() << " " << LevelName(level) << " t"
          << LocalThreadId() << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetMinLogLevel() || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    const std::string line = stream_.str();
    // One stream write per message: std::cerr is unit-buffered, so the
    // full line reaches the fd in a single call and concurrent threads
    // cannot interleave partial lines.
    std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace safe
