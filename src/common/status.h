#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace safe {

/// \brief Machine-readable category of a Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kNotImplemented = 6,
  kInternal = 7,
  /// Transient saturation: the operation was refused by admission
  /// control (e.g. a full scoring-server shard queue) and may succeed if
  /// retried after backoff. Distinct from kInvalidArgument — the request
  /// itself was well-formed.
  kUnavailable = 8,
};

/// \brief Returns a human-readable name for a StatusCode ("OK",
/// "Invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation that can fail without a payload.
///
/// The library does not throw exceptions across public API boundaries;
/// every fallible operation returns a Status (or a Result<T> when it also
/// produces a value). Statuses are cheap to copy in the OK case.
///
/// The class is [[nodiscard]]: dropping a returned Status on the floor is
/// a compile error under -Werror. Handle it, propagate it with
/// SAFE_RETURN_NOT_OK, or (exceptionally) discard it with a (void) cast
/// plus a `// lint: discard-ok(<reason>)` annotation for safe_lint.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace safe
