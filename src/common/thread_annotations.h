#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang thread-safety analysis (-Wthread-safety) macros plus the
// annotated synchronization primitives the rest of the tree locks with.
//
// The analysis is attribute-driven: a mutex type must be declared a
// *capability* and its lock/unlock functions annotated before the
// compiler can check that every access to a GUARDED_BY member happens
// with the right lock held. libstdc++'s std::mutex carries none of
// these attributes, so the tree uses safe::Mutex / safe::MutexLock /
// safe::CondVar below — zero-overhead wrappers whose only job is to
// carry the annotations. On compilers without the attribute (gcc, msvc)
// everything expands to nothing and the wrappers behave exactly like
// the std types they wrap.
//
// Build with the `clang-thread-safety` CMake preset to run the
// analysis as an error (CI job of the same name). See DESIGN.md §10.

#if defined(__clang__)
#define SAFE_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define SAFE_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a type to be a capability (lockable).
#define CAPABILITY(x) SAFE_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires in its ctor, releases in its dtor.
#define SCOPED_CAPABILITY SAFE_THREAD_ANNOTATION__(scoped_lockable)

/// Member may only be accessed while holding the given capability.
#define GUARDED_BY(x) SAFE_THREAD_ANNOTATION__(guarded_by(x))

/// Pointee may only be accessed while holding the given capability.
#define PT_GUARDED_BY(x) SAFE_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) to call the function.
#define REQUIRES(...) \
  SAFE_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Caller must hold the capability (at least shared).
#define REQUIRES_SHARED(...) \
  SAFE_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  SAFE_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define RELEASE(...) \
  SAFE_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function acquires iff it returns the given boolean value.
#define TRY_ACQUIRE(...) \
  SAFE_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it).
#define EXCLUDES(...) SAFE_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held (analysis trusts it).
#define ASSERT_CAPABILITY(x) \
  SAFE_THREAD_ANNOTATION__(assert_capability(x))

/// Declares that the function returns a reference to the capability.
#define RETURN_CAPABILITY(x) SAFE_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function out of the analysis entirely. Must not appear outside
/// this header (the clang-thread-safety acceptance gate greps for it).
#define NO_THREAD_SAFETY_ANALYSIS \
  SAFE_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace safe {

/// \brief std::mutex with capability annotations; the only mutex type
/// the tree locks with (raw std::mutex is invisible to the analysis).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for CondVar's adopt-lock bridge only.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII lock on a safe::Mutex (the annotated std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable over safe::Mutex.
///
/// Wait/WaitUntil REQUIRES the mutex so the analysis checks every wait
/// site holds the lock it re-checks its predicate under. Callers must
/// loop on the predicate themselves:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
///
/// (A predicate lambda, std::condition_variable style, would defeat the
/// analysis: clang checks a lambda body as an unannotated function, so
/// guarded reads inside it warn. The explicit loop keeps every guarded
/// access inside the annotated scope — and is exactly the shape lint
/// rule SL007 accepts without an annotation.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (or spuriously);
  /// re-acquires `mu` before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    // Bridge to std::condition_variable without a second lock state:
    // adopt the already-held mutex, wait, then release the unique_lock's
    // ownership claim so the MutexLock/scope that really owns the lock
    // keeps sole responsibility for unlocking.
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    cv_.wait(lock);  // lint: bare-wait-ok(CondVar::Wait is the annotated primitive; every caller loops on its predicate under REQUIRES(mu), enforced by SL007 at the call sites)
    lock.release();
  }

  /// Timed Wait: returns cv_status::timeout when `deadline` passed.
  std::cv_status WaitUntil(
      Mutex& mu,
      std::chrono::steady_clock::time_point deadline) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.native_handle(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace safe
