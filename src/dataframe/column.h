#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace safe {

/// \brief An immutable, named column of doubles.
///
/// All values in this library are doubles; NaN encodes a missing value.
/// Column data is held behind a shared_ptr so that selecting / reordering
/// columns in a DataFrame is O(1) per column — essential when SAFE's
/// candidate pool holds thousands of columns over millions of rows.
class Column {
 public:
  Column() : data_(std::make_shared<std::vector<double>>()) {}

  Column(std::string name, std::vector<double> values)
      : name_(std::move(name)),
        data_(std::make_shared<std::vector<double>>(std::move(values))) {}

  Column(std::string name, std::shared_ptr<const std::vector<double>> values)
      : name_(std::move(name)), data_(std::move(values)) {
    SAFE_CHECK(data_ != nullptr);
  }

  const std::string& name() const { return name_; }
  size_t size() const { return data_->size(); }
  const std::vector<double>& values() const { return *data_; }
  double operator[](size_t i) const { return (*data_)[i]; }

  /// Shares the underlying buffer under a new name.
  Column Renamed(std::string new_name) const {
    return Column(std::move(new_name), data_);
  }

  /// Number of NaN entries.
  size_t CountMissing() const {
    size_t n = 0;
    for (double v : *data_) {
      if (std::isnan(v)) ++n;
    }
    return n;
  }

  /// True when every non-missing value equals the first non-missing value.
  bool IsConstant() const;

  /// The shared buffer (for zero-copy hand-off).
  const std::shared_ptr<const std::vector<double>>& data() const {
    return data_;
  }

 private:
  std::string name_;
  std::shared_ptr<const std::vector<double>> data_;
};

}  // namespace safe
