#pragma once

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/dataframe/chunked.h"

namespace safe {

/// \brief An immutable, named column of doubles.
///
/// All values in this library are doubles; NaN encodes a missing value.
/// A column owns exactly one of two storages:
///   - dense: one contiguous shared `std::vector<double>` (the default),
///   - chunked: a ChunkedVector of fixed-size row groups whose payloads
///     live in a SpillPool and may be evicted to disk under a resident
///     budget (see spill.h).
/// Either way the buffer is shared, so selecting / reordering columns in
/// a DataFrame is O(1) per column — essential when SAFE's candidate pool
/// holds thousands of columns over millions of rows.
///
/// `values()` / `data()` are the resident-only accessors and CHECK-fail
/// on a chunked column; streaming consumers use `ForEachSpan` / `cursor`
/// which serve both storages, dense appearing as one maximal span so the
/// iteration order (and therefore every FP reduction) is identical.
class Column {
 public:
  Column() : data_(std::make_shared<std::vector<double>>()) {}

  Column(std::string name, std::vector<double> values)
      : name_(std::move(name)),
        data_(std::make_shared<std::vector<double>>(std::move(values))) {}

  Column(std::string name, std::shared_ptr<const std::vector<double>> values)
      : name_(std::move(name)), data_(std::move(values)) {
    SAFE_CHECK(data_ != nullptr);
  }

  /// A chunked (out-of-core capable) column.
  Column(std::string name,
         std::shared_ptr<const ChunkedVector<double>> chunks)
      : name_(std::move(name)), chunks_(std::move(chunks)) {
    SAFE_CHECK(chunks_ != nullptr);
  }

  const std::string& name() const { return name_; }
  size_t size() const { return chunks_ ? chunks_->size() : data_->size(); }

  /// True when this column is row-group backed (possibly spilled).
  bool chunked() const { return chunks_ != nullptr; }

  /// Dense values — CHECK-fails on a chunked column (use ForEachSpan /
  /// cursor / Gather for storage-agnostic access).
  const std::vector<double>& values() const {
    SAFE_CHECK(data_ != nullptr)
        << "Column '" << name_ << "': values() on a chunked column";
    return *data_;
  }

  /// Single-element read. On a chunked column this pins and unpins the
  /// containing row group — use spans or a cursor in loops.
  double operator[](size_t i) const {
    return chunks_ ? chunks_->At(i) : (*data_)[i];
  }

  /// Shares the underlying buffer (either storage) under a new name.
  Column Renamed(std::string new_name) const {
    Column out;
    out.name_ = std::move(new_name);
    out.data_ = data_;
    out.chunks_ = chunks_;
    return out;
  }

  /// Invokes fn(base_row, values, len) for consecutive row spans covering
  /// [lo, hi) in ascending row order; a dense column yields one maximal
  /// span, a chunked column one span per row group. Serial iteration over
  /// the spans accumulates in exactly the order a contiguous loop would.
  void ForEachSpan(
      size_t lo, size_t hi,
      const std::function<void(size_t, const double*, size_t)>& fn) const;

  /// Sequential-friendly element reader over either storage.
  ChunkedCursor<double> cursor() const {
    return chunks_ ? ChunkedCursor<double>(chunks_.get())
                   : ChunkedCursor<double>(data_->data(), data_->size());
  }

  /// Materializes all rows into one contiguous vector (faulting spilled
  /// groups as needed). On a dense column this is a plain copy.
  std::vector<double> Gather() const;

  /// Number of NaN entries.
  size_t CountMissing() const;

  /// True when every non-missing value equals the first non-missing value.
  bool IsConstant() const;

  /// The shared dense buffer (for zero-copy hand-off). CHECK-fails on a
  /// chunked column.
  const std::shared_ptr<const std::vector<double>>& data() const {
    SAFE_CHECK(data_ != nullptr)
        << "Column '" << name_ << "': data() on a chunked column";
    return data_;
  }

  /// The chunked storage, or null for a dense column.
  const std::shared_ptr<const ChunkedVector<double>>& chunks() const {
    return chunks_;
  }

  /// Copy of this column re-homed into `pool`-backed row groups of
  /// `group_rows` rows (identical bits, chunked storage). A no-op share
  /// if already chunked.
  Column AsChunked(const std::shared_ptr<SpillPool>& pool,
                   size_t group_rows) const;

 private:
  std::string name_;
  std::shared_ptr<const std::vector<double>> data_;
  std::shared_ptr<const ChunkedVector<double>> chunks_;
};

}  // namespace safe
