#include "src/dataframe/column.h"

namespace safe {

bool Column::IsConstant() const {
  bool seen = false;
  double first = 0.0;
  for (double v : *data_) {
    if (std::isnan(v)) continue;
    if (!seen) {
      first = v;
      seen = true;
    } else if (v != first) {
      return false;
    }
  }
  return true;
}

}  // namespace safe
