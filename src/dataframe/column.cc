#include "src/dataframe/column.h"

namespace safe {

void Column::ForEachSpan(
    size_t lo, size_t hi,
    const std::function<void(size_t, const double*, size_t)>& fn) const {
  SAFE_CHECK(lo <= hi && hi <= size());
  if (lo == hi) return;
  if (chunks_) {
    chunks_->ForEachSpan(lo, hi, fn);
  } else {
    fn(lo, data_->data() + lo, hi - lo);
  }
}

std::vector<double> Column::Gather() const {
  std::vector<double> out(size());
  if (chunks_) {
    chunks_->CopyRange(0, chunks_->size(), out.data());
  } else {
    out.assign(data_->begin(), data_->end());
  }
  return out;
}

size_t Column::CountMissing() const {
  size_t n = 0;
  ForEachSpan(0, size(), [&](size_t, const double* values, size_t len) {
    for (size_t i = 0; i < len; ++i) {
      if (std::isnan(values[i])) ++n;
    }
  });
  return n;
}

bool Column::IsConstant() const {
  bool seen = false;
  bool constant = true;
  double first = 0.0;
  ForEachSpan(0, size(), [&](size_t, const double* values, size_t len) {
    if (!constant) return;
    for (size_t i = 0; i < len; ++i) {
      const double v = values[i];
      if (std::isnan(v)) continue;
      if (!seen) {
        first = v;
        seen = true;
      } else if (v != first) {
        constant = false;
        return;
      }
    }
  });
  return constant;
}

Column Column::AsChunked(const std::shared_ptr<SpillPool>& pool,
                         size_t group_rows) const {
  if (chunks_) return *this;
  ChunkedVectorBuilder<double> builder(pool, group_rows);
  builder.Append(data_->data(), data_->size());
  return Column(name_, builder.Finish());
}

}  // namespace safe
