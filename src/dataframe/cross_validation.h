#pragma once

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/dataframe/dataframe.h"

namespace safe {

/// \brief One cross-validation fold: training and held-out partitions.
struct CvFold {
  Dataset train;
  Dataset holdout;
};

/// K-fold partition of a dataset with shuffled row assignment. Each row
/// lands in exactly one holdout; folds differ in size by at most 1.
[[nodiscard]] Result<std::vector<CvFold>> KFoldSplit(const Dataset& data, size_t k,
                                       uint64_t seed);

/// Stratified variant: positive and negative rows are sheared into folds
/// separately, preserving the class ratio per fold — essential for the
/// heavily imbalanced fraud workloads of the paper's Section V-B.
[[nodiscard]] Result<std::vector<CvFold>> StratifiedKFoldSplit(const Dataset& data,
                                                 size_t k, uint64_t seed);

}  // namespace safe
