#include "src/dataframe/dataframe.h"

#include <utility>

namespace safe {

Status DataFrame::AddColumn(Column column) {
  if (!columns_.empty() && column.size() != num_rows()) {
    return Status::InvalidArgument(
        "column '" + column.name() + "' has " +
        std::to_string(column.size()) + " rows, frame has " +
        std::to_string(num_rows()));
  }
  if (index_.find(column.name()) != index_.end()) {
    return Status::AlreadyExists("duplicate column name '" + column.name() +
                                 "'");
  }
  index_.emplace(column.name(), columns_.size());
  columns_.push_back(std::move(column));
  return Status::OK();
}

Result<size_t> DataFrame::ColumnIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

bool DataFrame::HasChunkedColumns() const {
  for (const auto& c : columns_) {
    if (c.chunked()) return true;
  }
  return false;
}

std::vector<std::string> DataFrame::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const auto& c : columns_) names.push_back(c.name());
  return names;
}

Result<DataFrame> DataFrame::Select(const std::vector<size_t>& indices) const {
  DataFrame out;
  for (size_t i : indices) {
    if (i >= columns_.size()) {
      return Status::OutOfRange("column index " + std::to_string(i) +
                                " out of range (have " +
                                std::to_string(columns_.size()) + ")");
    }
    SAFE_RETURN_NOT_OK(out.AddColumn(columns_[i]));
  }
  return out;
}

DataFrame DataFrame::TakeRows(const std::vector<size_t>& rows) const {
  DataFrame out;
  for (const auto& col : columns_) {
    ChunkedCursor<double> cursor = col.cursor();
    std::vector<double> data;
    data.reserve(rows.size());
    for (size_t r : rows) data.push_back(cursor.At(r));
    SAFE_CHECK(out.AddColumn(Column(col.name(), std::move(data))).ok());
  }
  return out;
}

DataFrame DataFrame::SliceRows(size_t begin, size_t end) const {
  SAFE_CHECK(begin <= end && end <= num_rows());
  DataFrame out;
  for (const auto& col : columns_) {
    std::vector<double> data(end - begin);
    col.ForEachSpan(begin, end,
                    [&](size_t base, const double* values, size_t len) {
                      std::copy(values, values + len,
                                data.data() + (base - begin));
                    });
    SAFE_CHECK(out.AddColumn(Column(col.name(), std::move(data))).ok());
  }
  return out;
}

std::vector<double> DataFrame::Row(size_t row) const {
  std::vector<double> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col[row]);
  return out;
}

Result<DataFrame> DataFrame::Concat(const DataFrame& other) const {
  if (num_columns() > 0 && other.num_columns() > 0 &&
      num_rows() != other.num_rows()) {
    return Status::InvalidArgument(
        "row mismatch in Concat: " + std::to_string(num_rows()) + " vs " +
        std::to_string(other.num_rows()));
  }
  DataFrame out = *this;
  for (const auto& col : other.columns()) {
    SAFE_RETURN_NOT_OK(out.AddColumn(col));
  }
  return out;
}

FrameWindow::FrameWindow(const DataFrame& frame, size_t lo, size_t hi)
    : lo_(lo), hi_(hi) {
  SAFE_CHECK(lo < hi && hi <= frame.num_rows());
  cols_.resize(frame.num_columns());
  for (size_t c = 0; c < frame.num_columns(); ++c) {
    const Column& col = frame.column(c);
    if (col.chunked()) {
      spans_.push_back(col.chunks()->PinSpan(lo, hi));
      cols_[c] = spans_.back().data();
    } else {
      cols_[c] = col.values().data() + lo;
    }
  }
}

Result<Dataset> MakeDataset(DataFrame x, std::vector<double> y) {
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument(
        "feature/label row mismatch: " + std::to_string(x.num_rows()) +
        " vs " + std::to_string(y.size()));
  }
  for (double v : y) {
    if (v != 0.0 && v != 1.0) {
      return Status::InvalidArgument(
          "labels must be binary {0,1}; saw " + std::to_string(v));
    }
  }
  Dataset d;
  d.x = std::move(x);
  d.y = std::make_shared<const std::vector<double>>(std::move(y));
  return d;
}

DataFrame ToChunkedFrame(const DataFrame& frame,
                         const std::shared_ptr<SpillPool>& pool,
                         size_t group_rows) {
  DataFrame out;
  for (const auto& col : frame.columns()) {
    SAFE_CHECK(out.AddColumn(col.AsChunked(pool, group_rows)).ok());
  }
  return out;
}

Dataset ToChunkedDataset(const Dataset& dataset,
                         const std::shared_ptr<SpillPool>& pool,
                         size_t group_rows) {
  Dataset out;
  out.x = ToChunkedFrame(dataset.x, pool, group_rows);
  out.y = dataset.y;
  return out;
}

}  // namespace safe
