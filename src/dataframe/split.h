#pragma once

#include <cstdint>

#include "src/common/result.h"
#include "src/dataframe/dataframe.h"

namespace safe {

/// \brief Train / validation / test partition of a Dataset.
struct DatasetSplit {
  Dataset train;
  Dataset valid;
  Dataset test;
};

/// Randomly partitions `data` into train/valid/test with the given row
/// counts (they must sum to <= data rows; a zero valid count mirrors the
/// paper's small datasets, where training data doubles as validation).
[[nodiscard]] Result<DatasetSplit> SplitDataset(const Dataset& data, size_t n_train,
                                  size_t n_valid, size_t n_test,
                                  uint64_t seed);

/// Fraction-based convenience wrapper (fractions must sum to <= 1).
[[nodiscard]] Result<DatasetSplit> SplitDatasetByFraction(const Dataset& data,
                                            double train_frac,
                                            double valid_frac,
                                            double test_frac, uint64_t seed);

/// Gathers the given rows of a dataset (features and labels together).
Dataset TakeDatasetRows(const Dataset& data,
                        const std::vector<size_t>& rows);

}  // namespace safe
