#include "src/dataframe/chunked.h"

namespace safe {

// The two payload types used across the pipeline: double feature columns
// and uint16_t quantized-bin columns. Explicit instantiation keeps one
// copy of the (header-defined) template code in this TU.
template class ChunkedVector<double>;
template class ChunkedVector<uint16_t>;
template class ChunkedVectorBuilder<double>;
template class ChunkedVectorBuilder<uint16_t>;
template class ChunkedCursor<double>;
template class ChunkedCursor<uint16_t>;

}  // namespace safe
