#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace safe {

/// \brief Point-in-time counters of one SpillPool. Plain integers (not
/// obs metrics) so the numbers survive SAFE_TELEMETRY=OFF builds and can
/// be asserted on in tests; the pool mirrors them into the
/// `dataframe.spill.*` registry series when telemetry is compiled in.
struct SpillPoolStats {
  uint64_t evictions = 0;          ///< groups moved out of residency
  uint64_t faults = 0;             ///< groups copied back in on access
  uint64_t spill_write_bytes = 0;  ///< bytes memcpy'd into the backing file
  uint64_t spill_read_bytes = 0;   ///< bytes memcpy'd back out on fault
  size_t resident_bytes = 0;       ///< heap bytes currently resident
  size_t total_bytes = 0;          ///< payload bytes across all groups
  size_t num_groups = 0;           ///< sealed groups (resident + spilled)
  size_t file_bytes = 0;           ///< backing-file bytes in use
};

/// \brief mmap-backed spill pool for immutable row-group payloads.
///
/// Chunked columns (chunked.h) seal each row group into a pool; the pool
/// keeps groups resident on the heap until the configured resident-bytes
/// budget is exceeded, then evicts the **oldest unpinned** group to an
/// anonymous temp file (created with mkstemp and unlinked immediately, so
/// the kernel reclaims it even on a crash) and faults it back on the next
/// pin. Payloads are immutable, so a group is written to its file slot at
/// most once — re-evicting a faulted group just drops the heap copy.
///
/// Determinism contract: eviction order is insertion-order LRU — a FIFO
/// over (seal | fault) events with pinned groups skipped in place. No
/// wall-clock, no randomness, no address-dependent ordering feeds the
/// policy, so a fixed access sequence yields the same eviction/fault
/// sequence on every run. Payload round-trips are bit-lossless (raw
/// memcpy both ways: NaN payloads, -0.0 and signalling bits survive).
///
/// RSS contract: after every file write or fault read the touched mapping
/// range is released with madvise(MADV_DONTNEED), so spilled bytes live
/// in the page cache — not in this process's resident set. That is what
/// makes the bench_scaling --external_memory peak-RSS gate meaningful.
///
/// Thread safety: fully synchronized on one internal safe::Mutex; pins
/// returned to callers reference stable heap buffers that never move
/// while pinned. IO failures after construction (ftruncate/mmap on the
/// unlinked temp file) are unrecoverable mid-run and SAFE_CHECK-fail.
class SpillPool {
 public:
  struct Options {
    /// Heap bytes the pool may keep resident; 0 means unbounded (never
    /// spill). A budget smaller than one group still works: every sealed
    /// group is evicted immediately and faulted back per pin.
    size_t resident_budget_bytes = 0;
    /// Directory for the backing temp file; empty uses TMPDIR or /tmp.
    std::string dir;
  };

  /// \brief RAII read pin over one sealed group's payload. While alive,
  /// the group cannot be evicted and `data()` stays valid. Move-only;
  /// must not outlive the pool.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept;
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    const void* data() const { return data_; }
    size_t bytes() const { return bytes_; }
    bool valid() const { return pool_ != nullptr; }
    void Release();

   private:
    friend class SpillPool;
    Pin(SpillPool* pool, uint64_t id, const void* data, size_t bytes)
        : pool_(pool), id_(id), data_(data), bytes_(bytes) {}

    SpillPool* pool_ = nullptr;
    uint64_t id_ = 0;
    const void* data_ = nullptr;
    size_t bytes_ = 0;
  };

  [[nodiscard]] static Result<std::shared_ptr<SpillPool>> Create(
      const Options& options);
  ~SpillPool();

  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  /// Seals a new immutable group from `bytes` of payload (copied) and
  /// returns its id. May evict this or older groups if the budget is now
  /// exceeded.
  uint64_t Seal(const void* data, size_t bytes) EXCLUDES(mu_);

  /// Pins a sealed group's payload, faulting it back from the backing
  /// file if it was evicted.
  Pin PinGroup(uint64_t id) EXCLUDES(mu_);

  SpillPoolStats stats() const EXCLUDES(mu_);
  size_t resident_budget_bytes() const { return options_.resident_budget_bytes; }

  /// Ids of currently resident groups in eviction (insertion) order,
  /// oldest first. Test-only observability of the FIFO policy.
  std::vector<uint64_t> ResidentGroupIdsForTest() const EXCLUDES(mu_);

  /// Path of the directory holding the (already unlinked) backing file.
  const std::string& spill_dir() const { return spill_dir_; }

 private:
  struct Group {
    std::unique_ptr<char[]> data;  ///< resident payload; null when spilled
    size_t bytes = 0;
    /// Page-aligned offset of this group's slot in the backing file;
    /// SIZE_MAX until first eviction (spill-once: assigned exactly once).
    size_t file_offset = 0;
    bool has_file_slot = false;
    uint32_t pins = 0;
    /// Position in lru_ — valid iff in_lru.
    std::list<uint64_t>::iterator lru_it;
    bool in_lru = false;
  };

  explicit SpillPool(const Options& options);

  /// Grows the backing file and mapping to cover at least `need` bytes.
  void EnsureFileCapacityLocked(size_t need) REQUIRES(mu_);
  /// Evicts oldest unpinned groups until resident_bytes_ fits the budget
  /// (or only pinned groups remain).
  void EvictUntilUnderBudgetLocked() REQUIRES(mu_);
  void EvictGroupLocked(uint64_t id) REQUIRES(mu_);
  void FaultGroupLocked(uint64_t id) REQUIRES(mu_);
  void Unpin(uint64_t id) EXCLUDES(mu_);

  Options options_;
  std::string spill_dir_;
  int fd_ = -1;

  mutable Mutex mu_;
  std::vector<Group> groups_ GUARDED_BY(mu_);
  /// Resident, evictable group ids in insertion order (seal/fault time).
  std::list<uint64_t> lru_ GUARDED_BY(mu_);
  char* map_ GUARDED_BY(mu_) = nullptr;
  size_t map_bytes_ GUARDED_BY(mu_) = 0;
  size_t file_used_ GUARDED_BY(mu_) = 0;
  SpillPoolStats stats_ GUARDED_BY(mu_);
};

}  // namespace safe
