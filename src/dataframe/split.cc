#include "src/dataframe/split.h"

#include <cmath>

#include "src/common/random.h"

namespace safe {

Dataset TakeDatasetRows(const Dataset& data,
                        const std::vector<size_t>& rows) {
  Dataset out;
  out.x = data.x.TakeRows(rows);
  std::vector<double> y;
  y.reserve(rows.size());
  for (size_t r : rows) y.push_back((*data.y)[r]);
  out.y = std::make_shared<const std::vector<double>>(std::move(y));
  return out;
}

Result<DatasetSplit> SplitDataset(const Dataset& data, size_t n_train,
                                  size_t n_valid, size_t n_test,
                                  uint64_t seed) {
  const size_t n = data.num_rows();
  if (n_train + n_valid + n_test > n) {
    return Status::InvalidArgument(
        "split sizes sum to " + std::to_string(n_train + n_valid + n_test) +
        " but dataset has " + std::to_string(n) + " rows");
  }
  if (n_train == 0 || n_test == 0) {
    return Status::InvalidArgument("train and test splits must be nonempty");
  }
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  rng.Shuffle(&perm);

  DatasetSplit split;
  split.train = TakeDatasetRows(
      data, std::vector<size_t>(perm.begin(), perm.begin() + n_train));
  if (n_valid > 0) {
    split.valid = TakeDatasetRows(
        data, std::vector<size_t>(perm.begin() + n_train,
                                  perm.begin() + n_train + n_valid));
  } else {
    // Paper Section V-A: datasets under 10k rows have no validation split;
    // training data doubles as validation where one is required.
    split.valid = split.train;
  }
  split.test = TakeDatasetRows(
      data,
      std::vector<size_t>(perm.begin() + n_train + n_valid,
                          perm.begin() + n_train + n_valid + n_test));
  return split;
}

Result<DatasetSplit> SplitDatasetByFraction(const Dataset& data,
                                            double train_frac,
                                            double valid_frac,
                                            double test_frac, uint64_t seed) {
  if (train_frac < 0 || valid_frac < 0 || test_frac < 0 ||
      train_frac + valid_frac + test_frac > 1.0 + 1e-9) {
    return Status::InvalidArgument("fractions must be >=0 and sum to <= 1");
  }
  const double n = static_cast<double>(data.num_rows());
  const size_t n_train = static_cast<size_t>(std::floor(train_frac * n));
  const size_t n_valid = static_cast<size_t>(std::floor(valid_frac * n));
  size_t n_test = static_cast<size_t>(std::floor(test_frac * n));
  if (train_frac + valid_frac + test_frac > 1.0 - 1e-9) {
    n_test = data.num_rows() - n_train - n_valid;  // use every row
  }
  return SplitDataset(data, n_train, n_valid, n_test, seed);
}

}  // namespace safe
