#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/dataframe/column.h"

namespace safe {

/// \brief A column-major, in-memory table of features.
///
/// Columns are immutable and shared; DataFrame operations that rearrange
/// columns (Select, Concat) are zero-copy, while row operations (Take,
/// Slice) materialize new buffers. Column names are unique within a frame.
class DataFrame {
 public:
  DataFrame() = default;

  /// Appends a column. Fails if the name already exists or the length
  /// disagrees with existing columns.
  [[nodiscard]] Status AddColumn(Column column);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name`, or NotFound.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return index_.find(name) != index_.end();
  }

  std::vector<std::string> ColumnNames() const;

  /// New frame holding the given columns (zero-copy). Indices may repeat
  /// only if renaming elsewhere prevents a duplicate-name clash; a
  /// duplicate name fails.
  [[nodiscard]] Result<DataFrame> Select(const std::vector<size_t>& indices) const;

  /// New frame with the given rows gathered (copies data).
  DataFrame TakeRows(const std::vector<size_t>& rows) const;

  /// New frame with rows [begin, end) (copies data).
  DataFrame SliceRows(size_t begin, size_t end) const;

  /// Value at (row, col).
  double at(size_t row, size_t col) const { return columns_[col][row]; }

  /// One materialized row (used by the real-time inference path).
  std::vector<double> Row(size_t row) const;

  /// Horizontally concatenates `other` onto a copy of this frame
  /// (zero-copy per column). Fails on duplicate names or row mismatch.
  [[nodiscard]] Result<DataFrame> Concat(const DataFrame& other) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

/// \brief A supervised dataset: features plus a binary {0,1} label vector.
struct Dataset {
  DataFrame x;
  std::shared_ptr<const std::vector<double>> y;

  size_t num_rows() const { return x.num_rows(); }
  const std::vector<double>& labels() const { return *y; }
};

/// Builds a Dataset from parallel containers, validating shape and that
/// labels are binary {0,1}.
[[nodiscard]] Result<Dataset> MakeDataset(DataFrame x, std::vector<double> y);

}  // namespace safe
