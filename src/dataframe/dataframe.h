#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/dataframe/column.h"

namespace safe {

/// \brief A column-major table of features.
///
/// Columns are immutable and shared; DataFrame operations that rearrange
/// columns (Select, Concat) are zero-copy, while row operations (Take,
/// Slice) materialize new buffers. Column names are unique within a frame.
/// Columns may be dense (fully resident) or chunked/spillable (see
/// column.h); a frame may mix both.
class DataFrame {
 public:
  DataFrame() = default;

  /// Appends a column. Fails if the name already exists or the length
  /// disagrees with existing columns.
  [[nodiscard]] Status AddColumn(Column column);

  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with `name`, or NotFound.
  [[nodiscard]] Result<size_t> ColumnIndex(const std::string& name) const;

  bool HasColumn(const std::string& name) const {
    return index_.find(name) != index_.end();
  }

  /// True if any column is chunked (possibly spilled).
  bool HasChunkedColumns() const;

  std::vector<std::string> ColumnNames() const;

  /// New frame holding the given columns (zero-copy). Indices may repeat
  /// only if renaming elsewhere prevents a duplicate-name clash; a
  /// duplicate name fails.
  [[nodiscard]] Result<DataFrame> Select(const std::vector<size_t>& indices) const;

  /// New frame with the given rows gathered (copies data; dense result).
  DataFrame TakeRows(const std::vector<size_t>& rows) const;

  /// New frame with rows [begin, end) (copies data; dense result).
  DataFrame SliceRows(size_t begin, size_t end) const;

  /// Value at (row, col). On a chunked column this pins/unpins the row
  /// group — use FrameWindow in loops.
  double at(size_t row, size_t col) const { return columns_[col][row]; }

  /// One materialized row (used by the real-time inference path).
  std::vector<double> Row(size_t row) const;

  /// Horizontally concatenates `other` onto a copy of this frame
  /// (zero-copy per column). Fails on duplicate names or row mismatch.
  [[nodiscard]] Result<DataFrame> Concat(const DataFrame& other) const;

 private:
  std::vector<Column> columns_;
  // lint: unordered-ok(name->index lookup only; never iterated)
  std::unordered_map<std::string, size_t> index_;
};

/// \brief A pinned row window [lo, hi) over every column of a frame.
///
/// Pins each chunked column's containing row group once at construction
/// (so the window must not straddle a group boundary — guaranteed when
/// the window is a ParallelForChunks chunk whose grain divides the
/// frame's group_rows) and exposes allocation-free random access inside
/// the window. Dense columns need no pin; their pointer is the shared
/// buffer offset by lo.
class FrameWindow {
 public:
  FrameWindow(const DataFrame& frame, size_t lo, size_t hi);

  size_t lo() const { return lo_; }
  size_t hi() const { return hi_; }

  // lint: hot-path
  double at(size_t row, size_t col) const { return cols_[col][row - lo_]; }

 private:
  size_t lo_ = 0;
  size_t hi_ = 0;
  std::vector<ChunkedVector<double>::Span> spans_;
  std::vector<const double*> cols_;  ///< per column, points at row lo_
};

/// \brief A supervised dataset: features plus a binary {0,1} label vector.
/// Labels stay resident even for chunked frames — one double per row is
/// the working set every training pass touches anyway.
struct Dataset {
  DataFrame x;
  std::shared_ptr<const std::vector<double>> y;

  size_t num_rows() const { return x.num_rows(); }
  const std::vector<double>& labels() const { return *y; }
};

/// Builds a Dataset from parallel containers, validating shape and that
/// labels are binary {0,1}.
[[nodiscard]] Result<Dataset> MakeDataset(DataFrame x, std::vector<double> y);

/// Copy of `frame` with every column re-homed into `pool`-backed row
/// groups of `group_rows` rows. Bits are identical; only the storage
/// (and therefore residency) changes.
DataFrame ToChunkedFrame(const DataFrame& frame,
                         const std::shared_ptr<SpillPool>& pool,
                         size_t group_rows);

/// ToChunkedFrame over a dataset's features; labels stay resident.
Dataset ToChunkedDataset(const Dataset& dataset,
                         const std::shared_ptr<SpillPool>& pool,
                         size_t group_rows);

}  // namespace safe
