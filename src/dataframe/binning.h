#pragma once

#include <cstddef>
#include <vector>

#include "src/common/result.h"
#include "src/dataframe/column.h"

namespace safe {

/// \brief Interior cut points defining bins over a numeric feature.
///
/// `edges` sorted ascending; value v falls in bin i where
/// edges[i-1] < v <= edges[i] (bin 0 is (-inf, edges[0]], the last bin is
/// (edges.back(), +inf)). NaN maps to a dedicated missing bin with index
/// `edges.size() + 1`.
struct BinEdges {
  std::vector<double> edges;

  size_t num_bins() const { return edges.size() + 1; }
  size_t missing_bin() const { return edges.size() + 1; }

  /// Bin index of a value (missing_bin() for NaN).
  size_t BinIndex(double value) const;
};

/// Equal-frequency (quantile) cut points. Duplicated quantiles collapse,
/// so the result may have fewer than `num_bins - 1` edges. Requires
/// num_bins >= 2 and at least one non-missing value.
[[nodiscard]] Result<BinEdges> EqualFrequencyEdges(const std::vector<double>& values,
                                     size_t num_bins);

/// Storage-agnostic overload: streams the column row-group-wise (never
/// materializing a chunked column) and produces the exact bits of the
/// vector overload — the non-missing filter walks rows in ascending
/// order either way, so the pre-sort sequence (and therefore the sorted
/// order and every cut) is identical.
[[nodiscard]] Result<BinEdges> EqualFrequencyEdges(const Column& column,
                                     size_t num_bins);

/// Equal-width cut points over [min, max] of the non-missing values.
[[nodiscard]] Result<BinEdges> EqualWidthEdges(const std::vector<double>& values,
                                 size_t num_bins);

/// 1-D k-means (Lloyd) clustering binning — the paper's Section III
/// "clustering binning". Clusters the non-missing values into up to
/// `num_bins` clusters starting from quantile centers; cut points are the
/// midpoints between adjacent cluster centers. Deterministic.
[[nodiscard]] Result<BinEdges> KMeansEdges(const std::vector<double>& values,
                             size_t num_bins, size_t max_iterations = 50);

/// Maps every value to its bin index (as double, for use as a feature).
std::vector<double> ApplyBins(const BinEdges& edges,
                              const std::vector<double>& values);

}  // namespace safe
