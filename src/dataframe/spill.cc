#include "src/dataframe/spill.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"

namespace safe {

namespace {

/// Slot alignment inside the backing file. Offsets and slot sizes are
/// rounded to this, so madvise(MADV_DONTNEED) on one slot can never touch
/// a neighbouring group's pages.
constexpr size_t kSlotAlign = 4096;

constexpr size_t AlignUp(size_t v, size_t a) { return (v + a - 1) / a * a; }

/// Registry series mirrored from SpillPoolStats (no-ops when telemetry is
/// compiled out; the plain stats_ struct remains authoritative).
struct SpillMetrics {
  obs::Counter* evictions;
  obs::Counter* faults;
  obs::Counter* write_bytes;
  obs::Counter* read_bytes;
  obs::Gauge* resident_bytes;

  static const SpillMetrics& Get() {
    static const SpillMetrics metrics = [] {
      obs::MetricsRegistry* registry = obs::MetricsRegistry::Global();
      return SpillMetrics{registry->counter("dataframe.spill.evictions"),
                          registry->counter("dataframe.spill.faults"),
                          registry->counter("dataframe.spill.write_bytes"),
                          registry->counter("dataframe.spill.read_bytes"),
                          registry->gauge("dataframe.spill.resident_bytes")};
    }();
    return metrics;
  }
};

}  // namespace

SpillPool::Pin& SpillPool::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    bytes_ = other.bytes_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.bytes_ = 0;
  }
  return *this;
}

void SpillPool::Pin::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
    pool_ = nullptr;
    data_ = nullptr;
    bytes_ = 0;
  }
}

Result<std::shared_ptr<SpillPool>> SpillPool::Create(const Options& options) {
  std::string dir = options.dir;
  if (dir.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    dir = (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
  }
  std::string path_template = dir + "/safe-spill-XXXXXX";
  std::vector<char> path(path_template.begin(), path_template.end());
  path.push_back('\0');
  const int fd = mkstemp(path.data());
  if (fd < 0) {
    return Status::IoError("spill: cannot create temp file under '" + dir +
                           "': " + std::strerror(errno));
  }
  // Unlink immediately: the file stays usable through the fd and the
  // kernel reclaims it when the pool (or a crashed process) lets go —
  // nothing is ever left behind in the directory.
  ::unlink(path.data());
  auto pool = std::shared_ptr<SpillPool>(new SpillPool(options));
  pool->spill_dir_ = std::move(dir);
  pool->fd_ = fd;
  return pool;
}

SpillPool::SpillPool(const Options& options) : options_(options) {}

SpillPool::~SpillPool() {
  MutexLock lock(mu_);
  if (map_ != nullptr) {
    SAFE_CHECK(::munmap(map_, map_bytes_) == 0);
    map_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

uint64_t SpillPool::Seal(const void* data, size_t bytes) {
  SAFE_CHECK(bytes > 0);
  auto buffer = std::make_unique<char[]>(bytes);
  std::memcpy(buffer.get(), data, bytes);
  MutexLock lock(mu_);
  const uint64_t id = groups_.size();
  groups_.emplace_back();
  Group& g = groups_.back();
  g.data = std::move(buffer);
  g.bytes = bytes;
  g.lru_it = lru_.insert(lru_.end(), id);
  g.in_lru = true;
  stats_.resident_bytes += bytes;
  stats_.total_bytes += bytes;
  stats_.num_groups += 1;
  EvictUntilUnderBudgetLocked();
  SpillMetrics::Get().resident_bytes->Set(
      static_cast<double>(stats_.resident_bytes));
  return id;
}

SpillPool::Pin SpillPool::PinGroup(uint64_t id) {
  MutexLock lock(mu_);
  SAFE_CHECK(id < groups_.size()) << "spill: pin of unknown group " << id;
  Group& g = groups_[id];
  if (g.data == nullptr) {
    FaultGroupLocked(id);
    // Pin before rebalancing so the faulted group cannot be chosen as
    // its own eviction victim under a tiny budget.
    ++g.pins;
    EvictUntilUnderBudgetLocked();
  } else {
    ++g.pins;
  }
  SpillMetrics::Get().resident_bytes->Set(
      static_cast<double>(stats_.resident_bytes));
  return Pin(this, id, g.data.get(), g.bytes);
}

void SpillPool::Unpin(uint64_t id) {
  MutexLock lock(mu_);
  Group& g = groups_[id];
  SAFE_CHECK(g.pins > 0);
  --g.pins;
  // Unpinned groups stay resident (at their original FIFO position)
  // until budget pressure evicts them.
  EvictUntilUnderBudgetLocked();
  SpillMetrics::Get().resident_bytes->Set(
      static_cast<double>(stats_.resident_bytes));
}

SpillPoolStats SpillPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<uint64_t> SpillPool::ResidentGroupIdsForTest() const {
  MutexLock lock(mu_);
  return std::vector<uint64_t>(lru_.begin(), lru_.end());
}

void SpillPool::EnsureFileCapacityLocked(size_t need) {
  if (need <= map_bytes_) return;
  size_t new_bytes = map_bytes_ == 0 ? size_t{1} << 20 : map_bytes_ * 2;
  while (new_bytes < need) new_bytes *= 2;
  SAFE_CHECK(::ftruncate(fd_, static_cast<off_t>(new_bytes)) == 0)
      << "spill: ftruncate to " << new_bytes
      << " bytes failed: " << std::strerror(errno);
  if (map_ != nullptr) {
    SAFE_CHECK(::munmap(map_, map_bytes_) == 0);
  }
  void* mapped = ::mmap(nullptr, new_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED, fd_, 0);
  SAFE_CHECK(mapped != MAP_FAILED)
      << "spill: mmap of " << new_bytes
      << " bytes failed: " << std::strerror(errno);
  map_ = static_cast<char*>(mapped);
  map_bytes_ = new_bytes;
}

void SpillPool::EvictUntilUnderBudgetLocked() {
  const size_t budget = options_.resident_budget_bytes;
  if (budget == 0) return;
  while (stats_.resident_bytes > budget) {
    // Oldest unpinned group first; pinned groups are skipped in place so
    // they keep their FIFO position for later rounds.
    uint64_t victim = 0;
    bool found = false;
    for (const uint64_t id : lru_) {
      if (groups_[id].pins == 0) {
        victim = id;
        found = true;
        break;
      }
    }
    if (!found) return;  // everything resident is pinned: over budget
    EvictGroupLocked(victim);
  }
}

void SpillPool::EvictGroupLocked(uint64_t id) {
  SAFE_FR_SCOPE("dataframe.spill.evict");
  Group& g = groups_[id];
  SAFE_CHECK(g.data != nullptr && g.pins == 0 && g.in_lru);
  if (!g.has_file_slot) {
    // First eviction of this group: assign its (immutable) file slot and
    // write the payload. Later evictions only drop the heap copy.
    const size_t offset = AlignUp(file_used_, kSlotAlign);
    const size_t slot = AlignUp(g.bytes, kSlotAlign);
    EnsureFileCapacityLocked(offset + slot);
    g.file_offset = offset;
    g.has_file_slot = true;
    file_used_ = offset + slot;
    stats_.file_bytes = file_used_;
    std::memcpy(map_ + offset, g.data.get(), g.bytes);
    stats_.spill_write_bytes += g.bytes;
    SpillMetrics::Get().write_bytes->Increment(g.bytes);
    // Release the dirty mapping pages: the payload lives on in the page
    // cache / file, outside this process's resident set (best-effort —
    // a failed hint only costs RSS, never data).
    ::madvise(map_ + offset, slot, MADV_DONTNEED);
  }
  g.data.reset();
  lru_.erase(g.lru_it);
  g.in_lru = false;
  stats_.resident_bytes -= g.bytes;
  stats_.evictions += 1;
  SpillMetrics::Get().evictions->Increment();
  SAFE_FR_COUNTER("dataframe.spill.resident_bytes",
                  static_cast<double>(stats_.resident_bytes));
}

void SpillPool::FaultGroupLocked(uint64_t id) {
  SAFE_FR_SCOPE("dataframe.spill.fault");
  Group& g = groups_[id];
  SAFE_CHECK(g.has_file_slot && !g.in_lru);
  auto buffer = std::make_unique<char[]>(g.bytes);
  std::memcpy(buffer.get(), map_ + g.file_offset, g.bytes);
  // Drop the mapping pages the copy just repopulated (see EvictGroupLocked).
  ::madvise(map_ + g.file_offset, AlignUp(g.bytes, kSlotAlign),
            MADV_DONTNEED);
  g.data = std::move(buffer);
  // A faulted group re-enters the FIFO at the back: insertion-order LRU
  // over (seal | fault) events.
  g.lru_it = lru_.insert(lru_.end(), id);
  g.in_lru = true;
  stats_.resident_bytes += g.bytes;
  stats_.faults += 1;
  stats_.spill_read_bytes += g.bytes;
  SpillMetrics::Get().faults->Increment();
  SpillMetrics::Get().read_bytes->Increment(g.bytes);
  SAFE_FR_COUNTER("dataframe.spill.resident_bytes",
                  static_cast<double>(stats_.resident_bytes));
}

}  // namespace safe
