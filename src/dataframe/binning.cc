#include "src/dataframe/binning.h"

#include <algorithm>
#include <cmath>

#include "src/obs/metrics.h"

namespace safe {

size_t BinEdges::BinIndex(double value) const {
  if (std::isnan(value)) return missing_bin();
  // First edge >= value  ->  bin = count of edges < value.
  return static_cast<size_t>(
      std::lower_bound(edges.begin(), edges.end(), value) - edges.begin());
}

namespace {
Result<std::vector<double>> SortedNonMissing(
    const std::vector<double>& values) {
  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (double v : values) {
    if (!std::isnan(v)) sorted.push_back(v);
  }
  if (sorted.empty()) {
    return Status::InvalidArgument("binning: all values are missing");
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

/// Column analogue of SortedNonMissing: the filter walks rows in the same
/// ascending order (span by span), so the pre-sort sequence — and hence
/// the sorted result — is bit-identical to the dense path.
Result<std::vector<double>> SortedNonMissingColumn(const Column& column) {
  std::vector<double> sorted;
  sorted.reserve(column.size());
  column.ForEachSpan(0, column.size(),
                     [&](size_t, const double* values, size_t len) {
                       for (size_t i = 0; i < len; ++i) {
                         if (!std::isnan(values[i])) {
                           sorted.push_back(values[i]);
                         }
                       }
                     });
  if (sorted.empty()) {
    return Status::InvalidArgument("binning: all values are missing");
  }
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

BinEdges EqualFrequencyEdgesFromSorted(const std::vector<double>& sorted,
                                       size_t num_bins) {
  BinEdges out;
  const size_t n = sorted.size();
  for (size_t b = 1; b < num_bins; ++b) {
    // Quantile cut at rank b/num_bins (inclusive upper edge).
    size_t rank = (b * n) / num_bins;
    if (rank == 0) continue;
    double edge = sorted[rank - 1];
    if (out.edges.empty() || edge > out.edges.back()) {
      out.edges.push_back(edge);
    }
  }
  // Drop a trailing edge equal to the maximum, which would create an
  // empty final bin.
  while (!out.edges.empty() && out.edges.back() >= sorted.back()) {
    out.edges.pop_back();
  }
  return out;
}
}  // namespace

Result<BinEdges> EqualFrequencyEdges(const std::vector<double>& values,
                                     size_t num_bins) {
  if (num_bins < 2) {
    return Status::InvalidArgument("num_bins must be >= 2");
  }
  static obs::Counter* fits =
      obs::MetricsRegistry::Global()->counter("binning.equal_frequency_fits");
  fits->Increment();
  SAFE_ASSIGN_OR_RETURN(std::vector<double> sorted,
                        SortedNonMissing(values));
  return EqualFrequencyEdgesFromSorted(sorted, num_bins);
}

Result<BinEdges> EqualFrequencyEdges(const Column& column, size_t num_bins) {
  if (num_bins < 2) {
    return Status::InvalidArgument("num_bins must be >= 2");
  }
  static obs::Counter* fits =
      obs::MetricsRegistry::Global()->counter("binning.equal_frequency_fits");
  fits->Increment();
  SAFE_ASSIGN_OR_RETURN(std::vector<double> sorted,
                        SortedNonMissingColumn(column));
  return EqualFrequencyEdgesFromSorted(sorted, num_bins);
}

Result<BinEdges> EqualWidthEdges(const std::vector<double>& values,
                                 size_t num_bins) {
  if (num_bins < 2) {
    return Status::InvalidArgument("num_bins must be >= 2");
  }
  SAFE_ASSIGN_OR_RETURN(std::vector<double> sorted,
                        SortedNonMissing(values));
  const double lo = sorted.front();
  const double hi = sorted.back();
  BinEdges out;
  if (lo == hi) return out;  // constant column -> single bin
  const double width = (hi - lo) / static_cast<double>(num_bins);
  for (size_t b = 1; b < num_bins; ++b) {
    out.edges.push_back(lo + width * static_cast<double>(b));
  }
  return out;
}

Result<BinEdges> KMeansEdges(const std::vector<double>& values,
                             size_t num_bins, size_t max_iterations) {
  if (num_bins < 2) {
    return Status::InvalidArgument("num_bins must be >= 2");
  }
  SAFE_ASSIGN_OR_RETURN(std::vector<double> sorted,
                        SortedNonMissing(values));
  // Initial centers at quantiles; duplicates collapse.
  std::vector<double> centers;
  for (size_t k = 0; k < num_bins; ++k) {
    const size_t rank =
        (2 * k + 1) * sorted.size() / (2 * num_bins);  // mid-quantiles
    const double center = sorted[std::min(rank, sorted.size() - 1)];
    if (centers.empty() || center > centers.back()) {
      centers.push_back(center);
    }
  }
  if (centers.size() < 2) return BinEdges{};  // effectively constant

  // Lloyd iterations over the sorted values: assignment boundaries are
  // the midpoints between adjacent centers, so each pass is O(n).
  for (size_t iter = 0; iter < max_iterations; ++iter) {
    std::vector<double> sums(centers.size(), 0.0);
    std::vector<size_t> counts(centers.size(), 0);
    size_t cluster = 0;
    for (double v : sorted) {
      while (cluster + 1 < centers.size() &&
             v > 0.5 * (centers[cluster] + centers[cluster + 1])) {
        ++cluster;
      }
      sums[cluster] += v;
      counts[cluster] += 1;
    }
    bool moved = false;
    std::vector<double> next;
    for (size_t k = 0; k < centers.size(); ++k) {
      if (counts[k] == 0) continue;  // drop empty clusters
      const double mean = sums[k] / static_cast<double>(counts[k]);
      if (next.empty() || mean > next.back()) {
        if (std::fabs(mean - centers[k]) > 1e-12) moved = true;
        next.push_back(mean);
      }
    }
    const bool shrunk = next.size() != centers.size();
    centers = std::move(next);
    if (centers.size() < 2) return BinEdges{};
    if (!moved && !shrunk) break;
  }

  BinEdges out;
  for (size_t k = 0; k + 1 < centers.size(); ++k) {
    out.edges.push_back(0.5 * (centers[k] + centers[k + 1]));
  }
  return out;
}

std::vector<double> ApplyBins(const BinEdges& edges,
                              const std::vector<double>& values) {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) {
    out.push_back(static_cast<double>(edges.BinIndex(v)));
  }
  return out;
}

}  // namespace safe
