#include "src/dataframe/cross_validation.h"

#include "src/common/random.h"
#include "src/dataframe/split.h"

namespace safe {

namespace {

Status ValidateKFold(const Dataset& data, size_t k) {
  if (k < 2) {
    return Status::InvalidArgument("kfold: k must be >= 2");
  }
  if (data.num_rows() < k) {
    return Status::InvalidArgument("kfold: fewer rows than folds");
  }
  if (data.y == nullptr || data.y->size() != data.num_rows()) {
    return Status::InvalidArgument("kfold: label size mismatch");
  }
  return Status::OK();
}

/// Builds folds from per-fold row assignments.
std::vector<CvFold> Materialize(
    const Dataset& data, const std::vector<std::vector<size_t>>& assignment) {
  std::vector<CvFold> folds;
  folds.reserve(assignment.size());
  for (size_t f = 0; f < assignment.size(); ++f) {
    std::vector<size_t> train_rows;
    for (size_t other = 0; other < assignment.size(); ++other) {
      if (other == f) continue;
      train_rows.insert(train_rows.end(), assignment[other].begin(),
                        assignment[other].end());
    }
    CvFold fold;
    fold.train = TakeDatasetRows(data, train_rows);
    fold.holdout = TakeDatasetRows(data, assignment[f]);
    folds.push_back(std::move(fold));
  }
  return folds;
}

}  // namespace

Result<std::vector<CvFold>> KFoldSplit(const Dataset& data, size_t k,
                                       uint64_t seed) {
  SAFE_RETURN_NOT_OK(ValidateKFold(data, k));
  std::vector<size_t> perm(data.num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  Rng rng(seed);
  rng.Shuffle(&perm);
  std::vector<std::vector<size_t>> assignment(k);
  for (size_t i = 0; i < perm.size(); ++i) {
    assignment[i % k].push_back(perm[i]);
  }
  return Materialize(data, assignment);
}

Result<std::vector<CvFold>> StratifiedKFoldSplit(const Dataset& data,
                                                 size_t k, uint64_t seed) {
  SAFE_RETURN_NOT_OK(ValidateKFold(data, k));
  std::vector<size_t> positives;
  std::vector<size_t> negatives;
  for (size_t r = 0; r < data.num_rows(); ++r) {
    ((*data.y)[r] > 0.5 ? positives : negatives).push_back(r);
  }
  Rng rng(seed);
  rng.Shuffle(&positives);
  rng.Shuffle(&negatives);
  std::vector<std::vector<size_t>> assignment(k);
  for (size_t i = 0; i < positives.size(); ++i) {
    assignment[i % k].push_back(positives[i]);
  }
  for (size_t i = 0; i < negatives.size(); ++i) {
    // Offset keeps fold sizes balanced when classes are imbalanced.
    assignment[(i + positives.size()) % k].push_back(negatives[i]);
  }
  return Materialize(data, assignment);
}

}  // namespace safe
