#include "src/dataframe/csv.h"

#include <cmath>
#include <fstream>

#include "src/common/string_util.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace safe {

Result<DataFrame> ReadCsv(const std::string& path,
                          const CsvReadOptions& options) {
  SAFE_TRACE_SPAN("csv.read");
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open '" + path + "' for reading");
  }
  std::string line;
  std::vector<std::string> names;
  std::vector<std::vector<double>> data;
  size_t line_no = 0;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitString(line, options.delimiter);
    if (names.empty()) {
      if (options.has_header) {
        for (auto& f : fields) {
          names.emplace_back(StripWhitespace(f));
        }
        data.resize(names.size());
        continue;
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        names.push_back("c" + std::to_string(i));
      }
      data.resize(names.size());
    }
    if (fields.size() != names.size()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": expected " +
          std::to_string(names.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      auto parsed = ParseDouble(fields[i]);
      if (!parsed.ok()) {
        return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                       ": " + parsed.status().message());
      }
      data[i].push_back(*parsed);
    }
  }
  if (names.empty()) {
    return Status::InvalidArgument("'" + path + "' is empty");
  }

  DataFrame frame;
  for (size_t i = 0; i < names.size(); ++i) {
    SAFE_RETURN_NOT_OK(frame.AddColumn(Column(names[i], std::move(data[i]))));
  }
  obs::MetricsRegistry::Global()
      ->counter("csv.rows_read")
      ->Increment(frame.num_rows());
  obs::MetricsRegistry::Global()
      ->counter("csv.cells_parsed")
      ->Increment(frame.num_rows() * frame.num_columns());
  return frame;
}

Status WriteCsv(const DataFrame& frame, const std::string& path,
                char delimiter) {
  SAFE_TRACE_SPAN("csv.write");
  obs::MetricsRegistry::Global()
      ->counter("csv.rows_written")
      ->Increment(frame.num_rows());
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }
  const auto names = frame.ColumnNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << delimiter;
    out << names[i];
  }
  out << '\n';
  for (size_t r = 0; r < frame.num_rows(); ++r) {
    for (size_t c = 0; c < frame.num_columns(); ++c) {
      if (c > 0) out << delimiter;
      const double v = frame.at(r, c);
      if (!std::isnan(v)) out << FormatDouble(v, 9);
    }
    out << '\n';
  }
  if (!out) {
    return Status::IoError("write to '" + path + "' failed");
  }
  return Status::OK();
}

Result<Dataset> ReadCsvDataset(const std::string& path,
                               const std::string& label_column,
                               const CsvReadOptions& options) {
  SAFE_ASSIGN_OR_RETURN(DataFrame frame, ReadCsv(path, options));
  SAFE_ASSIGN_OR_RETURN(size_t label_idx, frame.ColumnIndex(label_column));
  std::vector<size_t> feature_idx;
  for (size_t i = 0; i < frame.num_columns(); ++i) {
    if (i != label_idx) feature_idx.push_back(i);
  }
  SAFE_ASSIGN_OR_RETURN(DataFrame x, frame.Select(feature_idx));
  std::vector<double> y = frame.column(label_idx).values();
  return MakeDataset(std::move(x), std::move(y));
}

}  // namespace safe
