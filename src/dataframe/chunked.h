#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/dataframe/spill.h"

namespace safe {

/// Smallest legal row-group size. Power-of-two and no smaller than every
/// ParallelForChunks grain used by the streaming consumers (the GBDT
/// trainer's 4096-row partition chunks, the booster's 2048-row predict
/// chunks), so a fixed-grain chunk can never straddle a group boundary —
/// each per-chunk window resolves to a single pinned span and the
/// chunk-ordered FP reductions see exactly the rows a monolithic loop
/// would.
constexpr size_t kMinRowGroupRows = 4096;

/// Default row-group size for out-of-core frames (64Ki rows = 512KiB per
/// double group).
constexpr size_t kDefaultRowGroupRows = 65536;

/// True when `group_rows` is a legal row-group size (power of two, at
/// least kMinRowGroupRows).
constexpr bool ValidRowGroupRows(size_t group_rows) {
  return group_rows >= kMinRowGroupRows &&
         (group_rows & (group_rows - 1)) == 0;
}

/// \brief An immutable sequence of T partitioned into fixed-size row
/// groups whose payloads live in a SpillPool.
///
/// All groups hold exactly group_rows() elements except the last, which
/// may be shorter. Reads pin the containing group (faulting it back from
/// the spill file if evicted) for the lifetime of the returned Span.
/// Instantiated for double (feature columns) and uint16_t (quantized bin
/// columns).
template <typename T>
class ChunkedVector {
 public:
  /// \brief A pinned, contiguous view of rows [begin, end) inside one
  /// group. data()[0] is row begin().
  class Span {
   public:
    Span() = default;
    const T* data() const { return data_; }
    size_t begin() const { return begin_; }
    size_t end() const { return end_; }
    size_t size() const { return end_ - begin_; }

   private:
    friend class ChunkedVector;
    SpillPool::Pin pin_;
    const T* data_ = nullptr;
    size_t begin_ = 0;
    size_t end_ = 0;
  };

  ChunkedVector(std::shared_ptr<SpillPool> pool, size_t group_rows,
                std::vector<uint64_t> group_ids, size_t size)
      : pool_(std::move(pool)),
        group_ids_(std::move(group_ids)),
        group_rows_(group_rows),
        size_(size) {
    SAFE_CHECK(pool_ != nullptr && ValidRowGroupRows(group_rows_));
  }

  size_t size() const { return size_; }
  size_t group_rows() const { return group_rows_; }
  size_t num_groups() const { return group_ids_.size(); }
  const std::shared_ptr<SpillPool>& pool() const { return pool_; }

  size_t GroupOf(size_t row) const { return row / group_rows_; }
  size_t GroupBegin(size_t g) const { return g * group_rows_; }
  size_t GroupEnd(size_t g) const {
    const size_t end = (g + 1) * group_rows_;
    return end < size_ ? end : size_;
  }

  /// Pins rows [lo, hi), which must lie within a single group.
  Span PinSpan(size_t lo, size_t hi) const {
    SAFE_CHECK(lo < hi && hi <= size_);
    const size_t g = GroupOf(lo);
    SAFE_CHECK(hi <= GroupEnd(g))
        << "chunked: span [" << lo << "," << hi << ") straddles group "
        << g << " ending at " << GroupEnd(g);
    Span span;
    span.pin_ = pool_->PinGroup(group_ids_[g]);
    span.data_ =
        static_cast<const T*>(span.pin_.data()) + (lo - GroupBegin(g));
    span.begin_ = lo;
    span.end_ = hi;
    return span;
  }

  /// Invokes fn(base_row, values, len) for each maximal in-group span
  /// covering [lo, hi), in ascending row order. `values[0]` is row
  /// base_row. Groups are pinned one at a time.
  void ForEachSpan(
      size_t lo, size_t hi,
      const std::function<void(size_t, const T*, size_t)>& fn) const {
    SAFE_CHECK(lo <= hi && hi <= size_);
    size_t pos = lo;
    while (pos < hi) {
      const size_t g = GroupOf(pos);
      const size_t stop = std::min(hi, GroupEnd(g));
      Span span = PinSpan(pos, stop);
      fn(pos, span.data(), stop - pos);
      pos = stop;
    }
  }

  /// Copies rows [lo, hi) into `out` (contiguous).
  void CopyRange(size_t lo, size_t hi, T* out) const {
    ForEachSpan(lo, hi, [&](size_t base, const T* values, size_t len) {
      std::copy(values, values + len, out + (base - lo));
    });
  }

  /// Single-element read (pins and unpins the containing group — use
  /// spans or a ChunkedCursor in loops).
  T At(size_t i) const {
    SAFE_CHECK(i < size_);
    const size_t g = GroupOf(i);
    SpillPool::Pin pin = pool_->PinGroup(group_ids_[g]);
    return static_cast<const T*>(pin.data())[i - GroupBegin(g)];
  }

 private:
  std::shared_ptr<SpillPool> pool_;
  std::vector<uint64_t> group_ids_;
  size_t group_rows_ = 0;
  size_t size_ = 0;
};

/// \brief Streaming writer for a ChunkedVector: appends values in row
/// order, sealing each full group into the pool as it completes (so at
/// most one group of scratch is ever held here).
template <typename T>
class ChunkedVectorBuilder {
 public:
  ChunkedVectorBuilder(std::shared_ptr<SpillPool> pool, size_t group_rows)
      : pool_(std::move(pool)), group_rows_(group_rows) {
    SAFE_CHECK(pool_ != nullptr && ValidRowGroupRows(group_rows_));
    scratch_.reserve(group_rows_);
  }

  void Append(const T* values, size_t n) {
    size_t done = 0;
    while (done < n) {
      const size_t take =
          std::min(n - done, group_rows_ - scratch_.size());
      scratch_.insert(scratch_.end(), values + done, values + done + take);
      done += take;
      if (scratch_.size() == group_rows_) SealScratch();
    }
  }

  void Push(T value) {
    scratch_.push_back(value);
    if (scratch_.size() == group_rows_) SealScratch();
  }

  size_t size() const { return sealed_rows_ + scratch_.size(); }

  /// Seals any partial final group and returns the finished vector. The
  /// builder is exhausted afterwards.
  std::shared_ptr<const ChunkedVector<T>> Finish() {
    if (!scratch_.empty()) SealScratch();
    auto out = std::make_shared<const ChunkedVector<T>>(
        pool_, group_rows_, std::move(group_ids_), sealed_rows_);
    group_ids_.clear();
    return out;
  }

 private:
  void SealScratch() {
    group_ids_.push_back(
        pool_->Seal(scratch_.data(), scratch_.size() * sizeof(T)));
    sealed_rows_ += scratch_.size();
    scratch_.clear();
  }

  std::shared_ptr<SpillPool> pool_;
  size_t group_rows_;
  std::vector<T> scratch_;
  std::vector<uint64_t> group_ids_;
  size_t sealed_rows_ = 0;
};

/// \brief Sequential-friendly reader over either a dense buffer or a
/// ChunkedVector: At(i) is a bounds check plus a pointer read while i
/// stays inside the current pinned window, re-pinning only on a group
/// change. Mostly-ascending access patterns (the trainer's row lists,
/// RankCombinations' row scan) touch each group once.
template <typename T>
class ChunkedCursor {
 public:
  ChunkedCursor() = default;

  /// Cursor over a dense buffer (single permanent window).
  ChunkedCursor(const T* dense, size_t n)
      : window_(dense), lo_(0), hi_(n) {}

  /// Cursor over a chunked vector (windows follow the pinned group).
  /// `chunks` must outlive the cursor.
  explicit ChunkedCursor(const ChunkedVector<T>* chunks) : chunks_(chunks) {}

  // lint: hot-path
  T At(size_t i) {
    if (i >= lo_ && i < hi_) return window_[i - lo_];
    return Refill(i);
  }

 private:
  /// Slow path: pins the group containing row i and retries.
  T Refill(size_t i) {
    SAFE_CHECK(chunks_ != nullptr && i < chunks_->size());
    const size_t g = chunks_->GroupOf(i);
    span_ = chunks_->PinSpan(chunks_->GroupBegin(g), chunks_->GroupEnd(g));
    window_ = span_.data();
    lo_ = span_.begin();
    hi_ = span_.end();
    return window_[i - lo_];
  }

  const ChunkedVector<T>* chunks_ = nullptr;
  typename ChunkedVector<T>::Span span_;
  const T* window_ = nullptr;
  size_t lo_ = 0;
  size_t hi_ = 0;
};

}  // namespace safe
