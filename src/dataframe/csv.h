#pragma once

#include <string>

#include "src/common/result.h"
#include "src/dataframe/dataframe.h"

namespace safe {

/// \brief Options for ReadCsv.
struct CsvReadOptions {
  char delimiter = ',';
  /// When true the first line supplies column names; otherwise columns are
  /// named c0, c1, ...
  bool has_header = true;
};

/// Reads an all-numeric CSV into a DataFrame. Empty fields, "NA", "nan"
/// and "?" become NaN; any other non-numeric field is an error naming the
/// offending line.
[[nodiscard]] Result<DataFrame> ReadCsv(const std::string& path,
                          const CsvReadOptions& options = {});

/// Writes a DataFrame as CSV (header + rows). NaN is written as "".
[[nodiscard]] Status WriteCsv(const DataFrame& frame, const std::string& path,
                char delimiter = ',');

/// Reads a CSV and pops `label_column` out as the dataset labels
/// (which must be binary {0,1}).
[[nodiscard]] Result<Dataset> ReadCsvDataset(const std::string& path,
                               const std::string& label_column,
                               const CsvReadOptions& options = {});

}  // namespace safe
