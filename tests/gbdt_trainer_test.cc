// Focused tests of the histogram tree trainer's split mechanics,
// regularization knobs, and missing-value routing.

#include "src/gbdt/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/gbdt/quantizer.h"

namespace safe {
namespace gbdt {
namespace {

struct TrainerFixture {
  DataFrame frame;
  BinnedMatrix matrix;
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<size_t> rows;
  std::vector<int> features;

  /// Builds gradients as if fitting residuals of y with constant 0.5
  /// predictions: grad = 0.5 - y, hess = 0.25 (logistic at margin 0).
  static TrainerFixture FromXy(DataFrame frame_in,
                               const std::vector<double>& y,
                               size_t max_bins = 32) {
    TrainerFixture fx;
    fx.frame = std::move(frame_in);
    auto quantizer = FeatureQuantizer::Fit(fx.frame, max_bins);
    EXPECT_TRUE(quantizer.ok());
    auto matrix = quantizer->Transform(fx.frame);
    EXPECT_TRUE(matrix.ok());
    fx.matrix = std::move(*matrix);
    for (size_t i = 0; i < y.size(); ++i) {
      fx.grad.push_back(0.5 - y[i]);
      fx.hess.push_back(0.25);
      fx.rows.push_back(i);
    }
    for (size_t f = 0; f < fx.frame.num_columns(); ++f) {
      fx.features.push_back(static_cast<int>(f));
    }
    return fx;
  }
};

TrainerFixture StepFunction(size_t n) {
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = i < n / 2 ? 0.0 : 1.0;
  }
  DataFrame f;
  EXPECT_TRUE(f.AddColumn(Column("x", x)).ok());
  return TrainerFixture::FromXy(std::move(f), y);
}

TEST(TrainerTest, FindsTheStepBoundary) {
  TrainerFixture fx = StepFunction(200);
  GbdtParams params;
  params.max_depth = 1;
  TreeTrainer trainer(&fx.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  ASSERT_EQ(tree.nodes().size(), 3u);
  EXPECT_EQ(tree.nodes()[0].feature, 0);
  EXPECT_NEAR(tree.nodes()[0].threshold, 99.5, 7.0);  // bin granularity
  // Left leaf pushes toward class 0 (negative), right toward class 1.
  EXPECT_LT(tree.nodes()[1].value, 0.0);
  EXPECT_GT(tree.nodes()[2].value, 0.0);
  EXPECT_GT(tree.nodes()[0].gain, 0.0);
}

TEST(TrainerTest, MinChildWeightBlocksTinyChildren) {
  TrainerFixture fx = StepFunction(40);  // hessian mass = 40 * 0.25 = 10
  GbdtParams params;
  params.max_depth = 3;
  params.min_child_weight = 6.0;  // each child needs >= 24 rows
  TreeTrainer trainer(&fx.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  // Splitting 40 rows into two children of >= 24 rows is impossible.
  EXPECT_EQ(tree.nodes().size(), 1u);
}

TEST(TrainerTest, MinSplitGainPrunes) {
  // Pure-noise gradients: any split gain is tiny, so a gamma floor keeps
  // the tree a stump.
  Rng rng(5);
  std::vector<double> x(300);
  std::vector<double> y(300);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
  }
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", x)).ok());
  TrainerFixture fx = TrainerFixture::FromXy(std::move(f), y);
  GbdtParams params;
  params.min_split_gain = 5.0;
  TreeTrainer trainer(&fx.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  EXPECT_EQ(tree.nodes().size(), 1u);
}

TEST(TrainerTest, DepthLimitRespected) {
  TrainerFixture fx = StepFunction(400);
  GbdtParams params;
  params.max_depth = 2;
  TreeTrainer trainer(&fx.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  // Depth-2 tree has at most 7 nodes.
  EXPECT_LE(tree.nodes().size(), 7u);
  for (const auto& path : tree.ExtractPaths()) {
    EXPECT_LE(path.size(), 2u);
  }
}

TEST(TrainerTest, MissingRowsRoutedToBetterSide) {
  // Feature: NaN for all positives, value 1.0 for all negatives. The
  // only signal is the missing-ness itself.
  const size_t n = 100;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (i % 2 == 0) ? 1.0 : 0.0;
    x[i] = y[i] > 0.5 ? std::nan("") : 1.0;
  }
  // Add a second, noisy feature so there is a real edge to split on.
  std::vector<double> noise(n);
  Rng rng(6);
  for (auto& v : noise) v = rng.NextGaussian();
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x", x)).ok());
  ASSERT_TRUE(f.AddColumn(Column("noise", noise)).ok());
  TrainerFixture fx = TrainerFixture::FromXy(std::move(f), y);
  GbdtParams params;
  params.max_depth = 2;
  TreeTrainer trainer(&fx.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  ASSERT_GT(tree.nodes().size(), 1u);
  // Prediction must separate the classes using the missing channel.
  const double nan_pred = tree.PredictRow({std::nan(""), 0.0});
  const double val_pred = tree.PredictRow({1.0, 0.0});
  EXPECT_GT(nan_pred, val_pred);
}

TEST(TrainerTest, MissingRoutingIdenticalAcrossThreadCounts) {
  // Rows with NaN in the split feature must route identically whether
  // the tree was grown serially or across a pool: same serialized tree,
  // same predictions on all-NaN probes.
  const size_t n = 300;
  Rng rng(11);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x1[i] = rng.NextGaussian();
    x2[i] = rng.NextGaussian();
    y[i] = (x1[i] + 0.5 * x2[i] > 0.0) ? 1.0 : 0.0;
    // A third of the signal feature goes missing; missing-ness is
    // label-correlated so default_left carries real signal.
    if (rng.NextBernoulli(0.3)) x1[i] = y[i] > 0.5 ? std::nan("") : x1[i];
  }
  DataFrame f;
  ASSERT_TRUE(f.AddColumn(Column("x1", x1)).ok());
  ASSERT_TRUE(f.AddColumn(Column("x2", x2)).ok());
  TrainerFixture fx = TrainerFixture::FromXy(std::move(f), y);
  GbdtParams params;
  params.max_depth = 4;

  TreeTrainer serial_trainer(&fx.matrix, &params, nullptr);
  RegressionTree serial_tree =
      serial_trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  ASSERT_GT(serial_tree.nodes().size(), 1u);

  for (size_t n_threads : {2u, 8u}) {
    ThreadPool pool(n_threads);
    TreeTrainer parallel_trainer(&fx.matrix, &params, &pool);
    RegressionTree parallel_tree =
        parallel_trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
    EXPECT_EQ(serial_tree.Serialize(), parallel_tree.Serialize())
        << n_threads << " threads";
    // Probe NaN routing directly on every node's default direction.
    const double nan_serial =
        serial_tree.PredictRow({std::nan(""), std::nan("")});
    const double nan_parallel =
        parallel_tree.PredictRow({std::nan(""), std::nan("")});
    EXPECT_EQ(nan_serial, nan_parallel);
  }
}

TEST(TrainerTest, ParallelTrainingMatchesSerialOnLargeRowSets) {
  // Row counts above the partition grain (4096) force multi-chunk
  // partitioning and histogram subtraction on deep nodes.
  TrainerFixture fx = StepFunction(10000);
  GbdtParams params;
  params.max_depth = 5;
  TreeTrainer serial_trainer(&fx.matrix, &params, nullptr);
  RegressionTree serial_tree =
      serial_trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  ThreadPool pool(4);
  TreeTrainer parallel_trainer(&fx.matrix, &params, &pool);
  RegressionTree parallel_tree =
      parallel_trainer.Train(fx.grad, fx.hess, fx.rows, fx.features);
  EXPECT_EQ(serial_tree.Serialize(), parallel_tree.Serialize());
}

TEST(TrainerTest, SubsetOfRowsOnlyUsesThoseRows) {
  TrainerFixture fx = StepFunction(100);
  // Train on the first half only: all labels 0 there -> no split, and
  // the leaf pulls negative.
  std::vector<size_t> first_half;
  for (size_t i = 0; i < 50; ++i) first_half.push_back(i);
  GbdtParams params;
  TreeTrainer trainer(&fx.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx.grad, fx.hess, first_half, fx.features);
  EXPECT_EQ(tree.nodes().size(), 1u);
  EXPECT_LT(tree.nodes()[0].value, 0.0);
}

TEST(TrainerTest, FeatureSubsetRestrictsSplits) {
  TrainerFixture fx = StepFunction(200);
  // Add a pure-noise second column and allow ONLY it.
  Rng rng(7);
  std::vector<double> noise(200);
  for (auto& v : noise) v = rng.NextGaussian();
  DataFrame f = fx.frame;
  ASSERT_TRUE(f.AddColumn(Column("noise", noise)).ok());
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) y[i] = i < 100 ? 0.0 : 1.0;
  TrainerFixture fx2 = TrainerFixture::FromXy(std::move(f), y);
  GbdtParams params;
  TreeTrainer trainer(&fx2.matrix, &params);
  RegressionTree tree =
      trainer.Train(fx2.grad, fx2.hess, fx2.rows, {1});
  for (const auto& node : tree.nodes()) {
    if (!node.is_leaf()) {
      EXPECT_EQ(node.feature, 1);
    }
  }
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
