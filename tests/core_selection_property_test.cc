// Property suite for the 3-step selection pipeline (Algs. 3 & 4) over a
// wide seed sweep of randomized datasets (including NaN-bearing and
// constant columns): postconditions that must hold for any input, plus
// serial-vs-parallel differential checks on the batch stats entry points.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/selection.h"
#include "src/stats/correlation.h"
#include "src/stats/iv.h"
#include "tests/property_util.h"

namespace safe {
namespace {

std::vector<size_t> AllColumns(const DataFrame& x) {
  std::vector<size_t> all(x.num_columns());
  for (size_t c = 0; c < all.size(); ++c) all[c] = c;
  return all;
}

Dataset HardenedDataset(uint64_t seed) {
  Dataset data = testutil::MakePropertyDataset(seed);
  testutil::AppendConstantColumn(&data, "const_a", 3.25);
  testutil::AppendMostlyMissingColumn(&data, "sparse_a", seed);
  return data;
}

class SelectionSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelectionSweepTest, IvFilterKeepsExactlyAboveThreshold) {
  // Alg. 3 postcondition: survivors are exactly the columns whose IV
  // clears the floor — nothing above dropped, nothing at-or-below kept.
  const Dataset data = HardenedDataset(GetParam());
  const auto ivs = ComputeIvs(data.x, data.labels(), 10);
  ASSERT_EQ(ivs.size(), data.x.num_columns());
  const double alpha = 0.1;
  const auto kept = IvFilterIndices(ivs, alpha);
  std::vector<char> is_kept(ivs.size(), 0);
  for (size_t c : kept) {
    ASSERT_LT(c, ivs.size());
    is_kept[c] = 1;
    EXPECT_GT(ivs[c], alpha) << "kept column " << c << " below IV floor";
  }
  for (size_t c = 0; c < ivs.size(); ++c) {
    if (!is_kept[c]) {
      EXPECT_LE(ivs[c], alpha) << "dropped column " << c << " above floor";
    }
  }
  // Degenerate columns can never clear the floor.
  for (size_t c = 0; c < ivs.size(); ++c) {
    if (data.x.column(c).name() == "const_a") {
      EXPECT_EQ(ivs[c], 0.0);
    }
  }
}

TEST_P(SelectionSweepTest, RedundancyFilterNoSurvivingPairAboveTheta) {
  // Alg. 4 postcondition: no surviving pair correlates above θ, the
  // survivors are a subset of the candidates, and within any dropped /
  // kept redundant pair the larger IV survived.
  const Dataset data = HardenedDataset(GetParam());
  const auto ivs = ComputeIvs(data.x, data.labels(), 10);
  const auto candidates = AllColumns(data.x);
  const double theta = 0.8;
  const auto kept = RedundancyFilterIndices(data.x, ivs, candidates, theta);
  ASSERT_FALSE(kept.empty());
  std::vector<char> is_candidate(data.x.num_columns(), 1);
  for (size_t i = 0; i < kept.size(); ++i) {
    ASSERT_LT(kept[i], data.x.num_columns());
    for (size_t j = i + 1; j < kept.size(); ++j) {
      const double r = PearsonCorrelation(data.x.column(kept[i]).values(),
                                          data.x.column(kept[j]).values());
      EXPECT_LE(std::fabs(r), theta + 1e-9)
          << "surviving pair " << kept[i] << "," << kept[j];
    }
  }
  // Every dropped candidate must correlate above θ with some survivor of
  // IV ≥ its own (the reason it was removed).
  std::vector<char> survived(data.x.num_columns(), 0);
  for (size_t c : kept) survived[c] = 1;
  for (size_t c : candidates) {
    if (survived[c]) continue;
    bool justified = false;
    for (size_t k : kept) {
      const double r = PearsonCorrelation(data.x.column(c).values(),
                                          data.x.column(k).values());
      if (std::fabs(r) > theta && ivs[k] >= ivs[c]) {
        justified = true;
        break;
      }
    }
    EXPECT_TRUE(justified) << "column " << c << " dropped without a "
                           << "stronger correlated survivor";
  }
}

TEST_P(SelectionSweepTest, ComputeIvsSerialMatchesParallelBitwise) {
  const Dataset data = HardenedDataset(GetParam());
  const auto serial = ComputeIvs(data.x, data.labels(), 10, nullptr);
  ThreadPool pool(4);
  const auto parallel = ComputeIvs(data.x, data.labels(), 10, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t c = 0; c < serial.size(); ++c) {
    EXPECT_EQ(std::memcmp(&serial[c], &parallel[c], sizeof(double)), 0)
        << "IV of column " << c << " differs between serial and parallel";
  }
}

TEST_P(SelectionSweepTest, RedundancyFilterSerialMatchesParallel) {
  const Dataset data = HardenedDataset(GetParam());
  const auto ivs = ComputeIvs(data.x, data.labels(), 10);
  const auto candidates = AllColumns(data.x);
  const auto serial =
      RedundancyFilterIndices(data.x, ivs, candidates, 0.8, nullptr);
  ThreadPool pool(3);
  const auto parallel =
      RedundancyFilterIndices(data.x, ivs, candidates, 0.8, &pool);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionSweepTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace safe
