// Differential test for the out-of-core dataframe: the chunked/spilling
// path must produce byte-identical models, plans, and statistics to the
// monolithic path — at every resident budget and every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/data/synthetic.h"
#include "src/dataframe/dataframe.h"
#include "src/dataframe/spill.h"
#include "src/gbdt/booster.h"
#include "src/stats/correlation.h"
#include "src/stats/iv.h"

namespace safe {
namespace {

constexpr size_t kGroupRows = 4096;
constexpr size_t kGroupBytes = kGroupRows * sizeof(double);

data::SyntheticSpec Spec() {
  data::SyntheticSpec spec;
  spec.num_rows = 5 * kGroupRows;  // five row groups per column
  spec.num_features = 6;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.num_redundant = 1;
  spec.missing_rate = 0.1;
  spec.seed = 17;
  return spec;
}

gbdt::GbdtParams BoosterParams(size_t n_threads) {
  gbdt::GbdtParams params;
  params.num_trees = 8;
  params.max_depth = 3;
  params.n_threads = n_threads;
  return params;
}

SafeParams EngineParams(size_t n_threads) {
  SafeParams params;
  params.miner.num_trees = 8;
  params.miner.max_depth = 3;
  params.ranker.num_trees = 8;
  params.ranker.max_depth = 3;
  params.n_threads = n_threads;
  return params;
}

std::shared_ptr<SpillPool> MakePool(size_t budget_bytes) {
  SpillPool::Options options;
  options.resident_budget_bytes = budget_bytes;
  auto pool = SpillPool::Create(options);
  SAFE_CHECK(pool.ok());
  return *pool;
}

bool BitsEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

class ExternalMemoryDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto dataset = data::MakeSyntheticDataset(Spec());
    SAFE_CHECK(dataset.ok());
    dense_ = new Dataset(std::move(*dataset));

    auto booster = gbdt::Booster::Fit(*dense_, nullptr, BoosterParams(1));
    SAFE_CHECK(booster.ok());
    dense_model_ = new std::string(booster->Serialize());
    auto margins = booster->PredictMargin(dense_->x);
    SAFE_CHECK(margins.ok());
    dense_margins_ = new std::vector<double>(std::move(*margins));

    SafeEngine engine(EngineParams(1));
    auto fit = engine.Fit(*dense_);
    SAFE_CHECK(fit.ok());
    dense_plan_ = new std::string(fit->plan.Serialize());

    dense_iv_ = new std::vector<double>(
        InformationValueBatch(dense_->x, *dense_->y, 10));
    dense_pearson_ = new std::vector<std::vector<double>>(
        PearsonMatrix(dense_->x));
  }

  static void TearDownTestSuite() {
    delete dense_;
    delete dense_model_;
    delete dense_margins_;
    delete dense_plan_;
    delete dense_iv_;
    delete dense_pearson_;
    dense_ = nullptr;
    dense_model_ = nullptr;
    dense_margins_ = nullptr;
    dense_plan_ = nullptr;
    dense_iv_ = nullptr;
    dense_pearson_ = nullptr;
  }

  // Runs the full differential battery for one resident budget: every
  // pipeline output must match the dense reference bit for bit, at
  // thread counts 1, 2 and 8.
  static void CheckBudget(size_t budget_bytes) {
    for (size_t n_threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SCOPED_TRACE("budget_bytes=" + std::to_string(budget_bytes) +
                   " n_threads=" + std::to_string(n_threads));
      auto pool = MakePool(budget_bytes);
      Dataset chunked = ToChunkedDataset(*dense_, pool, kGroupRows);
      ASSERT_TRUE(chunked.x.HasChunkedColumns());

      // GBDT: identical model bytes and identical margins.
      auto booster =
          gbdt::Booster::Fit(chunked, nullptr, BoosterParams(n_threads));
      ASSERT_TRUE(booster.ok()) << booster.status().message();
      EXPECT_EQ(booster->Serialize(), *dense_model_);
      auto margins = booster->PredictMargin(chunked.x);
      ASSERT_TRUE(margins.ok());
      EXPECT_TRUE(BitsEqual(*margins, *dense_margins_));

      // Selection statistics: IV and Pearson, streamed vs resident.
      EXPECT_TRUE(BitsEqual(
          InformationValueBatch(chunked.x, *chunked.y, 10), *dense_iv_));
      const auto pearson = PearsonMatrix(chunked.x);
      ASSERT_EQ(pearson.size(), dense_pearson_->size());
      for (size_t i = 0; i < pearson.size(); ++i) {
        EXPECT_TRUE(BitsEqual(pearson[i], (*dense_pearson_)[i])) << i;
      }

      // The whole SAFE pipeline: identical FeaturePlan bytes.
      SafeEngine engine(EngineParams(n_threads));
      auto fit = engine.Fit(chunked);
      ASSERT_TRUE(fit.ok()) << fit.status().message();
      EXPECT_EQ(fit->plan.Serialize(), *dense_plan_);

      if (budget_bytes != 0) {
        EXPECT_GT(pool->stats().evictions, 0u)
            << "budgeted run never spilled — the test is not exercising "
               "the out-of-core path";
      }
    }
  }

  static Dataset* dense_;
  static std::string* dense_model_;
  static std::vector<double>* dense_margins_;
  static std::string* dense_plan_;
  static std::vector<double>* dense_iv_;
  static std::vector<std::vector<double>>* dense_pearson_;
};

Dataset* ExternalMemoryDifferentialTest::dense_ = nullptr;
std::string* ExternalMemoryDifferentialTest::dense_model_ = nullptr;
std::vector<double>* ExternalMemoryDifferentialTest::dense_margins_ = nullptr;
std::string* ExternalMemoryDifferentialTest::dense_plan_ = nullptr;
std::vector<double>* ExternalMemoryDifferentialTest::dense_iv_ = nullptr;
std::vector<std::vector<double>>*
    ExternalMemoryDifferentialTest::dense_pearson_ = nullptr;

TEST_F(ExternalMemoryDifferentialTest, UnboundedBudget) {
  CheckBudget(0);
}

TEST_F(ExternalMemoryDifferentialTest, TwoRowGroupBudget) {
  CheckBudget(2 * kGroupBytes);
}

TEST_F(ExternalMemoryDifferentialTest, MinimumBudget) {
  // Smaller than a single row group: every pin faults.
  CheckBudget(1);
}

TEST_F(ExternalMemoryDifferentialTest, ExactMethodIsRejectedOnChunkedData) {
  auto pool = MakePool(0);
  Dataset chunked = ToChunkedDataset(*dense_, pool, kGroupRows);
  gbdt::GbdtParams params = BoosterParams(1);
  params.tree_method = gbdt::TreeMethod::kExact;
  auto booster = gbdt::Booster::Fit(chunked, nullptr, params);
  EXPECT_FALSE(booster.ok());
}

// The streaming generator itself must be deterministic: two runs with the
// same (spec, group_rows) produce byte-identical columns and labels, even
// under different resident budgets.
TEST(ChunkedGeneratorTest, DeterministicAcrossBudgets) {
  data::SyntheticSpec spec = Spec();
  spec.num_rows = 3 * kGroupRows;
  auto a = data::MakeSyntheticDatasetChunked(spec, MakePool(0), kGroupRows);
  auto b = data::MakeSyntheticDatasetChunked(spec, MakePool(kGroupBytes),
                                             kGroupRows);
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  ASSERT_EQ(a->x.num_columns(), b->x.num_columns());
  ASSERT_TRUE(a->x.HasChunkedColumns());
  for (size_t c = 0; c < a->x.num_columns(); ++c) {
    EXPECT_TRUE(BitsEqual(a->x.column(c).Gather(), b->x.column(c).Gather()))
        << "column " << c;
  }
  EXPECT_TRUE(BitsEqual(*a->y, *b->y));
  EXPECT_TRUE(std::any_of(a->y->begin(), a->y->end(),
                          [](double y) { return y == 1.0; }));
  EXPECT_TRUE(std::any_of(a->y->begin(), a->y->end(),
                          [](double y) { return y == 0.0; }));
}

// End-to-end on generator output: the full SAFE pipeline must run (and
// stay budget/thread invariant) on data that was *born* chunked.
TEST(ChunkedGeneratorTest, PipelineIsBudgetInvariantOnGeneratedData) {
  data::SyntheticSpec spec = Spec();
  spec.num_rows = 3 * kGroupRows;

  std::string reference_model;
  std::string reference_plan;
  bool first = true;
  for (size_t budget : {size_t{0}, size_t{2 * kGroupBytes}}) {
    auto pool = MakePool(budget);
    auto dataset = data::MakeSyntheticDatasetChunked(spec, pool, kGroupRows);
    ASSERT_TRUE(dataset.ok()) << dataset.status().message();

    auto booster =
        gbdt::Booster::Fit(*dataset, nullptr, BoosterParams(2));
    ASSERT_TRUE(booster.ok()) << booster.status().message();
    SafeEngine engine(EngineParams(2));
    auto fit = engine.Fit(*dataset);
    ASSERT_TRUE(fit.ok()) << fit.status().message();

    if (first) {
      reference_model = booster->Serialize();
      reference_plan = fit->plan.Serialize();
      first = false;
    } else {
      EXPECT_EQ(booster->Serialize(), reference_model);
      EXPECT_EQ(fit->plan.Serialize(), reference_plan);
    }
  }
}

}  // namespace
}  // namespace safe
