#include "src/baselines/fctree.h"
#include "src/baselines/feature_engineer.h"
#include "src/baselines/tfc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"

namespace safe {
namespace baselines {
namespace {

data::SyntheticSpec Spec() {
  data::SyntheticSpec spec;
  spec.num_rows = 2400;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.linear_weight = 0.2;
  spec.noise = 0.2;
  spec.seed = 888;
  return spec;
}

DatasetSplit MakeSplit() {
  auto split = data::MakeSyntheticSplit(Spec(), 1600, 0, 800);
  EXPECT_TRUE(split.ok());
  return *split;
}

double EvalPlan(const FeaturePlan& plan, const DatasetSplit& split) {
  auto train_z = plan.Transform(split.train.x);
  auto test_z = plan.Transform(split.test.x);
  EXPECT_TRUE(train_z.ok() && test_z.ok());
  auto clf =
      models::MakeClassifier(models::ClassifierKind::kLogisticRegression, 3);
  Dataset train{*train_z, split.train.y};
  EXPECT_TRUE(clf->Fit(train).ok());
  auto scores = clf->PredictScores(*test_z);
  EXPECT_TRUE(scores.ok());
  return *Auc(*scores, split.test.labels());
}

TEST(OrigEngineerTest, IdentityPlan) {
  DatasetSplit split = MakeSplit();
  OrigEngineer orig;
  auto plan = orig.FitPlan(split.train, nullptr);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->generated().empty());
  auto z = plan->Transform(split.test.x);
  ASSERT_TRUE(z.ok());
  EXPECT_EQ(z->num_columns(), split.test.x.num_columns());
  for (size_t c = 0; c < z->num_columns(); ++c) {
    EXPECT_EQ(z->column(c).data().get(),
              split.test.x.column(c).data().get());  // zero-copy identity
  }
}

TEST(SafeEngineerTest, NamesFollowStrategy) {
  SafeParams params;
  EXPECT_EQ(MakeSafe(params)->name(), "SAFE");
  EXPECT_EQ(MakeRand(params)->name(), "RAND");
  EXPECT_EQ(MakeImp(params)->name(), "IMP");
}

TEST(TfcEngineerTest, GeneratesAndCaps) {
  DatasetSplit split = MakeSplit();
  TfcParams params;
  TfcEngineer tfc(params);
  auto plan = tfc.FitPlan(split.train, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_LE(plan->selected().size(), 2 * split.train.x.num_columns());
  EXPECT_GT(plan->NumSelectedGenerated(), 0u);
  // Plan replays on unseen data.
  auto z = plan->Transform(split.test.x);
  ASSERT_TRUE(z.ok()) << z.status().ToString();
}

TEST(TfcEngineerTest, ImprovesLinearModelOnInteractionData) {
  DatasetSplit split = MakeSplit();
  OrigEngineer orig;
  auto orig_plan = orig.FitPlan(split.train, nullptr);
  ASSERT_TRUE(orig_plan.ok());
  TfcEngineer tfc(TfcParams{});
  auto tfc_plan = tfc.FitPlan(split.train, nullptr);
  ASSERT_TRUE(tfc_plan.ok());
  EXPECT_GT(EvalPlan(*tfc_plan, split), EvalPlan(*orig_plan, split) - 0.02);
}

TEST(TfcEngineerTest, CandidateCapFailsLoudly) {
  DatasetSplit split = MakeSplit();
  TfcParams params;
  params.max_candidates = 10;  // far below 8 choose 2 * |O|
  TfcEngineer tfc(params);
  auto plan = tfc.FitPlan(split.train, nullptr);
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("scalability"), std::string::npos);
}

TEST(TfcEngineerTest, MultipleIterationsCompose) {
  DatasetSplit split = MakeSplit();
  TfcParams params;
  params.num_iterations = 2;
  params.max_output_features = 10;
  TfcEngineer tfc(params);
  auto plan = tfc.FitPlan(split.train, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto z = plan->Transform(split.test.x);
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  EXPECT_EQ(z->num_columns(), plan->selected().size());
}

TEST(TfcEngineerTest, RejectsNonBinaryOperators) {
  DatasetSplit split = MakeSplit();
  TfcParams params;
  params.operator_names = {"log"};
  TfcEngineer tfc(params, OperatorRegistry::Default());
  EXPECT_FALSE(tfc.FitPlan(split.train, nullptr).ok());
}

TEST(FcTreeEngineerTest, GeneratesChosenConstructedFeatures) {
  DatasetSplit split = MakeSplit();
  FcTreeParams params;
  params.ne = 20;
  FcTreeEngineer fct(params);
  auto plan = fct.FitPlan(split.train, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_LE(plan->selected().size(), 2 * split.train.x.num_columns());
  auto z = plan->Transform(split.test.x);
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  EXPECT_EQ(z->num_columns(), plan->selected().size());
}

TEST(FcTreeEngineerTest, DeterministicInSeed) {
  DatasetSplit split = MakeSplit();
  FcTreeParams params;
  params.seed = 9;
  FcTreeEngineer a(params);
  FcTreeEngineer b(params);
  auto pa = a.FitPlan(split.train, nullptr);
  auto pb = b.FitPlan(split.train, nullptr);
  ASSERT_TRUE(pa.ok() && pb.ok());
  EXPECT_EQ(pa->Serialize(), pb->Serialize());
}

TEST(FcTreeEngineerTest, RejectsEmptyData) {
  FcTreeEngineer fct(FcTreeParams{});
  Dataset empty;
  EXPECT_FALSE(fct.FitPlan(empty, nullptr).ok());
  TfcEngineer tfc(TfcParams{});
  EXPECT_FALSE(tfc.FitPlan(empty, nullptr).ok());
}

TEST(AllEngineersTest, SafeBeatsRandomOnInteractionData) {
  // The paper's central comparison: SAFE >= IMP >= RAND in the typical
  // case. Randomness means orderings can tie; assert SAFE is at least
  // competitive with RAND (and strictly above ORIG).
  DatasetSplit split = MakeSplit();
  SafeParams params;
  params.miner.num_trees = 15;
  params.ranker.num_trees = 15;
  params.seed = 4;

  auto safe_plan = MakeSafe(params)->FitPlan(split.train, nullptr);
  auto rand_plan = MakeRand(params)->FitPlan(split.train, nullptr);
  auto orig_plan = OrigEngineer().FitPlan(split.train, nullptr);
  ASSERT_TRUE(safe_plan.ok() && rand_plan.ok() && orig_plan.ok());

  const double auc_safe = EvalPlan(*safe_plan, split);
  const double auc_rand = EvalPlan(*rand_plan, split);
  const double auc_orig = EvalPlan(*orig_plan, split);
  EXPECT_GT(auc_safe, auc_orig);
  EXPECT_GT(auc_safe, auc_rand - 0.03);
}

}  // namespace
}  // namespace baselines
}  // namespace safe
