#include "src/gbdt/booster.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/data/synthetic.h"
#include "src/gbdt/loss.h"
#include "src/stats/auc.h"

namespace safe {
namespace gbdt {
namespace {

data::SyntheticSpec BaseSpec() {
  data::SyntheticSpec spec;
  spec.num_rows = 2000;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.num_redundant = 0;
  spec.noise = 0.2;
  spec.seed = 99;
  return spec;
}

TEST(LossTest, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(2.0) + Sigmoid(-2.0), 1.0, 1e-12);
}

TEST(LossTest, LogisticGradients) {
  std::vector<double> margins{0.0, 0.0};
  std::vector<double> labels{1.0, 0.0};
  std::vector<double> grad;
  std::vector<double> hess;
  ComputeGradients(Objective::kLogistic, margins, labels, &grad, &hess);
  EXPECT_DOUBLE_EQ(grad[0], -0.5);
  EXPECT_DOUBLE_EQ(grad[1], 0.5);
  EXPECT_DOUBLE_EQ(hess[0], 0.25);
}

TEST(LossTest, SquaredGradients) {
  std::vector<double> margins{2.0};
  std::vector<double> labels{0.5};
  std::vector<double> grad;
  std::vector<double> hess;
  ComputeGradients(Objective::kSquared, margins, labels, &grad, &hess);
  EXPECT_DOUBLE_EQ(grad[0], 1.5);
  EXPECT_DOUBLE_EQ(hess[0], 1.0);
}

TEST(LossTest, BaseScoreIsLogOdds) {
  std::vector<double> labels{1, 1, 1, 0};
  EXPECT_NEAR(BaseScore(Objective::kLogistic, labels),
              std::log(0.75 / 0.25), 1e-9);
  EXPECT_DOUBLE_EQ(BaseScore(Objective::kSquared, labels), 0.75);
}

TEST(BoosterTest, LearnsSeparableData) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 30;
  params.max_depth = 4;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto proba = model->PredictProba(data->x);
  ASSERT_TRUE(proba.ok());
  auto auc = Auc(*proba, data->labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.85);
}

TEST(BoosterTest, TrainLossDecreasesWithMoreTrees) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  double prev_loss = 1e9;
  for (size_t trees : {1u, 5u, 20u}) {
    GbdtParams params;
    params.num_trees = trees;
    auto model = Booster::Fit(*data, nullptr, params);
    ASSERT_TRUE(model.ok());
    auto margins = model->PredictMargin(data->x);
    ASSERT_TRUE(margins.ok());
    const double loss =
        ComputeLoss(Objective::kLogistic, *margins, data->labels());
    EXPECT_LT(loss, prev_loss + 1e-9) << trees;
    prev_loss = loss;
  }
}

TEST(BoosterTest, DeterministicForSameSeed) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 10;
  params.subsample = 0.8;
  params.colsample_bytree = 0.8;
  auto a = Booster::Fit(*data, nullptr, params);
  auto b = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(a.ok() && b.ok());
  auto pa = a->PredictMargin(data->x);
  auto pb = b->PredictMargin(data->x);
  for (size_t i = 0; i < pa->size(); ++i) {
    EXPECT_DOUBLE_EQ((*pa)[i], (*pb)[i]);
  }
}

TEST(BoosterTest, EarlyStoppingTruncates) {
  auto spec = BaseSpec();
  auto split = data::MakeSyntheticSplit(spec, 1200, 400, 400);
  ASSERT_TRUE(split.ok());
  GbdtParams params;
  params.num_trees = 200;
  params.learning_rate = 0.5;
  params.early_stopping_rounds = 5;
  auto model = Booster::Fit(split->train, &split->valid, params);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->trees().size(), 200u);
  EXPECT_EQ(model->best_iteration(), model->trees().size() - 1);
}

TEST(BoosterTest, EarlyStoppingRequiresValidation) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.early_stopping_rounds = 5;
  EXPECT_FALSE(Booster::Fit(*data, nullptr, params).ok());
}

TEST(BoosterTest, ValidatesInput) {
  Dataset empty;
  GbdtParams params;
  EXPECT_FALSE(Booster::Fit(empty, nullptr, params).ok());

  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  params.num_trees = 0;
  EXPECT_FALSE(Booster::Fit(*data, nullptr, params).ok());
  params.num_trees = 5;
  params.learning_rate = 0.0;
  EXPECT_FALSE(Booster::Fit(*data, nullptr, params).ok());
}

TEST(BoosterTest, PredictRejectsWrongWidth) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 3;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  DataFrame narrow;
  ASSERT_TRUE(narrow.AddColumn(Column("x", {1.0})).ok());
  EXPECT_FALSE(model->PredictMargin(narrow).ok());
}

TEST(BoosterTest, RowAndBatchPredictionsAgree) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 10;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  auto batch = model->PredictProba(data->x);
  ASSERT_TRUE(batch.ok());
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(model->PredictRowProba(data->x.Row(r)), (*batch)[r], 1e-12);
  }
}

TEST(BoosterTest, PathsComeFromRealSplits) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 10;
  params.max_depth = 3;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  auto paths = model->ExtractAllPaths();
  ASSERT_FALSE(paths.empty());
  const auto split_features = model->SplitFeatures();
  std::set<int> split_set(split_features.begin(), split_features.end());
  for (const auto& path : paths) {
    EXPECT_LE(path.size(), params.max_depth);
    for (const auto& step : path) {
      EXPECT_TRUE(split_set.count(step.feature)) << step.feature;
    }
  }
}

TEST(BoosterTest, ImportancesSortedAndPositive) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 20;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  auto imps = model->FeatureImportances();
  ASSERT_FALSE(imps.empty());
  for (size_t i = 0; i < imps.size(); ++i) {
    EXPECT_GT(imps[i].total_gain, 0.0);
    EXPECT_GT(imps[i].num_splits, 0u);
    EXPECT_NEAR(imps[i].avg_gain,
                imps[i].total_gain / imps[i].num_splits, 1e-9);
    if (i > 0) {
      EXPECT_GE(imps[i - 1].avg_gain, imps[i].avg_gain);
    }
  }
}

TEST(BoosterTest, SerializeRoundTripsPredictions) {
  auto data = data::MakeSyntheticDataset(BaseSpec());
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 8;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  auto text = model->Serialize();
  auto back = Booster::Deserialize(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto pa = model->PredictProba(data->x);
  auto pb = back->PredictProba(data->x);
  ASSERT_TRUE(pa.ok() && pb.ok());
  for (size_t i = 0; i < pa->size(); ++i) {
    EXPECT_NEAR((*pa)[i], (*pb)[i], 1e-9);
  }
}

TEST(BoosterTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Booster::Deserialize("").ok());
  EXPECT_FALSE(Booster::Deserialize("booster v2\n").ok());
  EXPECT_FALSE(Booster::Deserialize("booster v1\nobjective logistic\n").ok());
}

TEST(BoosterTest, HandlesMissingValues) {
  auto spec = BaseSpec();
  spec.missing_rate = 0.15;
  auto data = data::MakeSyntheticDataset(spec);
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.num_trees = 20;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  auto proba = model->PredictProba(data->x);
  ASSERT_TRUE(proba.ok());
  auto auc = Auc(*proba, data->labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.7);  // still learns through 15% missing cells
}

TEST(BoosterTest, SquaredObjectiveRegresses) {
  // y = x on a line; squared loss should fit closely.
  DataFrame f;
  std::vector<double> x(200);
  std::vector<double> y(200);
  for (size_t i = 0; i < 200; ++i) {
    x[i] = static_cast<double>(i) / 200.0;
    y[i] = x[i] > 0.5 ? 1.0 : 0.0;
  }
  ASSERT_TRUE(f.AddColumn(Column("x", x)).ok());
  auto data = MakeDataset(f, y);
  ASSERT_TRUE(data.ok());
  GbdtParams params;
  params.objective = Objective::kSquared;
  params.num_trees = 20;
  params.max_depth = 2;
  auto model = Booster::Fit(*data, nullptr, params);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->PredictRowProba({0.1}), 0.0, 0.05);
  EXPECT_NEAR(model->PredictRowProba({0.9}), 1.0, 0.05);
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
