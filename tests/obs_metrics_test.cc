#include "src/obs/metrics.h"

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/thread_pool.h"

namespace safe {
namespace obs {
namespace {

#if SAFE_TELEMETRY_ENABLED

TEST(MetricsRegistryTest, CounterGaugeHistogramRegistration) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("test.counter");
  ASSERT_NE(counter, nullptr);
  // Same name resolves to the same object.
  EXPECT_EQ(counter, registry.counter("test.counter"));
  EXPECT_NE(counter, registry.counter("test.other"));

  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);

  Gauge* gauge = registry.gauge("test.gauge");
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
  gauge->Add(-1.0);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);

  Histogram* histogram = registry.histogram("test.hist", {1.0, 10.0});
  EXPECT_EQ(histogram, registry.histogram("test.hist", {999.0}));
  histogram->Observe(0.5);   // bucket le=1
  histogram->Observe(5.0);   // bucket le=10
  histogram->Observe(100.0); // overflow
  HistogramSnapshot snap = histogram->Snapshot();
  ASSERT_EQ(snap.counts.size(), 3u);
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 105.5);
  EXPECT_DOUBLE_EQ(snap.mean(), 105.5 / 3.0);
}

TEST(MetricsRegistryTest, SnapshotAndReset) {
  MetricsRegistry registry;
  registry.counter("a")->Increment(7);
  registry.gauge("b")->Set(3.0);
  registry.histogram("c", {1.0})->Observe(0.5);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("a"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("b"), 3.0);
  EXPECT_EQ(snap.histograms.at("c").count, 1u);

  Counter* a = registry.counter("a");
  registry.Reset();
  // Registrations (and pointers) survive a reset; values zero out.
  EXPECT_EQ(a, registry.counter("a"));
  EXPECT_EQ(registry.counter("a")->value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("b")->value(), 0.0);
  EXPECT_EQ(registry.histogram("c", {})->Snapshot().count, 0u);
}

// The satellite requirement: hammer one counter and one histogram from
// ThreadPool threads and assert exact totals — increments must be atomic
// and never lost.
TEST(MetricsRegistryTest, ConcurrentHammerExactTotals) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("hammer.counter");
  Histogram* histogram =
      registry.histogram("hammer.hist", {10.0, 100.0, 1000.0});

  constexpr size_t kTasks = 16;
  constexpr size_t kPerTask = 50000;
  ThreadPool pool(8);
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (size_t t = 0; t < kTasks; ++t) {
    futures.push_back(pool.Submit([&, t] {
      for (size_t i = 0; i < kPerTask; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>((t * kPerTask + i) % 2000));
      }
    }));
  }
  for (auto& f : futures) f.wait();

  EXPECT_EQ(counter->value(), kTasks * kPerTask);
  HistogramSnapshot snap = histogram->Snapshot();
  EXPECT_EQ(snap.count, kTasks * kPerTask);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, kTasks * kPerTask);
}

TEST(MetricsRegistryTest, GlobalRegistryIsSingleton) {
  EXPECT_EQ(MetricsRegistry::Global(), MetricsRegistry::Global());
  Counter* c = MetricsRegistry::Global()->counter("test.global_counter");
  const uint64_t before = c->value();
  c->Increment();
  EXPECT_EQ(c->value(), before + 1);
}

#else  // !SAFE_TELEMETRY_ENABLED

TEST(MetricsRegistryTest, DisabledStubsAreNoOps) {
  MetricsRegistry* registry = MetricsRegistry::Global();
  Counter* counter = registry->counter("test.counter");
  counter->Increment(123);
  EXPECT_EQ(counter->value(), 0u);
  MetricsSnapshot snap = registry->Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace
}  // namespace obs
}  // namespace safe
