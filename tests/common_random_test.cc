#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace safe {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextUint64BelowRespectsBound) {
  Rng rng(9);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextUint64Below(bound), bound);
    }
  }
}

TEST(RngTest, NextUint64BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[rng.NextUint64Below(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 100);  // within 10% relative
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0;
  double sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::vector<int> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(RngTest, SampleClampsToPopulation) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.Fork();
  // Child and parent produce different sequences.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace safe
