#include "src/dataframe/binning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace safe {
namespace {

TEST(KMeansEdgesTest, SeparatesWellSeparatedClusters) {
  // Three tight clusters at -10, 0, +10: edges fall between them.
  Rng rng(1);
  std::vector<double> values;
  for (double center : {-10.0, 0.0, 10.0}) {
    for (int i = 0; i < 200; ++i) {
      values.push_back(center + 0.3 * rng.NextGaussian());
    }
  }
  auto edges = KMeansEdges(values, 3);
  ASSERT_TRUE(edges.ok());
  ASSERT_EQ(edges->edges.size(), 2u);
  EXPECT_NEAR(edges->edges[0], -5.0, 1.5);
  EXPECT_NEAR(edges->edges[1], 5.0, 1.5);
  // Every point maps to its own cluster's bin.
  EXPECT_EQ(edges->BinIndex(-10.0), 0u);
  EXPECT_EQ(edges->BinIndex(0.0), 1u);
  EXPECT_EQ(edges->BinIndex(10.0), 2u);
}

TEST(KMeansEdgesTest, CollapsesOnConstantData) {
  std::vector<double> values(100, 7.0);
  auto edges = KMeansEdges(values, 5);
  ASSERT_TRUE(edges.ok());
  EXPECT_TRUE(edges->edges.empty());
}

TEST(KMeansEdgesTest, AtMostRequestedBins) {
  Rng rng(2);
  std::vector<double> values(1000);
  for (double& v : values) v = rng.NextGaussian();
  for (size_t k : {2u, 4u, 8u, 16u}) {
    auto edges = KMeansEdges(values, k);
    ASSERT_TRUE(edges.ok());
    EXPECT_LE(edges->edges.size(), k - 1);
    EXPECT_GE(edges->edges.size(), 1u);
  }
}

TEST(KMeansEdgesTest, EdgesSortedAscending) {
  Rng rng(3);
  std::vector<double> values(500);
  for (double& v : values) v = rng.NextUniform(-5, 5);
  auto edges = KMeansEdges(values, 6);
  ASSERT_TRUE(edges.ok());
  for (size_t i = 1; i < edges->edges.size(); ++i) {
    EXPECT_LT(edges->edges[i - 1], edges->edges[i]);
  }
}

TEST(KMeansEdgesTest, IgnoresMissing) {
  std::vector<double> values{-10, -10, -10, 10, 10, 10, std::nan("")};
  auto edges = KMeansEdges(values, 2);
  ASSERT_TRUE(edges.ok());
  ASSERT_EQ(edges->edges.size(), 1u);
  EXPECT_NEAR(edges->edges[0], 0.0, 1e-9);
  EXPECT_EQ(edges->BinIndex(std::nan("")), edges->missing_bin());
}

TEST(KMeansEdgesTest, Validation) {
  EXPECT_FALSE(KMeansEdges({1.0, 2.0}, 1).ok());
  std::vector<double> all_nan(5, std::nan(""));
  EXPECT_FALSE(KMeansEdges(all_nan, 3).ok());
}

TEST(KMeansEdgesTest, DeterministicAcrossCalls) {
  Rng rng(4);
  std::vector<double> values(800);
  for (double& v : values) v = rng.NextGaussian();
  auto a = KMeansEdges(values, 5);
  auto b = KMeansEdges(values, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->edges.size(), b->edges.size());
  for (size_t i = 0; i < a->edges.size(); ++i) {
    EXPECT_DOUBLE_EQ(a->edges[i], b->edges[i]);
  }
}

}  // namespace
}  // namespace safe
