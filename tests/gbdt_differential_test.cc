// Differential tests between the exact greedy trainer and the histogram
// trainer. On "pure-quantile" data — every feature takes at most a few
// dozen distinct values, far fewer than the 256 histogram bins — the
// quantile sketch is lossless: both trainers see exactly the same split
// candidates, so they must choose the same split, and full boosted
// ensembles must land within 1e-2 AUC of each other across seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/random.h"
#include "src/data/synthetic.h"
#include "src/dataframe/binning.h"
#include "src/gbdt/booster.h"
#include "src/gbdt/exact_trainer.h"
#include "src/gbdt/quantizer.h"
#include "src/gbdt/trainer.h"
#include "src/stats/auc.h"

namespace safe {
namespace gbdt {
namespace {

constexpr size_t kBins = 256;

/// Quantizes every column of `frame` to its equal-frequency bin index so
/// each feature has <= `levels` distinct integer values. With 256
/// histogram bins this makes the histogram trainer's candidate set
/// identical to the exact trainer's.
DataFrame ToPureQuantileGrid(const DataFrame& frame, size_t levels) {
  DataFrame out;
  for (size_t f = 0; f < frame.num_columns(); ++f) {
    const auto& col = frame.column(f);
    auto edges = EqualFrequencyEdges(col.values(), levels);
    EXPECT_TRUE(edges.ok());
    EXPECT_TRUE(
        out.AddColumn(Column(col.name(), ApplyBins(*edges, col.values())))
            .ok());
  }
  return out;
}

struct StumpPair {
  RegressionTree hist;
  RegressionTree exact;
};

/// Trains one depth-1 tree with each trainer on the same gradients.
StumpPair TrainStumps(const DataFrame& frame, const std::vector<double>& y,
                      size_t max_depth = 1) {
  GbdtParams params;
  params.max_depth = max_depth;
  params.max_bins = kBins;

  auto quantizer = FeatureQuantizer::Fit(frame, kBins);
  EXPECT_TRUE(quantizer.ok());
  auto matrix = quantizer->Transform(frame);
  EXPECT_TRUE(matrix.ok());

  std::vector<double> grad(y.size());
  std::vector<double> hess(y.size(), 0.25);
  std::vector<size_t> rows(y.size());
  std::vector<int> features;
  for (size_t i = 0; i < y.size(); ++i) {
    grad[i] = 0.5 - y[i];
    rows[i] = i;
  }
  for (size_t f = 0; f < frame.num_columns(); ++f) {
    features.push_back(static_cast<int>(f));
  }

  TreeTrainer hist_trainer(&*matrix, &params);
  ExactTreeTrainer exact_trainer(&frame, &params);
  return StumpPair{hist_trainer.Train(grad, hess, rows, features),
                   exact_trainer.Train(grad, hess, rows, features)};
}

TEST(DifferentialTest, SameRootSplitOnPureQuantileData) {
  // 20 seeded rounds; each plants a step boundary on one of three
  // integer-grid features and checks both trainers cut at it.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const size_t n = 240;
    const size_t signal_feature = rng.NextUint64Below(3);
    const double boundary = 8.0 + static_cast<double>(rng.NextUint64Below(16));
    DataFrame frame;
    std::vector<double> y(n);
    std::vector<std::vector<double>> cols(3, std::vector<double>(n));
    for (size_t i = 0; i < n; ++i) {
      for (size_t f = 0; f < 3; ++f) {
        cols[f][i] = static_cast<double>(rng.NextUint64Below(32));
      }
      // A clean step on the signal feature, plus 10% label noise.
      y[i] = cols[signal_feature][i] <= boundary ? 0.0 : 1.0;
      if (rng.NextBernoulli(0.1)) y[i] = 1.0 - y[i];
    }
    for (size_t f = 0; f < 3; ++f) {
      ASSERT_TRUE(
          frame.AddColumn(Column("f" + std::to_string(f), cols[f])).ok());
    }

    StumpPair pair = TrainStumps(frame, y);
    ASSERT_EQ(pair.hist.nodes().size(), 3u) << "seed " << seed;
    ASSERT_EQ(pair.exact.nodes().size(), 3u) << "seed " << seed;
    const TreeNode& h = pair.hist.nodes()[0];
    const TreeNode& e = pair.exact.nodes()[0];
    EXPECT_EQ(h.feature, e.feature) << "seed " << seed;

    // Thresholds are represented differently (bin upper edge vs value
    // midpoint) but must induce the same partition of the data.
    const auto& values =
        frame.column(static_cast<size_t>(h.feature)).values();
    for (double v : std::set<double>(values.begin(), values.end())) {
      EXPECT_EQ(v <= h.threshold, v <= e.threshold)
          << "seed " << seed << " value " << v;
    }
  }
}

TEST(DifferentialTest, EnsembleAucsAgreeAcrossSeeds) {
  // Full boosted ensembles, 20 seeds: |AUC_hist - AUC_exact| <= 1e-2 on
  // a held-out test set of pure-quantile synthetic data.
  for (uint64_t seed = 100; seed < 120; ++seed) {
    data::SyntheticSpec spec;
    spec.num_rows = 500;
    spec.num_features = 5;
    spec.num_informative = 3;
    spec.num_interactions = 2;
    spec.seed = seed;
    auto data = data::MakeSyntheticDataset(spec);
    ASSERT_TRUE(data.ok());

    // Quantize to a 48-level grid first, then split rows; both trainers
    // and both splits see the same discretized world.
    DataFrame grid = ToPureQuantileGrid(data->x, 48);
    const size_t n_train = 350;
    DataFrame train_x;
    DataFrame test_x;
    std::vector<double> train_y;
    std::vector<double> test_y;
    for (size_t f = 0; f < grid.num_columns(); ++f) {
      const auto& values = grid.column(f).values();
      ASSERT_TRUE(train_x
                      .AddColumn(Column(
                          grid.column(f).name(),
                          std::vector<double>(values.begin(),
                                              values.begin() + n_train)))
                      .ok());
      ASSERT_TRUE(test_x
                      .AddColumn(Column(
                          grid.column(f).name(),
                          std::vector<double>(values.begin() + n_train,
                                              values.end())))
                      .ok());
    }
    const auto& labels = data->labels();
    train_y.assign(labels.begin(), labels.begin() + n_train);
    test_y.assign(labels.begin() + n_train, labels.end());
    auto train = MakeDataset(std::move(train_x), train_y);
    ASSERT_TRUE(train.ok());

    GbdtParams params;
    params.num_trees = 15;
    params.max_depth = 3;
    params.max_bins = kBins;
    params.seed = seed;

    GbdtParams hist_params = params;
    hist_params.tree_method = TreeMethod::kHist;
    GbdtParams exact_params = params;
    exact_params.tree_method = TreeMethod::kExact;

    auto hist_model = Booster::Fit(*train, nullptr, hist_params);
    auto exact_model = Booster::Fit(*train, nullptr, exact_params);
    ASSERT_TRUE(hist_model.ok());
    ASSERT_TRUE(exact_model.ok());

    auto hist_proba = hist_model->PredictProba(test_x);
    auto exact_proba = exact_model->PredictProba(test_x);
    ASSERT_TRUE(hist_proba.ok());
    ASSERT_TRUE(exact_proba.ok());

    auto hist_auc = Auc(*hist_proba, test_y);
    auto exact_auc = Auc(*exact_proba, test_y);
    ASSERT_TRUE(hist_auc.ok()) << "seed " << seed;
    ASSERT_TRUE(exact_auc.ok()) << "seed " << seed;
    EXPECT_NEAR(*hist_auc, *exact_auc, 1e-2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gbdt
}  // namespace safe
