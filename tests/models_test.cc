#include "src/models/classifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/data/synthetic.h"
#include "src/models/tree_models.h"
#include "src/stats/auc.h"

namespace safe {
namespace models {
namespace {

data::SyntheticSpec EasySpec() {
  data::SyntheticSpec spec;
  spec.num_rows = 1200;
  spec.num_features = 6;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.num_redundant = 0;
  spec.linear_weight = 0.6;  // partly linear so LR/SVM can also learn
  spec.noise = 0.15;
  spec.seed = 321;
  return spec;
}

struct SplitPair {
  Dataset train;
  Dataset test;
};

SplitPair MakeEasyProblem() {
  auto split = data::MakeSyntheticSplit(EasySpec(), 800, 0, 400);
  EXPECT_TRUE(split.ok());
  return SplitPair{split->train, split->test};
}

class AllClassifiersTest : public ::testing::TestWithParam<ClassifierKind> {};

TEST_P(AllClassifiersTest, FactoryConstructs) {
  auto clf = MakeClassifier(GetParam(), 1);
  ASSERT_NE(clf, nullptr);
  EXPECT_FALSE(clf->name().empty());
  EXPECT_STRNE(ClassifierShortName(GetParam()), "?");
}

TEST_P(AllClassifiersTest, BeatsChanceOnLearnableProblem) {
  SplitPair data = MakeEasyProblem();
  auto clf = MakeClassifier(GetParam(), 7);
  ASSERT_TRUE(clf->Fit(data.train).ok());
  auto scores = clf->PredictScores(data.test.x);
  ASSERT_TRUE(scores.ok()) << scores.status().ToString();
  ASSERT_EQ(scores->size(), data.test.num_rows());
  auto auc = Auc(*scores, data.test.labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.65) << clf->name();
}

TEST_P(AllClassifiersTest, PredictBeforeFitFails) {
  auto clf = MakeClassifier(GetParam(), 7);
  DataFrame x;
  ASSERT_TRUE(x.AddColumn(Column("f", {1.0, 2.0})).ok());
  EXPECT_FALSE(clf->PredictScores(x).ok());
}

TEST_P(AllClassifiersTest, RejectsEmptyTrainingData) {
  auto clf = MakeClassifier(GetParam(), 7);
  Dataset empty;
  EXPECT_FALSE(clf->Fit(empty).ok());
}

TEST_P(AllClassifiersTest, RejectsWidthMismatchAtPredict) {
  SplitPair data = MakeEasyProblem();
  auto clf = MakeClassifier(GetParam(), 7);
  ASSERT_TRUE(clf->Fit(data.train).ok());
  DataFrame narrow;
  ASSERT_TRUE(narrow.AddColumn(Column("only", {1.0})).ok());
  EXPECT_FALSE(clf->PredictScores(narrow).ok());
}

TEST_P(AllClassifiersTest, DeterministicForSameSeed) {
  SplitPair data = MakeEasyProblem();
  auto a = MakeClassifier(GetParam(), 55);
  auto b = MakeClassifier(GetParam(), 55);
  ASSERT_TRUE(a->Fit(data.train).ok());
  ASSERT_TRUE(b->Fit(data.train).ok());
  auto sa = a->PredictScores(data.test.x);
  auto sb = b->PredictScores(data.test.x);
  ASSERT_TRUE(sa.ok() && sb.ok());
  for (size_t i = 0; i < sa->size(); ++i) {
    ASSERT_DOUBLE_EQ((*sa)[i], (*sb)[i]);
  }
}

TEST_P(AllClassifiersTest, RefitReplacesModel) {
  SplitPair data = MakeEasyProblem();
  auto clf = MakeClassifier(GetParam(), 7);
  ASSERT_TRUE(clf->Fit(data.train).ok());
  // Second fit on a different (inverted-label) problem must change output.
  std::vector<double> inverted;
  for (double y : data.train.labels()) inverted.push_back(1.0 - y);
  auto flipped = MakeDataset(data.train.x, inverted);
  ASSERT_TRUE(flipped.ok());
  ASSERT_TRUE(clf->Fit(*flipped).ok());
  auto scores = clf->PredictScores(data.test.x);
  ASSERT_TRUE(scores.ok());
  auto auc = Auc(*scores, data.test.labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_LT(*auc, 0.5);  // now anti-correlated with the original labels
}

TEST_P(AllClassifiersTest, HandlesMissingFeatureValues) {
  auto spec = EasySpec();
  spec.missing_rate = 0.1;
  auto split = data::MakeSyntheticSplit(spec, 800, 0, 400);
  ASSERT_TRUE(split.ok());
  auto clf = MakeClassifier(GetParam(), 7);
  ASSERT_TRUE(clf->Fit(split->train).ok());
  auto scores = clf->PredictScores(split->test.x);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) EXPECT_TRUE(std::isfinite(s));
  auto auc = Auc(*scores, split->test.labels());
  ASSERT_TRUE(auc.ok());
  EXPECT_GT(*auc, 0.6) << clf->name();
}

TEST_P(AllClassifiersTest, SurvivesConstantColumn) {
  SplitPair data = MakeEasyProblem();
  DataFrame with_const = data.train.x;
  ASSERT_TRUE(with_const
                  .AddColumn(Column("const",
                                    std::vector<double>(
                                        with_const.num_rows(), 3.0)))
                  .ok());
  auto train2 = MakeDataset(with_const, data.train.labels());
  ASSERT_TRUE(train2.ok());
  DataFrame test2 = data.test.x;
  ASSERT_TRUE(
      test2
          .AddColumn(Column("const",
                            std::vector<double>(test2.num_rows(), 3.0)))
          .ok());
  auto clf = MakeClassifier(GetParam(), 7);
  ASSERT_TRUE(clf->Fit(*train2).ok());
  auto scores = clf->PredictScores(test2);
  ASSERT_TRUE(scores.ok());
  for (double s : *scores) EXPECT_TRUE(std::isfinite(s));
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, AllClassifiersTest,
    ::testing::ValuesIn(AllClassifierKinds()),
    [](const ::testing::TestParamInfo<ClassifierKind>& info) {
      std::string name = ClassifierShortName(info.param);
      // Test names must be alphanumeric.
      if (name == "kNN") name = "KNN";
      return name;
    });

TEST(ForestImportanceTest, InformativeBeatsNuisance) {
  // Single informative column among nuisance: importance concentrates.
  Rng rng(3);
  DataFrame f;
  std::vector<double> signal(800);
  std::vector<double> labels(800);
  for (size_t i = 0; i < 800; ++i) {
    labels[i] = rng.NextBernoulli(0.5) ? 1.0 : 0.0;
    signal[i] = rng.NextGaussian() + (labels[i] > 0.5 ? 2.0 : 0.0);
  }
  ASSERT_TRUE(f.AddColumn(Column("signal", signal)).ok());
  for (int c = 0; c < 4; ++c) {
    std::vector<double> noise(800);
    for (double& v : noise) v = rng.NextGaussian();
    ASSERT_TRUE(f.AddColumn(Column("noise" + std::to_string(c), noise)).ok());
  }
  auto train = MakeDataset(f, labels);
  ASSERT_TRUE(train.ok());
  RandomForestClassifier rf(11, 30);
  ASSERT_TRUE(rf.Fit(*train).ok());
  auto imps = rf.FeatureImportances();
  ASSERT_EQ(imps.size(), 5u);
  double sum = 0.0;
  for (double v : imps) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (size_t c = 1; c < imps.size(); ++c) {
    EXPECT_GT(imps[0], imps[c]) << "nuisance " << c;
  }
}

TEST(AdaBoostTest, PerfectlySeparableStops) {
  DataFrame f;
  std::vector<double> x(100);
  std::vector<double> y(100);
  for (size_t i = 0; i < 100; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = i < 50 ? 0.0 : 1.0;
  }
  ASSERT_TRUE(f.AddColumn(Column("x", x)).ok());
  auto train = MakeDataset(f, y);
  ASSERT_TRUE(train.ok());
  AdaBoostClassifier ab(1);
  ASSERT_TRUE(ab.Fit(*train).ok());
  auto scores = ab.PredictScores(train->x);
  ASSERT_TRUE(scores.ok());
  auto auc = Auc(*scores, train->labels());
  EXPECT_DOUBLE_EQ(*auc, 1.0);
}

}  // namespace
}  // namespace models
}  // namespace safe
