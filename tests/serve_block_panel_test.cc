// Property suite for the slot-major block panel (src/serve/block_panel.h):
// the rows -> panel -> rows round trip must be lossless to the bit — NaN
// payload bits included — for seeded random shapes, the unchecked
// GatherBlock must place every block at the same lanes regardless of
// where block boundaries fall, and every malformed shape must be
// rejected with a Status error, never UB.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/serve/block_panel.h"

namespace safe {
namespace serve {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double FromBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Seeded random rows where ~1/4 of the values are NaNs with random
/// payload bits (quiet-NaN space, varying mantissa and sign), so the
/// round trip is checked on representations SameBits-style comparisons
/// would conflate.
std::vector<std::vector<double>> RandomRows(Rng* rng, size_t n, size_t width) {
  std::vector<std::vector<double>> rows(n);
  for (auto& row : rows) {
    row.resize(width);
    for (double& v : row) {
      if (rng->NextUint64Below(4) == 0) {
        const uint64_t sign = rng->NextUint64Below(2) << 63;
        const uint64_t payload = rng->NextUint64Below(1ULL << 51) | 1ULL;
        v = FromBits(sign | 0x7FF8000000000000ULL | payload);
      } else {
        v = rng->NextDouble() * 2000.0 - 1000.0;
      }
    }
  }
  return rows;
}

TEST(BlockPanelTest, SeededRoundTripIsLosslessToTheBit) {
  for (uint64_t seed : {1, 2, 3, 4, 5, 6, 7, 8}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 11);
    const size_t n = 1 + rng.NextUint64Below(300);
    const size_t width = 1 + rng.NextUint64Below(40);
    const size_t stride = n + rng.NextUint64Below(64);
    const auto rows = RandomRows(&rng, n, width);

    auto panel = RowsToPanel(rows, stride);
    ASSERT_TRUE(panel.ok()) << panel.status().ToString();
    ASSERT_EQ(panel->size(), width * stride);
    // Slot-major addressing: value (r, f) at panel[f * stride + r].
    for (size_t r = 0; r < n; ++r) {
      for (size_t f = 0; f < width; ++f) {
        ASSERT_EQ(Bits(rows[r][f]), Bits((*panel)[f * stride + r]))
            << "row " << r << " col " << f;
      }
    }

    auto back = PanelToRows(*panel, n, width, stride);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back->size(), n);
    for (size_t r = 0; r < n; ++r) {
      ASSERT_EQ((*back)[r].size(), width);
      for (size_t f = 0; f < width; ++f) {
        ASSERT_EQ(Bits(rows[r][f]), Bits((*back)[r][f]))
            << "row " << r << " col " << f;
      }
    }
  }
}

TEST(BlockPanelTest, GatherBlockMatchesWholeBatchPanelAtEveryBoundary) {
  Rng rng(42);
  const size_t n = 173;  // deliberately not a multiple of any block size
  const size_t width = 9;
  const auto rows = RandomRows(&rng, n, width);

  for (const size_t block : {1UL, 63UL, 64UL, 65UL, 128UL}) {
    SCOPED_TRACE("block " + std::to_string(block));
    std::vector<double> panel(width * block, 0.0);
    for (size_t begin = 0; begin < n; begin += block) {
      const size_t m = std::min(block, n - begin);
      GatherBlock(rows, begin, m, width, block, panel.data());
      // Wherever the block boundary falls, lane i of slot f must hold
      // exactly rows[begin + i][f].
      for (size_t i = 0; i < m; ++i) {
        for (size_t f = 0; f < width; ++f) {
          ASSERT_EQ(Bits(rows[begin + i][f]), Bits(panel[f * block + i]))
              << "begin " << begin << " lane " << i << " col " << f;
        }
      }
    }
  }
}

TEST(BlockPanelTest, RowsToPanelRejectsMalformedShapes) {
  EXPECT_FALSE(RowsToPanel({}, 8).ok());            // empty batch
  EXPECT_FALSE(RowsToPanel({{}}, 8).ok());          // zero-width rows
  EXPECT_FALSE(RowsToPanel({{1.0}, {}}, 8).ok());   // ragged
  EXPECT_FALSE(RowsToPanel({{1.0}, {2.0, 3.0}}, 8).ok());  // ragged
  EXPECT_FALSE(RowsToPanel({{1.0}, {2.0}}, 1).ok());  // stride < rows
  EXPECT_TRUE(RowsToPanel({{1.0}, {2.0}}, 2).ok());
}

TEST(BlockPanelTest, PanelToRowsRejectsMalformedShapes) {
  const std::vector<double> panel(3 * 4, 0.0);  // width 3, stride 4
  EXPECT_FALSE(PanelToRows(panel, 0, 3, 4).ok());   // no rows
  EXPECT_FALSE(PanelToRows(panel, 2, 0, 4).ok());   // zero width
  EXPECT_FALSE(PanelToRows(panel, 5, 3, 4).ok());   // stride < num_rows
  EXPECT_FALSE(PanelToRows(panel, 2, 4, 4).ok());   // size != width*stride
  EXPECT_FALSE(PanelToRows(panel, 2, 3, 5).ok());   // size != width*stride
  EXPECT_TRUE(PanelToRows(panel, 4, 3, 4).ok());
  EXPECT_TRUE(PanelToRows(panel, 2, 3, 4).ok());
}

}  // namespace
}  // namespace serve
}  // namespace safe
