#include "src/stats/descriptive.h"

#include <gtest/gtest.h>

#include <cmath>

namespace safe {
namespace {

TEST(MeanTest, BasicAndMissing) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({1, std::nan(""), 3}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({std::nan("")}), 0.0);
}

TEST(VarianceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Variance({2, 2, 2}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1, 3}), 1.0);  // population variance
  EXPECT_DOUBLE_EQ(StdDev({1, 3}), 1.0);
}

TEST(VarianceTest, IgnoresMissing) {
  EXPECT_DOUBLE_EQ(Variance({1, std::nan(""), 3}), 1.0);
}

TEST(QuantileTest, InterpolatesLinearly) {
  std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.125), 5.0);
}

TEST(QuantileTest, ClampsAndHandlesMissing) {
  std::vector<double> v{5.0, std::nan(""), 1.0};
  EXPECT_DOUBLE_EQ(Quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 2.0), 5.0);
  EXPECT_TRUE(std::isnan(Quantile({std::nan("")}, 0.5)));
}

TEST(QuantileTest, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Quantile({9, 1, 5}, 0.5), 5.0);
}

TEST(MinMaxTest, SkipsMissing) {
  std::vector<double> v{std::nan(""), -2.0, 7.0};
  EXPECT_DOUBLE_EQ(Min(v), -2.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
  EXPECT_TRUE(std::isnan(Min({std::nan("")})));
  EXPECT_TRUE(std::isnan(Max({})));
}

TEST(CountEqualTest, ExactMatches) {
  std::vector<double> v{1.0, 1.0, 0.0, 2.0};
  EXPECT_EQ(CountEqual(v, 1.0), 2u);
  EXPECT_EQ(CountEqual(v, 3.0), 0u);
  EXPECT_EQ(CountEqual({}, 1.0), 0u);
}

}  // namespace
}  // namespace safe
