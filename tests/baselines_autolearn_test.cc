#include "src/baselines/autolearn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/linalg.h"
#include "src/common/random.h"
#include "src/data/synthetic.h"
#include "src/models/classifier.h"
#include "src/stats/auc.h"

namespace safe {
namespace baselines {
namespace {

TEST(LinalgTest, SolvesKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1, 3].
  auto x = SolveLinearSystem({2, 1, 1, 3}, {5, 10});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-9);
  EXPECT_NEAR((*x)[1], 3.0, 1e-9);
}

TEST(LinalgTest, PivotsForStability) {
  // Leading zero forces a row swap.
  auto x = SolveLinearSystem({0, 1, 1, 0}, {2, 3});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 3.0, 1e-9);
  EXPECT_NEAR((*x)[1], 2.0, 1e-9);
}

TEST(LinalgTest, RejectsSingularAndMalformed) {
  EXPECT_FALSE(SolveLinearSystem({1, 2, 2, 4}, {1, 2}).ok());  // rank 1
  EXPECT_FALSE(SolveLinearSystem({1, 2, 3}, {1, 2}).ok());     // not n*n
  EXPECT_FALSE(SolveLinearSystem({}, {}).ok());
}

TEST(RidgeOperatorTest, ResidualRemovesLinearPart) {
  OperatorRegistry registry = OperatorRegistry::Default();
  auto op = registry.Find("ridge");
  ASSERT_TRUE(op.ok());
  Rng rng(1);
  std::vector<double> a(2000);
  std::vector<double> b(2000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextGaussian();
    b[i] = 3.0 * a[i] + 1.0 + 0.1 * rng.NextGaussian();
  }
  auto params = (*op)->FitParams({&a, &b});
  ASSERT_TRUE(params.ok());
  EXPECT_NEAR((*params)[0], 3.0, 0.05);  // slope
  EXPECT_NEAR((*params)[1], 1.0, 0.05);  // intercept
  auto residual = ApplyOperator(**op, *params, {&a, &b});
  ASSERT_TRUE(residual.ok());
  // Residual is decorrelated from a.
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) dot += a[i] * (*residual)[i];
  EXPECT_NEAR(dot / static_cast<double>(a.size()), 0.0, 0.02);
}

TEST(KernelRidgeOperatorTest, CapturesNonlinearRelation) {
  OperatorRegistry registry = OperatorRegistry::Default();
  auto op = registry.Find("krr");
  ASSERT_TRUE(op.ok());
  Rng rng(2);
  std::vector<double> a(3000);
  std::vector<double> b(3000);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.NextUniform(-2.0, 2.0);
    b[i] = std::sin(2.0 * a[i]) + 0.05 * rng.NextGaussian();
  }
  auto params = (*op)->FitParams({&a, &b});
  ASSERT_TRUE(params.ok()) << params.status().ToString();
  auto residual = ApplyOperator(**op, *params, {&a, &b});
  ASSERT_TRUE(residual.ok());
  // KRR explains most of the sin() structure: residual variance << b's.
  double var_b = 0.0;
  double var_r = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    var_b += b[i] * b[i];
    var_r += (*residual)[i] * (*residual)[i];
  }
  EXPECT_LT(var_r, 0.3 * var_b);
}

TEST(AutoLearnTest, ProducesStableConstructedFeatures) {
  data::SyntheticSpec spec;
  spec.num_rows = 2500;
  spec.num_features = 8;
  spec.num_informative = 4;
  spec.num_interactions = 3;
  spec.num_redundant = 2;  // correlated pairs for ridge to chew on
  spec.seed = 91;
  auto split = data::MakeSyntheticSplit(spec, 1700, 0, 800);
  ASSERT_TRUE(split.ok());
  AutoLearnEngineer autolearn(AutoLearnParams{});
  auto plan = autolearn.FitPlan(split->train, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_LE(plan->selected().size(), 2 * split->train.x.num_columns());
  // Replay on unseen data.
  auto z = plan->Transform(split->test.x);
  ASSERT_TRUE(z.ok()) << z.status().ToString();
  EXPECT_EQ(z->num_columns(), plan->selected().size());
}

TEST(AutoLearnTest, PlanSerializationRoundTrips) {
  data::SyntheticSpec spec;
  spec.num_rows = 1500;
  spec.num_features = 6;
  spec.num_informative = 3;
  spec.num_interactions = 2;
  spec.num_redundant = 1;
  spec.seed = 92;
  auto split = data::MakeSyntheticSplit(spec, 1000, 0, 500);
  ASSERT_TRUE(split.ok());
  AutoLearnEngineer autolearn(AutoLearnParams{});
  auto plan = autolearn.FitPlan(split->train, nullptr);
  ASSERT_TRUE(plan.ok());
  auto back = FeaturePlan::Deserialize(plan->Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  auto a = plan->Transform(split->test.x);
  auto b = back->Transform(split->test.x);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < a->num_rows(); ++r) {
    for (size_t c = 0; c < a->num_columns(); ++c) {
      const double va = a->at(r, c);
      const double vb = b->at(r, c);
      if (std::isnan(va)) {
        EXPECT_TRUE(std::isnan(vb));
      } else {
        EXPECT_NEAR(va, vb, 1e-9);
      }
    }
  }
}

TEST(AutoLearnTest, UncorrelatedDataFallsBackGracefully) {
  // Pure-noise independent features: no pair clears the correlation
  // screen, so the plan reduces to (a subset of) the originals.
  Rng rng(3);
  DataFrame x;
  std::vector<double> labels;
  for (int c = 0; c < 5; ++c) {
    std::vector<double> col(500);
    for (double& v : col) v = rng.NextGaussian();
    ASSERT_TRUE(x.AddColumn(Column("f" + std::to_string(c), col)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    labels.push_back(rng.NextBernoulli(0.5) ? 1.0 : 0.0);
  }
  auto data = MakeDataset(x, labels);
  ASSERT_TRUE(data.ok());
  AutoLearnEngineer autolearn(AutoLearnParams{});
  auto plan = autolearn.FitPlan(*data, nullptr);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->NumSelectedGenerated(), 0u);
}

TEST(AutoLearnTest, RejectsEmptyData) {
  AutoLearnEngineer autolearn(AutoLearnParams{});
  Dataset empty;
  EXPECT_FALSE(autolearn.FitPlan(empty, nullptr).ok());
}

}  // namespace
}  // namespace baselines
}  // namespace safe
