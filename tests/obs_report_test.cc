#include "src/obs/report.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/obs/json.h"

namespace safe {
namespace obs {
namespace {

/// Builds a fully deterministic report (no CaptureTelemetry, so the
/// content is identical whether telemetry is compiled in or not).
RunReport MakeFixtureReport() {
  RunReport report("unit_test");
  report.set_wall_seconds(1.5);

  MetricsSnapshot metrics;
  metrics.counters["engine.iterations"] = 2;
  metrics.counters["gbdt.trees_trained"] = 40;
  metrics.gauges["threadpool.queue_depth"] = 0.0;
  HistogramSnapshot hist;
  hist.upper_bounds = {10.0, 100.0};
  hist.counts = {3, 1, 0};  // includes the overflow bucket
  hist.count = 4;
  hist.sum = 52.0;
  metrics.histograms["gbdt.tree_fit_us"] = hist;
  report.SetMetrics(std::move(metrics));

  std::vector<SpanRecord> spans;
  spans.push_back({"engine.fit", 1000, 9000, 0, 0});
  spans.push_back({"engine.iteration", 2000, 7000, 0, 1});
  spans.push_back({"engine.mine_combinations", 2500, 1000, 0, 2});
  report.SetSpans(std::move(spans));
  return report;
}

TEST(RunReportTest, GoldenJson) {
  RunReport report = MakeFixtureReport();
  const std::string expected = R"({
  "tool": "unit_test",
  "schema_version": 1,
  "telemetry_enabled": )" +
                               std::string(SAFE_TELEMETRY_ENABLED ? "true"
                                                                  : "false") +
                               R"(,
  "wall_seconds": 1.5,
  "metrics": {
    "counters": {
      "engine.iterations": 2,
      "gbdt.trees_trained": 40
    },
    "gauges": {
      "threadpool.queue_depth": 0
    },
    "histograms": {
      "gbdt.tree_fit_us": {
        "count": 4,
        "sum": 52,
        "buckets": [
          {
            "le": 10,
            "count": 3
          },
          {
            "le": 100,
            "count": 1
          }
        ]
      }
    }
  },
  "spans": [
    {
      "name": "engine.fit",
      "start_us": 1,
      "duration_us": 9,
      "thread": 0,
      "depth": 0
    },
    {
      "name": "engine.iteration",
      "start_us": 2,
      "duration_us": 7,
      "thread": 0,
      "depth": 1
    },
    {
      "name": "engine.mine_combinations",
      "start_us": 2.5,
      "duration_us": 1,
      "thread": 0,
      "depth": 2
    }
  ]
}
)";
  EXPECT_EQ(report.ToJsonString(), expected);
}

TEST(RunReportTest, JsonRoundTrip) {
  RunReport report = MakeFixtureReport();
  std::vector<IterationDiagnostics> iterations(1);
  iterations[0].num_paths = 12;
  iterations[0].num_combinations = 30;
  iterations[0].num_generated = 120;
  iterations[0].num_candidates = 130;
  iterations[0].num_after_iv = 60;
  iterations[0].num_after_redundancy = 40;
  iterations[0].num_selected = 20;
  iterations[0].seconds = 0.25;
  iterations[0].stages.push_back({"mine_combinations", 0.0, 0.1});
  iterations[0].stages.push_back({"iv_filter", 0.1, 0.05});
  report.AddSection("iterations", IterationDiagnosticsToJson(iterations));

  const JsonValue original = report.ToJson();
  JsonValue reparsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(original.Serialize(), &reparsed, &error))
      << error;
  EXPECT_EQ(reparsed, original);

  // Every IterationDiagnostics field survives the round trip.
  const JsonValue* iters = reparsed.Find("iterations");
  ASSERT_NE(iters, nullptr);
  ASSERT_EQ(iters->items().size(), 1u);
  const JsonValue& entry = iters->items()[0];
  const struct {
    const char* key;
    double value;
  } kFields[] = {
      {"num_paths", 12},         {"num_combinations", 30},
      {"num_generated", 120},    {"num_candidates", 130},
      {"num_after_iv", 60},      {"num_after_redundancy", 40},
      {"num_selected", 20},      {"seconds", 0.25},
  };
  for (const auto& field : kFields) {
    const JsonValue* v = entry.Find(field.key);
    ASSERT_NE(v, nullptr) << field.key;
    EXPECT_DOUBLE_EQ(v->number_value(), field.value) << field.key;
  }
  const JsonValue* stages = entry.Find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->items().size(), 2u);
  EXPECT_EQ(stages->items()[0].Find("stage")->string_value(),
            "mine_combinations");
  EXPECT_DOUBLE_EQ(stages->items()[1].Find("start_seconds")->number_value(),
                   0.1);
  EXPECT_DOUBLE_EQ(stages->items()[1].Find("seconds")->number_value(), 0.05);
}

TEST(RunReportTest, TableListsMetricsAndSpans) {
  RunReport report = MakeFixtureReport();
  const std::string table = report.ToTable();
  EXPECT_NE(table.find("engine.iterations"), std::string::npos);
  EXPECT_NE(table.find("gbdt.tree_fit_us"), std::string::npos);
  EXPECT_NE(table.find("engine.mine_combinations"), std::string::npos);
}

TEST(RunReportTest, WriteFileRoundTrips) {
  RunReport report = MakeFixtureReport();
  const std::string path = ::testing::TempDir() + "/obs_report_test.json";
  std::string error;
  ASSERT_TRUE(report.WriteFile(path, &error)) << error;

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.ToJsonString());
  std::remove(path.c_str());
}

TEST(RunReportTest, WriteFileReportsFailure) {
  RunReport report = MakeFixtureReport();
  std::string error;
  EXPECT_FALSE(report.WriteFile("/nonexistent-dir/x/y/report.json", &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonValueTest, ParseRejectsMalformedInput) {
  JsonValue out;
  EXPECT_FALSE(JsonValue::Parse("{", &out));
  EXPECT_FALSE(JsonValue::Parse("[1,]", &out));
  EXPECT_FALSE(JsonValue::Parse("{}extra", &out));
  EXPECT_TRUE(JsonValue::Parse("{\"a\": [1, 2.5, \"x\", true, null]}", &out));
}

#if SAFE_TELEMETRY_ENABLED

TEST(RunReportTest, CaptureTelemetryPicksUpGlobalState) {
  MetricsRegistry::Global()->Reset();
  Tracer::Global()->Reset();
  MetricsRegistry::Global()->counter("report_test.counter")->Increment(3);
  {
    SAFE_TRACE_SPAN("report_test.span");
  }
  RunReport report("capture_test");
  report.CaptureTelemetry();
  EXPECT_EQ(report.metrics().counters.at("report_test.counter"), 3u);
  bool found = false;
  for (const auto& span : report.spans()) {
    if (span.name == "report_test.span") found = true;
  }
  EXPECT_TRUE(found);
  MetricsRegistry::Global()->Reset();
  Tracer::Global()->Reset();
}

#endif  // SAFE_TELEMETRY_ENABLED

}  // namespace
}  // namespace obs
}  // namespace safe
