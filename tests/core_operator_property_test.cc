// Property sweep over every registered operator: contracts that any
// operator (built-in or user-supplied) must honour for the engine and
// FeaturePlan to be correct.

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"
#include "src/core/operators.h"

namespace safe {
namespace {

class OperatorContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    registry_ = OperatorRegistry::Default();
    auto op = registry_.Find(GetParam());
    ASSERT_TRUE(op.ok());
    op_ = *op;

    Rng rng(7);
    parents_storage_.resize(op_->arity());
    for (auto& col : parents_storage_) {
      col.resize(kRows);
      for (double& v : col) v = rng.NextUniform(0.1, 5.0);  // log/sqrt-safe
    }
    for (auto& col : parents_storage_) parents_.push_back(&col);
    auto params = op_->FitParams(parents_);
    ASSERT_TRUE(params.ok()) << GetParam();
    params_ = *params;
  }

  static constexpr size_t kRows = 200;
  OperatorRegistry registry_ = OperatorRegistry::Empty();
  std::shared_ptr<const Operator> op_;
  std::vector<std::vector<double>> parents_storage_;
  std::vector<const std::vector<double>*> parents_;
  std::vector<double> params_;
};

TEST_P(OperatorContractTest, NameMatchesRegistryKey) {
  EXPECT_EQ(op_->name(), GetParam());
  EXPECT_GE(op_->arity(), 1u);
  EXPECT_LE(op_->arity(), 3u);
}

TEST_P(OperatorContractTest, BatchEqualsElementwise) {
  auto batch = ApplyOperator(*op_, params_, parents_);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), kRows);
  std::vector<double> inputs(op_->arity());
  for (size_t r = 0; r < kRows; ++r) {
    for (size_t p = 0; p < op_->arity(); ++p) {
      inputs[p] = parents_storage_[p][r];
    }
    const double direct = op_->Apply(inputs.data(), params_);
    if (std::isnan(direct)) {
      EXPECT_TRUE(std::isnan((*batch)[r])) << GetParam() << " row " << r;
    } else {
      EXPECT_DOUBLE_EQ((*batch)[r], direct) << GetParam() << " row " << r;
    }
  }
}

TEST_P(OperatorContractTest, Deterministic) {
  auto a = ApplyOperator(*op_, params_, parents_);
  auto b = ApplyOperator(*op_, params_, parents_);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t r = 0; r < kRows; ++r) {
    if (std::isnan((*a)[r])) {
      EXPECT_TRUE(std::isnan((*b)[r]));
    } else {
      EXPECT_DOUBLE_EQ((*a)[r], (*b)[r]);
    }
  }
}

TEST_P(OperatorContractTest, MissingInputYieldsMissingUnlessHandled) {
  // Poke a NaN into every parent position in turn.
  for (size_t p = 0; p < op_->arity(); ++p) {
    auto poked = parents_storage_;
    poked[p][0] = std::nan("");
    std::vector<const std::vector<double>*> ptrs;
    for (auto& col : poked) ptrs.push_back(&col);
    auto out = ApplyOperator(*op_, params_, ptrs);
    ASSERT_TRUE(out.ok());
    if (!op_->handles_missing()) {
      EXPECT_TRUE(std::isnan((*out)[0]))
          << GetParam() << " parent " << p;
    } else {
      // Group-by must still return a *finite or NaN* value, not crash.
      SUCCEED();
    }
  }
}

TEST_P(OperatorContractTest, RefitOnSameDataGivesSameParams) {
  auto again = op_->FitParams(parents_);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    if (std::isnan(params_[i])) {
      EXPECT_TRUE(std::isnan((*again)[i]));  // e.g. empty group-by bins
    } else {
      EXPECT_DOUBLE_EQ((*again)[i], params_[i]);
    }
  }
}

TEST_P(OperatorContractTest, WrongParentCountRejected) {
  std::vector<const std::vector<double>*> too_many = parents_;
  too_many.push_back(&parents_storage_[0]);
  EXPECT_FALSE(ApplyOperator(*op_, params_, too_many).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, OperatorContractTest,
    ::testing::ValuesIn(OperatorRegistry::Default().Names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace safe
